"""Regression tests for the stale-validity-reply race.

Scenario: a checking client uploads its cache, dozes before the reply
lands, and reconnects *before* the reply is delivered.  The reply
answers the previous episode's upload; applying it would certify (and
clear the suspect marks of) state it never validated.  The client must
drop such replies.
"""

from repro.net import Message, MessageKind, SERVER_ID
from repro.sim import SimulationModel, SystemParams, UNIFORM


def make_model(**kw):
    defaults = dict(
        simulation_time=400.0,
        n_clients=1,
        db_size=50,
        buffer_fraction=0.2,
        disconnect_prob=0.0,
        seed=2,
    )
    defaults.update(kw)
    return SimulationModel(SystemParams(**defaults), UNIFORM, "checking")


def validity_message(dest, invalid, certified_at):
    return Message(
        kind=MessageKind.VALIDITY_REPORT,
        size_bits=16,
        src=SERVER_ID,
        dest=dest,
        payload=(invalid, certified_at),
    )


class TestStaleReplyIgnored:
    def test_reply_without_outstanding_check_is_dropped(self):
        model = make_model()
        client = model.clients[0]
        model.env.run(until=50.0)  # past a couple of reports
        assert not client._validation_pending
        floor_before = client.cache.certified_floor
        tlb_before = client.tlb
        cached_before = set(client.cache.item_ids())
        # A ghost reply from a previous episode arrives.
        client._on_downlink(
            validity_message(client.client_id, list(cached_before), 999.0),
            model.env.now,
        )
        # Nothing changed: no drops, no certification, no tlb movement.
        assert set(client.cache.item_ids()) == cached_before
        assert client.cache.certified_floor == floor_before
        assert client.tlb == tlb_before

    def test_stale_reply_cannot_clear_suspect_marks(self):
        from repro.cache import CacheEntry

        model = make_model()
        client = model.clients[0]
        model.env.run(until=50.0)
        client.cache.insert(
            CacheEntry(item=49, version=0, ts=1.0), suspect=True
        )
        client._on_downlink(
            validity_message(client.client_id, [], 999.0), model.env.now
        )
        assert 49 in client.cache.unreconciled  # mark survived the ghost

    def test_legitimate_reply_still_applies(self):
        """The gate must not break the normal checking protocol."""
        model = make_model(
            disconnect_prob=0.4,
            disconnect_time_mean=400.0,
            simulation_time=6000.0,
            n_clients=6,
        )
        result = model.run()
        assert result.counter("checking.requests") > 0
        # Checks resolve: clients keep answering and salvage their caches.
        assert result.counter("cache.hits") > 0
        assert result.stale_hits == 0

    def test_replies_addressed_elsewhere_ignored(self):
        model = make_model()
        client = model.clients[0]
        model.env.run(until=50.0)
        cached_before = set(client.cache.item_ids())
        client._on_downlink(
            validity_message(client.client_id + 1, list(cached_before), 999.0),
            model.env.now,
        )
        assert set(client.cache.item_ids()) == cached_before
