"""Tests for the stationary warm-start of client caches."""

import pytest

from repro.des import RandomStreams
from repro.sim import HOTCOLD, UNIFORM, SimulationModel, SystemParams
from repro.sim.workload import AccessPattern, Region


@pytest.fixture
def stream():
    return RandomStreams(9).stream("warm")


class TestWarmFill:
    def test_uniform_fill_distinct_and_sized(self, stream):
        pat = AccessPattern(100)
        items = pat.warm_fill(stream, 30)
        assert len(items) == 30
        assert len(set(items)) == 30
        assert all(0 <= i < 100 for i in items)

    def test_capacity_capped_at_database(self, stream):
        pat = AccessPattern(10)
        assert len(pat.warm_fill(stream, 50)) == 10

    def test_hot_items_fill_first(self, stream):
        pat = AccessPattern(1000, hot=Region(0, 99), hot_prob=0.8)
        items = pat.warm_fill(stream, 150)
        hot = [i for i in items if i < 100]
        cold = [i for i in items if i >= 100]
        assert len(hot) == 100   # entire hot region present
        assert len(cold) == 50
        assert len(set(items)) == 150

    def test_small_cache_takes_hot_subset(self, stream):
        pat = AccessPattern(1000, hot=Region(0, 99), hot_prob=0.8)
        items = pat.warm_fill(stream, 20)
        assert len(items) == 20
        assert all(i < 100 for i in items)

    def test_cold_fill_avoids_hot_region(self, stream):
        pat = AccessPattern(200, hot=Region(50, 59), hot_prob=0.8)
        items = pat.warm_fill(stream, 60)
        cold = [i for i in items if not 50 <= i <= 59]
        assert len(cold) == 50
        assert len(set(items)) == 60


class TestWarmStartInModel:
    def params(self, **kw):
        defaults = dict(
            simulation_time=1000.0,
            n_clients=5,
            db_size=500,
            buffer_fraction=0.1,
            disconnect_prob=0.0,
            seed=4,
        )
        defaults.update(kw)
        return SystemParams(**defaults)

    def test_caches_full_at_start(self):
        model = SimulationModel(self.params(), UNIFORM, "ts")
        for client in model.clients:
            assert len(client.cache) == model.params.cache_capacity

    def test_warm_entries_coherent_at_origin(self):
        model = SimulationModel(self.params(), UNIFORM, "ts")
        entry = model.clients[0].cache.entries()[0]
        assert entry.version == 0
        assert entry.ts == 0.0

    def test_disabled_warm_start_is_cold(self):
        model = SimulationModel(self.params(warm_start=False), UNIFORM, "ts")
        assert all(len(c.cache) == 0 for c in model.clients)

    def test_hotcold_clients_hold_the_hot_set(self):
        model = SimulationModel(
            self.params(db_size=5000, buffer_fraction=0.04), HOTCOLD, "ts"
        )
        for client in model.clients:
            hot_cached = sum(1 for i in client.cache.item_ids() if i < 100)
            assert hot_cached == 100

    def test_warm_start_raises_initial_hit_ratio(self):
        warm = SimulationModel(
            self.params(db_size=2000, simulation_time=3000.0), HOTCOLD, "ts"
        ).run()
        cold = SimulationModel(
            self.params(db_size=2000, simulation_time=3000.0, warm_start=False),
            HOTCOLD,
            "ts",
        ).run()
        assert warm.hit_ratio > cold.hit_ratio

    def test_warm_start_never_creates_stale_hits(self):
        result = SimulationModel(
            self.params(update_interarrival_mean=20.0, simulation_time=4000.0),
            HOTCOLD,
            "ts",
        ).run()
        assert result.stale_hits == 0
