"""Property suite for the population-aggregation pool.

Four families of invariants, all of which must hold for *every* seed,
knob setting and workload — exactly the kind of claim Hypothesis is for:

* **Conservation** — at every instant, live full-fidelity clients plus
  pooled residents account for the whole population, and the pool's own
  ledger balances (``seeded + absorbed - promoted == residents``), even
  while clients doze, wake, and hand off between cells.
* **Strata well-formedness** — stratum counts are strictly positive
  (empty strata are removed eagerly) and sum to the resident count.
* **Reconstructibility** — a cache rebuilt from a stratum signature has
  exactly that signature, honest ``Tlb``-time entries, and a matching
  certification floor, for any signature the pool can produce.
* **Validation** — `AggregationConfig` / `SystemParams` reject nonsense
  (negative K, K > population, zero-width buckets, fractions outside
  [0, 1]) at construction time, not at hour three of a megacell run.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des.rng import RandomStreams
from repro.sim import AggregationConfig, SystemParams
from repro.sim.model import SimulationModel
from repro.sim.population import cache_signature, rebuild_cache, warm_signature
from repro.sim.runner import run_simulation
from repro.sim.workload import HOTCOLD, UNIFORM, AccessPattern, Region
from repro.topology import RoamingConfig, TopologyConfig


def _pool_invariants(model):
    pool = model.population
    live = len(model.clients)
    assert live + pool.residents == model.params.n_clients
    ledger = (
        model.metrics.counter("pool.seeded").value
        + model.metrics.counter("pool.absorbed").value
        - model.metrics.counter("pool.promoted").value
    )
    assert ledger == pool.residents
    assert all(count > 0 for count in pool.strata.values())
    assert sum(pool.strata.values()) == pool.residents


@settings(max_examples=10)
@given(
    seed=st.integers(0, 2**16),
    disconnect_prob=st.floats(0.1, 0.8),
    disconnect_time_mean=st.floats(100.0, 2000.0),
    k_exact=st.integers(0, 30),
    start_in_pool=st.sampled_from([0.0, 0.5, 1.0]),
)
def test_pool_conservation_through_doze_wake(
    seed, disconnect_prob, disconnect_time_mean, k_exact, start_in_pool
):
    """live + residents == n_clients at every checkpoint, and the pool's
    ledger balances, across arbitrary doze/wake churn."""
    params = SystemParams(
        simulation_time=1500.0,
        n_clients=30,
        db_size=200,
        buffer_fraction=0.05,
        think_time_mean=40.0,
        update_interarrival_mean=80.0,
        disconnect_prob=disconnect_prob,
        disconnect_time_mean=disconnect_time_mean,
        seed=seed,
        aggregation=AggregationConfig(k_exact=k_exact, start_in_pool=start_in_pool),
    )
    model = SimulationModel(params, UNIFORM, "aaw")
    _pool_invariants(model)  # holds at t=0, before any event
    for checkpoint in (300.0, 800.0, 1500.0):
        model.env.run(until=checkpoint)
        _pool_invariants(model)


@settings(max_examples=5)
@given(seed=st.integers(0, 2**16), roam_prob=st.floats(0.2, 1.0))
def test_pool_conservation_across_handoffs(seed, roam_prob):
    """Roaming does not leak clients: a member absorbed in one cell and
    promoted after a wake-time handoff still counts exactly once."""
    params = SystemParams(
        simulation_time=1200.0,
        n_clients=24,
        db_size=200,
        buffer_fraction=0.05,
        think_time_mean=40.0,
        update_interarrival_mean=80.0,
        disconnect_prob=0.5,
        disconnect_time_mean=300.0,
        seed=seed,
        uplink_timeout=15.0,
        roaming=RoamingConfig(
            topology=TopologyConfig(kind="path", n_cells=3),
            roam_prob=roam_prob,
        ),
        aggregation=AggregationConfig(k_exact=4),
    )
    from repro.sim.multicell import MultiCellModel

    model = MultiCellModel(params, UNIFORM, "aaw")
    for checkpoint in (400.0, 1200.0):
        model.env.run(until=checkpoint)
        _pool_invariants(model)
    assert model.metrics.counter("pool.absorbed").value > 0


@settings(max_examples=50)
@given(
    db_size=st.integers(50, 500),
    hot_size=st.integers(0, 40),
    capacity=st.integers(1, 40),
    data=st.data(),
)
def test_rebuild_cache_signature_roundtrip(db_size, hot_size, capacity, data):
    """Any stratum signature the pool can hold is reconstructible: the
    rebuilt cache has exactly that signature, every entry is stamped at
    ``Tlb``, and the certification floor matches."""
    hot = Region(0, hot_size - 1) if hot_size else None
    pattern = AccessPattern(db_size, hot, 0.8 if hot else 0.0)
    n_hot = data.draw(st.integers(0, min(hot_size, capacity)))
    # Cold items draw from the complement (or the whole db when flat).
    cold_space = db_size - hot_size
    n_cold = data.draw(st.integers(0, min(capacity - n_hot, cold_space)))
    tlb = data.draw(st.floats(0.0, 1000.0, allow_nan=False))
    stream = RandomStreams(7).stream("rebuild")
    cache = rebuild_cache(stream, pattern, capacity, n_hot, n_cold, tlb)
    assert cache_signature(cache, pattern) == (n_hot, n_cold)
    assert len(cache) == n_hot + n_cold
    assert cache.certified_floor == tlb
    for entry in cache.entries():
        assert entry.ts == tlb
    assert not cache.unreconciled


@given(db_size=st.integers(20, 300), capacity=st.integers(1, 50))
def test_warm_signature_matches_warm_fill(db_size, capacity):
    """The parked-at-build-time signature equals what warm_fill draws."""
    for pattern in (
        UNIFORM.query_pattern(db_size),
        AccessPattern(db_size, Region(0, min(9, db_size - 2)), 0.8),
    ):
        predicted = warm_signature(pattern, capacity)
        stream = RandomStreams(3).stream("warm")
        items = pattern.warm_fill(stream, capacity)
        hot = pattern.hot
        n_hot = sum(1 for i in items if hot is not None and hot.contains(i))
        assert predicted == (n_hot, len(items) - n_hot)


def test_signature_survives_absorb_promote_cycle():
    """End-to-end: members promoted out of a real run carry caches whose
    signature the differential campaign relies on (no empty caches when
    warm strata exist, no hot items under a flat pattern)."""
    params = SystemParams(
        simulation_time=2000.0,
        n_clients=40,
        db_size=200,
        buffer_fraction=0.05,
        think_time_mean=40.0,
        update_interarrival_mean=80.0,
        disconnect_prob=0.5,
        disconnect_time_mean=300.0,
        seed=5,
        aggregation=AggregationConfig(k_exact=0),
    )
    result = run_simulation(params, HOTCOLD, "ts")
    assert result.counter("pool.promoted") > 0
    assert result.raw["oracle.liveness_ok"] == 1.0


# -- validation ------------------------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(k_exact=-1),
        dict(min_doze_intervals=0.0),
        dict(min_doze_intervals=-2.0),
        dict(tlb_bucket_intervals=0),
        dict(start_in_pool=-0.1),
        dict(start_in_pool=1.5),
    ],
)
def test_aggregation_config_rejects_nonsense(kwargs):
    with pytest.raises(ValueError):
        AggregationConfig(**kwargs)


def test_params_reject_k_exact_over_population():
    with pytest.raises(ValueError, match="k_exact exceeds"):
        SystemParams(n_clients=10, aggregation=AggregationConfig(k_exact=11))


def test_params_reject_aggregation_with_client_chaos():
    from repro.chaos.schedule import ChaosConfig

    with pytest.raises(ValueError, match="client-crash or\nclock-skew|client-crash"):
        SystemParams(
            n_clients=10,
            aggregation=AggregationConfig(),
            chaos=ChaosConfig(client_crashes_at=((50.0, 3),)),
        )


def test_rebuild_rejects_impossible_strata():
    pattern = AccessPattern(100, None, 0.0)
    stream = RandomStreams(1).stream("x")
    with pytest.raises(ValueError, match="no hot region"):
        rebuild_cache(stream, pattern, 10, 2, 0, 0.0)
    with pytest.raises(ValueError, match="exceeds the cache capacity"):
        rebuild_cache(stream, pattern, 10, 0, 11, 0.0)
    with pytest.raises(ValueError, match="non-negative"):
        rebuild_cache(stream, pattern, 10, -1, 2, 0.0)
