"""Tests for publishing mode (Section 1's listen-only dissemination)."""

import pytest

from repro.sim import HOTCOLD, UNIFORM, SimulationModel, SystemParams
from repro.sim.metrics import (
    PUBLISH_BITS,
    PUBLISH_ITEMS,
    PUBLISH_REFRESHES,
    UPLINK_REQUEST_BITS,
)


def params(**kw):
    defaults = dict(
        simulation_time=4000.0,
        n_clients=20,
        db_size=2000,
        buffer_fraction=0.06,     # 120 items: hot region fits
        disconnect_prob=0.1,
        disconnect_time_mean=300.0,
        update_interarrival_mean=40.0,
        seed=12,
    )
    defaults.update(kw)
    return SystemParams(**defaults)


class TestValidation:
    def test_publishing_requires_region(self):
        with pytest.raises(ValueError):
            SystemParams(publish_per_interval=2)

    def test_region_must_fit_database(self):
        with pytest.raises(ValueError):
            SystemParams(db_size=50, publish_per_interval=1, publish_region=(0, 50))

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            SystemParams(publish_per_interval=-1)


class TestPushing:
    def test_items_pushed_at_configured_rate(self):
        result = SimulationModel(
            params(publish_per_interval=2, publish_region=(0, 99)),
            HOTCOLD,
            "ts",
        ).run()
        intervals = 4000.0 / 20.0
        assert result.counter(PUBLISH_ITEMS) == 2 * intervals
        assert result.counter(PUBLISH_BITS) == 2 * intervals * 65536.0

    def test_disabled_by_default(self):
        result = SimulationModel(params(), HOTCOLD, "ts").run()
        assert result.counter(PUBLISH_ITEMS) == 0

    def test_clients_refresh_from_pushes(self):
        result = SimulationModel(
            params(publish_per_interval=2, publish_region=(0, 99)),
            HOTCOLD,
            "ts",
        ).run()
        assert result.counter(PUBLISH_REFRESHES) > 0

    def test_uniform_clients_ignore_uninteresting_pushes(self):
        """Uniform clients have no hot region: pushes only refresh items
        they happen to cache."""
        result = SimulationModel(
            params(publish_per_interval=1, publish_region=(0, 99), warm_start=False),
            UNIFORM,
            "ts",
        ).run()
        # With cold caches over a 2000-item db, nearly every push is
        # irrelevant to every client.
        assert result.counter(PUBLISH_REFRESHES) < result.counter(PUBLISH_ITEMS) * 20


class TestEffectOnTraffic:
    def test_publishing_cuts_hot_fetch_traffic(self):
        """The mode's purpose: when updates hit the hot region, published
        copies replace on-demand re-fetches of invalidated hot items."""
        from repro.sim.workload import Workload

        churny = Workload(
            name="hot-churn",
            query_hot=(0, 99),
            query_hot_prob=0.8,
            update_hot=(0, 99),   # updates concentrate on the hot region
            update_hot_prob=0.8,
        )
        off = SimulationModel(params(), churny, "aaw").run()
        on = SimulationModel(
            params(publish_per_interval=2, publish_region=(0, 99)),
            churny,
            "aaw",
        ).run()
        assert on.counter(UPLINK_REQUEST_BITS) < off.counter(UPLINK_REQUEST_BITS)
        assert on.hit_ratio > off.hit_ratio

    def test_no_stale_hits_with_publishing(self):
        """Pushed entries ride the same suspect-reconciliation machinery."""
        for scheme in ("ts", "bs", "aaw", "checking"):
            result = SimulationModel(
                params(
                    publish_per_interval=3,
                    publish_region=(0, 99),
                    update_interarrival_mean=15.0,
                ),
                HOTCOLD,
                scheme,
            ).run()
            assert result.stale_hits == 0, scheme

    def test_pushed_item_satisfies_waiting_fetch(self):
        """A client mid-fetch for item X accepts a pushed X (no deadlock,
        no double answer)."""
        result = SimulationModel(
            params(
                publish_per_interval=5,
                publish_region=(0, 20),
                db_size=300,
                buffer_fraction=0.5,
                think_time_mean=30.0,
            ),
            HOTCOLD,
            "ts",
        ).run()
        generated = result.counter("queries.generated")
        answered = result.counter("queries.answered")
        assert generated - answered <= 20  # nothing wedged
