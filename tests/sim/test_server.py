"""Focused tests of the server actor: punctual reports, coalescing,
validity answering."""

import pytest

from repro.net import Channel, MessageKind
from repro.sim import SimulationModel, SystemParams, UNIFORM
from repro.sim import metrics as m_names
from repro.sim.metrics import (
    DATA_COALESCED,
    DOWNLINK_IR_BITS,
    DOWNLINK_VALIDITY_BITS,
)


def small_params(**kw):
    defaults = dict(
        simulation_time=200.0,
        n_clients=3,
        db_size=100,
        buffer_fraction=0.1,
        disconnect_prob=0.0,
        seed=1,
    )
    defaults.update(kw)
    return SystemParams(**defaults)


class TestBroadcastPunctuality:
    def test_reports_start_exactly_on_the_period(self):
        model = SimulationModel(small_params(), UNIFORM, "ts")
        starts = []

        # Channel instances are slotted (PERF001), so spy at class level.
        original_send = Channel.send

        def spy(channel, msg):
            if (
                channel is model.downlink
                and msg.kind is MessageKind.INVALIDATION_REPORT
            ):
                starts.append(model.env.now)
            return original_send(channel, msg)

        Channel.send = spy
        try:
            model.run()
        finally:
            Channel.send = original_send
        assert starts == [pytest.approx(20.0 * i) for i in range(1, 11)]

    def test_reports_punctual_even_with_data_backlog(self):
        """A large data item on the air must not delay the report."""
        params = small_params(
            simulation_time=100.0,
            think_time_mean=1.0,     # hammer the downlink with fetches
            downlink_bps=2000.0,     # one item takes ~33 s to transmit
        )
        model = SimulationModel(params, UNIFORM, "ts")
        received = []
        model.downlink.attach(
            lambda msg, now: received.append((msg.kind, now))
        )
        model.run()
        ir_times = [t for k, t in received if k is MessageKind.INVALIDATION_REPORT]
        # Every report is delivered within its own transmission time of the
        # tick -- never queued behind a data item.
        for i, t in enumerate(ir_times, start=1):
            assert t - 20.0 * i < 1.0

    def test_report_timestamp_equals_tick(self):
        model = SimulationModel(small_params(), UNIFORM, "ts")
        reports = []
        model.downlink.attach(
            lambda msg, now: reports.append(msg.payload)
            if msg.kind is MessageKind.INVALIDATION_REPORT
            else None
        )
        model.run()
        # The report built exactly at t=200 is sent but its delivery falls
        # past the horizon, so nine arrive.
        assert [r.timestamp for r in reports] == [
            pytest.approx(20.0 * i) for i in range(1, 10)
        ]


class TestDataService:
    def test_same_item_requests_coalesce(self):
        # Tiny database so concurrent clients collide on items; slow
        # downlink so the coalescing window is wide.
        params = small_params(
            db_size=2,
            n_clients=5,
            think_time_mean=5.0,
            simulation_time=400.0,
            downlink_bps=3000.0,
        )
        model = SimulationModel(params, UNIFORM, "ts")
        result = model.run()
        assert result.counter(DATA_COALESCED) > 0
        # Every query still completes despite shared transmissions.
        assert result.counter(m_names.CACHE_MISSES) > 0

    def test_coalescing_can_be_disabled(self):
        params = small_params(
            db_size=2,
            n_clients=5,
            think_time_mean=5.0,
            simulation_time=400.0,
            downlink_bps=3000.0,
            coalesce_data_responses=False,
        )
        result = SimulationModel(params, UNIFORM, "ts").run()
        assert result.counter(DATA_COALESCED) == 0

    def test_ir_bits_accounted(self):
        result = SimulationModel(small_params(), UNIFORM, "ts").run()
        assert result.counter(DOWNLINK_IR_BITS) > 0

    def test_validity_bits_accounted_for_checking(self):
        params = small_params(
            simulation_time=3000.0,
            disconnect_prob=0.3,
            disconnect_time_mean=400.0,
        )
        result = SimulationModel(params, UNIFORM, "checking").run()
        assert result.counter(DOWNLINK_VALIDITY_BITS) > 0


class TestReportAccounting:
    def test_report_kind_counters(self):
        result = SimulationModel(small_params(), UNIFORM, "ts").run()
        assert result.counter("reports.window") == 10

    def test_bs_reports_counted(self):
        result = SimulationModel(small_params(), UNIFORM, "bs").run()
        assert result.counter("reports.bs") == 10
