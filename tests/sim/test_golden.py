"""Golden change-detector: fixed-seed metrics per scheme.

These pin the end-to-end behaviour of every scheme on one small, fully
deterministic configuration.  They are *change detectors*, not
correctness oracles: an intentional behaviour change should update the
constants here (and the reviewer sees exactly which schemes moved and
how); an accidental one fails loudly.

Regenerate after an intentional change with:

    python -m tests.sim.test_golden
"""

import pytest

from repro.sim import SystemParams, UNIFORM, run_simulation

PARAMS = SystemParams(
    simulation_time=2000.0,
    n_clients=5,
    db_size=200,
    buffer_fraction=0.1,
    think_time_mean=50.0,
    update_interarrival_mean=60.0,
    disconnect_prob=0.25,
    disconnect_time_mean=250.0,
    seed=1234,
)

PINNED = ("queries.answered", "cache.hits", "cache.misses",
          "cache.full_drops", "uplink.validation_bits")

# scheme -> pinned counter values for PARAMS (regenerate via __main__).
GOLDEN = {
    "aaw": (78.0, 9.0, 69.0, 0.0, 384.0),
    "afw": (78.0, 9.0, 69.0, 0.0, 384.0),
    "at": (80.0, 1.0, 79.0, 22.0, 0.0),
    "bs": (80.0, 10.0, 70.0, 0.0, 0.0),
    "checking": (79.0, 9.0, 70.0, 0.0, 9920.0),
    "gcore": (79.0, 9.0, 70.0, 0.0, 5568.0),
    "sig": (80.0, 2.0, 78.0, 0.0, 0.0),
    "ts": (80.0, 5.0, 75.0, 14.0, 0.0),
}


def observe(scheme):
    result = run_simulation(PARAMS, UNIFORM, scheme)
    return tuple(result.counter(name) for name in PINNED)


@pytest.mark.parametrize("scheme", sorted(GOLDEN))
def test_golden_metrics(scheme):
    assert observe(scheme) == GOLDEN[scheme]


def test_golden_table_is_self_consistent():
    """The pins encode the schemes' qualitative relationships."""
    answered = {s: g[0] for s, g in GOLDEN.items()}
    drops = {s: g[3] for s, g in GOLDEN.items()}
    uplink = {s: g[4] for s, g in GOLDEN.items()}
    # Salvage schemes never drop caches here; TS/AT do.
    assert drops["ts"] > 0 and drops["at"] > 0
    assert drops["aaw"] == drops["bs"] == drops["checking"] == 0
    # BS/SIG/AT/TS are uplink-silent; checking pays the most.
    for silent in ("bs", "sig", "at", "ts"):
        assert uplink[silent] == 0
    assert uplink["checking"] > uplink["gcore"] > uplink["aaw"]
    # Everyone answers (nearly) the same offered stream at this tiny
    # load; latency differences shift at most a couple of query cycles.
    assert max(answered.values()) - min(answered.values()) <= 3


if __name__ == "__main__":
    for scheme in sorted(GOLDEN):
        print(f'    "{scheme}": {observe(scheme)},')
