"""Tests for the per-query event log and fairness analysis."""

import pytest

from repro.sim import (
    QueryLog,
    QueryRecord,
    SimulationModel,
    SystemParams,
    UNIFORM,
    jain_index,
)


def rec(cid, started, answered, hits=1, misses=0):
    return QueryRecord(
        client_id=cid, started=started, answered=answered,
        items=hits + misses, hits=hits, misses=misses,
    )


class TestJainIndex:
    def test_perfectly_fair(self):
        assert jain_index([5, 5, 5, 5]) == pytest.approx(1.0)

    def test_maximally_unfair(self):
        assert jain_index([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_empty_and_zero(self):
        assert jain_index([]) == 1.0
        assert jain_index([0, 0]) == 1.0


class TestQueryLog:
    def test_record_and_latency(self):
        log = QueryLog()
        log.record(rec(0, 10.0, 14.5))
        assert len(log) == 1
        assert log.records[0].latency == pytest.approx(4.5)

    def test_per_client_summaries(self):
        log = QueryLog()
        log.record(rec(0, 0.0, 2.0, hits=1, misses=0))
        log.record(rec(0, 5.0, 9.0, hits=0, misses=1))
        log.record(rec(1, 0.0, 1.0, hits=1, misses=0))
        per = log.per_client()
        assert per[0].queries == 2
        assert per[0].mean_latency == pytest.approx(3.0)
        assert per[0].hit_ratio == pytest.approx(0.5)
        assert per[1].hit_ratio == 1.0

    def test_for_client(self):
        log = QueryLog()
        log.record(rec(0, 0.0, 1.0))
        log.record(rec(1, 0.0, 1.0))
        assert [r.client_id for r in log.for_client(1)] == [1]

    def test_fairness_from_counts(self):
        log = QueryLog()
        for _ in range(9):
            log.record(rec(0, 0.0, 1.0))
        log.record(rec(1, 0.0, 1.0))
        assert log.fairness() < 0.7

    def test_csv_export(self, tmp_path):
        log = QueryLog()
        log.record(rec(3, 1.0, 2.5, hits=1, misses=2))
        path = log.to_csv(tmp_path / "queries.csv")
        lines = path.read_text().splitlines()
        assert lines[0].startswith("client_id,")
        assert lines[1].startswith("3,1.000000,2.500000,1.500000,3,1,2")


class TestInSimulation:
    def params(self, **kw):
        defaults = dict(
            simulation_time=2000.0,
            n_clients=6,
            db_size=100,
            disconnect_prob=0.1,
            disconnect_time_mean=200.0,
            collect_query_log=True,
            seed=3,
        )
        defaults.update(kw)
        return SystemParams(**defaults)

    def test_log_matches_counters(self):
        model = SimulationModel(self.params(), UNIFORM, "ts")
        result = model.run()
        assert len(model.query_log) == result.queries_answered
        hits = sum(r.hits for r in model.query_log.records)
        # Counter includes hits of the (single) in-flight query, if any.
        assert abs(hits - result.counter("cache.hits")) <= 1

    def test_latencies_positive_and_ordered(self):
        model = SimulationModel(self.params(), UNIFORM, "ts")
        model.run()
        for r in model.query_log.records:
            assert r.answered >= r.started
        times = [r.answered for r in model.query_log.records]
        assert times == sorted(times)

    def test_disabled_by_default(self):
        params = self.params(collect_query_log=False)
        model = SimulationModel(params, UNIFORM, "ts")
        model.run()
        assert model.query_log is None

    def test_connected_clients_fairer_than_sleepers(self):
        """Fairness degrades when some clients sleep long (per-client
        service diverges)."""
        stable = SimulationModel(
            self.params(disconnect_prob=0.0), UNIFORM, "ts"
        )
        stable.run()
        sleepy = SimulationModel(
            self.params(disconnect_prob=0.5, disconnect_time_mean=800.0),
            UNIFORM,
            "ts",
        )
        sleepy.run()
        assert stable.query_log.fairness() > sleepy.query_log.fairness()

    def test_latency_percentiles_in_snapshot(self):
        result = SimulationModel(self.params(), UNIFORM, "ts").run()
        assert result.raw["query.latency.p95"] >= result.raw["query.latency.p50"] > 0
