"""Tests for the dedicated invalidation-report channel (the paper's
"multiple-channel environment" future work)."""

import pytest

from repro.net import MessageKind
from repro.sim import SimulationModel, SystemParams, UNIFORM


def params(**kw):
    defaults = dict(
        simulation_time=2000.0,
        n_clients=10,
        db_size=20_000,      # big BS reports: the interesting regime
        buffer_fraction=0.01,
        disconnect_prob=0.1,
        disconnect_time_mean=300.0,
        seed=8,
    )
    defaults.update(kw)
    return SystemParams(**defaults)


class TestChannelSeparation:
    def test_reports_travel_on_the_dedicated_channel(self):
        model = SimulationModel(params(ir_channel_bps=4000.0), UNIFORM, "bs")
        on_ir, on_down = [], []
        model.ir_channel.attach(lambda msg, now: on_ir.append(msg.kind))
        model.downlink.attach(lambda msg, now: on_down.append(msg.kind))
        model.run()
        assert all(k is MessageKind.INVALIDATION_REPORT for k in on_ir)
        assert len(on_ir) > 50
        assert MessageKind.INVALIDATION_REPORT not in on_down

    def test_default_keeps_reports_on_downlink(self):
        model = SimulationModel(params(), UNIFORM, "bs")
        assert model.ir_channel is None
        kinds = []
        model.downlink.attach(lambda msg, now: kinds.append(msg.kind))
        model.run()
        assert MessageKind.INVALIDATION_REPORT in kinds

    def test_validation_of_channel_bandwidth(self):
        with pytest.raises(ValueError):
            SystemParams(ir_channel_bps=0.0)

    def test_equal_spectrum_split_conserves_throughput(self):
        """Spectrum conservation: splitting 10 kbps into 8 kbps data +
        2 kbps reports neither creates nor destroys capacity — the shared
        channel's data share already equals what the reports leave behind.
        (The split's real benefits are isolation: zero preemptions of data
        transfers, checked below.)"""
        shared_model = SimulationModel(
            params(simulation_time=6000.0, n_clients=40), UNIFORM, "bs"
        )
        shared = shared_model.run()
        split_model = SimulationModel(
            params(
                simulation_time=6000.0,
                n_clients=40,
                downlink_bps=8000.0,
                ir_channel_bps=2000.0,
            ),
            UNIFORM,
            "bs",
        )
        split = split_model.run()
        assert split.queries_answered == pytest.approx(
            shared.queries_answered, rel=0.05
        )
        # Isolation: data transfers are never preempted by reports.
        assert shared_model.downlink.stats.preemptions > 0
        assert split_model.downlink.stats.preemptions == 0

    def test_oversized_report_channel_wastes_spectrum(self):
        """Sizing matters: giving reports more than they need starves the
        data channel (BS at db=20000 needs ~2.1 kbps for reports)."""
        fair = SimulationModel(
            params(simulation_time=6000.0, n_clients=40,
                   downlink_bps=8000.0, ir_channel_bps=2000.0),
            UNIFORM, "bs",
        ).run()
        starved = SimulationModel(
            params(simulation_time=6000.0, n_clients=40,
                   downlink_bps=5000.0, ir_channel_bps=5000.0),
            UNIFORM, "bs",
        ).run()
        assert starved.queries_answered < fair.queries_answered

    def test_no_stale_hits_with_separate_channel(self):
        for scheme in ("bs", "aaw", "checking"):
            result = SimulationModel(
                params(ir_channel_bps=3000.0, update_interarrival_mean=40.0),
                UNIFORM,
                scheme,
            ).run()
            assert result.stale_hits == 0
