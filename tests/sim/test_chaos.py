"""End-to-end tests for endpoint chaos: crash–recovery epochs + oracle.

Four guarantees are pinned here:

1. **Zero-chaos equivalence** — ``chaos=None``, a null ``ChaosConfig``
   and an armed-but-never-triggered strict oracle are all *bit-identical*
   to the seed behaviour.
2. **Campaign safety** — a seeded campaign matrix (seeds x failure
   modes) runs under the strict oracle: zero stale reads served and the
   liveness ledger balances, for rotating schemes.
3. **Graceful degradation** — after a server restart, clients on the old
   epoch purge/revalidate rather than answer from cache, for *every*
   registered scheme; and the recovery protocol is load-bearing
   (suppressing both the epoch bump and the history floor makes the
   oracle convict; restoring the bump alone is safe again).
4. **Fail-fast uplink** — requests sent into a crashed server are shed,
   engaging the PR 1 retry path instead of queueing forever.
"""

import pytest

from repro.chaos import ChaosConfig, StalenessViolation
from repro.net import FaultConfig, Message, MessageKind, SERVER_ID
from repro.reports.window import WindowReport
from repro.schemes.registry import available_schemes
from repro.sim import UNIFORM, run_simulation
from repro.sim.model import SimulationModel

from .test_faults import BASE, RETRY, visible

#: Crash at 185 s, back at 195 s: shorter than one broadcast interval
#: (L=20), so no report tick is skipped — the subtlest outage shape,
#: where only the epoch/origin machinery separates safe from stale.
SHORT_OUTAGE = ChaosConfig(server_crashes_at=(185.0,), server_downtime=10.0)

#: Crash at 490 s for 130 s: several report ticks skipped, and the crash
#: lands mid-interval so requests already on the uplink lose their
#: pending (coalesced, unpublished) responses to the crash.
LONG_OUTAGE = ChaosConfig(server_crashes_at=(490.0,), server_downtime=130.0)


def chaos_params(**overrides):
    merged = dict(RETRY, strict_staleness=True)
    merged.update(overrides)
    return BASE.with_(**merged)


class TestZeroChaosEquivalence:
    """An inert chaos layer must not move a single bit."""

    @pytest.mark.parametrize("scheme", ["ts", "afw", "at"])
    def test_null_config_and_armed_oracle_are_bit_identical(self, scheme):
        baseline = run_simulation(BASE, UNIFORM, scheme)
        nulled = run_simulation(
            BASE.with_(chaos=ChaosConfig(), strict_staleness=True),
            UNIFORM,
            scheme,
        )
        assert visible(nulled.raw) == visible(baseline.raw)

    def test_oracle_keys_present_on_chaos_free_runs(self):
        result = run_simulation(BASE, UNIFORM, "ts")
        assert result.raw["oracle.liveness_ok"] == 1.0
        assert result.liveness_ok
        assert 0 <= result.raw["oracle.queries_pending"] <= BASE.n_clients


class TestChaosCampaign:
    """Seeds x failure modes under the strict oracle (acceptance matrix)."""

    MODES = {
        "server-crash": dict(server_crash_mtbf=400.0, server_downtime_mean=60.0),
        "client-crash": dict(client_crash_mtbf=600.0),
        "clock-skew": dict(clock_skew_max=8.0, clock_drift_max=0.05),
        "combined": dict(
            server_crash_mtbf=500.0,
            server_downtime_mean=50.0,
            client_crash_mtbf=800.0,
            clock_skew_max=8.0,
            clock_drift_max=0.05,
        ),
    }

    #: Fixed rotation (the run-time registry may hold test-registered
    #: schemes): every family faces every mode across the seed set.
    SCHEMES = ("aaw", "afw", "at", "bs", "checking", "gcore", "sig", "ts")

    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("mode", sorted(MODES))
    def test_campaign_cell_is_safe_and_live(self, seed, mode):
        schemes = self.SCHEMES
        scheme = schemes[(seed * len(self.MODES)
                          + sorted(self.MODES).index(mode)) % len(schemes)]
        params = chaos_params(chaos=ChaosConfig(seed=seed, **self.MODES[mode]))
        result = run_simulation(params, UNIFORM, scheme)
        assert result.stale_hits == 0, (seed, mode, scheme)
        assert result.liveness_ok, (seed, mode, scheme)
        assert result.oracle_verdict == "SAFE", (seed, mode, scheme)
        if mode in ("server-crash", "combined"):
            assert result.server_crashes > 0, (seed, mode, scheme)
        if mode in ("client-crash", "combined"):
            assert result.counter("chaos.client_crashes") > 0, (seed, mode)

    @pytest.mark.parametrize("chaos", [SHORT_OUTAGE, LONG_OUTAGE],
                             ids=["short-outage", "long-outage"])
    def test_campaign_is_reproducible(self, chaos):
        params = chaos_params(chaos=chaos)
        a = run_simulation(params, UNIFORM, "aaw")
        b = run_simulation(params, UNIFORM, "aaw")
        assert a.raw == b.raw


class TestEpochDifferential:
    """After a restart, old-epoch clients purge instead of answering."""

    @pytest.mark.parametrize("scheme", available_schemes())
    def test_every_scheme_purges_on_epoch_change(self, scheme):
        # disconnect_prob=0 keeps every client listening, so the first
        # post-restart report must purge all of them.
        params = chaos_params(
            chaos=SHORT_OUTAGE, disconnect_prob=0.0, update_interarrival_mean=15.0
        )
        result = run_simulation(params, UNIFORM, scheme)
        assert result.server_crashes == 1, scheme
        assert result.counter("chaos.server_restarts") == 1, scheme
        assert result.epoch_purges == BASE.n_clients, scheme
        # The purge is a full revalidation: every client dropped its cache.
        assert result.counter("cache.full_drops") >= BASE.n_clients, scheme
        # And nothing stale was ever served (strict oracle ran throughout).
        assert result.stale_hits == 0, scheme
        assert result.liveness_ok, scheme

    #: A hot little cell where amnesia about the outage cannot hide:
    #: high update rate, a cache big enough to hold stale survivors and a
    #: query rate fast enough to hit them.
    HOT_CELL = dict(
        db_size=50,
        buffer_fraction=0.4,
        think_time_mean=5.0,
        update_interarrival_mean=2.0,
        disconnect_prob=0.0,
    )

    def _model_with_unsafe_restart(self, *, bump_epoch):
        """A model whose restart forgets the recovery protocol.

        ``db.origin_time`` is forced back down after every restart, so
        window reports once again claim full coverage of history the
        incarnation never saw; optionally the epoch bump is suppressed
        too (the pre-PR behaviour).
        """
        params = chaos_params(chaos=SHORT_OUTAGE, **self.HOT_CELL)
        model = SimulationModel(params, UNIFORM, "ts")
        server = model.server
        original_restart = server.restart

        def hobbled_restart(now, policy):
            original_restart(now, policy)
            # Lie: "my window spans the crash" (the pre-PR floor).
            model.db.origin_time = float("-inf")
            if not bump_epoch:
                server.epoch = 0  # lie harder: "nothing ever happened"

        server.restart = hobbled_restart
        return model

    def test_recovery_protocol_is_load_bearing(self):
        """Suppress epoch bump + history floor and the oracle convicts.

        A sub-interval outage skips no report tick, so an old client
        stays *covered* by the first post-restart report — which knows
        nothing of the updates wiped by the restart.  Without the epoch
        bump (and with the origin floor lie) the client keeps answering
        from entries the ground-truth update log proves stale.
        """
        model = self._model_with_unsafe_restart(bump_epoch=False)
        with pytest.raises(StalenessViolation) as exc_info:
            model.run()
        violation = exc_info.value
        assert violation.update_times  # ground truth convicts
        assert violation.now > SHORT_OUTAGE.server_crashes_at[0]

    def test_epoch_bump_alone_restores_safety(self):
        # Same hobbled restart (origin floor still lies), but the epoch
        # bump survives: clients purge at the first post-restart report
        # and the very same scenario ends with zero stale answers.
        model = self._model_with_unsafe_restart(bump_epoch=True)
        result = model.run()
        assert result.stale_hits == 0
        assert result.epoch_purges >= BASE.n_clients
        assert result.liveness_ok

    def test_timeline_regression_triggers_purge_without_epoch_change(self):
        """Belt-and-braces: an IR older than the last applied one purges
        even when the epoch looks unchanged."""
        model = SimulationModel(BASE.with_(**RETRY), UNIFORM, "ts")
        model.env.run(until=300.0)
        client = next(
            c for c in model.clients if c._last_report_applied is not None
        )
        applied = client._last_report_applied
        assert applied > 0.0
        stale_report = WindowReport(
            timestamp=applied - model.params.broadcast_interval,
            window_start=0.0,
            items={},
            n_items=model.params.db_size,
        )
        stale_report.epoch = 0  # same epoch: only the regression trips
        before = model.metrics.counter("chaos.epoch_purges").value
        client._on_downlink(
            Message(
                kind=MessageKind.INVALIDATION_REPORT,
                size_bits=stale_report.size_bits,
                src=SERVER_ID,
                dest=-1,
                payload=stale_report,
            ),
            model.env.now,
        )
        assert model.metrics.counter("chaos.epoch_purges").value == before + 1
        assert len(client.cache) == 0


class TestCrashedServerShedsUplink:
    """Requests into a dead server engage the retry path, not a queue."""

    def test_uplink_shed_and_retries_engage(self):
        # Every uplink send in this protocol reacts to a downlink event
        # (queries wait for the next IR), so a silent server mostly means
        # silent clients too.  The traffic that *does* hit a dead server
        # is timer-driven: retries of exchanges the wireless layer lost.
        # Combine the PR 1 fault injection with a long outage and a short
        # timeout so those retry timers fire inside the crash window.
        params = chaos_params(
            chaos=LONG_OUTAGE,
            downlink_faults=FaultConfig(drop_prob=0.2),
            uplink_faults=FaultConfig(drop_prob=0.2),
            buffer_fraction=0.01,
            think_time_mean=10.0,
            disconnect_prob=0.0,
            uplink_timeout=25.0,
        )
        result = run_simulation(params, UNIFORM, "ts")
        assert result.counter("server.uplink_shed_crashed") > 0
        assert result.counter("client.fetch_timeouts") > 0
        assert result.retries > 0
        # ... and the cell still ends safe and live.
        assert result.stale_hits == 0
        assert result.liveness_ok

    def test_client_crash_keeps_liveness_without_retry_layer(self):
        # Client crashes alone don't require the retry layer: the query
        # loop survives the reboot and the ledger still balances.
        params = BASE.with_(
            strict_staleness=True,
            chaos=ChaosConfig(seed=4, client_crash_mtbf=300.0),
        )
        result = run_simulation(params, UNIFORM, "aaw")
        assert result.counter("chaos.client_crashes") > 0
        assert result.stale_hits == 0
        assert result.liveness_ok
