"""End-to-end model behaviour: determinism, accounting, scheme mechanisms."""

import pytest

from repro.sim import (
    HOTCOLD,
    UNIFORM,
    SimulationModel,
    SystemParams,
    run_replications,
    run_schemes,
    run_simulation,
)
from repro.sim.metrics import (
    CACHE_HITS,
    CACHE_MISSES,
    CHECKS_SENT,
    DOWNLINK_DATA_BITS,
    TLB_UPLOADS,
    UPLINK_VALIDATION_BITS,
)


def params(**kw):
    defaults = dict(
        simulation_time=4000.0,
        n_clients=10,
        db_size=500,
        buffer_fraction=0.1,
        disconnect_prob=0.2,
        disconnect_time_mean=400.0,
        seed=7,
    )
    defaults.update(kw)
    return SystemParams(**defaults)


class TestDeterminism:
    def test_same_seed_identical_results(self):
        a = run_simulation(params(), UNIFORM, "aaw")
        b = run_simulation(params(), UNIFORM, "aaw")
        assert a.raw == b.raw

    def test_different_seed_differs(self):
        a = run_simulation(params(seed=1), UNIFORM, "aaw")
        b = run_simulation(params(seed=2), UNIFORM, "aaw")
        assert a.raw != b.raw

    def test_replications_use_distinct_seeds(self):
        results = run_replications(params(), UNIFORM, "ts", seeds=[1, 2, 3])
        answered = {r.queries_answered for r in results}
        assert len(results) == 3
        assert len(answered) > 1

    def test_common_random_numbers_across_schemes(self):
        """Same seed => same think/disconnect draws: generated queries are
        close across schemes (they differ only via latency feedback)."""
        res = run_schemes(params(), UNIFORM, ["ts", "bs"])
        gen = [r.counter("queries.generated") for r in res.values()]
        assert abs(gen[0] - gen[1]) / max(gen) < 0.2


class TestAccounting:
    def test_data_bits_match_misses_net_of_coalescing(self):
        result = run_simulation(params(), UNIFORM, "ts")
        misses = result.counter(CACHE_MISSES)
        coalesced = result.counter("data.coalesced")
        sent = result.counter(DOWNLINK_DATA_BITS) / 65536.0
        # Items sent = misses - coalesced, modulo the handful still queued
        # at the horizon.
        assert sent == pytest.approx(misses - coalesced, abs=10)

    def test_hits_plus_misses_equals_items(self):
        result = run_simulation(params(), UNIFORM, "aaw")
        served = result.counter("queries.items_served")
        accessed = result.counter(CACHE_HITS) + result.counter(CACHE_MISSES)
        # Misses are counted when the fetch starts, items_served when it
        # completes: fetches in flight at the horizon explain the slack
        # (at most one per client).
        assert served <= accessed <= served + 10

    def test_bs_has_zero_validation_uplink(self):
        result = run_simulation(params(), UNIFORM, "bs")
        assert result.counter(UPLINK_VALIDATION_BITS) == 0

    def test_summary_keys(self):
        s = run_simulation(params(), UNIFORM, "aaw").summary()
        assert set(s) == {
            "queries_answered",
            "throughput_per_s",
            "uplink_bits_per_query",
            "hit_ratio",
            "mean_latency_s",
            "stale_hits",
            "cache_drops",
            "downlink_ir_share",
        }


class TestSchemeMechanisms:
    def test_adaptive_sends_tlb_on_long_gaps(self):
        result = run_simulation(params(), UNIFORM, "afw")
        assert result.counter(TLB_UPLOADS) > 0

    def test_adaptive_server_responds_with_special_reports(self):
        result = run_simulation(params(), UNIFORM, "afw")
        assert result.counter("reports.bs") > 0
        result = run_simulation(params(), UNIFORM, "aaw")
        assert (
            result.counter("reports.window+") + result.counter("reports.bs")
        ) > 0

    def test_aaw_prefers_enlarged_windows_under_light_updates(self):
        result = run_simulation(
            params(update_interarrival_mean=400.0, db_size=5000),
            UNIFORM,
            "aaw",
        )
        assert result.counter("reports.window+") > result.counter("reports.bs")

    def test_checking_sends_uploads(self):
        result = run_simulation(params(), UNIFORM, "checking")
        assert result.counter(CHECKS_SENT) > 0
        assert result.counter(UPLINK_VALIDATION_BITS) > 0

    def test_adaptive_uplink_cheaper_than_checking(self):
        """The paper's headline: adaptive validation costs a few bits per
        query; checking costs orders of magnitude more."""
        res = run_schemes(
            params(simulation_time=8000.0, db_size=2000), UNIFORM,
            ["aaw", "afw", "checking"],
        )
        checking = res["checking"].uplink_cost_per_query
        assert res["aaw"].uplink_cost_per_query < checking / 5
        assert res["afw"].uplink_cost_per_query < checking / 5

    def test_bs_ir_share_grows_with_database(self):
        """Figure 5's mechanism at the accounting level."""
        small = run_simulation(params(db_size=1000), UNIFORM, "bs")
        large = run_simulation(params(db_size=20000), UNIFORM, "bs")
        assert large.downlink_ir_share > small.downlink_ir_share * 2

    def test_hotcold_beats_uniform_hit_ratio(self):
        uni = run_simulation(
            params(db_size=2000, simulation_time=8000.0), UNIFORM, "ts"
        )
        hot = run_simulation(
            params(db_size=2000, simulation_time=8000.0), HOTCOLD, "ts"
        )
        assert hot.hit_ratio > uni.hit_ratio * 2


class TestRunnerAPI:
    def test_workload_by_string(self):
        result = run_simulation(params(), "hotcold", "ts")
        assert result.workload == "HOTCOLD"

    def test_scheme_object(self):
        from repro.schemes import AAW_SCHEME

        result = run_simulation(params(), UNIFORM, AAW_SCHEME)
        assert result.scheme == "aaw"
