"""The library's central invariant: **no stale hits, ever**.

A query answered from cache must never return an item the client should
have known was updated (as of the last report it processed).  The
simulator checks every cache hit against the independent ground-truth
update log; here we drive every scheme through randomized regimes —
aggressive updates, long disconnections, tiny caches, narrow uplinks —
and assert the violation counter stays at zero.

SIG is included: its only unsoundness channel is a 2^-32 signature
collision, which these seeds do not hit.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.schemes import available_schemes
from repro.sim import HOTCOLD, UNIFORM, SimulationModel, SystemParams
from repro.sim.metrics import CACHE_HITS, STALE_HITS

ALL_SCHEMES = sorted(available_schemes())


def run(scheme, workload, **kw):
    defaults = dict(
        simulation_time=3000.0,
        n_clients=6,
        db_size=40,
        buffer_fraction=0.5,
        update_interarrival_mean=60.0,
        think_time_mean=40.0,
        disconnect_prob=0.3,
        disconnect_time_mean=300.0,
        seed=11,
    )
    defaults.update(kw)
    return SimulationModel(SystemParams(**defaults), workload, scheme).run()


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_no_stale_hits_with_churn_and_disconnections(scheme):
    result = run(scheme, UNIFORM)
    assert result.counter(STALE_HITS) == 0
    assert result.counter(CACHE_HITS) > 0, "config too cold to test anything"


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_no_stale_hits_hotcold(scheme):
    result = run(
        scheme,
        HOTCOLD,
        db_size=400,
        buffer_fraction=0.3,
        update_interarrival_mean=30.0,
    )
    assert result.counter(STALE_HITS) == 0
    if scheme != "sig":
        # SIG's false-positive collateral can legitimately empty the cache
        # under this violent update rate; the exact schemes must still hit.
        assert result.counter(CACHE_HITS) > 0


@pytest.mark.parametrize("scheme", ["aaw", "afw", "checking", "bs"])
def test_no_stale_hits_with_narrow_uplink(scheme):
    result = run(scheme, UNIFORM, uplink_bps=300.0)
    assert result.counter(STALE_HITS) == 0


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_no_stale_hits_with_violent_update_rate(scheme):
    result = run(
        scheme,
        UNIFORM,
        update_interarrival_mean=10.0,
        items_per_update_mean=8.0,
        disconnect_prob=0.5,
        disconnect_time_mean=150.0,
    )
    assert result.counter(STALE_HITS) == 0


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    scheme=st.sampled_from(ALL_SCHEMES),
    seed=st.integers(min_value=0, max_value=10_000),
    update_mean=st.floats(min_value=15.0, max_value=400.0),
    disc_prob=st.floats(min_value=0.0, max_value=0.8),
    disc_mean=st.floats(min_value=50.0, max_value=1500.0),
    db_size=st.integers(min_value=8, max_value=120),
)
def test_property_no_scheme_ever_serves_stale_data(
    scheme, seed, update_mean, disc_prob, disc_mean, db_size
):
    result = run(
        scheme,
        UNIFORM,
        simulation_time=1500.0,
        n_clients=4,
        db_size=db_size,
        seed=seed,
        update_interarrival_mean=update_mean,
        disconnect_prob=disc_prob,
        disconnect_time_mean=disc_mean,
    )
    assert result.counter(STALE_HITS) == 0
