"""Tests for client radio energy accounting."""

import pytest

from repro.sim import SimulationModel, SystemParams, UNIFORM
from repro.sim.energy import ENERGY_RX, ENERGY_TX, EnergyModel, energy_per_query_nj


def params(**kw):
    defaults = dict(
        simulation_time=3000.0,
        n_clients=8,
        db_size=400,
        buffer_fraction=0.1,
        disconnect_prob=0.2,
        disconnect_time_mean=400.0,
        seed=6,
    )
    defaults.update(kw)
    return SystemParams(**defaults)


class TestEnergyModel:
    def test_defaults_make_tx_expensive(self):
        e = EnergyModel()
        assert e.tx(1) > 10 * e.rx(1)

    def test_cost_helpers(self):
        e = EnergyModel(tx_nj_per_bit=2.0, rx_nj_per_bit=0.5)
        assert e.tx(100) == 200.0
        assert e.rx(100) == 50.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            EnergyModel(tx_nj_per_bit=-1.0)


class TestEnergyAccounting:
    def test_tx_energy_matches_uplink_bits(self):
        result = SimulationModel(params(), UNIFORM, "checking").run()
        uplink_bits = result.counter("uplink.validation_bits") + result.counter(
            "uplink.request_bits"
        )
        assert result.counter(ENERGY_TX) == pytest.approx(
            uplink_bits * EnergyModel().tx_nj_per_bit
        )

    def test_rx_energy_positive_from_report_listening(self):
        result = SimulationModel(params(), UNIFORM, "ts").run()
        assert result.counter(ENERGY_RX) > 0

    def test_bs_shifts_energy_from_tx_to_rx(self):
        """The paper's packet/power trade, in joules: BS never transmits
        validation traffic but makes every client receive ~2N-bit reports;
        checking does the opposite."""
        bs = SimulationModel(params(db_size=20_000), UNIFORM, "bs").run()
        chk = SimulationModel(params(db_size=20_000), UNIFORM, "checking").run()
        assert bs.counter(ENERGY_RX) > chk.counter(ENERGY_RX)
        assert bs.counter(ENERGY_TX) < chk.counter(ENERGY_TX)

    def test_adaptive_validation_energy_below_checking(self):
        """Isolate validation energy (fetch requests cost all schemes the
        same per miss): AAW's Tlb uploads are ~100x lighter than checking's
        cache uploads."""
        aaw = SimulationModel(params(), UNIFORM, "aaw").run()
        chk = SimulationModel(params(), UNIFORM, "checking").run()
        e = EnergyModel().tx_nj_per_bit
        aaw_validation = aaw.counter("uplink.validation_bits") * e
        chk_validation = chk.counter("uplink.validation_bits") * e
        assert aaw_validation < chk_validation / 10

    def test_energy_per_query_helper(self):
        result = SimulationModel(params(), UNIFORM, "aaw").run()
        expected = (
            result.counter(ENERGY_TX) + result.counter(ENERGY_RX)
        ) / result.queries_answered
        assert energy_per_query_nj(result) == pytest.approx(expected)

    def test_custom_energy_model_scales_linearly(self):
        cheap = SimulationModel(
            params(energy=EnergyModel(tx_nj_per_bit=1.0, rx_nj_per_bit=1.0)),
            UNIFORM,
            "aaw",
        ).run()
        costly = SimulationModel(
            params(energy=EnergyModel(tx_nj_per_bit=10.0, rx_nj_per_bit=10.0)),
            UNIFORM,
            "aaw",
        ).run()
        assert costly.counter(ENERGY_TX) == pytest.approx(
            10 * cheap.counter(ENERGY_TX)
        )
        assert costly.counter(ENERGY_RX) == pytest.approx(
            10 * cheap.counter(ENERGY_RX)
        )
