"""Tests for SimulationResult derived metrics and finalize()."""

import pytest

from repro.des.monitor import MetricSet
from repro.sim import SimulationResult, finalize
from repro.sim import metrics as m


def result_with(**counters):
    raw = dict(counters)
    return SimulationResult(scheme="x", workload="UNIFORM", sim_time=100.0, raw=raw)


class TestDerivedMetrics:
    def test_uplink_cost_zero_when_no_queries(self):
        r = result_with(**{m.UPLINK_VALIDATION_BITS: 500.0})
        assert r.uplink_cost_per_query == 0.0

    def test_uplink_cost_per_query(self):
        r = result_with(
            **{m.QUERIES_ANSWERED: 10.0, m.UPLINK_VALIDATION_BITS: 500.0}
        )
        assert r.uplink_cost_per_query == 50.0

    def test_hit_ratio_empty(self):
        assert result_with().hit_ratio == 0.0

    def test_hit_ratio(self):
        r = result_with(**{m.CACHE_HITS: 30.0, m.CACHE_MISSES: 10.0})
        assert r.hit_ratio == pytest.approx(0.75)

    def test_throughput_per_second(self):
        r = result_with(**{m.QUERIES_ANSWERED: 250.0})
        assert r.throughput_per_second == pytest.approx(2.5)

    def test_ir_share(self):
        r = result_with(
            **{
                m.DOWNLINK_IR_BITS: 100.0,
                m.DOWNLINK_DATA_BITS: 300.0,
                m.DOWNLINK_VALIDITY_BITS: 0.0,
            }
        )
        assert r.downlink_ir_share == pytest.approx(0.25)

    def test_ir_share_empty(self):
        assert result_with().downlink_ir_share == 0.0

    def test_counter_default(self):
        assert result_with().counter("never.touched") == 0.0

    def test_mean_latency_default(self):
        assert result_with().mean_query_latency == 0.0


class TestFinalize:
    def test_snapshot_includes_all_collectors(self):
        ms = MetricSet()
        ms.counter(m.QUERIES_ANSWERED).add(5)
        ms.tally(m.QUERY_LATENCY).observe(2.0)
        result = finalize(ms, scheme="aaw", workload="HOTCOLD", sim_time=50.0, now=50.0)
        assert result.scheme == "aaw"
        assert result.workload == "HOTCOLD"
        assert result.queries_answered == 5.0
        assert result.mean_query_latency == 2.0

    def test_summary_is_pure_floats(self):
        ms = MetricSet()
        result = finalize(ms, "ts", "UNIFORM", 10.0, 10.0)
        assert all(isinstance(v, float) for v in result.summary().values())
