"""Differential equivalence campaign for population aggregation.

The pool (repro.sim.population) replaces the long-dozing tail with
counts-per-stratum; the claim is that at a size where both models run,
the aggregated cell is *statistically indistinguishable* from the exact
cell on every scored metric.  This campaign pins that claim: a
100-client cell, 3 seeds x all 8 schemes, exact vs aggregated, under the
``strict_staleness`` safety oracle (any provably-stale answer raises
inside the run) and the liveness ledger.

What is exact vs tolerance-level, and why
-----------------------------------------
A pooled member's per-client RNG streams resume exactly where the
absorbed actor left them, and its seeded wake occupies the same (time,
priority) heap slot its doze sleep would have — so divergence comes only
from (a) the reconstructed cache being a fresh stratum-consistent draw
rather than the literal cache, and (b) re-attachment moving the client
to the end of the broadcast delivery order.  Both perturb *which* items
miss and *when* salvage fires, not the protocol: throughput and uplink
cost shift by O(pool churn / population), which the tolerances below
bound.  The adaptive schemes' salvage traffic (AFW especially) is the
most sensitive — a promoted client's conservative ``Tlb`` can turn a
window-hit into an uplink round-trip — hence the looser uplink bound.

Aggregation *off* is not tested here: tests/sim/test_golden.py pins that
configuration bit-identical to the seed for all 8 schemes.
"""

import pytest

from repro.sim import AggregationConfig, SystemParams, run_simulation
from repro.sim.workload import HOTCOLD, UNIFORM

SCHEMES = ("ts", "at", "bs", "sig", "checking", "gcore", "afw", "aaw")
SEEDS = (1, 2, 3)

#: Calibrated against the observed worst case per metric (AFW uplink
#: deviates 13.8% at seed 2; every throughput deviation is < 2%), with
#: headroom so seed-level noise never flakes CI.
THROUGHPUT_RTOL = 0.05
UPLINK_RTOL = 0.20

BASE = dict(
    simulation_time=6000.0,
    n_clients=100,
    db_size=500,
    buffer_fraction=0.05,
    think_time_mean=60.0,
    update_interarrival_mean=80.0,
    disconnect_prob=0.3,
    disconnect_time_mean=600.0,
    # The safety oracle is armed for every run in the campaign: a stale
    # answer in either model aborts the test with a conviction trace.
    track_staleness=True,
    strict_staleness=True,
)

AGGREGATION = AggregationConfig(k_exact=10, min_doze_intervals=2.0)


def _pair(scheme, seed, workload):
    exact = run_simulation(SystemParams(**BASE, seed=seed), workload, scheme)
    aggregated = run_simulation(
        SystemParams(**BASE, seed=seed, aggregation=AGGREGATION),
        workload,
        scheme,
    )
    return exact, aggregated


def _assert_equivalent(exact, aggregated):
    # Liveness must balance in both models: every generated query is
    # answered or attributable to a client down/pooled at the horizon.
    assert exact.raw["oracle.liveness_ok"] == 1.0
    assert aggregated.raw["oracle.liveness_ok"] == 1.0
    # Strict oracle ran clean (we got here), so both stale counts are 0
    # by construction — assert it anyway so a future softening of the
    # oracle cannot silently weaken this campaign.
    assert exact.counter("cache.stale_hits") == 0
    assert aggregated.counter("cache.stale_hits") == 0
    assert aggregated.throughput_per_second == pytest.approx(
        exact.throughput_per_second, rel=THROUGHPUT_RTOL
    )
    assert aggregated.uplink_cost_per_query == pytest.approx(
        exact.uplink_cost_per_query, rel=UPLINK_RTOL
    )


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("scheme", SCHEMES)
def test_aggregated_matches_exact_uniform(scheme, seed):
    exact, aggregated = _pair(scheme, seed, UNIFORM)
    _assert_equivalent(exact, aggregated)
    # The campaign is vacuous unless the pool actually cycled members.
    assert aggregated.counter("pool.absorbed") > 0
    assert aggregated.counter("pool.promoted") > 0
    # Conservation at the horizon: every client is live or pooled.
    assert (
        aggregated.raw["clients.live_at_horizon"]
        + aggregated.raw["pool.residents_at_horizon"]
        == BASE["n_clients"]
    )


@pytest.mark.parametrize("scheme", ("ts", "aaw"))
def test_aggregated_matches_exact_hotcold(scheme):
    """Skewed access: the stratum signature (hot/cold split) must carry
    enough of the cache for HOTCOLD hit ratios to survive aggregation."""
    exact, aggregated = _pair(scheme, seed=2, workload=HOTCOLD)
    _assert_equivalent(exact, aggregated)
    # Hit ratios sit at 0.04-0.15 here, so per-seed noise is large in
    # relative terms but tiny in absolute ones; bound both ways.
    assert aggregated.hit_ratio == pytest.approx(
        exact.hit_ratio, rel=0.25, abs=0.03
    )


def test_k_exact_clients_never_pooled():
    """The K "interesting" clients stay full-fidelity for the whole run:
    pinning k_exact = n_clients leaves the pool untouched."""
    result = run_simulation(
        SystemParams(
            **BASE,
            seed=1,
            aggregation=AggregationConfig(k_exact=BASE["n_clients"]),
        ),
        UNIFORM,
        "ts",
    )
    assert result.counter("pool.absorbed") == 0
    assert result.counter("pool.promoted") == 0
    assert result.raw["pool.residents_at_horizon"] == 0.0
