"""Differential tests: schemes that should be indistinguishable, are.

With common random numbers (named streams) and **no disconnections**,
every window-based scheme broadcasts the same reports and applies the
same invalidations, so entire runs must agree metric-for-metric.  Any
divergence exposes hidden nondeterminism or a scheme touching state it
should not.

The second half differentially tests the **loss-adaptive window** layer
against the fixed window on identical lossy broadcast traces: widening
must only ever *add* serveable state (a client fixed-w can answer from
cache, adaptive-w can too), and neither side may ever certify a stale
entry — the same consistency oracle `test_consistency.py` applies to
full runs, here checked cache-entry by cache-entry against the ground-
truth database.
"""

import random
from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import CacheEntry, ClientCache
from repro.db import Database
from repro.net import FaultConfig
from repro.schemes import (
    AAWServerPolicy,
    AFWServerPolicy,
    AdaptiveClientPolicy,
    LossAdaptationConfig,
    LossAdaptiveController,
)
from repro.schemes.base import ClientOutcome
from repro.sim import HOTCOLD, UNIFORM, SystemParams, run_simulation

WINDOW_SCHEMES = ("ts", "checking", "afw", "aaw", "gcore")


def params(**kw):
    defaults = dict(
        simulation_time=4000.0,
        n_clients=12,
        db_size=500,
        buffer_fraction=0.1,
        disconnect_prob=0.0,   # the key: nobody ever needs salvage
        update_interarrival_mean=50.0,
        seed=31,
    )
    defaults.update(kw)
    return SystemParams(**defaults)


def comparable(raw):
    """The metrics that must agree (drop scheme-private counters)."""
    keys = [
        "queries.generated",
        "queries.answered",
        "cache.hits",
        "cache.misses",
        "downlink.data_bits",
        "uplink.request_bits",
        "query.latency.mean",
    ]
    return {k: raw.get(k, 0.0) for k in keys}


class TestWindowSchemesCoincide:
    @pytest.mark.parametrize("workload", [UNIFORM, HOTCOLD])
    def test_identical_runs_without_disconnections(self, workload):
        baseline = None
        for scheme in WINDOW_SCHEMES:
            result = run_simulation(params(), workload, scheme)
            snapshot = comparable(result.raw)
            if baseline is None:
                baseline = (scheme, snapshot)
            else:
                assert snapshot == baseline[1], (
                    f"{scheme} diverged from {baseline[0]}"
                )

    def test_no_validation_traffic_without_disconnections(self):
        for scheme in WINDOW_SCHEMES:
            result = run_simulation(params(), UNIFORM, scheme)
            assert result.counter("uplink.validation_bits") == 0.0, scheme
            assert result.counter("cache.full_drops") == 0.0, scheme

    def test_bs_differs_only_via_report_size(self):
        """BS applies equivalent invalidations but its big reports steal
        downlink time, so data-path metrics may shift while correctness
        metrics (hits from the same query streams) stay close."""
        ts = run_simulation(params(), UNIFORM, "ts")
        bs = run_simulation(params(), UNIFORM, "bs")
        assert bs.counter("uplink.validation_bits") == 0.0
        # Same offered stream; answered counts within a few percent at
        # this tiny report size (db=500 -> ~1 kbit reports).
        assert bs.queries_answered == pytest.approx(
            ts.queries_answered, rel=0.05
        )

    def test_divergence_appears_once_disconnections_start(self):
        """Sanity check of the test itself: with sleepers, the schemes
        genuinely differ."""
        snapshots = {
            scheme: comparable(
                run_simulation(
                    params(disconnect_prob=0.3, disconnect_time_mean=400.0),
                    UNIFORM,
                    scheme,
                ).raw
            )
            for scheme in ("ts", "checking", "aaw")
        }
        assert snapshots["ts"] != snapshots["checking"]
        assert snapshots["checking"] != snapshots["aaw"]


# ---------------------------------------------------------------------------
# Differential under loss: fixed window vs loss-adaptive window on the
# SAME broadcast trace.
#
# Closed-loop full simulations cannot express the superset property
# cleanly (a widened report changes queueing, which changes which
# queries even exist), so this harness replays a *scripted* trace at
# the policy layer: one shared database update history and, per client,
# one doze schedule and one per-interval report-loss mask — and runs
# the identical trace through two worlds that differ only in the window
# the server uses.  Everything a client could answer from cache in the
# fixed world, it can also answer in the adaptive world.
#
# Each client gets its own server pair (one cell per client).  That is
# deliberate: with several clients sharing a server, a BS rescue asked
# for by client A also salvages bystanders, so a *narrower* window can
# accidentally help a client that the wide window covered directly —
# monotonicity in the window span is a per-client property, and the
# cross-client rescue channel is a confound this harness controls for.
# ---------------------------------------------------------------------------

INTERVAL = 20.0
W = 3               # fixed window, in intervals
W_MAX = 12
N_INTERVALS = 30
N_CLIENTS = 6
DB_SIZE = 48
PREFILL = 16        # items 0..15 cached by everyone at t=0

SERVERS = {"afw": AFWServerPolicy, "aaw": AAWServerPolicy}


def scheme_params():
    return SystemParams(
        simulation_time=float(N_INTERVALS) * INTERVAL,
        n_clients=N_CLIENTS,
        db_size=DB_SIZE,
        buffer_fraction=PREFILL / DB_SIZE,
        window_intervals=W,
        broadcast_interval=INTERVAL,
        seed=0,
    )


def build_trace(seed, loss_rate):
    """One shared script: updates per interval and, per client, whether
    each broadcast was heard, lost on the air, or slept through."""
    rng = random.Random(seed)
    updates = [
        [rng.randrange(DB_SIZE) for _ in range(rng.randint(0, 3))]
        for _ in range(N_INTERVALS)
    ]
    status = []
    awake = [True] * N_CLIENTS
    for _ in range(N_INTERVALS):
        row = []
        for c in range(N_CLIENTS):
            # Sticky doze episodes so gaps regularly exceed w (and
            # sometimes w_max): P(doze)=0.2, P(wake)=0.35.
            if awake[c]:
                awake[c] = rng.random() >= 0.2
            else:
                awake[c] = rng.random() < 0.35
            if not awake[c]:
                row.append("doze")
            elif rng.random() < loss_rate:
                row.append("lost")
            else:
                row.append("heard")
        status.append(row)
    return updates, status


class ScriptedCtx:
    """Minimal duck-typed client context (see tests/schemes/conftest)."""

    def __init__(self, capacity):
        self.cache = ClientCache(capacity)
        self.tlb = 0.0
        self.sent_tlbs = []
        self.drops = 0

    def send_tlb(self, tlb):
        self.sent_tlbs.append(tlb)

    def note_cache_drop(self):
        self.drops += 1


class ScriptedWorld:
    """One (scheme, window-mode) single-client replay of a trace."""

    def __init__(self, scheme, db, adaptive, config=None):
        params = scheme_params()
        self.db = db
        self.server = SERVERS[scheme](params, db)
        self.controller = (
            LossAdaptiveController(
                config or LossAdaptationConfig(w_max=W_MAX),
                window_intervals=W,
                broadcast_interval=INTERVAL,
                expected_listeners=1,
            )
            if adaptive
            else None
        )
        self.ctx = ScriptedCtx(capacity=PREFILL)
        for item in range(PREFILL):
            self.ctx.cache.insert(CacheEntry(item=item, version=0, ts=0.0))
        self.policy = AdaptiveClientPolicy(params, 0)
        self.outcome = None
        self.last_heard = None  # interval index; None after a doze
        self.uploads_fed = 0

    def run_interval(self, index, now, status):
        """Advance one broadcast period; return the servable item set."""
        if self.controller is not None:
            self.controller.tick()
            span = self.controller.effective_window_seconds
            assert W * INTERVAL <= span <= W_MAX * INTERVAL
            server_ctx = SimpleNamespace(effective_window_seconds=span)
        else:
            server_ctx = SimpleNamespace()
        report = self.server.build_report(server_ctx, now)

        if status == "doze":
            self.last_heard = None
            self.outcome = None
            return set()
        if status == "heard":
            if self.last_heard is None and self.outcome is None:
                self.policy.on_reconnect(self.ctx, now)
            elif self.last_heard is not None:
                missed = index - self.last_heard - 1
                if missed > 0 and self.controller is not None:
                    self.controller.observe_nack(missed)
            self.last_heard = index
            self.outcome = self.policy.on_report(self.ctx, report)
            # Relay any new Tlb upload to this world's server.
            for tlb in self.ctx.sent_tlbs[self.uploads_fed:]:
                self.server.on_tlb(None, 0, tlb, now)
                if self.controller is not None:
                    self.controller.observe_salvage()
            self.uploads_fed = len(self.ctx.sent_tlbs)
            if self.outcome is ClientOutcome.READY:
                # Consistency oracle: with no fetches in the script, a
                # certified entry is fresh iff its version matches the
                # database *right now* (every update predates the report
                # this client just consumed).
                for entry in self.ctx.cache.entries():
                    assert entry.version == int(self.db.version[entry.item])
        # "lost": state unchanged — but the client did not hear this
        # interval's report, so (paper semantics) it cannot answer
        # queries until the next one it does hear.
        if status == "heard" and self.outcome is ClientOutcome.READY:
            return set(self.ctx.cache.item_ids())
        return set()


@pytest.mark.parametrize("scheme", sorted(SERVERS))
@settings(max_examples=20)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    loss=st.floats(min_value=0.0, max_value=0.6),
)
def test_adaptive_window_serves_a_superset_under_loss(scheme, seed, loss):
    """On any shared lossy trace, every item a fixed-w client can serve
    from cache, the adaptive-w client can too — and neither world's
    oracle ever sees a stale certified entry."""
    updates, status = build_trace(seed, loss)
    db = Database(DB_SIZE)
    fixed = [ScriptedWorld(scheme, db, adaptive=False) for _ in range(N_CLIENTS)]
    adaptive = [ScriptedWorld(scheme, db, adaptive=True) for _ in range(N_CLIENTS)]
    for i in range(N_INTERVALS):
        now = (i + 1) * INTERVAL
        for item in updates[i]:
            db.apply_update(item, now - INTERVAL / 2)
        for cid in range(N_CLIENTS):
            servable_fixed = fixed[cid].run_interval(i, now, status[i][cid])
            servable_adaptive = adaptive[cid].run_interval(i, now, status[i][cid])
            assert servable_fixed <= servable_adaptive, (
                f"interval {i}, client {cid}: fixed-w serves "
                f"{sorted(servable_fixed - servable_adaptive)} "
                f"that adaptive-w cannot"
            )


@pytest.mark.parametrize("scheme", sorted(SERVERS))
@settings(max_examples=5)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_lossless_trace_worlds_coincide(scheme, seed):
    """With no loss (hence no NACKs) and the ambiguous salvage signal
    weighted to zero, the estimate stays 0, the controller never widens,
    and both worlds must agree exactly — not just by inclusion — on
    every servable set.  (With the default ``salvage_weight`` the worlds
    may legitimately differ even at zero loss: doze-driven salvage
    uploads widen the window, which is the designed response.)"""
    updates, status = build_trace(seed, loss_rate=0.0)
    quiet = LossAdaptationConfig(w_max=W_MAX, salvage_weight=0.0)
    db = Database(DB_SIZE)
    fixed = [ScriptedWorld(scheme, db, adaptive=False) for _ in range(N_CLIENTS)]
    adaptive = [
        ScriptedWorld(scheme, db, adaptive=True, config=quiet)
        for _ in range(N_CLIENTS)
    ]
    for i in range(N_INTERVALS):
        now = (i + 1) * INTERVAL
        for item in updates[i]:
            db.apply_update(item, now - INTERVAL / 2)
        for cid in range(N_CLIENTS):
            assert fixed[cid].run_interval(
                i, now, status[i][cid]
            ) == adaptive[cid].run_interval(i, now, status[i][cid])


class TestFullSimulationUnderLoss:
    """End-to-end counterpart: closed-loop runs with the adaptive layer
    live on a lossy downlink keep the paper's correctness guarantee."""

    @pytest.mark.parametrize("scheme", sorted(SERVERS))
    def test_adaptive_runs_stay_consistent(self, scheme):
        result = run_simulation(
            params(
                simulation_time=3000.0,
                disconnect_prob=0.25,
                disconnect_time_mean=300.0,
                downlink_faults=FaultConfig(drop_prob=0.2),
                uplink_timeout=500.0,
                loss_adaptation=LossAdaptationConfig(w_max=40, repeat=2),
            ),
            HOTCOLD,
            scheme,
        )
        assert result.stale_hits == 0
        assert 0.0 <= result.estimated_ir_loss <= 1.0
        assert result.queries_answered > 0
        # Repetition actually ran and the dedup layer absorbed it.
        assert result.counter("server.ir_repeats") > 0
        assert result.counter("client.ir_duplicates") > 0
