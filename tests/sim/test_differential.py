"""Differential tests: schemes that should be indistinguishable, are.

With common random numbers (named streams) and **no disconnections**,
every window-based scheme broadcasts the same reports and applies the
same invalidations, so entire runs must agree metric-for-metric.  Any
divergence exposes hidden nondeterminism or a scheme touching state it
should not.
"""

import pytest

from repro.sim import HOTCOLD, UNIFORM, SystemParams, run_simulation

WINDOW_SCHEMES = ("ts", "checking", "afw", "aaw", "gcore")


def params(**kw):
    defaults = dict(
        simulation_time=4000.0,
        n_clients=12,
        db_size=500,
        buffer_fraction=0.1,
        disconnect_prob=0.0,   # the key: nobody ever needs salvage
        update_interarrival_mean=50.0,
        seed=31,
    )
    defaults.update(kw)
    return SystemParams(**defaults)


def comparable(raw):
    """The metrics that must agree (drop scheme-private counters)."""
    keys = [
        "queries.generated",
        "queries.answered",
        "cache.hits",
        "cache.misses",
        "downlink.data_bits",
        "uplink.request_bits",
        "query.latency.mean",
    ]
    return {k: raw.get(k, 0.0) for k in keys}


class TestWindowSchemesCoincide:
    @pytest.mark.parametrize("workload", [UNIFORM, HOTCOLD])
    def test_identical_runs_without_disconnections(self, workload):
        baseline = None
        for scheme in WINDOW_SCHEMES:
            result = run_simulation(params(), workload, scheme)
            snapshot = comparable(result.raw)
            if baseline is None:
                baseline = (scheme, snapshot)
            else:
                assert snapshot == baseline[1], (
                    f"{scheme} diverged from {baseline[0]}"
                )

    def test_no_validation_traffic_without_disconnections(self):
        for scheme in WINDOW_SCHEMES:
            result = run_simulation(params(), UNIFORM, scheme)
            assert result.counter("uplink.validation_bits") == 0.0, scheme
            assert result.counter("cache.full_drops") == 0.0, scheme

    def test_bs_differs_only_via_report_size(self):
        """BS applies equivalent invalidations but its big reports steal
        downlink time, so data-path metrics may shift while correctness
        metrics (hits from the same query streams) stay close."""
        ts = run_simulation(params(), UNIFORM, "ts")
        bs = run_simulation(params(), UNIFORM, "bs")
        assert bs.counter("uplink.validation_bits") == 0.0
        # Same offered stream; answered counts within a few percent at
        # this tiny report size (db=500 -> ~1 kbit reports).
        assert bs.queries_answered == pytest.approx(
            ts.queries_answered, rel=0.05
        )

    def test_divergence_appears_once_disconnections_start(self):
        """Sanity check of the test itself: with sleepers, the schemes
        genuinely differ."""
        snapshots = {
            scheme: comparable(
                run_simulation(
                    params(disconnect_prob=0.3, disconnect_time_mean=400.0),
                    UNIFORM,
                    scheme,
                ).raw
            )
            for scheme in ("ts", "checking", "aaw")
        }
        assert snapshots["ts"] != snapshots["checking"]
        assert snapshots["checking"] != snapshots["aaw"]
