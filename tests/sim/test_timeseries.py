"""Tests for the bucketed time series and the warm-start stationarity it
was built to demonstrate."""

import pytest

from repro.sim import (
    HOTCOLD,
    SimulationModel,
    SystemParams,
    TimeSeries,
    stationarity_ratio,
)


class TestTimeSeries:
    def test_bucketing(self):
        ts = TimeSeries(bucket_width=10.0)
        ts.record(0.0)
        ts.record(9.99)
        ts.record(10.0)
        ts.record(25.0, amount=2.0)
        assert ts.values(30.0) == [2.0, 1.0, 2.0]
        assert ts.total == 5.0

    def test_rate_series(self):
        ts = TimeSeries(bucket_width=20.0)
        ts.record(5.0, amount=10.0)
        assert ts.rate_series(20.0) == [0.5]

    def test_dense_values_pad_empty_buckets(self):
        ts = TimeSeries(bucket_width=1.0)
        ts.record(4.5)
        assert ts.values(6.0) == [0, 0, 0, 0, 1.0, 0]

    def test_halves_ratio(self):
        ts = TimeSeries(bucket_width=1.0)
        for t in (0.5, 1.5, 2.5, 3.5):
            ts.record(t)
        assert ts.halves_ratio(4.0) == pytest.approx(1.0)
        ramp = TimeSeries(bucket_width=1.0)
        ramp.record(3.5, amount=10.0)
        assert ramp.halves_ratio(4.0) == float("inf")

    def test_stationarity_ratio_helper(self):
        assert stationarity_ratio([1, 1, 1, 1]) == 1.0
        assert stationarity_ratio([0, 0, 5, 5]) == float("inf")
        assert stationarity_ratio([]) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TimeSeries(bucket_width=0.0)
        with pytest.raises(ValueError):
            TimeSeries(1.0).record(-1.0)


class TestInSimulation:
    def params(self, **kw):
        defaults = dict(
            simulation_time=6000.0,
            n_clients=20,
            db_size=2000,
            buffer_fraction=0.06,
            disconnect_prob=0.1,
            disconnect_time_mean=300.0,
            collect_timeseries=True,
            seed=21,
        )
        defaults.update(kw)
        return SystemParams(**defaults)

    def test_series_totals_match_counters(self):
        model = SimulationModel(self.params(), HOTCOLD, "ts")
        result = model.run()
        assert model.timeseries["answered"].total == result.queries_answered
        assert model.timeseries["hits"].total == result.counter("cache.hits")

    def test_disabled_by_default(self):
        model = SimulationModel(
            self.params(collect_timeseries=False), HOTCOLD, "ts"
        )
        model.run()
        assert model.timeseries is None

    def test_warm_start_is_stationary_where_cold_start_ramps(self):
        """The quantitative justification for warm_start (DESIGN.md):
        warm runs hit steady state immediately; cold runs ramp their hit
        counts as caches fill."""
        warm = SimulationModel(self.params(), HOTCOLD, "ts")
        warm.run()
        cold = SimulationModel(self.params(warm_start=False), HOTCOLD, "ts")
        cold.run()
        warm_hits = warm.timeseries["hits"].values(6000.0)
        cold_hits = cold.timeseries["hits"].values(6000.0)
        mid = len(cold_hits) // 2
        # Cold caches ramp: clearly more hits late than early.
        assert cold.timeseries["hits"].halves_ratio(6000.0) > 1.3
        # Warm caches serve hits from the very first intervals — the
        # transient the paper's long runs amortize and warm_start removes.
        assert sum(warm_hits[:mid]) > 3 * sum(cold_hits[:mid])
