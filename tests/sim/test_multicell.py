"""Multi-cell layer: N=1 bit-identity pins + knob-group validation.

Two guarantees are pinned here:

1. **N=1 equivalence** — a :class:`RoamingConfig` whose topology has a
   single cell routes through :class:`MultiCellModel` yet is
   *bit-identical* to the seed behaviour without the knob group: the
   golden pins of every scheme hold unchanged, and the full raw metric
   snapshot matches key for key (no multi-cell telemetry leaks in).
2. **Knob validation** — inconsistent combinations (roaming without the
   retry layer, publishing in a fed cell, cell-outage chaos without a
   topology) die with a clear error before a simulation is built.
"""

import pytest

from repro.chaos import ChaosConfig
from repro.sim import UNIFORM, run_simulation
from repro.sim.multicell import MultiCellModel
from repro.sim.params import SystemParams
from repro.topology import PROPAGATION_MODES, RoamingConfig, TopologyConfig

from .test_faults import visible
from .test_golden import GOLDEN, PARAMS, PINNED

#: The golden configuration with an inert (single-cell) roaming group.
N1 = PARAMS.with_(roaming=RoamingConfig(topology=TopologyConfig(n_cells=1)))


class TestSingleCellBitIdentity:
    """An N=1 topology must not move a single bit of any scheme."""

    def test_n1_routes_through_the_multicell_model(self):
        model = MultiCellModel(N1, UNIFORM, "ts")
        assert model.n_cells == 1
        assert model.feed is None
        assert model.synchronizers == [None]
        assert model.cooperators == [None]

    @pytest.mark.parametrize("scheme", sorted(GOLDEN))
    def test_n1_matches_every_golden_pin(self, scheme):
        result = run_simulation(N1, UNIFORM, scheme)
        assert tuple(result.counter(name) for name in PINNED) == GOLDEN[scheme]

    @pytest.mark.parametrize("scheme", ["ts", "aaw"])
    def test_n1_raw_snapshot_is_key_for_key_identical(self, scheme):
        baseline = run_simulation(PARAMS, UNIFORM, scheme)
        n1 = run_simulation(N1, UNIFORM, scheme)
        assert visible(n1.raw) == visible(baseline.raw)

    @pytest.mark.parametrize("propagation", PROPAGATION_MODES)
    def test_n1_is_inert_under_every_propagation_mode(self, propagation):
        params = PARAMS.with_(
            roaming=RoamingConfig(
                topology=TopologyConfig(n_cells=1),
                propagation=propagation,
                roam_prob=1.0,  # nowhere to go: must still be inert
            )
        )
        baseline = run_simulation(PARAMS, UNIFORM, "ts")
        result = run_simulation(params, UNIFORM, "ts")
        assert visible(result.raw) == visible(baseline.raw)


class TestKnobValidation:
    """Inconsistent knob combinations fail fast with a clear story."""

    MULTI = RoamingConfig(topology=TopologyConfig(n_cells=3))

    def test_rejects_non_config_roaming(self):
        with pytest.raises(ValueError, match="RoamingConfig"):
            SystemParams(roaming="3 cells please")

    def test_multicell_requires_the_retry_layer(self):
        with pytest.raises(ValueError, match="uplink_timeout"):
            SystemParams(roaming=self.MULTI)

    def test_multicell_rejects_publishing(self):
        with pytest.raises(ValueError, match="single-cell only"):
            SystemParams(
                roaming=self.MULTI,
                uplink_timeout=60.0,
                publish_per_interval=2,
                publish_region=(0, 10),
            )

    def test_cell_outage_chaos_requires_a_topology(self):
        with pytest.raises(ValueError, match="roaming knob group"):
            SystemParams(
                chaos=ChaosConfig(cell_crashes_at=((1, 100.0),)),
                uplink_timeout=60.0,
                track_staleness=True,
            )

    def test_single_cell_roaming_needs_no_retry_layer(self):
        # The inert N=1 group must not demand knobs the seed never had.
        params = SystemParams(roaming=RoamingConfig())
        assert params.roaming.n_cells == 1

    def test_consistent_multicell_combination_is_accepted(self):
        params = SystemParams(roaming=self.MULTI, uplink_timeout=60.0)
        assert params.roaming.n_cells == 3
