"""Tests for Table 2 workload patterns."""

import pytest

from repro.des import RandomStreams
from repro.sim import HOTCOLD, UNIFORM, AccessPattern, Region, workload_by_name
from repro.sim.workload import Workload


@pytest.fixture
def stream():
    return RandomStreams(5).stream("pattern")


class TestRegion:
    def test_size_and_contains(self):
        r = Region(10, 19)
        assert r.size == 10
        assert r.contains(10) and r.contains(19)
        assert not r.contains(9) and not r.contains(20)

    def test_pick_within(self, stream):
        r = Region(5, 7)
        assert all(5 <= r.pick(stream) <= 7 for _ in range(100))

    def test_invalid(self):
        with pytest.raises(ValueError):
            Region(5, 4)
        with pytest.raises(ValueError):
            Region(-1, 4)


class TestAccessPattern:
    def test_uniform_covers_whole_db(self, stream):
        pat = AccessPattern(50)
        seen = {pat.pick(stream) for _ in range(3000)}
        assert seen == set(range(50))

    def test_hot_probability(self, stream):
        pat = AccessPattern(1000, hot=Region(0, 99), hot_prob=0.8)
        hot = sum(1 for _ in range(20000) if pat.pick(stream) < 100)
        assert hot / 20000 == pytest.approx(0.8, abs=0.02)

    def test_cold_picks_avoid_hot_region(self, stream):
        pat = AccessPattern(200, hot=Region(50, 99), hot_prob=0.5)
        for _ in range(2000):
            item = pat.pick(stream)
            assert 0 <= item < 200

    def test_cold_excluding_hot_is_uniform_over_complement(self, stream):
        pat = AccessPattern(100, hot=Region(10, 19), hot_prob=0.0)
        seen = {pat.pick(stream) for _ in range(5000)}
        assert seen == set(range(100)) - set(range(10, 20))

    def test_cold_may_include_hot_when_configured(self, stream):
        pat = AccessPattern(
            100, hot=Region(10, 19), hot_prob=0.0, cold_excludes_hot=False
        )
        seen = {pat.pick(stream) for _ in range(5000)}
        assert seen == set(range(100))

    def test_hot_region_must_fit(self):
        with pytest.raises(ValueError):
            AccessPattern(50, hot=Region(0, 50), hot_prob=0.5)

    def test_hot_region_cannot_swallow_db(self):
        with pytest.raises(ValueError):
            AccessPattern(10, hot=Region(0, 9), hot_prob=0.5)


class TestPresets:
    def test_uniform_preset(self):
        pat = UNIFORM.query_pattern(1000)
        assert pat.hot is None
        assert UNIFORM.update_pattern(1000).hot is None

    def test_hotcold_preset_matches_paper(self):
        """Items 1..100 hot with 0.8 probability; updates uniform."""
        pat = HOTCOLD.query_pattern(1000)
        assert pat.hot == Region(0, 99)
        assert pat.hot_prob == 0.8
        assert HOTCOLD.update_pattern(1000).hot is None

    def test_lookup_by_name(self):
        assert workload_by_name("UNIFORM") is UNIFORM
        assert workload_by_name("hotcold") is HOTCOLD
        with pytest.raises(KeyError):
            workload_by_name("nope")

    def test_custom_workload_update_locality(self):
        wl = Workload(name="hotupdate", update_hot=(0, 9), update_hot_prob=0.9)
        pat = wl.update_pattern(100)
        assert pat.hot == Region(0, 9)
        assert pat.hot_prob == 0.9
