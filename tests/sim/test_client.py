"""Focused tests of the client actor: query flow, disconnection, fetching."""

import pytest

from repro.sim import SimulationModel, SystemParams, UNIFORM
from repro.sim.metrics import (
    CACHE_HITS,
    CACHE_MISSES,
    DISCONNECTIONS,
    QUERIES_ANSWERED,
    QUERIES_GENERATED,
    QUERY_LATENCY,
    STALE_HITS,
    UPLINK_REQUEST_BITS,
)


def params(**kw):
    defaults = dict(
        simulation_time=2000.0,
        n_clients=4,
        db_size=50,
        buffer_fraction=0.2,
        disconnect_prob=0.0,
        seed=2,
    )
    defaults.update(kw)
    return SystemParams(**defaults)


class TestQueryFlow:
    def test_queries_generated_and_answered(self):
        result = SimulationModel(params(), UNIFORM, "ts").run()
        assert result.counter(QUERIES_GENERATED) > 10
        # In-flight queries at the end may be unanswered; never the reverse.
        assert 0 < result.counter(QUERIES_ANSWERED) <= result.counter(
            QUERIES_GENERATED
        )

    def test_every_query_waits_for_a_report(self):
        """Minimum latency is the wait for the next broadcast."""
        result = SimulationModel(params(), UNIFORM, "ts").run()
        # Exponential think times make sub-interval waits certain if the
        # client skipped listening; mean latency must exceed the data
        # transmission time plus a nontrivial report wait.
        assert result.raw[f"{QUERY_LATENCY}.mean"] > 6.5  # item tx alone is 6.55 s

    def test_small_db_high_locality_yields_hits(self):
        result = SimulationModel(
            params(
                db_size=10,
                buffer_fraction=1.0,
                simulation_time=4000.0,
                # Slow updates: with the Table 1 rate, 5 of these 10 items
                # change every ~100 s and hits rightly evaporate.
                update_interarrival_mean=2000.0,
            ),
            UNIFORM,
            "ts",
        ).run()
        assert result.counter(CACHE_HITS) > 0
        assert result.hit_ratio > 0.3

    def test_misses_cost_uplink_requests(self):
        result = SimulationModel(params(), UNIFORM, "ts").run()
        misses = result.counter(CACHE_MISSES)
        assert misses > 0
        assert result.counter(UPLINK_REQUEST_BITS) == misses * 4096.0

    def test_items_served_matches_hits_plus_misses(self):
        result = SimulationModel(params(), UNIFORM, "ts").run()
        assert result.counter("queries.items_served") == result.counter(
            CACHE_HITS
        ) + result.counter(CACHE_MISSES)

    def test_no_stale_hits(self):
        result = SimulationModel(
            params(db_size=10, buffer_fraction=1.0, update_interarrival_mean=20.0,
                   simulation_time=4000.0),
            UNIFORM,
            "ts",
        ).run()
        assert result.counter(STALE_HITS) == 0
        assert result.counter(CACHE_HITS) > 0  # the check actually ran

    def test_multi_item_queries(self):
        result = SimulationModel(
            params(items_per_query=3), UNIFORM, "ts"
        ).run()
        answered = result.counter(QUERIES_ANSWERED)
        assert result.counter("queries.items_served") == pytest.approx(
            3 * answered, abs=3  # the final query may be mid-flight
        )


class TestDisconnection:
    def test_no_disconnections_when_p_zero(self):
        result = SimulationModel(params(), UNIFORM, "ts").run()
        assert result.counter(DISCONNECTIONS) == 0

    def test_disconnections_happen(self):
        result = SimulationModel(
            params(disconnect_prob=0.5, disconnect_time_mean=50.0),
            UNIFORM,
            "ts",
        ).run()
        assert result.counter(DISCONNECTIONS) > 5

    def test_higher_p_more_disconnections(self):
        low = SimulationModel(
            params(disconnect_prob=0.05, disconnect_time_mean=30.0),
            UNIFORM,
            "ts",
        ).run()
        high = SimulationModel(
            params(disconnect_prob=0.6, disconnect_time_mean=30.0),
            UNIFORM,
            "ts",
        ).run()
        assert high.counter(DISCONNECTIONS) > low.counter(DISCONNECTIONS)

    def test_long_disconnections_force_cache_drops_under_ts(self):
        result = SimulationModel(
            params(
                disconnect_prob=0.4,
                disconnect_time_mean=400.0,  # >> window of 200 s
                simulation_time=6000.0,
            ),
            UNIFORM,
            "ts",
        ).run()
        assert result.counter("cache.full_drops") > 0

    def test_bs_avoids_drops_where_ts_drops(self):
        kw = dict(
            disconnect_prob=0.4,
            disconnect_time_mean=400.0,
            simulation_time=6000.0,
            update_interarrival_mean=500.0,  # light updates: salvageable
        )
        ts = SimulationModel(params(**kw), UNIFORM, "ts").run()
        bs = SimulationModel(params(**kw), UNIFORM, "bs").run()
        assert bs.counter("cache.full_drops") < ts.counter("cache.full_drops")
