"""Direct unit tests for :mod:`repro.sim.propagation`.

The synchronizer/feed/cooperator trio was previously covered only
through multi-cell integration runs; these tests drive each protocol
behaviour in isolation, with stub servers around real databases:

* eager-push **sequence-gap detection** triggers a repair pull that
  reconverges the replica (and duplicates/regressions are discarded);
* delta application is **version-guarded and idempotent** — same-instant
  updates, duplicate deltas and replayed triples never double-apply;
* the bounded replay window forces **snapshot adoption with a raised
  amnesia floor** (plus an epoch bump), and cooperative salvage answers
  are **clamped** to ``up_to`` — or honestly refused — so a requester
  can never claim history its peer cannot vouch for.
"""

import pytest

from repro.db.database import NEVER, Database
from repro.des import Environment
from repro.des.monitor import MetricSet
from repro.net.intercell import InterCellLink
from repro.sim.params import SystemParams
from repro.sim.propagation import CellCooperator, CellSynchronizer, OriginFeed
from repro.topology import RoamingConfig


class RecordingPolicy:
    """Stub scheme policy: records every on_item_update forwarded."""

    def __init__(self):
        self.updates = []

    def on_item_update(self, item, old, new):
        self.updates.append((item, old, new))


class StubServer:
    """Just enough server surface for the propagation classes."""

    def __init__(self, db, cell_id=0):
        self.db = db
        self.cell_id = cell_id
        self.policy = RecordingPolicy()
        self.crashed = False
        self.epoch = 0
        self.sync = None
        self.coop = None
        self.horizon = None  # set when a synchronizer installs itself

    def _knowledge_now(self, now):
        sync = self.sync
        return now if sync is None else sync.horizon


def make_world(replay_intervals=50.0, latency=0.05):
    env = Environment()
    metrics = MetricSet()
    params = SystemParams()
    roaming = RoamingConfig(sync_replay_intervals=replay_intervals)
    origin = StubServer(Database(20), cell_id=0)
    feed = OriginFeed(env, origin, params, roaming, metrics)
    replica = StubServer(Database(20), cell_id=1)
    link = InterCellLink(env, latency)
    sync = CellSynchronizer(
        env, replica, feed, link, params, roaming, metrics,
        lead=1.0, pull=False,
    )
    return env, metrics, origin, feed, replica, sync


def origin_commit(env, origin, item, ts):
    """Advance env time to *ts* and commit one origin update."""
    if ts > env.now:
        env.run(until=ts)
    origin.db.apply_update(item, ts)
    return int(origin.db.version[item])


def delta(origin, since, upto, triples, seq):
    return (origin.db.origin_time, since, upto, triples, seq)


# -- eager push: sequence gaps ------------------------------------------------


def test_in_order_deltas_apply_and_advance_horizon():
    env, metrics, origin, feed, replica, sync = make_world()
    v = origin_commit(env, origin, item=3, ts=10.0)
    sync.on_push_delta(delta(origin, 0.0, 10.0, ((3, 10.0, v),), seq=1), 10.0)
    assert int(replica.db.version[3]) == v
    assert sync.horizon == 10.0
    assert replica.policy.updates == [(3, 0, 1)]
    assert metrics.counter("sync.pushes").value == 1


def test_sequence_gap_triggers_repair_pull():
    """A lost delta surfaces as a gap; the repair pull reconverges the
    replica to the origin instead of silently skipping the hole."""
    env, metrics, origin, feed, replica, sync = make_world()
    v3 = origin_commit(env, origin, item=3, ts=10.0)
    sync.on_push_delta(delta(origin, 0.0, 10.0, ((3, 10.0, v3),), seq=1), 10.0)
    # seq=2 (item 7 at t=20) is lost on the link; seq=3 arrives.
    origin_commit(env, origin, item=7, ts=20.0)
    v9 = origin_commit(env, origin, item=9, ts=30.0)
    gap = delta(origin, 20.0, 30.0, ((9, 30.0, v9),), seq=3)
    sync.on_push_delta(gap, 30.0)
    # The gapped delta must NOT be applied — it alone cannot prove
    # nothing happened in (10, 20].
    assert int(replica.db.version[9]) == 0
    assert sync.horizon == 10.0
    # ... but a repair pull is in flight; one link round-trip later the
    # replica knows everything, including the lost item 7.
    env.run(until=env.now + 1.0)
    assert metrics.counter("sync.pulls").value == 1
    assert int(replica.db.version[7]) == 1
    assert int(replica.db.version[9]) == 1
    assert sync.horizon == pytest.approx(30.0, abs=1.0)


def test_duplicate_and_regressed_deltas_are_discarded():
    env, metrics, origin, feed, replica, sync = make_world()
    v = origin_commit(env, origin, item=3, ts=10.0)
    d1 = delta(origin, 0.0, 10.0, ((3, 10.0, v),), seq=1)
    sync.on_push_delta(d1, 10.0)
    before = replica.policy.updates[:]
    sync.on_push_delta(d1, 10.0)  # retransmitted copy: seq < expected
    assert replica.policy.updates == before
    assert metrics.counter("sync.pushes").value == 1


def test_blank_restart_repairs_instead_of_applying():
    """A replica with horizon == NEVER (post-restart) must not graft a
    delta onto knowledge it does not have."""
    env, metrics, origin, feed, replica, sync = make_world()
    sync.horizon = NEVER
    sync._push_seq = 0
    v = origin_commit(env, origin, item=4, ts=10.0)
    sync.on_push_delta(delta(origin, 0.0, 10.0, ((4, 10.0, v),), seq=1), 10.0)
    assert int(replica.db.version[4]) == 0  # not applied directly
    env.run(until=env.now + 1.0)
    # The repair pull's response covers from the feed's cutoff, which is
    # ahead of a NEVER horizon — a snapshot adoption, floor raised.
    assert int(replica.db.version[4]) == v
    assert metrics.counter("sync.pulls").value == 1


# -- version-guarded idempotent apply -----------------------------------------


def test_same_instant_updates_are_version_disambiguated():
    """Two updates committed in the same instant produce deltas with
    identical timestamps; only the version counter can order them, and
    re-application must be a no-op."""
    env, metrics, origin, feed, replica, sync = make_world()
    origin_commit(env, origin, item=5, ts=10.0)
    v2 = origin_commit(env, origin, item=5, ts=10.0)  # same instant
    assert v2 == 2
    sync.on_push_delta(delta(origin, 0.0, 10.0, ((5, 10.0, 1),), seq=1), 10.0)
    # The second delta replays the first triple alongside the new one
    # (identical upto): the v1 triple must no-op, v2 must apply once.
    sync.on_push_delta(
        delta(origin, 10.0, 10.0, ((5, 10.0, 2), (5, 10.0, 1)), seq=2), 10.0
    )
    assert int(replica.db.version[5]) == 2
    assert replica.policy.updates == [(5, 0, 1), (5, 1, 2)]


def test_pull_apply_is_idempotent_for_duplicate_responses():
    """A late retransmitted pull response (already-covered span) changes
    nothing: the horizon guard screens it out entirely."""
    env, metrics, origin, feed, replica, sync = make_world()
    v = origin_commit(env, origin, item=6, ts=10.0)
    response = feed.answer_pull(0.0)
    sync._apply_response(response)
    assert int(replica.db.version[6]) == v
    assert sync.horizon == 10.0
    before = replica.policy.updates[:]
    sync._apply_response(response)  # duplicate: upto == horizon
    assert replica.policy.updates == before
    assert replica.db.total_updates == 1  # the original apply_sync only


# -- amnesia floors -----------------------------------------------------------


def test_bounded_replay_forces_snapshot_with_raised_floor():
    """A replica further behind than the replay window gets a snapshot:
    its history floor rises to the feed's cutoff and its epoch bumps
    (clients' Tlb history behind the floor is gone in this cell)."""
    env, metrics, origin, feed, replica, sync = make_world(replay_intervals=1.0)
    # replay window = 1 interval = 20 s; commit far apart so the early
    # update falls out of the window.
    origin_commit(env, origin, item=2, ts=10.0)
    v8 = origin_commit(env, origin, item=8, ts=200.0)
    response = feed.answer_pull(sync.horizon)  # horizon = 0, cutoff = 180
    floor, covers_from, upto, triples, versions = response
    assert covers_from == pytest.approx(180.0)
    epoch0 = replica.epoch
    sync._apply_response(response)
    assert replica.epoch == epoch0 + 1
    assert metrics.counter("sync.snapshots").value == 1
    assert replica.db.origin_time == pytest.approx(180.0)
    # The snapshot still carries the full version array: state converges
    # even though pre-floor history is forgotten.
    assert int(replica.db.version[2]) == 1
    assert int(replica.db.version[8]) == v8
    assert sync.horizon == 200.0


def test_parent_feed_caps_responses_at_its_horizon():
    """A parent cell can never feed a child past its own knowledge: the
    response's upto is the parent's horizon, not wall-clock now."""
    env, metrics, origin, feed, replica, sync = make_world()
    origin_commit(env, origin, item=1, ts=10.0)
    sync._apply_response(feed.answer_pull(0.0))
    env.run(until=50.0)  # wall clock moves on; the replica learns nothing
    response = sync.answer_pull(0.0)
    assert response is not None
    assert response[2] == 10.0  # upto == parent horizon
    sync.horizon = NEVER
    assert sync.answer_pull(0.0) is None  # an unsynced parent refuses


def test_coop_answer_clamps_stamps_to_up_to():
    """A granting peer clamps every stamp to the requested ``up_to``: an
    item also updated later must still be (re)invalidated by the
    requester, never trusted at its newer time."""
    env = Environment()
    metrics = MetricSet()
    roaming = RoamingConfig()
    requester = StubServer(Database(20, origin_time=100.0), cell_id=1)
    requester.db.apply_sync(4, 150.0, 2)  # requester already tracks item 4
    coop = CellCooperator(env, requester, roaming, metrics)
    peer = StubServer(Database(20), cell_id=2)
    peer.db.apply_update(3, 60.0)    # inside (need, up_to]
    peer.db.apply_update(5, 140.0)   # after up_to: stamp must clamp to 100
    peer.db.apply_update(4, 160.0)   # requester's newer record must win
    # The peer's knowledge horizon has reached past up_to (the real
    # _knowledge_now is wall-clock/horizon based; the test env sits at 0).
    peer._knowledge_now = lambda now: 200.0
    link = InterCellLink(env, 0.05)
    coop.add_peer(2, peer, link)
    resumed = []
    coop.backfill_then(50.0, resumed.append, DummyMsg())
    env.run(until=5.0)
    assert metrics.counter("coop.backfills").value == 1
    assert len(resumed) == 1
    db = requester.db
    assert db.origin_time == 50.0                  # floor lowered to need
    assert float(db.last_update[3]) == 60.0        # honest in-window stamp
    assert float(db.last_update[5]) == 100.0       # clamped, not 140
    assert float(db.last_update[4]) == 150.0       # newer record kept


def test_coop_refuses_when_peer_cannot_vouch():
    """Honest refusal: a peer whose own floor is above ``need`` (or whose
    horizon lags ``up_to``) must answer None, and the requester falls
    through to its ordinary degradation path (resume still fires)."""
    env = Environment()
    metrics = MetricSet()
    roaming = RoamingConfig()
    requester = StubServer(Database(20, origin_time=100.0), cell_id=1)
    coop = CellCooperator(env, requester, roaming, metrics)
    # Peer A: floor too high.  Peer B: horizon short of up_to.
    peer_a = StubServer(Database(20, origin_time=80.0), cell_id=2)
    peer_b = StubServer(Database(20), cell_id=3)
    peer_b._knowledge_now = lambda now: 90.0
    coop.add_peer(2, peer_a, InterCellLink(env, 0.05))
    coop.add_peer(3, peer_b, InterCellLink(env, 0.05))
    resumed = []
    coop.backfill_then(50.0, resumed.append, DummyMsg())
    env.run(until=10.0)
    assert metrics.counter("coop.refusals").value == 2
    assert metrics.counter("coop.failures").value == 1
    assert metrics.counter("coop.backfills").value == 0
    assert requester.db.origin_time == 100.0  # floor unchanged
    assert len(resumed) == 1


def test_coop_drops_resume_after_epoch_change():
    """If the requesting cell's world changed while the ask was in
    flight (epoch bump), the deferred upload is void: no graft, no
    resume — the client's own retry machinery owns recovery."""
    env = Environment()
    metrics = MetricSet()
    roaming = RoamingConfig()
    requester = StubServer(Database(20, origin_time=100.0), cell_id=1)
    coop = CellCooperator(env, requester, roaming, metrics)
    peer = StubServer(Database(20), cell_id=2)
    peer.db.apply_update(3, 60.0)
    peer._knowledge_now = lambda now: 200.0
    coop.add_peer(2, peer, InterCellLink(env, 0.05))
    resumed = []
    coop.backfill_then(50.0, resumed.append, DummyMsg())
    env.run(until=0.01)   # the ask departs...
    requester.epoch += 1  # ...then the world changes under it
    env.run(until=5.0)
    assert metrics.counter("coop.backfills").value == 0
    assert requester.db.origin_time == 100.0
    assert resumed == []


class DummyMsg:
    src = 42
