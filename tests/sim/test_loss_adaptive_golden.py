"""Golden equivalence: the loss-adaptive layer, when off or inert, is
bit-identical to the paper-faithful seed behaviour.

Three tiers of equivalence, strongest first:

* **off** — ``loss_adaptation=None`` (the default): every scheme's
  pinned metrics equal the seed goldens of ``tests/sim/test_golden.py``;
* **inert** — the control loop *runs* but is pinned (``w_max == w`` so
  widening is impossible, ``repeat=1`` so each report is broadcast once,
  NACKs off): still bit-identical, on a pristine *and* on a lossy
  medium — the estimator may tick, but observing must never perturb;
* **r=1** — repetition with ``repeat=1`` is bit-identical to no
  repetition, so the repetition path costs nothing until it is asked to
  repeat.
"""

import pytest

from repro.net import FaultConfig
from repro.schemes import LossAdaptationConfig
from repro.sim import SystemParams, UNIFORM, run_simulation

from .test_golden import GOLDEN, PARAMS, PINNED, observe

ALL_SCHEMES = sorted(GOLDEN)

#: The control loop runs but cannot act: window pinned, single copy,
#: no NACK uplink.  Everything it *could* do is disabled — anything it
#: still changes is a bug.
INERT = LossAdaptationConfig(
    w_max=PARAMS.window_intervals, repeat=1, nack=False
)


def observe_with(loss_adaptation, scheme, **overrides):
    params = PARAMS.with_(loss_adaptation=loss_adaptation, **overrides)
    result = run_simulation(params, UNIFORM, scheme)
    return tuple(result.counter(name) for name in PINNED)


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_default_off_matches_seed_goldens(scheme):
    """The knob's default (None) reproduces the seed pins exactly."""
    assert PARAMS.loss_adaptation is None
    assert observe(scheme) == GOLDEN[scheme]


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_inert_config_is_bit_identical_to_off(scheme):
    """Enabled-but-pinned adaptation changes nothing on a clean medium."""
    assert observe_with(INERT, scheme=scheme) == GOLDEN[scheme]


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_repetition_r1_is_bit_identical_to_no_repetition(scheme):
    """Broadcasting each report 'once, repeatedly' is just broadcasting
    it once: the repetition code path with r=1 leaves every pinned
    metric — and the duplicate/repeat telemetry — at seed values."""
    params = PARAMS.with_(loss_adaptation=INERT)
    result = run_simulation(params, UNIFORM, scheme)
    assert tuple(result.counter(name) for name in PINNED) == GOLDEN[scheme]
    assert result.counter("server.ir_repeats") == 0.0
    assert result.counter("client.ir_duplicates") == 0.0


@pytest.mark.parametrize("scheme", ["ts", "checking", "afw", "aaw"])
def test_inert_config_is_bit_identical_under_loss(scheme):
    """On a *lossy* medium the inert loop still changes nothing: the
    estimator observes salvage traffic and gaps but, pinned, cannot act.
    Any divergence means observation itself perturbs the simulation."""
    faults = FaultConfig(drop_prob=0.15)
    kw = dict(downlink_faults=faults, uplink_timeout=500.0)
    baseline = run_simulation(
        PARAMS.with_(**kw), UNIFORM, scheme
    )
    inert = run_simulation(
        PARAMS.with_(loss_adaptation=INERT, **kw), UNIFORM, scheme
    )
    assert tuple(baseline.counter(n) for n in PINNED) == tuple(
        inert.counter(n) for n in PINNED
    )
    # The run did exercise the estimator's inputs...
    assert inert.counter("client.ir_gaps") > 0
    # ...and the pinned window never widened.
    assert inert.raw.get("server.w_eff_last") == PARAMS.window_intervals


@pytest.mark.parametrize("scheme", ["afw", "aaw"])
def test_active_adaptation_on_clean_medium_sends_no_nacks(scheme):
    """A *live* config on a pristine medium: no report is ever lost, so
    no NACK is ever sent.  Disconnection-driven salvage traffic may
    still nudge the estimator above the widening threshold (in this
    tiny 5-client cell one upload is a big per-interval signal) — that
    widening is the designed response and must only ever *help*: at
    least the seed's queries answered, zero stale hits, no drops."""
    live = LossAdaptationConfig(w_max=40, repeat=1, nack=True)
    result = run_simulation(
        PARAMS.with_(loss_adaptation=live), UNIFORM, scheme
    )
    assert result.counter("client.ir_nacks") == 0.0
    assert result.counter("server.nacks_received") == 0.0
    assert result.stale_hits == 0
    assert result.queries_answered >= GOLDEN[scheme][0]
    assert result.raw["server.w_eff_last"] >= PARAMS.window_intervals


def test_validation_rejects_w_max_below_window():
    with pytest.raises(ValueError):
        SystemParams(loss_adaptation=LossAdaptationConfig(w_max=5))
