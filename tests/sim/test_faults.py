"""End-to-end tests for fault injection and the client recovery layer.

Three guarantees are pinned here:

1. **Zero-fault equivalence** — attaching an all-zero :class:`FaultConfig`
   (or enabling the retry layer on a pristine medium) is *bit-identical*
   to the seed behaviour: every metric matches, to the last bit.
2. **Recovery** — with real loss on either link, every query still
   terminates (answered, or abandoned after bounded retries) and the
   exact schemes stay exact: ``stale_hits == 0`` no matter what the
   medium does.
3. **Reproducibility** — faulted runs are a pure function of the seed.
"""

import pytest

from repro.net import FaultConfig
from repro.sim import SystemParams, UNIFORM, run_simulation
from repro.sim import metrics as m

# The golden-test configuration: small, fast, fully deterministic.
BASE = SystemParams(
    simulation_time=2000.0,
    n_clients=5,
    db_size=200,
    buffer_fraction=0.1,
    think_time_mean=50.0,
    update_interarrival_mean=60.0,
    disconnect_prob=0.25,
    disconnect_time_mean=250.0,
    seed=1234,
)

# One data item is 65 536 bits at 10 kbps ~ 6.6 s on the air; with
# queueing a response can take tens of seconds, so the retry timeout
# must sit well above that or retries trigger spuriously.
RETRY = dict(uplink_timeout=60.0, max_retries=4, backoff_base=2.0)

#: Instrumentation-only keys: fault telemetry (absent on the seed) and
#: kernel telemetry (arming an inert timer layer schedules/cancels timer
#: events without changing any simulated behaviour).
TELEMETRY_KEYS = (".fault_", "kernel.")


def visible(raw):
    """The raw snapshot minus instrumentation-telemetry keys."""
    return {
        k: v for k, v in raw.items() if not any(t in k for t in TELEMETRY_KEYS)
    }


class TestZeroFaultEquivalence:
    """An inert fault layer must not move a single bit."""

    @pytest.mark.parametrize("scheme", ["ts", "afw", "checking"])
    def test_all_zero_config_is_bit_identical(self, scheme):
        baseline = run_simulation(BASE, UNIFORM, scheme)
        nulled = run_simulation(
            BASE.with_(
                downlink_faults=FaultConfig(), uplink_faults=FaultConfig()
            ),
            UNIFORM,
            scheme,
        )
        assert visible(nulled.raw) == visible(baseline.raw)
        # The telemetry keys exist but report a silent layer.
        assert nulled.counter("downlink.fault_judged") == 0.0
        assert nulled.counter("uplink.fault_drops") == 0.0
        assert nulled.goodput_ratio == 1.0

    @pytest.mark.parametrize("scheme", ["ts", "aaw"])
    def test_retry_layer_is_inert_on_pristine_medium(self, scheme):
        """With no loss, a generous timeout never fires: identical runs."""
        baseline = run_simulation(BASE, UNIFORM, scheme)
        armed = run_simulation(
            BASE.with_(uplink_timeout=10_000.0, max_retries=4),
            UNIFORM,
            scheme,
        )
        assert visible(armed.raw) == visible(baseline.raw)
        assert armed.retries == 0.0
        assert armed.counter(m.FETCH_TIMEOUTS) == 0.0

    def test_baseline_emits_no_fault_telemetry(self):
        baseline = run_simulation(BASE, UNIFORM, "ts")
        assert not any(".fault_" in k for k in baseline.raw)
        assert baseline.goodput_ratio == 1.0


class TestUplinkLossRecovery:
    def run_lossy(self, scheme, drop, **over):
        params = BASE.with_(
            uplink_faults=FaultConfig(drop_prob=drop), **{**RETRY, **over}
        )
        return params, run_simulation(params, UNIFORM, scheme)

    @pytest.mark.parametrize("scheme", ["ts", "afw", "aaw"])
    def test_moderate_loss_retries_and_terminates(self, scheme):
        params, result = self.run_lossy(scheme, 0.3)
        assert result.queries_answered > 0
        assert result.retries > 0
        # Every generated query terminated: at most one per client can
        # still be in flight when the clock stops.
        in_flight = result.counter(m.QUERIES_GENERATED) - (
            result.queries_answered
        )
        assert 0 <= in_flight <= params.n_clients
        # Exactness survives the loss.
        assert result.stale_hits == 0.0
        assert result.counter(m.FETCH_TIMEOUTS) >= result.retries

    def test_total_blackout_gives_up_gracefully(self):
        """100% uplink loss: bounded retries, then the item goes unserved."""
        params, result = self.run_lossy(
            "ts", 1.0, uplink_timeout=30.0, max_retries=1
        )
        assert result.fetch_failures > 0
        assert result.counter(m.RETRIES) > 0
        # Cache hits can still answer queries; nothing hangs.
        in_flight = result.counter(m.QUERIES_GENERATED) - (
            result.queries_answered
        )
        assert 0 <= in_flight <= params.n_clients
        assert result.stale_hits == 0.0

    def test_checking_scheme_survives_uplink_loss(self):
        _params, result = self.run_lossy("checking", 0.3)
        assert result.queries_answered > 0
        assert result.stale_hits == 0.0
        assert result.retries > 0

    def test_corrupted_uplink_is_counted_and_shed(self):
        params = BASE.with_(
            uplink_faults=FaultConfig(bit_error_rate=2e-4), **RETRY
        )
        result = run_simulation(params, UNIFORM, "ts")
        assert result.counter(m.MALFORMED_UPLINK) > 0
        assert result.stale_hits == 0.0
        assert result.queries_answered > 0


class TestDownlinkLossRecovery:
    def test_dropped_reports_are_detected_and_absorbed(self):
        """Lost IRs show up as gaps; the window makes them harmless."""
        params = BASE.with_(
            downlink_faults=FaultConfig(drop_prob=0.2), **RETRY
        )
        result = run_simulation(params, UNIFORM, "ts")
        assert result.counter(m.IR_GAPS) > 0
        assert result.stale_hits == 0.0
        assert result.queries_answered > 0

    def test_corrupted_reports_are_detected(self):
        """Bit errors big enough to hit kilobit reports but spare tiny
        data items: undecodable IRs are counted and treated as missed."""
        params = BASE.with_(
            item_size_bytes=64,
            downlink_faults=FaultConfig(bit_error_rate=2e-4),
            **RETRY,
        )
        result = run_simulation(params, UNIFORM, "ts")
        assert result.counter(m.IR_CORRUPTED) > 0
        assert result.counter(m.IR_GAPS) > 0
        assert result.stale_hits == 0.0
        assert result.queries_answered > 0

    @pytest.mark.parametrize("scheme", ["afw", "aaw"])
    def test_adaptive_schemes_salvage_through_loss(self, scheme):
        params = BASE.with_(
            downlink_faults=FaultConfig(drop_prob=0.15),
            uplink_faults=FaultConfig(drop_prob=0.15),
            **RETRY,
        )
        result = run_simulation(params, UNIFORM, scheme)
        assert result.queries_answered > 0
        assert result.stale_hits == 0.0
        assert result.goodput_ratio < 1.0

    def test_bursty_loss_is_reproducible(self):
        """Gilbert-Elliott runs are a pure function of the seed."""
        params = BASE.with_(
            downlink_faults=FaultConfig(
                ge_good_to_bad=0.05, ge_bad_to_good=0.3, ge_bad_drop_prob=1.0
            ),
            **RETRY,
        )
        a = run_simulation(params, UNIFORM, "ts")
        b = run_simulation(params, UNIFORM, "ts")
        assert a.raw == b.raw
        assert a.counter("downlink.fault_bursts") > 0
        assert a.stale_hits == 0.0


class TestServerRobustness:
    def test_pending_tlb_buffer_is_bounded(self):
        """With capacity 1 and several concurrently reconnecting clients,
        the server sheds (and counts) the overflow instead of growing."""
        params = BASE.with_(
            simulation_time=6000.0,
            n_clients=10,
            disconnect_prob=0.5,
            disconnect_time_mean=100.0,
            window_intervals=1,  # nearly every reconnect needs salvage
            max_pending_tlbs=1,
        )
        result = run_simulation(params, UNIFORM, "afw")
        assert result.counter("server.tlb_overflow") > 0
        assert result.stale_hits == 0.0
        assert result.queries_answered > 0

    def test_unbounded_buffer_never_overflows(self):
        result = run_simulation(BASE, UNIFORM, "afw")
        assert result.counter("server.tlb_overflow") == 0.0


class TestResultProperties:
    def test_goodput_ratio_reflects_loss(self):
        params = BASE.with_(downlink_faults=FaultConfig(drop_prob=0.5), **RETRY)
        result = run_simulation(params, UNIFORM, "ts")
        judged = result.counter("downlink.fault_judged")
        drops = result.counter("downlink.fault_drops")
        assert judged > 0 and drops > 0
        assert result.goodput_ratio == pytest.approx((judged - drops) / judged)
