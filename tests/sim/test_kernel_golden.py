"""Golden equivalence for the kernel/dispatch hot-path optimizations.

The perf PR rewired the DES kernel (timeout fast lane, inlined run
loop), the channel's receiver dispatch (destination index + listening
filter), the metrics plumbing (bound handles) and the report builders
(memoized recency scans).  None of that may change *what* is simulated:
this suite pins a wide slice of ``SimulationResult`` — traffic volumes,
cache behaviour, latency moments (order-sensitive Welford sums) and
channel utilization — for the four evaluated schemes plus BS, at a
config chosen to exercise disconnection (doze/wake listening churn),
salvage uploads, checking round-trips and data coalescing.

The pinned numbers were captured from the PRE-optimization kernel (seed
lineage); the optimized kernel must reproduce them bit-for-bit on the
pristine medium.  Lossy configs are exercised separately (the dispatch
change legitimately re-sequences fault draws; see CHANGES.md).

Regenerate (only for an intentional, explained re-pin)::

    PYTHONPATH=src:tests python -m sim.test_kernel_golden
"""

import pytest

from repro.sim import SystemParams, UNIFORM, run_simulation

PARAMS = SystemParams(
    simulation_time=3000.0,
    n_clients=10,
    db_size=400,
    buffer_fraction=0.1,
    think_time_mean=40.0,
    update_interarrival_mean=80.0,
    disconnect_prob=0.3,
    disconnect_time_mean=300.0,
    seed=4321,
)

#: Metrics pinned per scheme, in tuple order.  Deliberately a fixed name
#: list (not the whole raw dict): eager handle binding may add
#: zero-valued keys, but every number that existed before must not move.
OBSERVED = (
    "queries.generated",
    "queries.answered",
    "cache.hits",
    "cache.misses",
    "cache.full_drops",
    "cache.stale_hits",
    "uplink.validation_bits",
    "uplink.request_bits",
    "downlink.ir_bits",
    "downlink.data_bits",
    "downlink.validity_bits",
    "client.disconnections",
    "adaptive.tlb_uploads",
    "checking.requests",
    "data.coalesced",
    "query.latency.count",
    "query.latency.mean",
    "query.latency.max",
    "downlink.utilization",
    "uplink.utilization",
    "downlink.bits_delivered",
    "uplink.bits_delivered",
)

GOLDEN = {
    "aaw": (271.0, 271.0, 23.0, 248.0, 0.0, 0.0, 864.0, 1015808.0, 64287.0, 16252928.0, 0.0, 74.0, 27.0, 0.0, 0.0, 271, 22.786564453690296, 54.65804902253262, 0.5438910000000058, 0.03388906666666429, 16316730.0, 1016672.0),
    "afw": (271.0, 271.0, 23.0, 248.0, 0.0, 0.0, 768.0, 1015808.0, 72531.0, 16187392.0, 0.0, 74.0, 24.0, 0.0, 1.0, 271, 22.86029508099656, 54.59744902253237, 0.5419812666666726, 0.03388586666666418, 16259438.0, 1016576.0),
    "bs": (274.0, 273.0, 23.0, 250.0, 0.0, 0.0, 0.0, 1024000.0, 173100.0, 16318464.0, 0.0, 75.0, 0.0, 0.0, 1.0, 273, 21.89232658901305, 51.66687440914643, 0.5496803333333384, 0.03413333333333027, 16490410.0, 1024000.0),
    "checking": (276.0, 274.0, 23.0, 251.0, 0.0, 0.0, 47068.0, 1028096.0, 53521.0, 16449536.0, 1148.0, 76.0, 0.0, 29.0, 0.0, 274, 20.58332554966814, 46.27612686965131, 0.5501240000000056, 0.035838799999997124, 16503720.0, 1075164.0),
    "ts": (273.0, 272.0, 9.0, 263.0, 28.0, 0.0, 0.0, 1077248.0, 53521.0, 17235968.0, 0.0, 75.0, 0.0, 0.0, 0.0, 272, 22.216030363609786, 49.84248345844662, 0.5763001333333394, 0.03590826666666343, 17289004.0, 1077248.0),
}


def observe(scheme):
    result = run_simulation(PARAMS, UNIFORM, scheme)
    return tuple(result.raw.get(name, 0.0) for name in OBSERVED)


@pytest.mark.parametrize("scheme", sorted(GOLDEN))
def test_optimized_kernel_matches_pre_optimization_pins(scheme):
    assert observe(scheme) == GOLDEN[scheme]


if __name__ == "__main__":
    for scheme in sorted(GOLDEN):
        print(f'    "{scheme}": {observe(scheme)!r},')
