"""The Zipf popularity knob: validated, correctly skewed, and inert
(bit-identical draws) when left unset."""

import math
from collections import Counter

import pytest

from repro.des.rng import RandomStream
from repro.sim.workload import HOTCOLD, AccessPattern, Region, Workload

N = 200
DRAWS = 20_000


def _picks(pattern: AccessPattern, n: int, seed: int = 7) -> list:
    stream = RandomStream(seed, "test/zipf")
    return [pattern.pick(stream) for _ in range(n)]


# ------------------------------------------------------------- validation


def test_zipf_alpha_must_be_positive():
    with pytest.raises(ValueError, match="zipf_alpha must be > 0"):
        AccessPattern(N, zipf_alpha=0.0)
    with pytest.raises(ValueError, match="zipf_alpha must be > 0"):
        AccessPattern(N, zipf_alpha=-1.0)


def test_zipf_excludes_hot_region():
    with pytest.raises(ValueError, match="exclusive"):
        AccessPattern(N, hot=Region(0, 9), hot_prob=0.8, zipf_alpha=1.0)


# --------------------------------------------------------------- the law


def test_zipf_draws_stay_in_range():
    picks = _picks(AccessPattern(N, zipf_alpha=1.2), DRAWS)
    assert min(picks) >= 0
    assert max(picks) <= N - 1


def test_zipf_frequencies_follow_the_exponent():
    alpha = 1.0
    counts = Counter(_picks(AccessPattern(N, zipf_alpha=alpha), DRAWS))
    # Rank 1 vs rank 2: expected ratio 2**alpha; allow sampling noise.
    ratio = counts[0] / counts[1]
    assert math.isclose(ratio, 2.0**alpha, rel_tol=0.25)
    # Popularity is concentrated at the low ids (the "hot" convention).
    top_decile = sum(counts[i] for i in range(N // 10))
    assert top_decile > 0.5 * DRAWS


def test_higher_alpha_is_more_skewed():
    flat = Counter(_picks(AccessPattern(N, zipf_alpha=0.5), DRAWS))
    steep = Counter(_picks(AccessPattern(N, zipf_alpha=2.0), DRAWS))
    assert steep[0] > flat[0]


def test_zipf_is_deterministic_per_seed():
    pattern = AccessPattern(N, zipf_alpha=1.2)
    assert _picks(pattern, 500, seed=3) == _picks(pattern, 500, seed=3)


def test_zipf_warm_fill_takes_the_top_ranks():
    pattern = AccessPattern(N, zipf_alpha=1.2)
    stream = RandomStream(7, "test/zipf")
    assert pattern.warm_fill(stream, 16) == list(range(16))
    assert pattern.warm_fill(stream, 10 * N) == list(range(N))


# ---------------------------------------------------- default-off safety


def test_unset_zipf_is_bit_identical_to_the_two_region_path():
    plain = AccessPattern(N, hot=Region(0, 19), hot_prob=0.8)
    spelled = AccessPattern(
        N, hot=Region(0, 19), hot_prob=0.8, zipf_alpha=None
    )
    assert _picks(plain, 1000) == _picks(spelled, 1000)


def test_preset_workloads_keep_zipf_off():
    pattern = HOTCOLD.query_pattern(n_items=1000)
    assert pattern.zipf_alpha is None


def test_workload_plumbs_query_zipf_alpha():
    wl = Workload(name="ZIPF", query_zipf_alpha=0.95)
    pattern = wl.query_pattern(n_items=N)
    assert pattern.zipf_alpha == 0.95
    assert "zipf" in repr(pattern)
    # The update side stays uniform: Table 2 updates are uniform and the
    # knob deliberately touches queries only.
    assert wl.update_pattern(n_items=N).zipf_alpha is None
