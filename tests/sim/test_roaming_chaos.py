"""Roaming-storm chaos campaigns: cell outages under the strict oracle.

Four guarantees are pinned here:

1. **Campaign safety** — every registered scheme survives a seeded
   multi-cell campaign (cell outages mid-run forcing mass handoffs)
   under *both* eager-push and lazy-pull propagation with zero stale
   hits, a balanced liveness ledger and a SAFE oracle verdict.
2. **The storm is real** — each campaign cell actually crashes cells,
   evacuates residents and hands clients off; the assertions cannot
   pass on a quiet run.
3. **Cooperative salvage pays** — with a fed cell's history amnesia
   (post-outage snapshot resync), neighbor backfills turn would-be full
   cache purges into ordinary salvages; switching cooperation off makes
   the same scenario measurably costlier (more full drops), never less
   safe.
4. **Reproducibility** — a multi-cell chaos run is a pure function of
   its seeds: identical params give identical raw snapshots.
"""

import pytest

from repro.chaos import ChaosConfig
from repro.sim import UNIFORM, run_simulation
from repro.sim.params import SystemParams
from repro.topology import EAGER_PUSH, LAZY_PULL, RoamingConfig, TopologyConfig

#: Fixed rotation (the run-time registry may hold test-registered
#: schemes): every scheme faces both propagation modes.
SCHEMES = ("aaw", "afw", "at", "bs", "checking", "gcore", "sig", "ts")

#: Sampled whole-cell outages: with MTBF 1500 s per cell over 4000 s on
#: four cells, every seed below produces several outages (asserted).
STORM = dict(cell_crash_mtbf=1500.0, cell_downtime_mean=300.0)


def storm_params(*, seed, propagation, chaos_seed, coop=True, **overrides):
    merged = dict(
        simulation_time=4000.0,
        n_clients=24,
        db_size=500,
        uplink_timeout=8.0,
        strict_staleness=True,
        disconnect_prob=0.3,
        disconnect_time_mean=200.0,
        seed=seed,
        chaos=ChaosConfig(seed=chaos_seed, **STORM),
        roaming=RoamingConfig(
            topology=TopologyConfig(kind="path", n_cells=4),
            propagation=propagation,
            roam_prob=0.3,
            sync_replay_intervals=10.0,
            cooperative_salvage=coop,
        ),
    )
    merged.update(overrides)
    return SystemParams(**merged)


class TestRoamingStormCampaign:
    """Seeds x propagation modes x schemes, all under the strict oracle."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("propagation", [EAGER_PUSH, LAZY_PULL])
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_campaign_cell_is_safe_and_live(self, seed, propagation, scheme):
        params = storm_params(seed=seed, propagation=propagation, chaos_seed=seed)
        result = run_simulation(params, UNIFORM, scheme)
        key = (seed, propagation, scheme)
        # Safety: the strict oracle ran throughout (any stale hit would
        # have raised); the counters double-book it.
        assert result.stale_hits == 0, key
        assert result.liveness_ok, key
        assert result.oracle_verdict == "SAFE", key
        # The storm is real: cells crashed, residents fled, roamers moved.
        assert result.counter("chaos.cell_crashes") > 0, key
        assert result.counter("roam.evacuations") > 0, key
        assert result.counter("roam.handoffs") > 0, key
        # Propagation ran in the configured mode.
        if propagation is EAGER_PUSH:
            assert result.counter("sync.pushes") > 0, key
        else:
            assert result.counter("sync.pulls") > 0, key

    @pytest.mark.parametrize("propagation", [EAGER_PUSH, LAZY_PULL])
    def test_campaign_is_reproducible(self, propagation):
        params = storm_params(seed=2, propagation=propagation, chaos_seed=2)
        a = run_simulation(params, UNIFORM, "aaw")
        b = run_simulation(params, UNIFORM, "aaw")
        assert a.raw == b.raw


class TestCooperativeSalvage:
    """Neighbor backfills convert full purges into ordinary salvages."""

    #: One scripted outage of (fed) cell 2: its restart resyncs via a
    #: bounded-replay snapshot, leaving an amnesia gap that long-dozing
    #: roamers' ``Tlb`` reports fall below — exactly what cooperation
    #: exists to fill.  Long doze times manufacture those roamers.
    SCENARIO = dict(
        chaos_seed=7,
        disconnect_prob=0.4,
        disconnect_time_mean=400.0,
        chaos=ChaosConfig(
            seed=7, cell_crashes_at=((2, 1000.0),), cell_downtime=300.0
        ),
    )

    def scenario_params(self, coop):
        over = dict(self.SCENARIO)
        over.pop("chaos_seed")
        return storm_params(
            seed=1, propagation=LAZY_PULL, chaos_seed=7, coop=coop, **over
        )

    @pytest.mark.parametrize("scheme", ["aaw", "afw"])
    def test_backfills_prevent_full_purges(self, scheme):
        on = run_simulation(self.scenario_params(True), UNIFORM, scheme)
        off = run_simulation(self.scenario_params(False), UNIFORM, scheme)
        # Cooperation engaged and was granted at least once...
        assert on.counter("coop.requests") > 0, scheme
        assert on.counter("coop.backfills") > 0, scheme
        # ...and it measurably reduced full cache drops vs the same
        # scenario without it.  Both runs stay safe either way.
        assert on.counter("cache.full_drops") < off.counter("cache.full_drops"), (
            scheme,
            on.counter("cache.full_drops"),
            off.counter("cache.full_drops"),
        )
        assert on.oracle_verdict == "SAFE", scheme
        assert off.oracle_verdict == "SAFE", scheme

    def test_refusals_are_honest_when_no_peer_can_vouch(self):
        # Crash the *gateway* instead: its restart raises the origin
        # amnesia floor, which the next snapshot propagates to every
        # replica — now no neighbor knows older history than any other,
        # every ask is refused, and the system degrades to full purges
        # (safe, just costlier).  Cooperation must never fake coverage.
        params = storm_params(
            seed=1,
            propagation=LAZY_PULL,
            chaos_seed=7,
            disconnect_prob=0.4,
            disconnect_time_mean=400.0,
            chaos=ChaosConfig(
                seed=7, cell_crashes_at=((0, 1000.0),), cell_downtime=300.0
            ),
        )
        result = run_simulation(params, UNIFORM, "aaw")
        assert result.counter("coop.backfills") == 0
        assert result.oracle_verdict == "SAFE"
