"""Tests for SystemParams (Table 1) validation and derived values."""

import pytest

from repro.sim import SystemParams


class TestDefaults:
    def test_table1_defaults(self):
        p = SystemParams()
        assert p.simulation_time == 100_000
        assert p.n_clients == 100
        assert p.db_size == 10_000
        assert p.item_size_bytes == 8192
        assert p.broadcast_interval == 20.0
        assert p.downlink_bps == 10_000
        assert p.control_message_bytes == 512
        assert p.think_time_mean == 100.0
        assert p.update_interarrival_mean == 100.0
        assert p.items_per_update_mean == 5.0
        assert p.window_intervals == 10

    def test_derived_quantities(self):
        p = SystemParams()
        assert p.cache_capacity == 200        # 2 % of 10000
        assert p.window_seconds == 200.0      # 10 * 20
        assert p.item_size_bits == 65536.0
        assert p.control_message_bits == 4096.0
        assert p.n_intervals == 5000
        assert p.effective_uplink_bps == 10_000  # defaults to downlink

    def test_uplink_override(self):
        p = SystemParams(uplink_bps=200.0)
        assert p.effective_uplink_bps == 200.0

    def test_cache_capacity_floor(self):
        p = SystemParams(db_size=10, buffer_fraction=0.01)
        assert p.cache_capacity == 1


class TestValidation:
    @pytest.mark.parametrize(
        "kw",
        [
            {"simulation_time": 0},
            {"n_clients": 0},
            {"db_size": 0},
            {"buffer_fraction": 0.0},
            {"buffer_fraction": 1.5},
            {"broadcast_interval": 0},
            {"downlink_bps": 0},
            {"uplink_bps": 0.0},
            {"disconnect_prob": -0.1},
            {"disconnect_prob": 1.1},
            {"window_intervals": 0},
            {"items_per_query": 0},
        ],
    )
    def test_rejects_bad_values(self, kw):
        with pytest.raises(ValueError):
            SystemParams(**kw)


class TestWith:
    def test_with_replaces_fields(self):
        p = SystemParams().with_(db_size=500, seed=9)
        assert p.db_size == 500
        assert p.seed == 9
        assert p.n_clients == 100  # untouched

    def test_with_revalidates(self):
        with pytest.raises(ValueError):
            SystemParams().with_(db_size=-1)

    def test_frozen(self):
        p = SystemParams()
        with pytest.raises(Exception):
            p.db_size = 7
