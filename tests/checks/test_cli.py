"""CLI exit-code contract (0 clean / 1 findings / 2 usage) and baseline
round-trips through ``python -m repro.checks``-equivalent invocations."""

import json

import pytest

from repro.checks.baseline import DEFAULT_BASELINE_NAME
from repro.checks.cli import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE, main

CLEAN_FILE = {"repro/analysis/ok.py": "x = 1\n"}
DIRTY_FILE = {"repro/sim/bad.py": "import random\n"}


def test_exit_codes_are_the_documented_contract():
    assert (EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE) == (0, 1, 2)


def test_clean_tree_exits_zero(tree, capsys):
    root = tree(CLEAN_FILE)
    assert main([str(root)]) == EXIT_CLEAN
    assert capsys.readouterr().out.strip() == "clean"


def test_findings_exit_one_with_formatted_lines(tree, capsys):
    root = tree(DIRTY_FILE)
    assert main([str(root)]) == EXIT_FINDINGS
    out = capsys.readouterr().out
    assert "repro/sim/bad.py:1: DET002 [error]" in out
    assert "1 finding(s)" in out


def test_select_runs_only_named_rules(tree, capsys):
    root = tree(
        {
            "repro/sim/bad.py": "import random\n",
            "repro/des/cold.py": "class Cold:\n    pass\n",
        }
    )
    assert main([str(root), "--select", "PERF001"]) == EXIT_FINDINGS
    out = capsys.readouterr().out
    assert "PERF001" in out
    assert "DET002" not in out


def test_unknown_select_code_is_usage_error(tree, capsys):
    root = tree(CLEAN_FILE)
    assert main([str(root), "--select", "NOPE001"]) == EXIT_USAGE
    assert capsys.readouterr().err.startswith("error:")


def test_empty_select_is_usage_error(tree, capsys):
    root = tree(CLEAN_FILE)
    assert main([str(root), "--select", " , "]) == EXIT_USAGE
    assert "empty --select" in capsys.readouterr().err


def test_missing_path_is_usage_error(capsys):
    assert main(["/no/such/tree-anywhere"]) == EXIT_USAGE
    assert "no such path" in capsys.readouterr().err


def test_unknown_flag_is_argparse_usage_error(tree):
    root = tree(CLEAN_FILE)
    with pytest.raises(SystemExit) as exc:
        main([str(root), "--definitely-not-a-flag"])
    assert exc.value.code == EXIT_USAGE


def test_list_rules_prints_catalog(capsys):
    assert main(["--list-rules"]) == EXIT_CLEAN
    out = capsys.readouterr().out
    for code in ("DET001", "DET002", "DET003", "PERF001", "ARCH001", "API001"):
        assert code in out


def test_bad_baseline_is_usage_error(tree, monkeypatch, tmp_path, capsys):
    root = tree(DIRTY_FILE)
    monkeypatch.chdir(tmp_path)
    (tmp_path / DEFAULT_BASELINE_NAME).write_text(
        '{"version": 99}', encoding="utf-8"
    )
    assert main([str(root)]) == EXIT_USAGE
    assert "bad baseline" in capsys.readouterr().err


def test_baseline_round_trip(tree, monkeypatch, tmp_path, capsys):
    root = tree(DIRTY_FILE)
    monkeypatch.chdir(tmp_path)

    # Record the current findings; the write itself exits 0.
    assert main([str(root), "--write-baseline"]) == EXIT_CLEAN
    out = capsys.readouterr().out
    assert "wrote 1 finding(s)" in out
    payload = json.loads(
        (tmp_path / DEFAULT_BASELINE_NAME).read_text(encoding="utf-8")
    )
    assert payload["version"] == 1
    assert payload["findings"][0]["code"] == "DET002"

    # Grandfathered: the default baseline is auto-loaded and the gate is
    # clean again.
    assert main([str(root)]) == EXIT_CLEAN
    assert "(baseline: 1 grandfathered)" in capsys.readouterr().out

    # --no-baseline reports the grandfathered finding again.
    assert main([str(root), "--no-baseline"]) == EXIT_FINDINGS
    assert "repro/sim/bad.py" in capsys.readouterr().out

    # A *new* finding still fails, and only the new one is printed.
    (root / "repro/sim/worse.py").write_text(
        "import time\nx = time.time()\n", encoding="utf-8"
    )
    assert main([str(root)]) == EXIT_FINDINGS
    out = capsys.readouterr().out
    assert "repro/sim/worse.py" in out
    assert "repro/sim/bad.py" not in out


def test_explicit_baseline_path(tree, tmp_path, capsys):
    root = tree(DIRTY_FILE)
    baseline = tmp_path / "custom-baseline.json"
    assert (
        main([str(root), "--write-baseline", "--baseline", str(baseline)])
        == EXIT_CLEAN
    )
    capsys.readouterr()
    assert baseline.exists()
    assert main([str(root), "--baseline", str(baseline)]) == EXIT_CLEAN
    assert "grandfathered" in capsys.readouterr().out


def test_module_entry_point_runs():
    # ``python -m repro.checks --list-rules`` must stay wired up.
    import os
    import subprocess
    import sys
    from pathlib import Path

    src = Path(__file__).resolve().parents[2] / "src"
    proc = subprocess.run(
        [sys.executable, "-m", "repro.checks", "--list-rules"],
        capture_output=True,
        text=True,
        env={**os.environ, "PYTHONPATH": str(src)},
    )
    assert proc.returncode == 0
    assert "DET001" in proc.stdout


def test_callgraph_dump_prints_edges_and_exits_clean(tree, capsys):
    root = tree(
        {
            "repro/sim/a.py": (
                "def helper():\n"
                "    return 1\n"
                "\n"
                "def entry():\n"
                "    return helper()\n"
            )
        }
    )
    assert main([str(root), "--callgraph-dump"]) == EXIT_CLEAN
    captured = capsys.readouterr()
    assert "repro/sim/a.py::entry -> repro/sim/a.py::helper" in captured.out
    assert "functions" in captured.err  # stats line goes to stderr


def test_callgraph_dump_missing_path_is_usage_error(capsys):
    assert main(["/no/such/tree-anywhere", "--callgraph-dump"]) == EXIT_USAGE
    assert "no such path" in capsys.readouterr().err


def test_jobs_flag_matches_serial_run(tree, capsys):
    root = tree(
        {
            "repro/sim/bad.py": "import random\n",
            "repro/sim/worse.py": "import random\n",
        }
    )
    assert main([str(root), "--no-baseline", "--jobs", "2"]) == EXIT_FINDINGS
    parallel_out = capsys.readouterr().out
    assert main([str(root), "--no-baseline"]) == EXIT_FINDINGS
    assert parallel_out == capsys.readouterr().out
