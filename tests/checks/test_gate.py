"""The gate over the real tree: clean as-is, and mutations that undo the
simulation invariants must trip it.

These are the acceptance tests for the whole engine: deleting
``__slots__`` from ``repro/des/event.py`` or adding a ``time.time()``
call to ``repro/sim/server.py`` has to fail the gate.
"""

from pathlib import Path

from repro.checks.engine import get_rule, run_checks

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def _copy_real(tmp_path: Path, rel: str, mutate=None) -> Path:
    """Copy ``src/<rel>`` into a tmp fixture tree, optionally mutated."""
    text = (REPO_SRC / rel).read_text(encoding="utf-8")
    if mutate is not None:
        text = mutate(text)
    out = tmp_path / rel.removeprefix("src/")
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(text, encoding="utf-8")
    return out


def test_real_tree_is_clean():
    assert run_checks([str(REPO_SRC)]) == []


def test_removing_slots_from_event_py_fails_the_gate(tmp_path):
    # Renaming the attribute keeps the file parseable while removing the
    # declarations PERF001 looks for.
    path = _copy_real(
        tmp_path,
        "repro/des/event.py",
        mutate=lambda t: t.replace("__slots__", "_slots_disabled"),
    )
    findings = run_checks([str(path)], rules=[get_rule("PERF001")])
    assert findings, "slotless event classes must trip PERF001"
    assert all(f.code == "PERF001" for f in findings)
    assert any("lacks __slots__" in f.message for f in findings)


def test_pristine_event_py_passes_perf001(tmp_path):
    path = _copy_real(tmp_path, "repro/des/event.py")
    assert run_checks([str(path)], rules=[get_rule("PERF001")]) == []


def test_wall_clock_in_server_py_fails_the_gate(tmp_path):
    path = _copy_real(
        tmp_path,
        "repro/sim/server.py",
        mutate=lambda t: t
        + "\nimport time\n\n\ndef _leak_wall_clock():\n    return time.time()\n",
    )
    findings = run_checks([str(path)], rules=[get_rule("DET001")])
    assert len(findings) == 1
    assert findings[0].code == "DET001"
    assert "wall-clock read time.time" in findings[0].message


def test_pristine_server_py_passes_det001(tmp_path):
    path = _copy_real(tmp_path, "repro/sim/server.py")
    assert run_checks([str(path)], rules=[get_rule("DET001")]) == []


def test_bare_randomness_in_update_generator_fails_the_gate(tmp_path):
    path = _copy_real(
        tmp_path,
        "repro/sim/model.py",
        mutate=lambda t: t + "\nimport random\n",
    )
    findings = run_checks([str(path)], rules=[get_rule("DET002")])
    assert [f.code for f in findings] == ["DET002"]


# ----------------------------------------------- service resilience gate


def _copy_service_tree(tmp_path, mutate_node=None) -> Path:
    """Copy the whole real ``repro/service`` package (SVC001 needs the
    hooks, the wrapper, and the node together), optionally mutating
    ``node.py``."""
    for f in sorted((REPO_SRC / "repro" / "service").glob("*.py")):
        _copy_real(
            tmp_path,
            f"repro/service/{f.name}",
            mutate=mutate_node if f.name == "node.py" else None,
        )
    return tmp_path


def test_pristine_service_tree_passes_the_resilience_gate(tmp_path):
    root = _copy_service_tree(tmp_path)
    assert run_checks([str(root)], rules=[get_rule("SVC001")]) == []


def test_unwrapping_a_backend_call_fails_svc001(tmp_path):
    # Strip call_with_retry from the L2 fetch on the CacheNode.get miss
    # path: the breaker/retry/deadline stack disappears and the gate
    # must notice.
    import re

    def unwrap(text: str) -> str:
        out, n = re.subn(
            r"call_with_retry\(\s*self\.clock,\s*"
            r"lambda: self\.backend\.backend_fetch\(item\),[^)]*\)",
            "self.backend.backend_fetch(item)",
            text,
            count=1,
        )
        assert n == 1, "mutation target not found in node.py"
        return out

    root = _copy_service_tree(tmp_path, mutate_node=unwrap)
    findings = run_checks([str(root)], rules=[get_rule("SVC001")])
    assert findings, "unwrapped backend call must trip SVC001"
    assert all(f.code == "SVC001" for f in findings)
    assert any(
        "backend_fetch" in f.message and "call_with_retry" in f.message
        for f in findings
    )


def test_blocking_sleep_in_service_fails_async001(tmp_path):
    def inject(text: str) -> str:
        assert "fetched = await call_with_retry(" in text
        return text.replace("import asyncio", "import asyncio\nimport time", 1).replace(
            "fetched = await call_with_retry(",
            "time.sleep(0); fetched = await call_with_retry(",
            1,
        )

    root = _copy_service_tree(tmp_path, mutate_node=inject)
    findings = run_checks([str(root)], rules=[get_rule("ASYNC001")])
    assert findings
    assert all(f.code == "ASYNC001" for f in findings)
