"""The gate over the real tree: clean as-is, and mutations that undo the
simulation invariants must trip it.

These are the acceptance tests for the whole engine: deleting
``__slots__`` from ``repro/des/event.py`` or adding a ``time.time()``
call to ``repro/sim/server.py`` has to fail the gate.
"""

from pathlib import Path

from repro.checks.engine import get_rule, run_checks

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def _copy_real(tmp_path: Path, rel: str, mutate=None) -> Path:
    """Copy ``src/<rel>`` into a tmp fixture tree, optionally mutated."""
    text = (REPO_SRC / rel).read_text(encoding="utf-8")
    if mutate is not None:
        text = mutate(text)
    out = tmp_path / rel.removeprefix("src/")
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(text, encoding="utf-8")
    return out


def test_real_tree_is_clean():
    assert run_checks([str(REPO_SRC)]) == []


def test_removing_slots_from_event_py_fails_the_gate(tmp_path):
    # Renaming the attribute keeps the file parseable while removing the
    # declarations PERF001 looks for.
    path = _copy_real(
        tmp_path,
        "repro/des/event.py",
        mutate=lambda t: t.replace("__slots__", "_slots_disabled"),
    )
    findings = run_checks([str(path)], rules=[get_rule("PERF001")])
    assert findings, "slotless event classes must trip PERF001"
    assert all(f.code == "PERF001" for f in findings)
    assert any("lacks __slots__" in f.message for f in findings)


def test_pristine_event_py_passes_perf001(tmp_path):
    path = _copy_real(tmp_path, "repro/des/event.py")
    assert run_checks([str(path)], rules=[get_rule("PERF001")]) == []


def test_wall_clock_in_server_py_fails_the_gate(tmp_path):
    path = _copy_real(
        tmp_path,
        "repro/sim/server.py",
        mutate=lambda t: t
        + "\nimport time\n\n\ndef _leak_wall_clock():\n    return time.time()\n",
    )
    findings = run_checks([str(path)], rules=[get_rule("DET001")])
    assert len(findings) == 1
    assert findings[0].code == "DET001"
    assert "wall-clock read time.time" in findings[0].message


def test_pristine_server_py_passes_det001(tmp_path):
    path = _copy_real(tmp_path, "repro/sim/server.py")
    assert run_checks([str(path)], rules=[get_rule("DET001")]) == []


def test_bare_randomness_in_update_generator_fails_the_gate(tmp_path):
    path = _copy_real(
        tmp_path,
        "repro/sim/model.py",
        mutate=lambda t: t + "\nimport random\n",
    )
    findings = run_checks([str(path)], rules=[get_rule("DET002")])
    assert [f.code for f in findings] == ["DET002"]
