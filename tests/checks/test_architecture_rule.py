"""ARCH001: layering DAG enforcement and import-cycle detection."""


def test_upward_import_is_violation(check):
    findings = check(
        {"repro/des/evil.py": "from repro.sim import server\n"},
        codes=["ARCH001"],
    )
    assert len(findings) == 1
    assert findings[0].path == "repro/des/evil.py"
    assert "layering violation: des may not import sim" in findings[0].message


def test_relative_upward_import_is_violation(check):
    findings = check(
        {
            "repro/reports/evil.py": "from ..schemes import base\n",
            "repro/schemes/base.py": "x = 1\n",
        },
        codes=["ARCH001"],
    )
    assert len(findings) == 1
    assert (
        "layering violation: reports may not import schemes"
        in findings[0].message
    )


def test_direct_and_transitive_allowed_imports_pass(check):
    findings = check(
        {
            # sim -> schemes is a direct edge; sim -> des only transitive
            # (sim -> schemes -> reports -> des).
            "repro/sim/ok.py": (
                "from repro.schemes import registry\n"
                "import repro.des\n"
            )
        },
        codes=["ARCH001"],
    )
    assert findings == []


def test_type_checking_block_is_exempt(check):
    findings = check(
        {
            "repro/des/tc.py": (
                "from typing import TYPE_CHECKING\n"
                "if TYPE_CHECKING:\n"
                "    from repro.sim import server\n"
            )
        },
        codes=["ARCH001"],
    )
    assert findings == []


def test_function_scoped_import_is_exempt(check):
    findings = check(
        {
            "repro/des/lazy.py": (
                "def f():\n"
                "    from repro.sim import server\n"
                "    return server\n"
            )
        },
        codes=["ARCH001"],
    )
    assert findings == []


def test_conditional_module_level_import_still_checked(check):
    findings = check(
        {
            "repro/des/cond.py": (
                "FLAG = False\n"
                "if FLAG:\n"
                "    from repro.sim import server\n"
            )
        },
        codes=["ARCH001"],
    )
    assert len(findings) == 1


def test_unknown_package_is_reported(check):
    findings = check(
        {"repro/newpkg/mod.py": "import repro.des\n"},
        codes=["ARCH001"],
    )
    assert len(findings) == 1
    assert "package 'newpkg' is not in the layering DAG" in findings[0].message


def test_unknown_import_target_is_reported(check):
    findings = check(
        {"repro/sim/mod.py": "from repro.mystery import thing\n"},
        codes=["ARCH001"],
    )
    assert len(findings) == 1
    assert (
        "import target package 'mystery' is not in the layering DAG"
        in findings[0].message
    )


def test_same_package_and_stdlib_imports_pass(check):
    findings = check(
        {
            "repro/des/a.py": (
                "import heapq\n"
                "from repro.des import event\n"
                "from .environment import Environment\n"
            )
        },
        codes=["ARCH001"],
    )
    assert findings == []


def test_cycle_reported_once(check):
    findings = check(
        {
            "repro/des/a.py": "import repro.net\n",
            "repro/net/b.py": "import repro.des\n",
        },
        codes=["ARCH001"],
    )
    cycles = [f for f in findings if f.message.startswith("import cycle:")]
    assert len(cycles) == 1
    assert cycles[0].message == "import cycle: des -> net -> des"
    # The des -> net edge is also a plain layering violation.
    violations = [f for f in findings if "layering violation" in f.message]
    assert len(violations) == 1
