"""Engine plumbing: suppressions, fingerprints, path scoping, registry."""

import pytest

from repro.checks.baseline import Baseline
from repro.checks.engine import (
    SYNTAX_ERROR_CODE,
    Finding,
    ModuleInfo,
    Severity,
    all_rules,
    get_rule,
    package_path_of,
    run_checks,
)

ALL_CODES = (
    "API001",
    "API002",
    "ARCH001",
    "ASYNC001",
    "ASYNC002",
    "CHK001",
    "DET001",
    "DET002",
    "DET003",
    "DET004",
    "PERF001",
    "SVC001",
)


# ---------------------------------------------------------------- registry


def test_all_rules_sorted_by_code():
    codes = [r.code for r in all_rules()]
    assert codes == sorted(codes)
    assert set(codes) == set(ALL_CODES)


def test_get_rule_unknown_code_raises():
    with pytest.raises(KeyError, match="unknown rule 'NOPE999'"):
        get_rule("NOPE999")


def test_rules_have_distinct_codes_and_descriptions():
    rules = all_rules()
    assert len({r.code for r in rules}) == len(rules)
    for rule in rules:
        assert rule.description
        assert isinstance(rule.severity, Severity)


# ------------------------------------------------------------ path scoping


def test_package_path_of_strips_src_prefix():
    assert package_path_of("src/repro/des/event.py") == "repro/des/event.py"


def test_package_path_of_anchors_at_first_repro_segment():
    assert (
        package_path_of("/tmp/fixtures/repro/sim/server.py")
        == "repro/sim/server.py"
    )


def test_package_path_of_passes_through_non_repro_paths():
    assert package_path_of("foo/bar.py") == "foo/bar.py"


def test_module_package_is_first_level_subpackage():
    mod = ModuleInfo.from_source("repro/des/event.py", "x = 1\n")
    assert mod.package == "des"
    top = ModuleInfo.from_source("repro/__init__.py", "")
    assert top.package == ""


def test_applies_to_include_and_exclude():
    det2 = get_rule("DET002")
    assert det2.applies_to("repro/sim/server.py")
    assert not det2.applies_to("repro/des/rng.py")  # excluded
    assert not det2.applies_to("repro/analysis/stats.py")  # not included


# ------------------------------------------------------------ suppressions


def test_coded_suppression_silences_that_code(check):
    findings = check(
        {"repro/sim/s.py": "import random  # checks: ignore[DET002]\n"},
        codes=["DET002"],
    )
    assert findings == []


def test_bare_suppression_silences_every_code(check):
    findings = check(
        {"repro/sim/s.py": "import random  # checks: ignore\n"},
        codes=["DET002"],
    )
    assert findings == []


def test_multi_code_suppression(check):
    findings = check(
        {"repro/sim/s.py": "import random  # checks: ignore[DET001, DET002]\n"},
        codes=["DET002"],
    )
    assert findings == []


def test_suppression_for_other_code_does_not_silence(check):
    findings = check(
        {"repro/sim/s.py": "import random  # checks: ignore[DET001]\n"},
        codes=["DET002"],
    )
    assert [f.code for f in findings] == ["DET002"]


def test_suppression_only_applies_to_its_own_line(check):
    findings = check(
        {
            "repro/sim/s.py": (
                "# checks: ignore[DET002]\n"
                "import random\n"
            )
        },
        codes=["DET002"],
    )
    assert [f.code for f in findings] == ["DET002"]


def test_is_suppressed_directly():
    mod = ModuleInfo.from_source(
        "repro/sim/s.py", "x = 1  # checks: ignore[DET001]\n"
    )
    assert mod.is_suppressed("DET001", 1)
    assert not mod.is_suppressed("DET002", 1)
    assert not mod.is_suppressed("DET001", 2)


# ------------------------------------------------- findings and the runner


def test_fingerprint_excludes_line_number():
    a = Finding(code="DET001", path="repro/sim/x.py", line=3, message="m")
    b = Finding(code="DET001", path="repro/sim/x.py", line=99, message="m")
    assert a.fingerprint == b.fingerprint == ("repro/sim/x.py", "DET001", "m")


def test_format_shows_location_code_and_severity():
    f = Finding(
        code="DET001", path="repro/sim/x.py", line=3, message="bad clock"
    )
    assert f.format() == "repro/sim/x.py:3: DET001 [error] bad clock"


def test_syntax_error_becomes_chk000(check):
    findings = check({"repro/sim/broken.py": "def broken(:\n"}, codes=[])
    assert len(findings) == 1
    assert findings[0].code == SYNTAX_ERROR_CODE
    assert "could not parse" in findings[0].message


def test_findings_sorted_by_path_then_line(check):
    findings = check(
        {
            "repro/sim/zz.py": "import random\n",
            "repro/sim/aa.py": "x = 1\nimport random\n",
        },
        codes=["DET002"],
    )
    assert [(f.path, f.line) for f in findings] == [
        ("repro/sim/aa.py", 2),
        ("repro/sim/zz.py", 1),
    ]


def test_run_checks_missing_path_raises():
    with pytest.raises(FileNotFoundError):
        run_checks(["/does/not/exist-anywhere"])


def test_baseline_round_trip_filters_grandfathered(check, tmp_path):
    findings = check(
        {"repro/sim/s.py": "import random\n"}, codes=["DET002"]
    )
    assert len(findings) == 1
    baseline = Baseline.from_findings(findings)
    path = tmp_path / "baseline.json"
    baseline.save(path)
    reloaded = Baseline.load(path)
    assert len(reloaded) == 1
    assert findings[0].fingerprint in reloaded
    again = run_checks(
        [str(tmp_path)], rules=[get_rule("DET002")], baseline=reloaded
    )
    assert again == []


def test_baseline_rejects_unknown_version(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text('{"version": 99, "findings": []}', encoding="utf-8")
    with pytest.raises(ValueError, match="version-1"):
        Baseline.load(path)
