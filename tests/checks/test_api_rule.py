"""API001: registered schemes implement the base.py hook surface.

The fixtures model the real convention: a bare ``raise
NotImplementedError`` in ``base.py`` marks a required hook, a messaged
raise marks an optional capability, anything else is a default.
"""

BASE = (
    "class ServerPolicy:\n"
    "    def build_report(self, ctx, now):\n"
    "        raise NotImplementedError\n"
    "\n"
    "    def on_tlb(self, ctx, client_id, tlb, now):\n"
    "        raise NotImplementedError('optional capability')\n"
    "\n"
    "\n"
    "class ClientPolicy:\n"
    "    def on_report(self, ctx, report):\n"
    "        raise NotImplementedError\n"
    "\n"
    "    def on_reconnect(self, ctx, now):\n"
    "        pass\n"
    "\n"
    "\n"
    "class Scheme:\n"
    "    def __init__(self, name, server_factory, client_factory, description):\n"
    "        self.name = name\n"
)

GOOD_SCHEME = (
    "from .base import ClientPolicy, Scheme, ServerPolicy\n"
    "\n"
    "\n"
    "class GoodServer(ServerPolicy):\n"
    "    def build_report(self, ctx, now):\n"
    "        return None\n"
    "\n"
    "\n"
    "class GoodClient(ClientPolicy):\n"
    "    def on_report(self, ctx, report):\n"
    "        return None\n"
    "\n"
    "\n"
    "GOOD_SCHEME = Scheme('good', GoodServer, GoodClient, 'fine')\n"
)

REGISTRY = "from .good import GOOD_SCHEME\n"


def _tree(**overrides):
    files = {
        "repro/schemes/base.py": BASE,
        "repro/schemes/good.py": GOOD_SCHEME,
        "repro/schemes/registry.py": REGISTRY,
    }
    files.update(
        {f"repro/schemes/{name}.py": text for name, text in overrides.items()}
    )
    return files


def test_complete_scheme_passes(check):
    assert check(_tree(), codes=["API001"]) == []


def test_missing_required_hook_flagged(check):
    incomplete = GOOD_SCHEME.replace("on_report", "handle_report")
    findings = check(_tree(good=incomplete), codes=["API001"])
    assert len(findings) == 1
    assert "never implements required hook on_report()" in findings[0].message
    assert "'good'" in findings[0].message


def test_optional_hook_may_stay_unimplemented(check):
    # Neither fixture class implements on_tlb (messaged raise in base.py);
    # the complete-scheme test already passes, this pins the reason.
    findings = check(_tree(), codes=["API001"])
    assert all("on_tlb" not in f.message for f in findings)


def test_misspelled_hook_flagged_as_typo(check):
    typo = GOOD_SCHEME.replace(
        "class GoodClient(ClientPolicy):\n",
        "class GoodClient(ClientPolicy):\n"
        "    def on_reconect(self, ctx, now):\n"
        "        pass\n"
        "\n",
    )
    findings = check(_tree(good=typo), codes=["API001"])
    assert len(findings) == 1
    assert (
        "defines on_reconect(), which is not a ClientPolicy hook"
        in findings[0].message
    )


def test_factory_not_subclassing_policy_flagged(check):
    rogue = GOOD_SCHEME.replace(
        "class GoodServer(ServerPolicy):", "class GoodServer:"
    )
    findings = check(_tree(good=rogue), codes=["API001"])
    assert len(findings) == 1
    assert (
        "server_factory GoodServer does not subclass ServerPolicy"
        in findings[0].message
    )


def test_hooks_inherited_through_intermediate_class_pass(check):
    shared = (
        "from .base import ClientPolicy\n"
        "\n"
        "\n"
        "class ReportingMixin(ClientPolicy):\n"
        "    def on_report(self, ctx, report):\n"
        "        return None\n"
    )
    child = (
        "from .base import ClientPolicy, Scheme, ServerPolicy\n"
        "from .shared import ReportingMixin\n"
        "\n"
        "\n"
        "class ChildServer(ServerPolicy):\n"
        "    def build_report(self, ctx, now):\n"
        "        return None\n"
        "\n"
        "\n"
        "class ChildClient(ReportingMixin):\n"
        "    pass\n"
        "\n"
        "\n"
        "CHILD_SCHEME = Scheme('child', ChildServer, ChildClient, 'ok')\n"
    )
    files = _tree(shared=shared, child=child)
    files["repro/schemes/registry.py"] = (
        "from .good import GOOD_SCHEME\n"
        "from .child import CHILD_SCHEME\n"
    )
    assert check(files, codes=["API001"]) == []


def test_registry_importing_unscanned_module_flagged(check):
    files = _tree()
    files["repro/schemes/registry.py"] = (
        "from .good import GOOD_SCHEME\n"
        "from .ghost import GHOST_SCHEME\n"
    )
    findings = check(files, codes=["API001"])
    assert len(findings) == 1
    assert (
        "registry imports repro/schemes/ghost.py but it was not scanned"
        in findings[0].message
    )


def test_rule_silent_without_registry_or_base(check):
    assert check({"repro/schemes/lone.py": "x = 1\n"}, codes=["API001"]) == []


# -- API002: the service tier's backend/broker surfaces ---------------------

SERVICE_IFACE = (
    "class L2Backend:\n"
    "    async def backend_fetch(self, item):\n"
    "        raise NotImplementedError\n"
    "\n"
    "    async def backend_check(self, client_id, entries):\n"
    "        raise NotImplementedError('optional capability')\n"
    "\n"
    "    async def backend_ping(self):\n"
    "        return True\n"
    "\n"
    "\n"
    "class IRBroker:\n"
    "    async def broker_publish(self, report):\n"
    "        raise NotImplementedError\n"
    "\n"
    "    def broker_subscribe(self, maxlen=None):\n"
    "        raise NotImplementedError\n"
)

GOOD_BACKEND = (
    "from .interfaces import L2Backend\n"
    "\n"
    "\n"
    "class MemoryBackend(L2Backend):\n"
    "    async def backend_fetch(self, item):\n"
    "        return item\n"
)


def _service_tree(**overrides):
    files = {
        "repro/service/interfaces.py": SERVICE_IFACE,
        "repro/service/memory.py": GOOD_BACKEND,
    }
    files.update(
        {f"repro/service/{name}.py": text for name, text in overrides.items()}
    )
    return files


def test_complete_backend_passes(check):
    assert check(_service_tree(), codes=["API002"]) == []


def test_backend_missing_required_hook_flagged(check):
    lazy = GOOD_BACKEND.replace("backend_fetch", "fetch")
    findings = check(_service_tree(memory=lazy), codes=["API002"])
    assert len(findings) == 1
    assert (
        "MemoryBackend subclasses L2Backend but never implements "
        "required hook backend_fetch()" in findings[0].message
    )


def test_backend_optional_hooks_may_stay_unimplemented(check):
    # GOOD_BACKEND implements neither backend_check (messaged raise)
    # nor backend_ping (default body) — and still passes.
    assert check(_service_tree(), codes=["API002"]) == []


def test_misspelled_delegation_method_flagged(check):
    wrapper = GOOD_BACKEND + (
        "\n"
        "\n"
        "class Wrapper(L2Backend):\n"
        "    async def backend_fetch(self, item):\n"
        "        return item\n"
        "\n"
        "    async def backend_pingg(self):\n"
        "        return True\n"
    )
    findings = check(_service_tree(memory=wrapper), codes=["API002"])
    assert len(findings) == 1
    assert "Wrapper defines backend_pingg()" in findings[0].message
    assert "not an L2Backend hook" in findings[0].message


def test_broker_surface_checked_with_its_own_prefix(check):
    broker = (
        "from .interfaces import IRBroker\n"
        "\n"
        "\n"
        "class Fanout(IRBroker):\n"
        "    async def broker_publish(self, report):\n"
        "        pass\n"
    )
    findings = check(_service_tree(fanout=broker), codes=["API002"])
    assert len(findings) == 1
    assert (
        "Fanout subclasses IRBroker but never implements required hook "
        "broker_subscribe()" in findings[0].message
    )


def test_non_prefixed_helpers_are_not_typo_flagged(check):
    helper = GOOD_BACKEND.replace(
        "        return item\n",
        "        return item\n"
        "\n"
        "    def snapshot(self):\n"
        "        return {}\n",
    )
    assert check(_service_tree(memory=helper), codes=["API002"]) == []


def test_api002_silent_without_interfaces_module(check):
    files = {"repro/service/memory.py": GOOD_BACKEND}
    assert check(files, codes=["API002"]) == []
