"""DET001 (wall clock), DET002 (bare randomness), DET003 (set iteration)."""

from repro.checks.engine import Severity

# ---------------------------------------------------------------- DET001


def test_det001_time_time_flagged(check):
    findings = check(
        {
            "repro/sim/clock.py": (
                "import time\n"
                "\n"
                "def stamp():\n"
                "    return time.time()\n"
            )
        },
        codes=["DET001"],
    )
    assert len(findings) == 1
    assert findings[0].code == "DET001"
    assert findings[0].line == 4
    assert "wall-clock read time.time" in findings[0].message


def test_det001_perf_counter_and_monotonic_flagged(check):
    findings = check(
        {
            "repro/des/t.py": (
                "import time\n"
                "a = time.perf_counter()\n"
                "b = time.monotonic()\n"
            )
        },
        codes=["DET001"],
    )
    assert sorted(f.line for f in findings) == [2, 3]


def test_det001_module_alias_flagged(check):
    findings = check(
        {"repro/net/t.py": "import time as clock\nx = clock.time()\n"},
        codes=["DET001"],
    )
    assert len(findings) == 1


def test_det001_datetime_now_flagged(check):
    findings = check(
        {
            "repro/db/t.py": (
                "import datetime\n"
                "a = datetime.datetime.now()\n"
                "b = datetime.date.today()\n"
            )
        },
        codes=["DET001"],
    )
    assert len(findings) == 2
    assert all("wall-clock read datetime" in f.message for f in findings)


def test_det001_from_datetime_import_flagged(check):
    findings = check(
        {
            "repro/chaos/t.py": (
                "from datetime import datetime\n"
                "x = datetime.utcnow()\n"
            )
        },
        codes=["DET001"],
    )
    assert len(findings) == 1


def test_det001_from_time_import_flagged(check):
    findings = check(
        {
            "repro/schemes/t.py": (
                "from time import time\n"
                "\n"
                "def stamp():\n"
                "    return time()\n"
            )
        },
        codes=["DET001"],
    )
    assert len(findings) == 1
    assert "(imported from time)" in findings[0].message


def test_det001_experiments_exempt_by_path(check):
    findings = check(
        {"repro/experiments/t.py": "import time\nx = time.time()\n"},
        codes=["DET001"],
    )
    assert findings == []


def test_det001_out_of_scope_package_exempt(check):
    findings = check(
        {"repro/analysis/t.py": "import time\nx = time.time()\n"},
        codes=["DET001"],
    )
    assert findings == []


def test_det001_time_as_local_name_not_flagged(check):
    findings = check(
        {
            "repro/sim/t.py": (
                "def f(time):\n"
                "    return time + 1\n"
            )
        },
        codes=["DET001"],
    )
    assert findings == []


def test_det001_sleep_not_flagged(check):
    findings = check(
        {"repro/sim/t.py": "import time\ntime.sleep\n"},
        codes=["DET001"],
    )
    assert findings == []


# ---------------------------------------------------------------- DET002


def test_det002_stdlib_random_import_and_use_flagged(check):
    findings = check(
        {
            "repro/sim/t.py": (
                "import random\n"
                "x = random.random()\n"
            )
        },
        codes=["DET002"],
    )
    assert len(findings) == 2
    assert "repro.des.rng named stream" in findings[0].message


def test_det002_numpy_random_attribute_flagged(check):
    findings = check(
        {
            "repro/des/t.py": (
                "import numpy as np\n"
                "gen = np.random.default_rng()\n"
            )
        },
        codes=["DET002"],
    )
    assert len(findings) == 1
    assert "bare numpy.random.default_rng" in findings[0].message


def test_det002_from_numpy_import_random_flagged(check):
    findings = check(
        {"repro/cache/t.py": "from numpy import random\n"},
        codes=["DET002"],
    )
    assert len(findings) == 1


def test_det002_rng_module_itself_excluded(check):
    findings = check(
        {
            "repro/des/rng.py": (
                "import numpy as np\n"
                "gen = np.random.default_rng()\n"
            )
        },
        codes=["DET002"],
    )
    assert findings == []


def test_det002_non_random_numpy_not_flagged(check):
    findings = check(
        {"repro/des/t.py": "import numpy as np\nx = np.arange(3)\n"},
        codes=["DET002"],
    )
    assert findings == []


# ---------------------------------------------------------------- DET003


def test_det003_for_over_set_literal_is_warning(check):
    findings = check(
        {
            "repro/des/t.py": (
                "for x in {1, 2}:\n"
                "    pass\n"
            )
        },
        codes=["DET003"],
    )
    assert len(findings) == 1
    assert findings[0].severity is Severity.WARNING
    assert "iterating a set" in findings[0].message


def test_det003_set_call_and_comprehension_flagged(check):
    findings = check(
        {
            "repro/sim/t.py": (
                "items = [3, 1]\n"
                "for x in set(items):\n"
                "    pass\n"
                "ys = [y for y in {i for i in items}]\n"
            )
        },
        codes=["DET003"],
    )
    assert sorted(f.line for f in findings) == [2, 4]


def test_det003_sorted_set_not_flagged(check):
    findings = check(
        {
            "repro/net/t.py": (
                "for x in sorted({1, 2}):\n"
                "    pass\n"
                "for y in [1, 2]:\n"
                "    pass\n"
            )
        },
        codes=["DET003"],
    )
    assert findings == []


def test_det003_scope_excludes_schemes(check):
    findings = check(
        {
            "repro/schemes/t.py": (
                "for x in {1, 2}:\n"
                "    pass\n"
            )
        },
        codes=["DET003"],
    )
    assert findings == []


def test_det003_frozenset_bound_name_iteration_flagged(check):
    findings = check(
        {
            "repro/sim/t.py": (
                "ids = frozenset({1, 2, 3})\n"
                "out = [i for i in ids]\n"
            )
        },
        codes=["DET003"],
    )
    assert [f.line for f in findings] == [2]
    assert "frozenset" in findings[0].message or "set" in findings[0].message


def test_det003_set_comprehension_bound_name_flagged(check):
    findings = check(
        {
            "repro/sim/t.py": (
                "xs = [3, 1, 2]\n"
                "uniq = {x for x in xs}\n"
                "for x in uniq:\n"
                "    pass\n"
            )
        },
        codes=["DET003"],
    )
    assert [f.line for f in findings] == [3]


def test_det003_identity_keyed_dict_keys_iteration_flagged(check):
    findings = check(
        {
            "repro/sim/t.py": (
                "class Tag:\n"
                "    pass\n"
                "table = {Tag(): 1, Tag(): 2}\n"
                "ks = [k for k in table.keys()]\n"
            )
        },
        codes=["DET003"],
    )
    assert [f.line for f in findings] == [4]
    assert "keys()" in findings[0].message


def test_det003_literal_keyed_dict_keys_not_flagged(check):
    # Insertion-ordered and value-hashed: iteration order is stable.
    findings = check(
        {
            "repro/sim/t.py": (
                "table = {'a': 1, 'b': 2}\n"
                "ks = [k for k in table.keys()]\n"
            )
        },
        codes=["DET003"],
    )
    assert findings == []


def test_det003_reassigned_name_loses_the_set_taint(check):
    # A name that is *sometimes* a list is not tracked: only names whose
    # every assignment is a set expression are hazardous.
    findings = check(
        {
            "repro/sim/t.py": (
                "ids = {1, 2}\n"
                "ids = sorted(ids)\n"
                "for i in ids:\n"
                "    pass\n"
            )
        },
        codes=["DET003"],
    )
    assert findings == []
