"""PERF001: hot-path classes must declare ``__slots__``."""


def test_perf001_slotless_class_in_des_flagged(check):
    findings = check(
        {
            "repro/des/thing.py": (
                "class Hot:\n"
                "    def __init__(self):\n"
                "        self.x = 1\n"
            )
        },
        codes=["PERF001"],
    )
    assert len(findings) == 1
    assert findings[0].code == "PERF001"
    assert "class Hot in a hot module lacks __slots__" in findings[0].message


def test_perf001_slots_declared_passes(check):
    findings = check(
        {
            "repro/des/thing.py": (
                "class Hot:\n"
                "    __slots__ = ('x',)\n"
            )
        },
        codes=["PERF001"],
    )
    assert findings == []


def test_perf001_annotated_slots_pass(check):
    findings = check(
        {
            "repro/cache/thing.py": (
                "from typing import Tuple\n"
                "class Hot:\n"
                "    __slots__: Tuple[str, ...] = ('x',)\n"
            )
        },
        codes=["PERF001"],
    )
    assert findings == []


def test_perf001_dataclass_slots_true_passes(check):
    findings = check(
        {
            "repro/cache/thing.py": (
                "from dataclasses import dataclass\n"
                "@dataclass(slots=True)\n"
                "class Hot:\n"
                "    x: int = 0\n"
            )
        },
        codes=["PERF001"],
    )
    assert findings == []


def test_perf001_plain_dataclass_flagged(check):
    findings = check(
        {
            "repro/cache/thing.py": (
                "from dataclasses import dataclass\n"
                "@dataclass\n"
                "class Hot:\n"
                "    x: int = 0\n"
            )
        },
        codes=["PERF001"],
    )
    assert len(findings) == 1


def test_perf001_exception_enum_protocol_exempt(check):
    findings = check(
        {
            "repro/des/thing.py": (
                "import enum\n"
                "from typing import Protocol\n"
                "class Boom(Exception):\n"
                "    pass\n"
                "class Kind(enum.Enum):\n"
                "    A = 1\n"
                "class Shape(Protocol):\n"
                "    x: int\n"
            )
        },
        codes=["PERF001"],
    )
    assert findings == []


def test_perf001_subclass_without_own_slots_flagged(check):
    findings = check(
        {
            "repro/des/thing.py": (
                "class Base:\n"
                "    __slots__ = ('x',)\n"
                "class Child(Base):\n"
                "    pass\n"
            )
        },
        codes=["PERF001"],
    )
    assert len(findings) == 1
    assert "class Child" in findings[0].message


def test_perf001_tuple_literal_in_sift_flagged(check):
    findings = check(
        {
            "repro/des/soa_heap.py": (
                "class EventHeap:\n"
                "    __slots__ = ('_when',)\n"
                "    def _sift_to_root(self, pos):\n"
                "        while pos > 0:\n"
                "            entry = (1.0, 2, 3)\n"
                "            pos -= 1\n"
            )
        },
        codes=["PERF001"],
    )
    assert len(findings) == 1
    assert "tuple literal in sift hot path _sift_to_root()" in findings[0].message


def test_perf001_list_literal_in_push_key_flagged(check):
    findings = check(
        {
            "repro/des/queues.py": (
                "class PriorityStore:\n"
                "    __slots__ = ('_kprio',)\n"
                "    def _push_key(self, kprio, kseq, item):\n"
                "        box = [kprio, kseq]\n"
            )
        },
        codes=["PERF001"],
    )
    assert len(findings) == 1
    assert "list literal in sift hot path _push_key()" in findings[0].message


def test_perf001_sift_annotations_and_unpacking_pass(check):
    findings = check(
        {
            "repro/des/soa_heap.py": (
                "from typing import Any, Tuple\n"
                "class EventHeap:\n"
                "    __slots__ = ('_when',)\n"
                "    def pop(self) -> Tuple[float, int, Any]:\n"
                "        a, b = self._when[0], self._when[1]\n"
                "        return a\n"
            )
        },
        codes=["PERF001"],
    )
    # The return annotation's Tuple[...] and the a, b unpacking target are
    # type/stack machinery, not allocations; the RHS (a, b) tuple IS one.
    assert len(findings) == 1
    assert findings[0].line == 5


def test_perf001_sift_scan_scoped_to_heap_modules(check):
    findings = check(
        {
            "repro/des/event.py": (
                "class Event:\n"
                "    __slots__ = ()\n"
                "    def push(self):\n"
                "        return (1, 2)\n"
            )
        },
        codes=["PERF001"],
    )
    assert findings == []


def test_perf001_scope_only_hot_modules(check):
    slotless = "class Cold:\n    pass\n"
    findings = check(
        {
            "repro/net/channel.py": slotless,  # hot: the message fast path
            "repro/net/other.py": slotless,  # net is otherwise not hot
            "repro/schemes/policy.py": slotless,  # never hot
            "repro/des/__init__.py": slotless,  # __init__ excluded
        },
        codes=["PERF001"],
    )
    assert [f.path for f in findings] == ["repro/net/channel.py"]
