"""CHK001 (unused suppressions): judged only when the named rules ran,
used suppressions stay silent, and a bare ignore cannot shield its own
unused-ness finding."""

from repro.checks.engine import run_checks


def test_used_suppression_is_not_flagged(check):
    findings = check(
        {"repro/sim/s.py": "import random  # checks: ignore[DET002]\n"},
        codes=["DET002", "CHK001"],
    )
    assert findings == []


def test_stale_coded_suppression_is_flagged(check):
    findings = check(
        {"repro/sim/s.py": "x = 1  # checks: ignore[DET002]\n"},
        codes=["DET002", "CHK001"],
    )
    assert [f.code for f in findings] == ["CHK001"]
    assert "suppresses no DET002 finding" in findings[0].message
    assert findings[0].severity.value == "warning"


def test_coded_suppression_not_judged_without_its_rule(check):
    # Only DET001 ran; the DET002 suppression might still be needed.
    findings = check(
        {"repro/sim/s.py": "x = 1  # checks: ignore[DET002]\n"},
        codes=["DET001", "CHK001"],
    )
    assert findings == []


def test_bare_suppression_judged_only_on_full_registry_run(check, tmp_path):
    files = {"repro/sim/s.py": "x = 1  # checks: ignore\n"}
    assert check(files, codes=["DET001", "DET002", "CHK001"]) == []
    findings = run_checks([str(tmp_path)])  # full registry
    assert [f.code for f in findings] == ["CHK001"]
    assert "any rule" in findings[0].message


def test_bare_suppression_does_not_shield_its_own_finding(check, tmp_path):
    # Would be unflaggable by construction otherwise; only an explicit
    # CHK001 code opts the line out.
    check({"repro/sim/s.py": "x = 1  # checks: ignore\n"}, codes=[])
    assert [f.code for f in run_checks([str(tmp_path)])] == ["CHK001"]


def test_explicit_chk001_suppression_opts_a_line_out(check):
    findings = check(
        {
            "repro/sim/s.py": (
                "x = 1  # checks: ignore[DET002, CHK001]\n"
            )
        },
        codes=["DET002", "CHK001"],
    )
    assert findings == []


def test_partially_used_multi_code_suppression_is_used(check):
    # The DET002 half fires, so the comment is load-bearing: no CHK001.
    findings = check(
        {
            "repro/sim/s.py": (
                "import random  # checks: ignore[DET001, DET002]\n"
            )
        },
        codes=["DET001", "DET002", "CHK001"],
    )
    assert findings == []
