"""Fixture-corpus tests for the interprocedural dataflow tier.

Each seeded-bug tree under ``fixtures/`` yields exactly its expected
finding(s); each clean counterpart yields none; the new codes baseline
and parallel-parse like every other rule.
"""

import time
from pathlib import Path

from repro.checks.baseline import Baseline
from repro.checks.engine import get_rule, run_checks

FIXTURES = Path(__file__).resolve().parent / "fixtures"
REPO_SRC = Path(__file__).resolve().parents[2] / "src"

#: The combined seeded-bug corpus: 4 DET004 + 1 SVC001 + 1 ASYNC001 +
#: 1 ASYNC002 findings when scanned together.
_SEEDED = (
    "det004_leak",
    "svc001_bypass",
    "async001_block",
    "async002_fire",
)
_SEEDED_CODES = ("ASYNC001", "ASYNC002", "DET004", "SVC001")


def _run(fixture: str, *codes: str):
    rules = [get_rule(c) for c in codes] if codes else None
    return run_checks([str(FIXTURES / fixture)], rules=rules)


# ---------------------------------------------------------------- DET004


def test_det004_leak_fixture_finds_each_seeded_escape():
    findings = _run("det004_leak", "DET004")
    assert [f.code for f in findings] == ["DET004"] * 4
    by_line = {f.line: f.message for f in findings}
    assert sorted(by_line) == [8, 12, 16, 23]
    assert "module-global 'STREAM'" in by_line[8]
    assert "class-attribute 'Roulette.table_stream'" in by_line[12]
    assert "not traceable" in by_line[16]
    assert "except/finally" in by_line[23]


def test_det004_cross_fixture_flags_the_dag_crossing_pass():
    findings = _run("det004_cross", "DET004")
    assert len(findings) == 1
    f = findings[0]
    assert f.code == "DET004"
    assert f.path == "repro/des/feeder.py"
    assert "outside the layering DAG" in f.message
    assert "'des'" in f.message and "'sim'" in f.message


def test_det004_clean_fixture_has_no_findings():
    assert _run("det004_clean", "DET004") == []


# ---------------------------------------------------------------- SVC001


def test_svc001_bypass_fixture_flags_only_the_unwrapped_call():
    findings = _run("svc001_bypass", "SVC001")
    assert len(findings) == 1
    f = findings[0]
    assert f.path == "repro/service/node.py"
    assert f.line == 14
    assert "backend_fetch" in f.message
    assert "call_with_retry" in f.message


def test_svc001_clean_fixture_has_no_findings():
    assert _run("svc001_clean", "SVC001") == []


# -------------------------------------------------------------- ASYNC001


def test_async001_fixture_flags_blocking_call_behind_sync_helper():
    findings = _run("async001_block", "ASYNC001")
    assert len(findings) == 1
    f = findings[0]
    assert "time.sleep" in f.message
    assert "_warm" in f.message  # the sync helper, reached from refresh()


# -------------------------------------------------------------- ASYNC002


def test_async002_fire_fixture_flags_the_dropped_task():
    findings = _run("async002_fire", "ASYNC002")
    assert len(findings) == 1
    assert "fire-and-forget create_task" in findings[0].message


def test_async002_clean_fixture_has_no_findings():
    assert _run("async002_clean", "ASYNC002") == []


# ---------------------------------------------------------------- CHK001


def test_chk001_fixture_flags_the_stale_suppression():
    findings = _run("chk001_stale")  # full registry: bare + coded judged
    assert [f.code for f in findings] == ["CHK001"]
    assert "unused suppression" in findings[0].message
    assert "DET002" in findings[0].message


def test_chk001_not_judged_when_the_named_rule_did_not_run():
    # DET002 did not run, so its suppression might still be load-bearing.
    assert _run("chk001_stale", "CHK001", "DET001") == []


# ------------------------------------------------- corpus-wide invariants


def _seeded_corpus_findings(jobs=None):
    paths = [str(FIXTURES / name) for name in _SEEDED]
    rules = [get_rule(c) for c in _SEEDED_CODES]
    return run_checks(paths, rules=rules, jobs=jobs)


def test_new_codes_round_trip_through_a_baseline(tmp_path):
    findings = _seeded_corpus_findings()
    assert {f.code for f in findings} == set(_SEEDED_CODES)
    assert len(findings) == 7
    path = tmp_path / "baseline.json"
    Baseline.from_findings(findings).save(path)
    reloaded = Baseline.load(path)
    assert len(reloaded) == 7
    paths = [str(FIXTURES / name) for name in _SEEDED]
    rules = [get_rule(c) for c in _SEEDED_CODES]
    assert run_checks(paths, rules=rules, baseline=reloaded) == []


def test_parallel_parse_matches_serial_findings():
    assert _seeded_corpus_findings(jobs=2) == _seeded_corpus_findings()


def test_whole_program_pass_on_src_stays_inside_the_ci_budget():
    # The CI gate runs the full registry (call graph + taint fixpoint)
    # over src/; keep that comfortably under the 10 s wall-clock budget.
    start = time.perf_counter()
    findings = run_checks([str(REPO_SRC)])
    elapsed = time.perf_counter() - start
    assert findings == []
    assert elapsed < 10.0, f"full dataflow pass took {elapsed:.1f}s"
