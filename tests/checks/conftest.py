"""Shared fixtures for the repro.checks self-tests.

Fixture trees are written under ``tmp_path`` with a ``repro/`` path
segment: :func:`repro.checks.engine.package_path_of` anchors scoping at
the first ``repro`` component, so ``<tmp>/repro/sim/x.py`` scopes
exactly like the real ``src/repro/sim/x.py``.
"""

from pathlib import Path
from typing import Dict, List, Optional, Sequence

import pytest

from repro.checks.engine import Finding, get_rule, run_checks


def make_tree(root: Path, files: Dict[str, str]) -> Path:
    """Write *files* (relative path -> source text) under *root*."""
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
    return root


@pytest.fixture
def tree(tmp_path: Path):
    """Build a fixture tree under ``tmp_path``; returns its root."""

    def _build(files: Dict[str, str]) -> Path:
        return make_tree(tmp_path, files)

    return _build


@pytest.fixture
def check(tmp_path: Path):
    """Build a fixture tree and run the engine over it.

    ``check(files, codes=["DET001"])`` runs just those rules;
    ``codes=None`` runs the full registry.
    """

    def _check(
        files: Dict[str, str], codes: Optional[Sequence[str]] = None
    ) -> List[Finding]:
        make_tree(tmp_path, files)
        rules = [get_rule(c) for c in codes] if codes is not None else None
        return run_checks([str(tmp_path)], rules=rules)

    return _check
