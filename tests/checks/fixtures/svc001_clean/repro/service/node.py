"""Clean counterpart for SVC001: every backend call from a public
CacheNode method goes through ``call_with_retry`` — including one
reached through a private helper."""

from .interfaces import L2Backend
from .retry import call_with_retry


class CacheNode:
    def __init__(self, backend: L2Backend) -> None:
        self.backend = backend

    async def get(self, item: int) -> int:
        return await self._fetch(item)

    async def _fetch(self, item: int) -> int:
        return await call_with_retry(
            None, lambda: self.backend.backend_fetch(item)
        )
