"""Clean counterpart for ASYNC002: every spawned task either gets a
done-callback or is returned to the caller."""

import asyncio


class Spawner:
    async def start(self) -> None:
        task = asyncio.create_task(self._loop())
        task.add_done_callback(self._reap)

    async def handoff(self):
        task = asyncio.create_task(self._loop())
        return task

    async def _loop(self) -> None:
        await asyncio.sleep(0)

    def _reap(self, task) -> None:
        task.exception()
