"""Seeded DET004 bug: a stream handle handed from ``des`` to ``sim``.

The function-scoped import keeps ARCH001 quiet (runtime inversion), but
passing the stream against the layering DAG is exactly the escape DET004
exists to catch (E2).
"""

from .rng import RandomStream


def feed() -> float:
    from repro.sim.consume import consume

    stream = RandomStream(3, "des/feeder")
    return consume(stream)  # E2: stream crosses des -> sim
