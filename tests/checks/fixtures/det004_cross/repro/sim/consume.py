"""Receiver side of the cross-DAG pass: the draw itself is traceable
(the parameter is tainted interprocedurally), so only the *pass* in
``repro/des/feeder.py`` is a finding."""


def consume(stream) -> float:
    return stream.uniform(0.0, 1.0)
