"""Seeded ASYNC002 bug: a task spawned and immediately forgotten — no
done-callback, never awaited, never returned, so its exceptions vanish."""

import asyncio


class Spawner:
    async def start(self) -> None:
        asyncio.create_task(self._loop())  # fire-and-forget

    async def _loop(self) -> None:
        await asyncio.sleep(0)
