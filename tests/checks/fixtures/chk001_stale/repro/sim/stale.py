"""Seeded CHK001 bug: a suppression comment left behind after the
violation it excused was refactored away."""


def add(a: int, b: int) -> int:
    return a + b  # checks: ignore[DET002]
