"""Seeded ASYNC001 bug: a blocking ``time.sleep`` in a sync helper that
is reachable from an async method — the interprocedural case a lexical
grep would miss."""

import time


class Warmer:
    async def refresh(self) -> None:
        self._warm()

    def _warm(self) -> None:
        time.sleep(0.1)  # blocks the event loop via refresh()
