"""Minimal resilience wrapper for the SVC001 fixtures."""


async def call_with_retry(clock, fn):
    return await fn()
