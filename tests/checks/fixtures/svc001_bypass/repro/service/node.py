"""Seeded SVC001 bug: one public CacheNode method calls the backend
directly, bypassing ``call_with_retry``; the other goes through the
wrapper and must stay clean."""

from .interfaces import L2Backend
from .retry import call_with_retry


class CacheNode:
    def __init__(self, backend: L2Backend) -> None:
        self.backend = backend

    async def get(self, item: int) -> int:
        return await self.backend.backend_fetch(item)  # bypass!

    async def get_wrapped(self, item: int) -> int:
        return await call_with_retry(
            None, lambda: self.backend.backend_fetch(item)
        )
