"""Minimal backend protocol for the SVC001 fixtures."""


class L2Backend:
    async def backend_fetch(self, item: int) -> int:
        raise NotImplementedError
