"""Clean counterpart for DET004: every draw is traceable to a named
stream (factory call, instance attribute, annotated parameter) and no
stream is stored in shared state or passed across the DAG."""

from repro.des.rng import RandomStream, RandomStreams


class Component:
    def __init__(self, streams: RandomStreams) -> None:
        self.stream = streams.stream("sim/component")

    def tick(self) -> float:
        return self.stream.exponential(2.0)


def helper(stream: RandomStream) -> bool:
    return stream.bernoulli(0.5)


def local_mint() -> float:
    streams = RandomStreams(11)
    try:
        return streams.stream("sim/local").uniform(0.0, 1.0)
    finally:
        pass
