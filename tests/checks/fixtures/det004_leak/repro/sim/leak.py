"""Seeded DET004 bugs: shared-state stores, an untraceable draw, and a
draw inside an except handler.  Each marked line must yield exactly one
finding; the try-body draw and the annotated-parameter draw must not.
"""

from repro.des.rng import RandomStream

STREAM = RandomStream(7, "sim/global")  # E1: module-global store


class Roulette:
    table_stream = RandomStream(7, "sim/table")  # E1: class-attribute store


def untraceable(gen) -> float:
    return gen.uniform(0.0, 1.0)  # E4: receiver not traceable to a stream


def fault_ordered(stream: RandomStream) -> float:
    try:
        return stream.uniform(0.0, 1.0)  # fine: annotated, not fault-ordered
    except ValueError:
        return stream.uniform(0.0, 0.5)  # E3: draw inside except handler
