"""Repo-wide test configuration: pinned Hypothesis profiles.

CI runs with ``HYPOTHESIS_PROFILE=ci`` (wired in
``.github/workflows/ci.yml``): ``derandomize=True`` makes every property
test explore the same example sequence on every run, so a red CI is
reproducible locally by exporting the same profile.  The default profile
keeps Hypothesis's randomized exploration for local development, where
finding *new* counterexamples is the point.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "ci",
    derandomize=True,
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("dev", max_examples=50, deadline=None)

settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))
