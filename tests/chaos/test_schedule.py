"""Unit tests for the deterministic chaos schedule expansion."""

import dataclasses

import pytest

from repro.chaos import MIN_DOWNTIME, ChaosConfig, ChaosSchedule, ClockModel
from repro.des import RandomStreams

HORIZON = 10_000.0
N_CLIENTS = 12


def build(config, horizon=HORIZON, n_clients=N_CLIENTS, master_seed=0):
    return ChaosSchedule.build(
        config, horizon=horizon, n_clients=n_clients,
        streams=RandomStreams(master_seed),
    )


class TestDeterminism:
    def test_same_config_same_plan(self):
        cfg = ChaosConfig(
            seed=5, server_crash_mtbf=1000.0, client_crash_mtbf=3000.0,
            clock_skew_max=8.0, clock_drift_max=0.1,
        )
        a, b = build(cfg), build(cfg)
        assert a.server_outages == b.server_outages
        assert a.client_crashes == b.client_crashes
        assert a.clocks == b.clocks

    def test_different_chaos_seed_different_plan(self):
        base = dict(server_crash_mtbf=1000.0, client_crash_mtbf=3000.0)
        a = build(ChaosConfig(seed=1, **base))
        b = build(ChaosConfig(seed=2, **base))
        assert a.server_outages != b.server_outages
        assert a.client_crashes != b.client_crashes

    def test_chaos_streams_do_not_touch_simulation_streams(self):
        # Drawing the chaos plan must not perturb any named simulation
        # stream (common random numbers across chaos on/off).
        streams = RandomStreams(0)
        before = streams.stream("client-0/think").exponential(10.0)
        streams2 = RandomStreams(0)
        ChaosSchedule.build(
            ChaosConfig(seed=3, server_crash_mtbf=500.0, clock_skew_max=4.0),
            horizon=HORIZON, n_clients=N_CLIENTS, streams=streams2,
        )
        after = streams2.stream("client-0/think").exponential(10.0)
        assert before == after


class TestServerOutages:
    def test_sampled_outages_ordered_nonoverlapping_within_horizon(self):
        plan = build(ChaosConfig(seed=9, server_crash_mtbf=800.0,
                                 server_downtime_mean=200.0))
        assert plan.server_outages
        prev_end = 0.0
        for crash_at, restart_at in plan.server_outages:
            assert 0.0 < crash_at < HORIZON
            assert crash_at >= prev_end
            assert crash_at + MIN_DOWNTIME <= restart_at <= HORIZON
            prev_end = restart_at

    def test_explicit_schedule_is_used_verbatim(self):
        cfg = ChaosConfig(server_crashes_at=(100.0, 400.0), server_downtime=50.0)
        plan = build(cfg)
        assert plan.server_outages == ((100.0, 150.0), (400.0, 450.0))

    def test_explicit_schedule_clips_and_drops_overlaps(self):
        cfg = ChaosConfig(
            server_crashes_at=(100.0, 120.0, HORIZON + 1.0),
            server_downtime=50.0,
        )
        plan = build(cfg)
        # 120 lands inside the first outage; HORIZON+1 is past the end.
        assert plan.server_outages == ((100.0, 150.0),)


class TestClientsAndClocks:
    def test_client_crashes_sorted_and_bounded(self):
        plan = build(ChaosConfig(seed=2, client_crash_mtbf=2000.0))
        assert plan.client_crashes
        times = [t for t, _cid in plan.client_crashes]
        assert times == sorted(times)
        assert all(0.0 < t < HORIZON for t in times)
        assert all(0 <= cid < N_CLIENTS for _t, cid in plan.client_crashes)

    def test_explicit_client_crashes_merge_with_sampled(self):
        plan = build(ChaosConfig(client_crashes_at=((3, 500.0), (0, 100.0))))
        assert plan.client_crashes == ((100.0, 0), (500.0, 3))

    def test_clock_models_bounded(self):
        cfg = ChaosConfig(seed=4, clock_skew_max=10.0, clock_drift_max=0.2)
        plan = build(cfg)
        assert len(plan.clocks) == N_CLIENTS
        for clock in plan.clocks:
            assert -10.0 <= clock.skew <= 10.0
            assert 0.8 <= clock.rate <= 1.2
        assert plan.clock_for(0) is plan.clocks[0]

    def test_no_clocks_when_disabled(self):
        plan = build(ChaosConfig(seed=4, server_crash_mtbf=500.0))
        assert plan.clocks == ()
        assert plan.clock_for(0) is None

    def test_clock_model_semantics(self):
        clock = ClockModel(skew=-3.0, rate=1.5)
        assert clock.start_offset == 0.0       # negative skew clamps
        assert ClockModel(skew=2.0).start_offset == 2.0
        assert clock.local_duration(10.0) == 15.0


class TestValidation:
    @pytest.mark.parametrize("field, value", [
        ("server_crash_mtbf", -1.0),
        ("server_downtime_mean", -1.0),
        ("server_downtime", -0.5),
        ("client_crash_mtbf", -2.0),
        ("clock_skew_max", -1.0),
        ("clock_drift_max", 1.0),
        ("server_crashes_at", (0.0,)),
        ("client_crashes_at", ((-1, 5.0),)),
        ("client_crashes_at", ((0, 0.0),)),
    ])
    def test_bad_config_rejected(self, field, value):
        with pytest.raises(ValueError):
            ChaosConfig(**{field: value})

    def test_bad_build_arguments_rejected(self):
        with pytest.raises(ValueError):
            build(ChaosConfig(), horizon=0.0)
        with pytest.raises(ValueError):
            build(ChaosConfig(), n_clients=0)

    def test_null_detection(self):
        assert ChaosConfig().is_null
        assert not ChaosConfig(server_crash_mtbf=1.0).is_null
        assert not ChaosConfig(client_crashes_at=((0, 1.0),)).is_null
        assert not ChaosConfig(clock_drift_max=0.1).is_null

    def test_config_is_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            ChaosConfig().seed = 1
