"""OutageSchedule: window algebra and sampled-plan determinism."""

import pytest

from repro.chaos import OutageSchedule


def test_scripted_windows_and_down_at():
    sched = OutageSchedule.scripted((100.0, 180.0), (400.0, 520.0))
    assert not sched.down_at(99.9)
    assert sched.down_at(100.0)
    assert sched.down_at(179.9)
    assert not sched.down_at(180.0)  # half-open [start, end)
    assert sched.down_at(450.0)
    assert sched.total_downtime == 200.0


def test_windows_sort_and_merge_overlaps():
    sched = OutageSchedule([(50.0, 70.0), (10.0, 30.0), (25.0, 40.0)])
    assert sched.windows == [(10.0, 40.0), (50.0, 70.0)]


def test_empty_window_rejected():
    with pytest.raises(ValueError):
        OutageSchedule([(10.0, 10.0)])


def test_next_transition_walks_the_plan():
    sched = OutageSchedule.scripted((100.0, 180.0), (400.0, 520.0))
    assert sched.next_transition_after(0.0) == 100.0
    assert sched.next_transition_after(150.0) == 180.0
    assert sched.next_transition_after(180.0) == 400.0
    assert sched.next_transition_after(520.0) == float("inf")


def test_no_windows_means_always_up():
    sched = OutageSchedule()
    assert not sched.down_at(0.0)
    assert sched.next_transition_after(0.0) == float("inf")
    assert sched.total_downtime == 0.0


def test_sampled_is_a_pure_function_of_seed_and_name():
    kw = dict(horizon=10_000.0, mtbf=500.0, downtime_mean=60.0)
    a = OutageSchedule.sampled(7, name="l2", **kw)
    b = OutageSchedule.sampled(7, name="l2", **kw)
    assert a.windows == b.windows
    assert a.windows  # the horizon is long enough to sample something
    assert OutageSchedule.sampled(8, name="l2", **kw).windows != a.windows
    assert OutageSchedule.sampled(7, name="ir", **kw).windows != a.windows


def test_sampled_respects_horizon():
    sched = OutageSchedule.sampled(3, horizon=1000.0, mtbf=100.0, downtime_mean=50.0)
    for start, end in sched.windows:
        assert 0.0 < start < 1000.0
        assert end <= 1000.0
        assert end > start


def test_sampled_validation():
    with pytest.raises(ValueError):
        OutageSchedule.sampled(0, horizon=100.0, mtbf=0.0, downtime_mean=1.0)
