"""Unit tests for the safety oracle: liveness ledger + violation trace."""

import pytest

from repro.chaos import (
    LivenessReport,
    StalenessViolation,
    account_liveness,
    oracle_verdict,
)
from repro.sim.metrics import SimulationResult


def result_with(**counters):
    return SimulationResult(scheme="ts", workload="uniform", sim_time=100.0,
                            raw=dict(counters))


class TestLivenessAccounting:
    def test_balanced_ledger(self):
        r = result_with(**{"queries.generated": 100.0, "queries.answered": 97.0})
        report = account_liveness(r, n_clients=5)
        assert report.ok
        assert report.pending == 3
        assert "balanced" in str(report)

    def test_every_query_answered(self):
        r = result_with(**{"queries.generated": 50.0, "queries.answered": 50.0})
        assert account_liveness(r, n_clients=1).ok

    def test_vanished_queries_break_the_ledger(self):
        r = result_with(**{"queries.generated": 100.0, "queries.answered": 80.0})
        report = account_liveness(r, n_clients=5)
        assert not report.ok
        assert report.pending == 20
        assert "unanswered" in report.reason
        assert "BROKEN" in str(report)

    def test_overcounted_answers_break_the_ledger(self):
        r = result_with(**{"queries.generated": 10.0, "queries.answered": 11.0})
        report = account_liveness(r, n_clients=5)
        assert not report.ok
        assert "more answers" in report.reason

    def test_abandoned_fetches_are_a_cause_not_a_subtraction(self):
        # A failed fetch leaves its item unserved but the query still
        # terminates: the ledger must balance without special-casing.
        r = result_with(**{
            "queries.generated": 100.0,
            "queries.answered": 100.0,
            "client.fetch_failures": 7.0,
        })
        report = account_liveness(r, n_clients=5)
        assert report.ok
        assert report.abandoned_fetches == 7

    def test_report_is_frozen(self):
        report = LivenessReport(generated=1, answered=1, abandoned_fetches=0,
                                pending=0, n_clients=1, ok=True)
        with pytest.raises(AttributeError):
            report.ok = False


class TestOracleVerdict:
    def test_safe(self):
        r = result_with(**{"queries.generated": 10.0, "queries.answered": 8.0})
        assert oracle_verdict(r, n_clients=4) == "SAFE"

    def test_stale_dominates(self):
        r = result_with(**{"cache.stale_hits": 3.0,
                           "queries.generated": 100.0,
                           "queries.answered": 1.0})
        assert oracle_verdict(r, n_clients=4) == "STALE(3)"

    def test_stuck(self):
        r = result_with(**{"queries.generated": 100.0, "queries.answered": 90.0})
        assert oracle_verdict(r, n_clients=4) == "STUCK(10)"

    def test_falls_back_to_recorded_audit_without_n_clients(self):
        r = result_with(**{
            "oracle.liveness_ok": 0.0,
            "oracle.queries_pending": 12.0,
        })
        assert oracle_verdict(r) == "STUCK(12)"
        assert oracle_verdict(result_with()) == "SAFE"


class TestStalenessViolation:
    def test_carries_the_full_trace(self):
        exc = StalenessViolation(
            client_id=3, item=42, entry_version=7, entry_ts=100.0,
            effective_ts=110.0, tlb=140.0, certified_floor=120.0,
            epoch=2, now=150.5, update_times=(105.0, 130.0),
        )
        assert isinstance(exc, AssertionError)
        assert exc.client_id == 3 and exc.item == 42
        assert exc.update_times == (105.0, 130.0)
        message = str(exc)
        for fragment in ("client 3", "item 42", "version 7", "epoch 2",
                         "105.000", "130.000", "Tlb=140.000"):
            assert fragment in message

    def test_unknown_ground_truth_renders(self):
        exc = StalenessViolation(
            client_id=0, item=0, entry_version=0, entry_ts=0.0,
            effective_ts=0.0, tlb=0.0, certified_floor=0.0, epoch=0, now=0.0,
        )
        assert "[?]" in str(exc)
