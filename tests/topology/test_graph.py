"""Unit tests for the cell-graph layer (repro.topology).

The graph is pure data — no DES dependency — so these tests pin its
whole contract: builder shapes, shortest-path parents/depths rooted at
the gateway, and the validation errors that keep malformed topologies
out of the simulation.
"""

import pytest

from repro.topology import (
    EAGER_PUSH,
    LAZY_PULL,
    PARENT_CACHE,
    PROPAGATION_MODES,
    CellGraph,
    RoamingConfig,
    TopologyConfig,
)


class TestBuilders:
    def test_path_shape(self):
        g = CellGraph.path(4, 0.1)
        assert g.n_cells == 4
        assert g.neighbors(0) == (1,)
        assert g.neighbors(1) == (0, 2)
        assert g.neighbors(3) == (2,)
        assert [g.parent_of(c) for c in range(4)] == [0, 0, 1, 2]
        assert [g.depth(c) for c in range(4)] == [0, 1, 2, 3]
        assert g.max_depth == 3
        assert g.gateway_latency(3) == pytest.approx(0.3)

    def test_tree_shape(self):
        g = CellGraph.tree(7, 2, 0.05)
        # Breadth-first numbering: 0 -> (1, 2), 1 -> (3, 4), 2 -> (5, 6).
        assert g.neighbors(0) == (1, 2)
        assert g.neighbors(1) == (0, 3, 4)
        assert [g.parent_of(c) for c in range(1, 7)] == [0, 0, 1, 1, 2, 2]
        assert g.max_depth == 2
        # Parents always carry smaller ids (feeds wire in id order).
        assert all(g.parent_of(c) < c for c in range(1, 7))

    def test_grid_shape(self):
        g = CellGraph.grid(2, 3, 0.1)
        assert g.n_cells == 6
        # Cell id = r * cols + c; corner 0 touches right + down only.
        assert g.neighbors(0) == (1, 3)
        assert g.neighbors(4) == (1, 3, 5)
        # Two shortest paths to cell 4 tie on latency; the tie breaks
        # deterministically so parent/depth are stable run to run.
        assert g.depth(4) == 2
        assert g.parent_of(4) in (1, 3)
        assert g.gateway_latency(5) == pytest.approx(0.3)
        assert all(g.parent_of(c) < c for c in range(1, 6))

    def test_single_cell_graph_is_trivial(self):
        g = CellGraph(1, {})
        assert g.n_cells == 1
        assert g.neighbors(0) == ()
        assert g.max_depth == 0
        assert g.gateway_latency(0) == 0.0

    def test_shortest_path_prefers_low_latency_over_hop_count(self):
        # 0-2 direct costs 1.0; 0-1-2 costs 0.4: the parent is 1.
        g = CellGraph(3, {(0, 2): 1.0, (0, 1): 0.2, (1, 2): 0.2})
        assert g.parent_of(2) == 1
        assert g.depth(2) == 2
        assert g.gateway_latency(2) == pytest.approx(0.4)


class TestGraphValidation:
    def test_rejects_disconnected_graph(self):
        with pytest.raises(ValueError, match="unreachable"):
            CellGraph(3, {(0, 1): 0.1})

    def test_rejects_self_link(self):
        with pytest.raises(ValueError, match="self-link"):
            CellGraph(2, {(1, 1): 0.1})

    def test_rejects_out_of_range_link(self):
        with pytest.raises(ValueError, match="outside"):
            CellGraph(2, {(0, 5): 0.1})

    def test_rejects_nonpositive_latency(self):
        with pytest.raises(ValueError, match="positive latency"):
            CellGraph(2, {(0, 1): 0.0})

    def test_rejects_duplicate_link(self):
        with pytest.raises(ValueError, match="duplicate"):
            CellGraph(2, {(0, 1): 0.1, (1, 0): 0.2})

    def test_link_latency_requires_direct_link(self):
        g = CellGraph.path(3, 0.1)
        assert g.link_latency(1, 0) == 0.1  # order-insensitive
        with pytest.raises(ValueError, match="not directly linked"):
            g.link_latency(0, 2)


class TestConfigs:
    def test_build_dispatches_on_kind(self):
        assert TopologyConfig(kind="path", n_cells=3).build().max_depth == 2
        tree = TopologyConfig(kind="tree", n_cells=7, branching=2).build()
        assert tree.max_depth == 2
        grid = TopologyConfig(kind="grid", n_cells=6, grid_cols=3).build()
        assert grid.neighbors(0) == (1, 3)

    def test_single_cell_build_ignores_kind_details(self):
        g = TopologyConfig(kind="grid", n_cells=1).build()
        assert g.n_cells == 1 and g.links == {}

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(kind="ring"), "unknown topology kind"),
            (dict(n_cells=0), "n_cells"),
            (dict(link_latency=0.0), "link_latency"),
            (dict(kind="tree", branching=0), "branching"),
            (dict(kind="grid", n_cells=4), "grid_cols"),
            (dict(kind="grid", n_cells=5, grid_cols=3), "divide"),
        ],
    )
    def test_topology_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            TopologyConfig(**kwargs)

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(topology="path"), "TopologyConfig"),
            (dict(propagation="gossip"), "unknown propagation mode"),
            (dict(roam_prob=1.5), "roam_prob"),
            (dict(link_loss_prob=1.0), "link_loss_prob"),
            (dict(sync_margin=0.0), "sync_margin"),
            (dict(max_sync_retries=-1), "max_sync_retries"),
            (dict(sync_backoff=0.5), "sync_backoff"),
            (dict(sync_replay_intervals=0.0), "sync_replay_intervals"),
        ],
    )
    def test_roaming_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            RoamingConfig(**kwargs)

    def test_mode_constants(self):
        assert PROPAGATION_MODES == (EAGER_PUSH, LAZY_PULL, PARENT_CACHE)
        assert RoamingConfig().propagation == LAZY_PULL
        assert RoamingConfig(topology=TopologyConfig(n_cells=5)).n_cells == 5
