"""Tests for the ground-truth update log."""

import pytest

from repro.db import UpdateLog


class TestUpdateLog:
    def test_updated_in_half_open_interval(self):
        log = UpdateLog()
        log.record(1, 5.0)
        assert log.updated_in(1, after=4.0, up_to=5.0)      # (4, 5] contains 5
        assert not log.updated_in(1, after=5.0, up_to=9.0)  # (5, 9] excludes 5
        assert not log.updated_in(1, after=0.0, up_to=4.9)

    def test_unknown_item(self):
        assert not UpdateLog().updated_in(99, 0.0, 100.0)

    def test_multiple_updates(self):
        log = UpdateLog()
        for t in (1.0, 5.0, 9.0):
            log.record(2, t)
        assert log.updated_in(2, after=1.0, up_to=4.0) is False
        assert log.updated_in(2, after=1.0, up_to=5.0) is True
        assert log.updates_of(2) == [1.0, 5.0, 9.0]
        assert log.total == 3

    def test_non_monotone_rejected(self):
        log = UpdateLog()
        log.record(1, 5.0)
        with pytest.raises(ValueError):
            log.record(1, 4.0)

    def test_last_update_before(self):
        log = UpdateLog()
        for t in (1.0, 5.0, 9.0):
            log.record(7, t)
        assert log.last_update_before(7, up_to=6.0) == 5.0
        assert log.last_update_before(7, up_to=9.0) == 9.0
        assert log.last_update_before(7, up_to=0.5) == float("-inf")
        assert log.last_update_before(8, up_to=10.0) == float("-inf")
