"""Tests for the update transaction generator."""

import pytest

from repro.db import Database, UpdateGenerator, UpdateLog
from repro.des import Environment, RandomStreams


class UniformPattern:
    """Minimal pattern stub picking uniformly over [0, n)."""

    def __init__(self, n):
        self.n = n

    def pick(self, stream):
        return stream.randint(0, self.n - 1)


def make_gen(env, db, log=None, on_update=None, interarrival=10.0, items=3.0, seed=1):
    return UpdateGenerator(
        env,
        db,
        UniformPattern(db.n_items),
        interarrival_mean=interarrival,
        items_per_update_mean=items,
        stream=RandomStreams(seed).stream("updates"),
        log=log,
        on_update=on_update,
    )


class TestUpdateGenerator:
    def test_updates_happen_and_are_logged(self):
        env = Environment()
        db = Database(100)
        log = UpdateLog()
        gen = make_gen(env, db, log=log)
        env.run(until=1000)
        assert gen.transactions > 10
        assert db.total_updates == gen.items_updated == log.total
        assert db.distinct_updated > 0

    def test_transaction_rate_matches_interarrival(self):
        env = Environment()
        db = Database(1000)
        gen = make_gen(env, db, interarrival=10.0)
        env.run(until=20000)
        assert gen.transactions == pytest.approx(2000, rel=0.1)

    def test_mean_items_per_transaction(self):
        env = Environment()
        db = Database(10**6)  # large db so within-txn collisions are rare
        gen = make_gen(env, db, items=5.0)
        env.run(until=20000)
        assert gen.items_updated / gen.transactions == pytest.approx(5.0, rel=0.1)

    def test_all_items_in_one_txn_share_timestamp(self):
        env = Environment()
        db = Database(5)  # tiny db forces collisions; must not crash
        log = UpdateLog()
        make_gen(env, db, log=log, items=4.0)
        env.run(until=500)
        # each item's log times must be strictly increasing (dedup within txn)
        for item in range(5):
            times = log.updates_of(item)
            assert all(b > a for a, b in zip(times, times[1:]))

    def test_on_update_callback_fires_per_item(self):
        env = Environment()
        db = Database(100)
        calls = []
        gen = make_gen(env, db, on_update=lambda item, now: calls.append((item, now)))
        env.run(until=300)
        assert len(calls) == gen.items_updated

    def test_deterministic_given_seed(self):
        def run():
            env = Environment()
            db = Database(50)
            make_gen(env, db, seed=42)
            env.run(until=500)
            return list(db.iter_recency_desc())

        assert run() == run()

    def test_invalid_interarrival(self):
        env = Environment()
        with pytest.raises(ValueError):
            make_gen(env, Database(10), interarrival=0.0)
