"""Property-based tests for the database recency index (hypothesis)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Database

scenario = st.fixed_dictionaries(
    {
        "seed": st.integers(0, 100_000),
        "n_items": st.integers(1, 50),
        "n_updates": st.integers(0, 150),
    }
)


def apply_random_updates(cfg):
    rnd = random.Random(cfg["seed"])
    db = Database(cfg["n_items"])
    t = 0.0
    latest = {}
    for _ in range(cfg["n_updates"]):
        t += rnd.uniform(0.0, 2.0)  # ties possible (amount 0)
        item = rnd.randrange(cfg["n_items"])
        db.apply_update(item, t)
        latest[item] = t
    return db, latest, t


@settings(max_examples=100, deadline=None)
@given(scenario)
def test_recency_order_matches_latest_update_sort(cfg):
    db, latest, _t = apply_random_updates(cfg)
    order = db.recency_order()
    assert {item for item, _ in order} == set(latest)
    times = [ts for _item, ts in order]
    assert times == sorted(times, reverse=True)
    for item, ts in order:
        assert ts == latest[item]


@settings(max_examples=100, deadline=None)
@given(cfg=scenario, cutoff_frac=st.floats(0.0, 1.2))
def test_updated_since_agrees_with_ground_truth(cfg, cutoff_frac):
    db, latest, t_end = apply_random_updates(cfg)
    cutoff = cutoff_frac * max(t_end, 1.0)
    reported = dict(db.updated_since(cutoff))
    expected = {item: ts for item, ts in latest.items() if ts > cutoff}
    assert reported == expected


@settings(max_examples=100, deadline=None)
@given(scenario)
def test_version_counts_updates_per_item(cfg):
    rnd = random.Random(cfg["seed"])
    db = Database(cfg["n_items"])
    counts = {i: 0 for i in range(cfg["n_items"])}
    t = 0.0
    for _ in range(cfg["n_updates"]):
        t += rnd.uniform(0.01, 2.0)
        item = rnd.randrange(cfg["n_items"])
        db.apply_update(item, t)
        counts[item] += 1
    for item, expected in counts.items():
        version, _ts = db.read(item)
        assert version == expected
    assert db.total_updates == sum(counts.values())
