"""Tests for the server database and its recency index."""

import pytest

from repro.db import Database, NEVER


class TestBasics:
    def test_fresh_database(self):
        db = Database(10)
        assert db.read(0) == (0, NEVER)
        assert db.distinct_updated == 0
        assert db.latest_update_time() == NEVER

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Database(0)

    def test_apply_update_bumps_version_and_time(self):
        db = Database(10)
        db.apply_update(3, 5.0)
        assert db.read(3) == (1, 5.0)
        db.apply_update(3, 9.0)
        assert db.read(3) == (2, 9.0)
        assert db.total_updates == 2

    def test_out_of_range_item(self):
        db = Database(5)
        with pytest.raises(IndexError):
            db.apply_update(5, 1.0)
        with pytest.raises(IndexError):
            db.read(-1)

    def test_time_reversal_rejected(self):
        db = Database(5)
        db.apply_update(1, 10.0)
        with pytest.raises(ValueError):
            db.apply_update(1, 9.0)


class TestRecency:
    def test_updated_since_returns_most_recent_first(self):
        db = Database(10)
        db.apply_update(1, 1.0)
        db.apply_update(2, 2.0)
        db.apply_update(3, 3.0)
        assert db.updated_since(1.0) == [(3, 3.0), (2, 2.0)]

    def test_updated_since_cutoff_is_exclusive(self):
        db = Database(10)
        db.apply_update(1, 5.0)
        assert db.updated_since(5.0) == []
        assert db.updated_since(4.999) == [(1, 5.0)]

    def test_re_update_moves_to_front(self):
        db = Database(10)
        db.apply_update(1, 1.0)
        db.apply_update(2, 2.0)
        db.apply_update(1, 3.0)
        assert db.updated_since(0.0) == [(1, 3.0), (2, 2.0)]
        assert db.distinct_updated == 2

    def test_recency_order_with_limit(self):
        db = Database(10)
        for i, t in enumerate([1.0, 2.0, 3.0, 4.0]):
            db.apply_update(i, t)
        assert db.recency_order(limit=2) == [(3, 4.0), (2, 3.0)]
        assert db.recency_order() == [(3, 4.0), (2, 3.0), (1, 2.0), (0, 1.0)]

    def test_latest_update_time(self):
        db = Database(10)
        db.apply_update(4, 7.0)
        db.apply_update(2, 9.5)
        assert db.latest_update_time() == 9.5

    def test_same_timestamp_updates_allowed(self):
        """A transaction updates several items at the same instant."""
        db = Database(10)
        db.apply_update(1, 5.0)
        db.apply_update(2, 5.0)
        assert len(db.updated_since(4.0)) == 2
