"""Tests for the signature (SIG) report scheme."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Database
from repro.reports import (
    IncrementalCombiner,
    SignatureScheme,
    build_signature_report,
    item_signature,
    subsets_of_item,
)


def scheme(n_items=64, **kw):
    defaults = dict(n_subsets=32, signature_bits=32, membership=0.5, seed=7)
    defaults.update(kw)
    return SignatureScheme(n_items, **defaults)


class TestPrimitives:
    def test_item_signature_deterministic(self):
        assert item_signature(3, 1, 32, 0) == item_signature(3, 1, 32, 0)

    def test_item_signature_changes_with_version(self):
        assert item_signature(3, 1, 32, 0) != item_signature(3, 2, 32, 0)

    def test_item_signature_width(self):
        for item in range(50):
            assert 0 <= item_signature(item, 0, 8, 1) < 256

    def test_subset_membership_rate(self):
        total = sum(
            len(subsets_of_item(item, 64, 0.5, seed=3)) for item in range(200)
        )
        assert total / (200 * 64) == pytest.approx(0.5, abs=0.05)

    def test_subsets_deterministic(self):
        assert subsets_of_item(9, 32, 0.5, 1) == subsets_of_item(9, 32, 0.5, 1)


class TestDiagnosis:
    def test_no_change_no_invalidation(self):
        sch = scheme()
        db = Database(64)
        saved = build_signature_report(db, 0.0, sch).combined
        fresh = build_signature_report(db, 10.0, sch)
        inv = fresh.diagnose(cached_items=range(10), saved=saved)
        assert inv.items == frozenset()

    def test_updated_cached_item_is_diagnosed(self):
        sch = scheme()
        db = Database(64)
        saved = build_signature_report(db, 0.0, sch).combined
        db.apply_update(5, 5.0)
        fresh = build_signature_report(db, 10.0, sch)
        inv = fresh.diagnose(cached_items=[5, 6, 7], saved=saved)
        assert 5 in inv.items

    def test_false_positives_are_possible_but_bounded(self):
        """Valid items sharing subsets with an updated one may be dropped;
        with a high threshold most valid items survive."""
        sch = scheme(n_items=256, n_subsets=64, diagnose_threshold=0.9)
        db = Database(256)
        saved = build_signature_report(db, 0.0, sch).combined
        db.apply_update(0, 1.0)
        fresh = build_signature_report(db, 10.0, sch)
        inv = fresh.diagnose(cached_items=range(1, 101), saved=saved)
        assert len(inv.items) < 30  # most valid items survive one update

    def test_saved_length_mismatch_rejected(self):
        sch = scheme()
        db = Database(64)
        report = build_signature_report(db, 0.0, sch)
        with pytest.raises(ValueError):
            report.diagnose([1], saved=[0] * 3)

    def test_invalidation_for_unsupported(self):
        sch = scheme()
        report = build_signature_report(Database(64), 0.0, sch)
        with pytest.raises(NotImplementedError):
            report.invalidation_for(0.0)


class TestIncrementalCombiner:
    def test_matches_full_recompute(self):
        sch = scheme()
        db = Database(64)
        inc = IncrementalCombiner(sch)
        for item, ts in [(3, 1.0), (9, 2.0), (3, 3.0), (60, 4.0)]:
            old = int(db.version[item])
            db.apply_update(item, ts)
            inc.on_update(item, old, old + 1)
        assert inc.snapshot() == sch.combine(db.version)

    def test_snapshot_is_a_copy(self):
        inc = IncrementalCombiner(scheme())
        snap = inc.snapshot()
        snap[0] ^= 0xFF
        assert inc.snapshot()[0] != snap[0] or snap[0] == inc.snapshot()[0] ^ 0xFF


class TestParameters:
    def test_invalid_membership(self):
        with pytest.raises(ValueError):
            SignatureScheme(10, membership=0.0)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            SignatureScheme(10, diagnose_threshold=1.5)

    def test_wrong_combined_count_rejected(self):
        from repro.reports import SignatureReport

        with pytest.raises(ValueError):
            SignatureReport(0.0, scheme(), combined=[1, 2, 3])


@settings(max_examples=25, deadline=None)
@given(
    updates=st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=8),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_every_updated_cached_item_diagnosed(updates, seed):
    """With conservative threshold 0, an updated cached item survives only
    via a signature collision (~2^-32 per subset) — never in practice."""
    sch = SignatureScheme(
        64, n_subsets=32, signature_bits=32, membership=0.5,
        diagnose_threshold=0.0, seed=seed,
    )
    db = Database(64)
    saved = build_signature_report(db, 0.0, sch).combined
    t = 1.0
    for item in updates:
        db.apply_update(item, t)
        t += 1.0
    fresh = build_signature_report(db, t, sch)
    inv = fresh.diagnose(cached_items=range(64), saved=saved)
    for item in set(updates):
        if sch.subsets_of(item):  # items in no subset are always dropped too
            assert item in inv.items
        else:
            assert item in inv.items
