"""Tests for the Amnesic Terminals report."""

import pytest

from repro.db import Database
from repro.reports import build_amnesic_report


def make_db():
    db = Database(50)
    db.apply_update(1, 5.0)
    db.apply_update(2, 15.0)
    db.apply_update(3, 18.0)
    return db


class TestAmnesicReport:
    def test_contains_only_last_interval(self):
        report = build_amnesic_report(make_db(), timestamp=20.0, interval=10.0)
        assert report.items == {2, 3}

    def test_gap_free_client_covered(self):
        report = build_amnesic_report(make_db(), timestamp=20.0, interval=10.0)
        inv = report.invalidation_for(tlb=10.0)  # heard previous report
        assert inv.covered
        assert inv.items == {2, 3}

    def test_client_with_gap_drops_all(self):
        report = build_amnesic_report(make_db(), timestamp=20.0, interval=10.0)
        inv = report.invalidation_for(tlb=9.0)
        assert not inv.covered

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            build_amnesic_report(make_db(), timestamp=20.0, interval=0.0)

    def test_smaller_than_window_report(self):
        """AT drops per-item timestamps, so it is the thriftiest report."""
        from repro.reports import amnesic_report_bits, window_report_bits

        assert amnesic_report_bits(10, 10000) < window_report_bits(10, 10000)
