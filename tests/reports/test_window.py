"""Tests for TS window reports and AAW enlarged windows."""

import pytest

from repro.db import Database
from repro.reports import (
    EnlargedWindowReport,
    WindowReport,
    build_enlarged_window_report,
    build_window_report,
    enlarged_report_size,
)


def make_db():
    db = Database(100)
    db.apply_update(1, 10.0)
    db.apply_update(2, 25.0)
    db.apply_update(3, 40.0)
    db.apply_update(1, 55.0)  # re-update: only latest ts matters
    return db


class TestWindowReport:
    def test_contains_exactly_window_items(self):
        db = make_db()
        report = build_window_report(db, timestamp=60.0, window_seconds=40.0)
        # window (20, 60]: items 2 (25), 3 (40), 1 (55)
        assert report.items == {2: 25.0, 3: 40.0, 1: 55.0}

    def test_window_start_exclusive(self):
        db = make_db()
        report = build_window_report(db, timestamp=60.0, window_seconds=35.0)
        # window (25, 60]: item 2's ts == 25 excluded
        assert set(report.items) == {3, 1}

    def test_covers(self):
        report = WindowReport(timestamp=60.0, window_start=20.0, items={}, n_items=100)
        assert report.covers(20.0)
        assert report.covers(59.0)
        assert not report.covers(19.9)

    def test_invalidation_inside_window(self):
        db = make_db()
        report = build_window_report(db, timestamp=60.0, window_seconds=40.0)
        inv = report.invalidation_for(tlb=30.0)
        assert inv.covered
        assert inv.items == {3, 1}  # updated after 30

    def test_invalidation_at_exact_tlb_boundary(self):
        db = make_db()
        report = build_window_report(db, timestamp=60.0, window_seconds=40.0)
        # item 3 updated exactly at 40: a client who heard the report at 40
        # already knows about it.
        inv = report.invalidation_for(tlb=40.0)
        assert inv.items == {1}

    def test_invalidation_outside_window_drops_all(self):
        db = make_db()
        report = build_window_report(db, timestamp=60.0, window_seconds=40.0)
        inv = report.invalidation_for(tlb=10.0)
        assert not inv.covered
        assert inv.items == frozenset()

    def test_item_outside_window_rejected(self):
        with pytest.raises(ValueError):
            WindowReport(
                timestamp=60.0, window_start=20.0, items={5: 15.0}, n_items=100
            )
        with pytest.raises(ValueError):
            WindowReport(
                timestamp=60.0, window_start=20.0, items={5: 65.0}, n_items=100
            )

    def test_window_after_timestamp_rejected(self):
        with pytest.raises(ValueError):
            WindowReport(timestamp=10.0, window_start=20.0, items={}, n_items=100)


class TestEnlargedWindowReport:
    def test_reaches_back_to_dummy_tlb(self):
        db = make_db()
        report = build_enlarged_window_report(db, timestamp=60.0, back_to=5.0)
        assert set(report.items) == {1, 2, 3}
        assert report.dummy_tlb == 5.0
        assert report.covers(5.0)
        assert not report.covers(4.0)

    def test_bigger_than_plain_window_with_same_items(self):
        db = make_db()
        plain = build_window_report(db, timestamp=60.0, window_seconds=55.0)
        enlarged = build_enlarged_window_report(db, timestamp=60.0, back_to=5.0)
        assert set(plain.items) == set(enlarged.items)
        assert enlarged.size_bits > plain.size_bits  # the dummy record

    def test_invalidation_for_long_disconnected_client(self):
        db = make_db()
        report = build_enlarged_window_report(db, timestamp=60.0, back_to=5.0)
        inv = report.invalidation_for(tlb=12.0)
        assert inv.covered
        assert inv.items == {2, 3, 1}  # everything updated after 12

    def test_size_estimate_matches_built_report(self):
        db = make_db()
        count, size = enlarged_report_size(db, back_to=5.0)
        report = build_enlarged_window_report(db, timestamp=60.0, back_to=5.0)
        assert count == len(report.items)
        assert size == report.size_bits


class TestFreshSince:
    def test_newest_ts_tracks_items(self):
        db = make_db()
        report = build_window_report(db, timestamp=60.0, window_seconds=40.0)
        assert report.newest_ts == 55.0
        empty = WindowReport(
            timestamp=60.0, window_start=20.0, items={}, n_items=100
        )
        assert empty.newest_ts == 20.0  # falls back to the window start

    def test_filters_by_floor(self):
        db = make_db()
        report = build_window_report(db, timestamp=60.0, window_seconds=40.0)
        assert dict(report.fresh_since(30.0)) == {3: 40.0, 1: 55.0}
        assert report.fresh_since(55.0) == []

    def test_memo_reused_for_same_floor(self):
        db = make_db()
        report = build_window_report(db, timestamp=60.0, window_seconds=40.0)
        first = report.fresh_since(30.0)
        assert report.fresh_since(30.0) is first      # memo hit
        assert report.fresh_since(50.0) is not first  # different floor


class TestWindowReportCache:
    def test_quiet_ticks_share_the_scan(self):
        from repro.reports import WindowReportCache

        db = make_db()
        cache = WindowReportCache(db)
        a = build_window_report(db, 60.0, 40.0, cache=cache)
        # Window slides forward but no cached item expires (oldest is 25).
        b = build_window_report(db, 62.0, 40.0, cache=cache)
        assert cache.hits == 1 and cache.misses == 1
        assert b.items == a.items

    def test_update_invalidates(self):
        from repro.reports import WindowReportCache

        db = make_db()
        cache = WindowReportCache(db)
        build_window_report(db, 60.0, 40.0, cache=cache)
        db.apply_update(7, 65.0)
        report = build_window_report(db, 70.0, 40.0, cache=cache)
        assert cache.misses == 2
        assert report.items[7] == 65.0

    def test_expiring_item_rebuilds(self):
        from repro.reports import WindowReportCache

        db = make_db()
        cache = WindowReportCache(db)
        a = build_window_report(db, 60.0, 40.0, cache=cache)
        assert 2 in a.items  # ts=25
        # Window start moves past item 2's timestamp: must rebuild.
        b = build_window_report(db, 70.0, 40.0 - 5.0, cache=cache)
        assert cache.misses == 2
        assert 2 not in b.items

    def test_cached_reports_stay_valid(self):
        from repro.reports import WindowReportCache

        db = make_db()
        cache = WindowReportCache(db)
        a = build_window_report(db, 60.0, 40.0, cache=cache)
        b = build_window_report(db, 62.0, 40.0, cache=cache)  # cache hit
        # The shared dict must never leak mutations between reports.
        assert a.items is not b.items
