"""Tests for report/payload bit-size formulas (paper Section 3.1)."""

import math

import pytest

from repro.reports import (
    REPORT_TAG_BITS,
    amnesic_report_bits,
    bitseq_report_bits,
    checking_upload_bits,
    enlarged_window_report_bits,
    id_bits,
    signature_report_bits,
    tlb_upload_bits,
    validity_report_bits,
    window_report_bits,
)


class TestIdBits:
    @pytest.mark.parametrize(
        "n,expected",
        [(1, 1), (2, 1), (3, 2), (1000, 10), (1024, 10), (10000, 14), (80000, 17)],
    )
    def test_values(self, n, expected):
        assert id_bits(n) == expected

    def test_invalid(self):
        with pytest.raises(ValueError):
            id_bits(0)


class TestWindowReport:
    def test_formula_nw_times_id_plus_ts(self):
        # Paper: n_w * (log2 N + b_T), plus current-T and tag overhead.
        n, nw, bt = 10000, 25, 32
        expected = nw * (14 + bt) + bt + REPORT_TAG_BITS
        assert window_report_bits(nw, n, bt) == expected

    def test_empty_report_only_overhead(self):
        assert window_report_bits(0, 1000, 32) == 32 + REPORT_TAG_BITS

    def test_enlarged_adds_one_record(self):
        n, nw, bt = 10000, 25, 32
        assert enlarged_window_report_bits(nw, n, bt) == window_report_bits(
            nw + 1, n, bt
        )


class TestBitseqReport:
    def test_formula_2n_plus_level_timestamps(self):
        # Paper: 2N + b_T * log2 N (we count the dummy B0 level too).
        n, bt = 10000, 32
        expected = 2 * n + (14 + 1) * bt + bt + REPORT_TAG_BITS
        assert bitseq_report_bits(n, bt) == expected

    def test_grows_linearly_with_database(self):
        assert bitseq_report_bits(80000) > 8 * bitseq_report_bits(10000) * 0.9

    def test_size_independent_of_update_count(self):
        # BS size is a function of N only.
        assert bitseq_report_bits(4096) == bitseq_report_bits(4096)


class TestPayloads:
    def test_tlb_upload_is_one_timestamp(self):
        assert tlb_upload_bits(32) == 32
        assert tlb_upload_bits(48) == 48

    def test_checking_upload_scales_with_cache_and_db(self):
        assert checking_upload_bits(200, 10000, 32) == 200 * (14 + 32)
        # Bigger database -> wider ids -> bigger upload (paper Fig. 6).
        assert checking_upload_bits(200, 80000, 32) > checking_upload_bits(
            200, 10000, 32
        )

    def test_validity_report_one_bit_per_item(self):
        assert validity_report_bits(123) == 123

    def test_adaptive_uplink_much_smaller_than_checking(self):
        """The paper's core claim about uplink costs, at the size level."""
        assert tlb_upload_bits() * 50 < checking_upload_bits(200, 10000)

    def test_amnesic_has_no_per_item_timestamps(self):
        assert amnesic_report_bits(10, 1024, 32) == 10 * 10 + 32 + REPORT_TAG_BITS

    def test_signature_report(self):
        assert signature_report_bits(64, 32, 32) == 64 * 32 + 32 + REPORT_TAG_BITS


class TestRelativeSizes:
    def test_bs_dwarfs_window_for_light_update_load(self):
        """Fig 5's mechanism: IR(BS) ~ 2N while IR(w) ~ n_w * 46 bits."""
        n = 80000
        light_window = window_report_bits(10, n)
        assert bitseq_report_bits(n) > 100 * light_window

    def test_window_beats_bs_until_many_updates(self):
        n = 10000
        bs = bitseq_report_bits(n)
        # Crossover count where IR(w') stops being worthwhile (AAW logic).
        crossover = math.floor(bs / (id_bits(n) + 32))
        assert window_report_bits(crossover - 2, n) < bs
        assert window_report_bits(crossover + 2, n) > bs
