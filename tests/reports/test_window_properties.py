"""Property-based tests for window-report construction and semantics."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Database
from repro.reports import (
    build_enlarged_window_report,
    build_window_report,
    window_report_bits,
)

scenario = st.fixed_dictionaries(
    {
        "seed": st.integers(0, 100_000),
        "n_items": st.integers(2, 80),
        "n_updates": st.integers(0, 120),
        "window": st.floats(min_value=1.0, max_value=150.0),
    }
)


def make_db(cfg):
    rnd = random.Random(cfg["seed"])
    db = Database(cfg["n_items"])
    t = 0.0
    history = []
    for _ in range(cfg["n_updates"]):
        t += rnd.uniform(0.1, 4.0)
        item = rnd.randrange(cfg["n_items"])
        db.apply_update(item, t)
        history.append((item, t))
    return rnd, db, history, t + 1.0


@settings(max_examples=80, deadline=None)
@given(scenario)
def test_window_contains_exactly_the_window_updates(cfg):
    _rnd, db, history, now = make_db(cfg)
    report = build_window_report(db, now, cfg["window"])
    start = now - cfg["window"]
    latest = {}
    for item, t in history:
        latest[item] = t
    expected = {item: t for item, t in latest.items() if t > start}
    assert report.items == expected


@settings(max_examples=80, deadline=None)
@given(scenario)
def test_window_size_formula_matches_contents(cfg):
    _rnd, db, _history, now = make_db(cfg)
    report = build_window_report(db, now, cfg["window"])
    assert report.size_bits == window_report_bits(
        len(report.items), cfg["n_items"]
    )


@settings(max_examples=80, deadline=None)
@given(cfg=scenario, tlb_frac=st.floats(0.0, 1.0))
def test_covered_invalidation_is_exact(cfg, tlb_frac):
    """For a covered client, the window invalidates exactly the items
    updated after its Tlb — no more, no less."""
    _rnd, db, history, now = make_db(cfg)
    report = build_window_report(db, now, cfg["window"])
    start = now - cfg["window"]
    tlb = start + tlb_frac * (now - start)  # always covered
    inv = report.invalidation_for(tlb)
    assert inv.covered
    latest = {}
    for item, t in history:
        latest[item] = t
    exact = {item for item, t in latest.items() if t > tlb}
    assert inv.items == frozenset(exact)


@settings(max_examples=60, deadline=None)
@given(cfg=scenario, back_frac=st.floats(0.0, 1.0))
def test_enlarged_window_covers_requested_tlb_exactly(cfg, back_frac):
    _rnd, db, history, now = make_db(cfg)
    back_to = back_frac * now
    report = build_enlarged_window_report(db, now, back_to)
    assert report.covers(back_to)
    inv = report.invalidation_for(back_to)
    latest = {}
    for item, t in history:
        latest[item] = t
    exact = {item for item, t in latest.items() if t > back_to}
    assert inv.items == frozenset(exact)


@settings(max_examples=60, deadline=None)
@given(scenario)
def test_enlarged_report_never_smaller_than_needed_window(cfg):
    """IR(w') over the same horizon always carries >= the items of the
    plain window report plus the dummy record."""
    _rnd, db, _history, now = make_db(cfg)
    plain = build_window_report(db, now, cfg["window"])
    enlarged = build_enlarged_window_report(db, now, now - cfg["window"])
    assert set(plain.items) == set(enlarged.items)
    assert enlarged.size_bits > plain.size_bits
