"""Tests for the Invalidation value object and the Report interface."""

import pytest

from repro.reports import Invalidation, Report, ReportKind


class TestInvalidation:
    def test_drop_all(self):
        inv = Invalidation.drop_all()
        assert not inv.covered
        assert inv.items == frozenset()

    def test_nothing(self):
        inv = Invalidation.nothing()
        assert inv.covered
        assert inv.items == frozenset()

    def test_drop_items(self):
        inv = Invalidation.drop({1, 2, 3})
        assert inv.covered
        assert inv.items == frozenset({1, 2, 3})

    def test_frozen(self):
        inv = Invalidation.nothing()
        with pytest.raises(Exception):
            inv.covered = False

    def test_equality(self):
        assert Invalidation.drop({1}) == Invalidation.drop({1})
        assert Invalidation.drop({1}) != Invalidation.drop({2})
        assert Invalidation.nothing() != Invalidation.drop_all()


class TestReportInterface:
    def test_abstract_methods_raise(self):
        report = Report()
        with pytest.raises(NotImplementedError):
            report.covers(0.0)
        with pytest.raises(NotImplementedError):
            report.invalidation_for(0.0)

    def test_kind_values_are_stable_wire_tags(self):
        """Report kind strings appear in metric names; renaming them
        silently breaks recorded data."""
        assert ReportKind.WINDOW.value == "window"
        assert ReportKind.ENLARGED_WINDOW.value == "window+"
        assert ReportKind.BIT_SEQUENCES.value == "bs"
        assert ReportKind.AMNESIC.value == "amnesic"
        assert ReportKind.SIGNATURES.value == "sig"
