"""Tests for the Bit-Sequences report: structure, client algorithm, and
bit-level/prefix cross-validation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Database
from repro.reports import (
    BitSequenceReport,
    build_bitseq_report,
    decode_levels,
    level_counts_for,
)


def db_with_updates(n_items, updates):
    """updates: list of (item, ts) applied in order."""
    db = Database(n_items)
    for item, ts in updates:
        db.apply_update(item, ts)
    return db


class TestLevelStructure:
    def test_level_counts_power_of_two(self):
        assert level_counts_for(16) == [1, 2, 4, 8]

    def test_level_counts_general(self):
        assert level_counts_for(10) == [1, 2, 5]
        assert level_counts_for(1000) == [1, 3, 7, 15, 31, 62, 125, 250, 500]

    def test_level_counts_tiny(self):
        assert level_counts_for(1) == []
        assert level_counts_for(2) == [1]
        assert level_counts_for(3) == [1]

    def test_level_counts_halve(self):
        counts = level_counts_for(4096)
        for small, big in zip(counts, counts[1:]):
            assert small == big // 2

    def test_level_timestamps_non_increasing_with_capacity(self):
        db = db_with_updates(16, [(i, float(i)) for i in range(10)])
        report = build_bitseq_report(db, timestamp=20.0, origin=0.0)
        # level_times aligned with ascending counts: newest first.
        assert report.level_times == sorted(report.level_times, reverse=True)

    def test_report_size_function_of_n_only(self):
        a = build_bitseq_report(db_with_updates(64, [(1, 1.0)]), 5.0)
        b = build_bitseq_report(
            db_with_updates(64, [(i, float(i + 1)) for i in range(30)]), 50.0
        )
        assert a.size_bits == b.size_bits


class TestClientAlgorithm:
    def test_no_updates_means_nothing_to_invalidate(self):
        db = Database(16)
        report = build_bitseq_report(db, timestamp=10.0, origin=0.0)
        inv = report.invalidation_for(tlb=5.0)
        assert inv.covered and inv.items == frozenset()

    def test_fresh_client_invalidates_nothing(self):
        db = db_with_updates(16, [(3, 5.0)])
        report = build_bitseq_report(db, timestamp=10.0, origin=0.0)
        inv = report.invalidation_for(tlb=5.0)  # heard report at ts of update
        assert inv.covered and inv.items == frozenset()

    def test_client_slightly_behind_gets_smallest_level(self):
        db = db_with_updates(16, [(i, float(i + 1)) for i in range(6)])
        # recency (newest first): 5@6, 4@5, 3@4, 2@3, 1@2, 0@1
        report = build_bitseq_report(db, timestamp=10.0, origin=0.0)
        inv = report.invalidation_for(tlb=5.0)  # missed only item 5@6
        assert inv.covered
        # smallest covering level: B1 (capacity 1), TS(B1)=5 <= tlb
        assert inv.items == {5}

    def test_client_further_behind_gets_larger_level(self):
        db = db_with_updates(16, [(i, float(i + 1)) for i in range(6)])
        report = build_bitseq_report(db, timestamp=10.0, origin=0.0)
        inv = report.invalidation_for(tlb=3.5)  # missed items 3,4,5
        assert inv.covered
        # needs level with TS <= 3.5: capacities 1(TS=5), 2(TS=4), 4(TS=2)
        # -> level of capacity 4 -> prefix {5,4,3,2}: conservative superset
        assert inv.items == {5, 4, 3, 2}
        assert {5, 4, 3}.issubset(inv.items)

    def test_invalidation_is_conservative_superset(self):
        db = db_with_updates(32, [(i, float(i + 1)) for i in range(12)])
        report = build_bitseq_report(db, timestamp=20.0, origin=0.0)
        for tlb in [0.5, 1.0, 3.7, 6.0, 9.9, 11.0, 12.0]:
            inv = report.invalidation_for(tlb)
            truly_stale = {i for i in range(12) if (i + 1) > tlb}
            if inv.covered:
                assert truly_stale.issubset(inv.items)

    def test_more_than_half_updated_drops_all(self):
        db = db_with_updates(8, [(i, float(i + 1)) for i in range(6)])
        # 6 of 8 items updated; Bn capacity = 4; TS(Bn) = ts of 5th most
        # recent = 2.0.  A client with tlb < 2 cannot be salvaged.
        report = build_bitseq_report(db, timestamp=10.0, origin=0.0)
        inv = report.invalidation_for(tlb=1.0)
        assert not inv.covered

    def test_never_connected_client_drops_all_once_updates_exist(self):
        db = db_with_updates(8, [(i, float(i + 1)) for i in range(6)])
        report = build_bitseq_report(db, timestamp=10.0, origin=0.0)
        assert not report.invalidation_for(tlb=float("-inf")).covered

    def test_boundary_tlb_equals_ts_bn(self):
        db = db_with_updates(8, [(i, float(i + 1)) for i in range(6)])
        report = build_bitseq_report(db, timestamp=10.0, origin=0.0)
        inv = report.invalidation_for(tlb=report.ts_bn)
        assert inv.covered  # TS(Bn) <= Tlb is salvageable per Figure 2

    def test_level_for_rejects_unsalvageable(self):
        db = db_with_updates(8, [(i, float(i + 1)) for i in range(6)])
        report = build_bitseq_report(db, timestamp=10.0, origin=0.0)
        with pytest.raises(ValueError):
            report.level_for(0.1)

    def test_tied_timestamps_within_transaction(self):
        """Items updated at the same instant must stay conservative."""
        db = db_with_updates(16, [(1, 5.0), (2, 5.0), (3, 5.0), (4, 7.0)])
        report = build_bitseq_report(db, timestamp=10.0, origin=0.0)
        inv = report.invalidation_for(tlb=4.0)
        assert inv.covered
        assert {1, 2, 3, 4}.issubset(inv.items)

    def test_validation_of_inputs(self):
        with pytest.raises(ValueError):
            BitSequenceReport(
                timestamp=1.0,
                n_items=8,
                recent_items=[1, 2],
                recent_times=[1.0],  # length mismatch
            )
        with pytest.raises(ValueError):
            BitSequenceReport(
                timestamp=1.0,
                n_items=8,
                recent_items=[1, 2],
                recent_times=[1.0, 2.0],  # must be non-increasing
            )


class TestBitLevelView:
    def test_materialize_shapes(self):
        db = db_with_updates(16, [(i, float(i + 1)) for i in range(9)])
        report = build_bitseq_report(db, timestamp=20.0, origin=0.0)
        arrays = report.materialize()
        assert arrays[0].size == 16  # Bn spans the database
        for prev, nxt in zip(arrays, arrays[1:]):
            assert nxt.size == int(prev.sum())  # one bit per set bit above

    def test_decode_matches_prefix_view(self):
        db = db_with_updates(16, [(i, float(i + 1)) for i in range(9)])
        report = build_bitseq_report(db, timestamp=20.0, origin=0.0)
        decoded = decode_levels(report.materialize(), 16)
        counts_desc = list(reversed(report.level_counts))
        for level_ids, (idx, _m) in zip(
            decoded,
            [
                (len(report.level_counts) - 1 - i, m)
                for i, m in enumerate(counts_desc)
            ],
        ):
            assert set(level_ids) == set(report.ones_of_level(idx))

    def test_decode_validates_widths(self):
        db = db_with_updates(16, [(1, 1.0)])
        report = build_bitseq_report(db, timestamp=5.0, origin=0.0)
        arrays = report.materialize()
        with pytest.raises(ValueError):
            decode_levels(arrays, 15)
        with pytest.raises(ValueError):
            decode_levels([arrays[0], arrays[0]], 16)

    def test_empty_database_materializes_empty(self):
        report = build_bitseq_report(Database(1), timestamp=5.0, origin=0.0)
        assert report.materialize() == []
        assert decode_levels([], 1) == []


@settings(max_examples=60, deadline=None)
@given(
    n_items=st.integers(min_value=2, max_value=64),
    n_updates=st.integers(min_value=0, max_value=80),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_bit_view_agrees_with_prefix_view(n_items, n_updates, seed):
    """The literal bit arrays and the fast prefix form are the same report."""
    import random

    rnd = random.Random(seed)
    db = Database(n_items)
    t = 0.0
    for _ in range(n_updates):
        t += rnd.uniform(0.0, 2.0)
        db.apply_update(rnd.randrange(n_items), t)
    report = build_bitseq_report(db, timestamp=t + 1.0, origin=0.0)
    decoded = decode_levels(report.materialize(), n_items)
    n_levels = len(report.level_counts)
    assert len(decoded) == (n_levels if n_levels else 0)
    # decoded is Bn-first; ones_of_level indexes ascending capacities.
    for pos, level_ids in enumerate(decoded):
        idx = n_levels - 1 - pos
        assert set(level_ids) == set(report.ones_of_level(idx))


@settings(max_examples=60, deadline=None)
@given(
    n_items=st.integers(min_value=2, max_value=64),
    n_updates=st.integers(min_value=0, max_value=80),
    seed=st.integers(min_value=0, max_value=10_000),
    tlb=st.floats(min_value=-1.0, max_value=200.0, allow_nan=False),
)
def test_property_bs_invalidation_never_misses_a_stale_item(
    n_items, n_updates, seed, tlb
):
    """Soundness of the BS client algorithm: every item updated after the
    client's Tlb is either in the invalidation set or the whole cache is
    dropped."""
    import random

    rnd = random.Random(seed)
    db = Database(n_items)
    t = 0.0
    truly = {}
    for _ in range(n_updates):
        t += rnd.uniform(0.0, 2.0)
        item = rnd.randrange(n_items)
        db.apply_update(item, t)
        truly[item] = t
    report = build_bitseq_report(db, timestamp=t + 1.0, origin=0.0)
    inv = report.invalidation_for(tlb)
    if inv.covered:
        stale = {item for item, ts in truly.items() if ts > tlb}
        assert stale.issubset(inv.items)
