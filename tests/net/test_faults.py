"""Unit tests for the wireless fault-injection layer (repro.net.faults)."""

import pytest

from repro.des import Environment, RandomStreams
from repro.net import (
    BROADCAST,
    Channel,
    Fate,
    FaultConfig,
    FaultModel,
    Message,
    MessageKind,
    SERVER_ID,
)


def msg(kind=MessageKind.DATA_ITEM, size=100, payload=None):
    return Message(
        kind=kind, size_bits=size, src=SERVER_ID, dest=BROADCAST, payload=payload
    )


def stream(name="faults/test", seed=7):
    return RandomStreams(seed).stream(name)


class _ExplodingStream:
    """Stands in for a RandomStream; any draw is a test failure."""

    def __getattr__(self, name):
        raise AssertionError("null fault model must not consume randomness")


class TestFaultConfig:
    def test_defaults_are_null(self):
        assert FaultConfig().is_null

    def test_validation_rejects_bad_probabilities(self):
        with pytest.raises(ValueError):
            FaultConfig(drop_prob=1.5)
        with pytest.raises(ValueError):
            FaultConfig(bit_error_rate=-0.1)
        with pytest.raises(ValueError):
            FaultConfig(drop_prob_by_kind={MessageKind.DATA_ITEM: 2.0})
        with pytest.raises(ValueError):
            FaultConfig(drop_prob_by_kind={"ir": 0.5})
        with pytest.raises(ValueError):
            FaultConfig(ge_good_to_bad=0.1, ge_bad_to_good=0.0)

    def test_null_detection(self):
        assert FaultConfig(drop_prob_by_kind={MessageKind.DATA_ITEM: 0.0}).is_null
        assert not FaultConfig(drop_prob=0.01).is_null
        assert not FaultConfig(bit_error_rate=1e-9).is_null
        assert not FaultConfig(
            drop_prob_by_kind={MessageKind.INVALIDATION_REPORT: 0.2}
        ).is_null
        assert not FaultConfig(ge_good_to_bad=0.1).is_null
        # A burst state that never drops anything is still null.
        assert FaultConfig(ge_good_to_bad=0.1, ge_bad_drop_prob=0.0).is_null

    def test_per_kind_lookup_falls_back_to_base(self):
        cfg = FaultConfig(
            drop_prob=0.1, drop_prob_by_kind={MessageKind.DATA_ITEM: 0.9}
        )
        assert cfg.drop_prob_for(MessageKind.DATA_ITEM) == 0.9
        assert cfg.drop_prob_for(MessageKind.INVALIDATION_REPORT) == 0.1

    def test_corrupt_prob_grows_with_size(self):
        cfg = FaultConfig(bit_error_rate=1e-4)
        small = cfg.corrupt_prob_for(100)
        big = cfg.corrupt_prob_for(100_000)
        assert 0.0 < small < big <= 1.0
        assert cfg.corrupt_prob_for(0) == 0.0
        assert FaultConfig(bit_error_rate=1.0).corrupt_prob_for(1) == 1.0
        assert cfg.corrupt_prob_for(100) == pytest.approx(
            1.0 - (1.0 - 1e-4) ** 100
        )


class TestFaultModel:
    def test_null_model_never_draws(self):
        model = FaultModel(FaultConfig(), _ExplodingStream())
        assert model.is_null
        for _ in range(10):
            assert model.fate(msg(), receiver_key=0) is Fate.DELIVER
        assert model.stats.judged == 0

    def test_certain_drop(self):
        model = FaultModel(FaultConfig(drop_prob=1.0), stream())
        assert model.fate(msg(size=50), 0) is Fate.DROP
        assert model.stats.dropped == 1
        assert model.stats.dropped_bits == 50
        assert model.stats.dropped_by_kind[MessageKind.DATA_ITEM] == 1
        assert model.stats.goodput_ratio == 0.0

    def test_certain_corruption(self):
        model = FaultModel(FaultConfig(bit_error_rate=1.0), stream())
        assert model.fate(msg(size=10), 0) is Fate.CORRUPT
        assert model.stats.corrupted == 1
        assert model.stats.corrupted_bits == 10

    def test_per_kind_drop_spares_other_kinds(self):
        cfg = FaultConfig(drop_prob_by_kind={MessageKind.DATA_ITEM: 1.0})
        model = FaultModel(cfg, stream())
        assert model.fate(msg(MessageKind.DATA_ITEM), 0) is Fate.DROP
        assert model.fate(msg(MessageKind.INVALIDATION_REPORT), 0) is Fate.DELIVER

    def test_gilbert_elliott_bad_state_drops(self):
        # Enter bad immediately, never leave... (bad_to_good must be > 0,
        # so use an astronomically unlikely exit instead of 0).
        cfg = FaultConfig(
            ge_good_to_bad=1.0, ge_bad_to_good=1e-12, ge_bad_drop_prob=1.0
        )
        model = FaultModel(cfg, stream())
        for _ in range(5):
            assert model.fate(msg(), 0) is Fate.DROP
        assert model.in_bad_state(0)
        assert model.stats.bursts == 1  # one burst onset, not five
        assert model.stats.dropped == 5

    def test_gilbert_elliott_chains_are_per_receiver(self):
        cfg = FaultConfig(
            ge_good_to_bad=0.5, ge_bad_to_good=0.5, ge_bad_drop_prob=1.0
        )
        model = FaultModel(cfg, stream())
        for _ in range(50):
            model.fate(msg(), 0)
            model.fate(msg(), 1)
        # Both receivers evolved their own chain and saw some bursts.
        assert model.stats.bursts >= 2
        assert model.stats.judged == 100

    def test_deterministic_given_stream_seed(self):
        cfg = FaultConfig(drop_prob=0.3, bit_error_rate=1e-3)
        fates_a = [
            FaultModel(cfg, stream(seed=3)).fate(msg(size=500), 0) for _ in range(1)
        ]
        runs = []
        for _ in range(2):
            model = FaultModel(cfg, stream(seed=3))
            runs.append([model.fate(msg(size=500), 0) for _ in range(200)])
        assert runs[0] == runs[1]
        assert fates_a[0] == runs[0][0]


class TestChannelIntegration:
    @pytest.fixture
    def env(self):
        return Environment()

    def test_dropped_delivery_skips_receiver_but_fires_done(self, env):
        ch = Channel(
            env, 100, faults=FaultModel(FaultConfig(drop_prob=1.0), stream())
        )
        seen = []
        ch.attach(lambda m, now: seen.append(m))
        done = ch.send(msg(size=100))
        env.run(until=done)
        assert seen == []
        assert ch.faults.stats.dropped == 1
        # Airtime was still burned: raw channel stats count the bits.
        assert ch.stats.bits_delivered == 100

    def test_wired_receiver_is_immune(self, env):
        ch = Channel(
            env, 100, faults=FaultModel(FaultConfig(drop_prob=1.0), stream())
        )
        radio, wired = [], []
        ch.attach(lambda m, now: radio.append(m))
        ch.attach(lambda m, now: wired.append(m), wired=True)
        env.run(until=ch.send(msg(size=100)))
        assert radio == []
        assert len(wired) == 1

    def test_corrupted_copy_flags_receiver_not_sender(self, env):
        ch = Channel(
            env, 100, faults=FaultModel(FaultConfig(bit_error_rate=1.0), stream())
        )
        seen = []
        ch.attach(lambda m, now: seen.append(m))
        original = msg(size=100, payload="p")
        env.run(until=ch.send(original))
        assert len(seen) == 1
        assert seen[0].corrupted
        assert seen[0] is not original
        assert seen[0].payload == "p"
        assert not original.corrupted

    def test_null_fault_model_is_transparent(self, env):
        ch = Channel(env, 100, faults=FaultModel(FaultConfig(), _ExplodingStream()))
        seen = []
        ch.attach(lambda m, now: seen.append(m.payload))
        env.run(until=ch.send(msg(size=100, payload="x")))
        assert seen == ["x"]
