"""Tests for the shared priority channel: timing, ordering, preemption."""

import pytest

from repro.des import Environment
from repro.net import BROADCAST, Channel, Message, MessageKind, SERVER_ID


@pytest.fixture
def env():
    return Environment()


def msg(kind, size, dest=BROADCAST, payload=None):
    return Message(kind=kind, size_bits=size, src=SERVER_ID, dest=dest, payload=payload)


class TestTransmissionTiming:
    def test_single_message_takes_size_over_bandwidth(self, env):
        ch = Channel(env, bandwidth_bps=1000)
        done = ch.send(msg(MessageKind.DATA_ITEM, 500))
        env.run(until=done)
        assert env.now == pytest.approx(0.5)

    def test_back_to_back_messages_serialize(self, env):
        ch = Channel(env, bandwidth_bps=100)
        delivered = []
        ch.attach(lambda m, now: delivered.append((m.payload, now)))
        ch.send(msg(MessageKind.DATA_ITEM, 100, payload="a"))
        ch.send(msg(MessageKind.DATA_ITEM, 200, payload="b"))
        env.run()
        assert delivered == [("a", 1.0), ("b", 3.0)]

    def test_zero_size_message_delivers_instantly(self, env):
        ch = Channel(env, bandwidth_bps=10)
        done = ch.send(msg(MessageKind.TLB_UPLOAD, 0))
        env.run(until=done)
        assert env.now == 0.0

    def test_transmission_time_helper(self, env):
        ch = Channel(env, bandwidth_bps=10000)
        assert ch.transmission_time(20000) == pytest.approx(2.0)

    def test_invalid_bandwidth(self, env):
        with pytest.raises(ValueError):
            Channel(env, bandwidth_bps=0)


class TestPriorityOrdering:
    def test_higher_class_jumps_queue(self, env):
        ch = Channel(env, bandwidth_bps=100)
        order = []
        ch.attach(lambda m, now: order.append(m.payload))

        def sender(env):
            yield env.timeout(0)
            ch.send(msg(MessageKind.DATA_ITEM, 100, payload="data1"))
            ch.send(msg(MessageKind.DATA_ITEM, 100, payload="data2"))
            ch.send(msg(MessageKind.VALIDITY_REPORT, 100, payload="check"))

        env.process(sender(env))
        env.run()
        # data1 is already on the air; check outranks the queued data2.
        assert order == ["data1", "check", "data2"]

    def test_fifo_within_class(self, env):
        ch = Channel(env, bandwidth_bps=100)
        order = []
        ch.attach(lambda m, now: order.append(m.payload))
        for i in range(4):
            ch.send(msg(MessageKind.DATA_ITEM, 50, payload=i))
        env.run()
        assert order == [0, 1, 2, 3]


class TestPreemption:
    def test_ir_preempts_data_and_data_resumes(self, env):
        ch = Channel(env, bandwidth_bps=100)
        delivered = []
        ch.attach(lambda m, now: delivered.append((m.payload, now)))

        def sender(env):
            ch.send(msg(MessageKind.DATA_ITEM, 1000, payload="big"))  # 10 s alone
            yield env.timeout(2)
            ch.send(msg(MessageKind.INVALIDATION_REPORT, 100, payload="ir"))  # 1 s

        env.process(sender(env))
        env.run()
        # IR starts at t=2 (preempting), done at 3; data resumes with 800
        # bits remaining, done at 3 + 8 = 11.
        assert delivered == [("ir", 3.0), ("big", 11.0)]
        assert ch.stats.preemptions == 1

    def test_checking_class_does_not_preempt(self, env):
        ch = Channel(env, bandwidth_bps=100)
        delivered = []
        ch.attach(lambda m, now: delivered.append((m.payload, now)))

        def sender(env):
            ch.send(msg(MessageKind.DATA_ITEM, 1000, payload="big"))
            yield env.timeout(2)
            ch.send(msg(MessageKind.VALIDITY_REPORT, 100, payload="check"))

        env.process(sender(env))
        env.run()
        assert delivered == [("big", 10.0), ("check", 11.0)]
        assert ch.stats.preemptions == 0

    def test_preemption_disabled(self, env):
        ch = Channel(env, bandwidth_bps=100, preempt_threshold=-1)
        delivered = []
        ch.attach(lambda m, now: delivered.append((m.payload, now)))

        def sender(env):
            ch.send(msg(MessageKind.DATA_ITEM, 1000, payload="big"))
            yield env.timeout(2)
            ch.send(msg(MessageKind.INVALIDATION_REPORT, 100, payload="ir"))

        env.process(sender(env))
        env.run()
        assert delivered == [("big", 10.0), ("ir", 11.0)]

    def test_ir_does_not_preempt_ir(self, env):
        ch = Channel(env, bandwidth_bps=100)
        delivered = []
        ch.attach(lambda m, now: delivered.append((m.payload, now)))

        def sender(env):
            ch.send(msg(MessageKind.INVALIDATION_REPORT, 1000, payload="ir1"))
            yield env.timeout(2)
            ch.send(msg(MessageKind.INVALIDATION_REPORT, 100, payload="ir2"))

        env.process(sender(env))
        env.run()
        assert delivered == [("ir1", 10.0), ("ir2", 11.0)]

    def test_preempted_message_resumes_before_later_same_class(self, env):
        ch = Channel(env, bandwidth_bps=100)
        delivered = []
        ch.attach(lambda m, now: delivered.append(m.payload))

        def sender(env):
            ch.send(msg(MessageKind.DATA_ITEM, 1000, payload="first"))
            yield env.timeout(2)
            ch.send(msg(MessageKind.INVALIDATION_REPORT, 100, payload="ir"))
            ch.send(msg(MessageKind.DATA_ITEM, 100, payload="second"))

        env.process(sender(env))
        env.run()
        assert delivered == ["ir", "first", "second"]


class TestDelivery:
    def test_all_receivers_see_broadcast(self, env):
        ch = Channel(env, bandwidth_bps=100)
        seen = {1: [], 2: []}
        ch.attach(lambda m, now: seen[1].append(m.payload))
        ch.attach(lambda m, now: seen[2].append(m.payload))
        ch.send(msg(MessageKind.INVALIDATION_REPORT, 100, payload="ir"))
        env.run()
        assert seen == {1: ["ir"], 2: ["ir"]}

    def test_detach_stops_delivery(self, env):
        ch = Channel(env, bandwidth_bps=100)
        seen = []

        def recv(m, now):
            seen.append(m.payload)

        ch.attach(recv)
        ch.detach(recv)
        ch.send(msg(MessageKind.DATA_ITEM, 10))
        env.run()
        assert seen == []

    def test_detach_unknown_receiver_raises(self, env):
        ch = Channel(env, bandwidth_bps=100)
        with pytest.raises(ValueError):
            ch.detach(lambda m, now: None)

    def test_receiver_detaching_itself_does_not_skip_neighbours(self, env):
        """Regression: mutating the receiver list during delivery must not
        skip (or double-deliver to) the receivers behind the mutator."""
        ch = Channel(env, bandwidth_bps=100)
        seen = []

        def one_shot(m, now):
            seen.append(("one_shot", m.payload))
            ch.detach(one_shot)

        def steady(m, now):
            seen.append(("steady", m.payload))

        ch.attach(one_shot)
        ch.attach(steady)
        ch.send(msg(MessageKind.DATA_ITEM, 10, payload="a"))
        ch.send(msg(MessageKind.DATA_ITEM, 10, payload="b"))
        env.run()
        # one_shot hears only "a"; steady hears both, exactly once each.
        assert seen == [
            ("one_shot", "a"),
            ("steady", "a"),
            ("steady", "b"),
        ]

    def test_receiver_attaching_during_delivery_joins_next_message(self, env):
        ch = Channel(env, bandwidth_bps=100)
        seen = []

        def late(m, now):
            seen.append(("late", m.payload))

        def joiner(m, now):
            seen.append(("joiner", m.payload))
            ch.attach(late)
            ch.detach(joiner)

        ch.attach(joiner)
        ch.send(msg(MessageKind.DATA_ITEM, 10, payload="a"))
        ch.send(msg(MessageKind.DATA_ITEM, 10, payload="b"))
        env.run()
        assert seen == [("joiner", "a"), ("late", "b")]

    def test_done_event_carries_message(self, env):
        ch = Channel(env, bandwidth_bps=100)
        m = msg(MessageKind.DATA_ITEM, 100, payload="x")
        done = ch.send(m)
        result = env.run(until=done)
        assert result is m
        assert m.delivered_at == pytest.approx(1.0)

    def test_resending_in_flight_message_raises(self, env):
        """Regression: re-sending the same object while it is queued or on
        the air silently leaked the first done-event; now it is an error."""
        ch = Channel(env, bandwidth_bps=100)
        m = msg(MessageKind.DATA_ITEM, 100, payload="x")
        ch.send(m)
        with pytest.raises(ValueError):
            ch.send(m)

    def test_resending_after_delivery_is_allowed(self, env):
        ch = Channel(env, bandwidth_bps=100)
        m = msg(MessageKind.DATA_ITEM, 100, payload="x")
        env.run(until=ch.send(m))
        done = ch.send(m)  # a fresh transmission of the same object
        env.run(until=done)
        assert m.delivered_at == pytest.approx(2.0)


class TestStats:
    def test_bit_conservation(self, env):
        ch = Channel(env, bandwidth_bps=100)
        for size in (100, 250, 50):
            ch.send(msg(MessageKind.DATA_ITEM, size))
        env.run()
        assert ch.stats.bits_enqueued == 400
        assert ch.stats.bits_delivered == 400
        assert ch.stats.messages_delivered == 3

    def test_busy_time_matches_bits_over_bandwidth(self, env):
        ch = Channel(env, bandwidth_bps=100)
        ch.send(msg(MessageKind.DATA_ITEM, 300))  # 3 s busy
        env.run(until=10)
        assert ch.stats.utilization(10.0) == pytest.approx(0.3)

    def test_bits_by_kind(self, env):
        ch = Channel(env, bandwidth_bps=100)
        ch.send(msg(MessageKind.INVALIDATION_REPORT, 70))
        ch.send(msg(MessageKind.DATA_ITEM, 30))
        env.run()
        assert ch.stats.bits_by_kind[MessageKind.INVALIDATION_REPORT] == 70
        assert ch.stats.bits_by_kind[MessageKind.DATA_ITEM] == 30

    def test_utilization_under_preemption_still_conserves(self, env):
        ch = Channel(env, bandwidth_bps=100)

        def sender(env):
            ch.send(msg(MessageKind.DATA_ITEM, 1000, payload="big"))
            yield env.timeout(2)
            ch.send(msg(MessageKind.INVALIDATION_REPORT, 100, payload="ir"))

        env.process(sender(env))
        env.run()
        # 1100 bits at 100 bps = 11 s busy total, no gaps here.
        assert ch.stats.bits_delivered == 1100
        assert ch.stats.utilization(env.now) == pytest.approx(1.0)


class TestListeningGate:
    def test_dozing_receiver_skips_broadcasts(self, env):
        ch = Channel(env, bandwidth_bps=100)
        seen = {1: [], 2: []}

        def awake(m, now):
            seen[1].append(m.payload)

        def dozer(m, now):
            seen[2].append(m.payload)

        ch.attach(awake)
        ch.attach(dozer)
        ch.set_listening(dozer, False)
        ch.send(msg(MessageKind.INVALIDATION_REPORT, 100, payload="ir1"))
        env.run()
        ch.set_listening(dozer, True)
        ch.send(msg(MessageKind.INVALIDATION_REPORT, 100, payload="ir2"))
        env.run()
        assert seen[1] == ["ir1", "ir2"]
        assert seen[2] == ["ir2"]

    def test_gating_unknown_receiver_raises(self, env):
        ch = Channel(env, bandwidth_bps=100)
        with pytest.raises(ValueError):
            ch.set_listening(lambda m, now: None, True)

    def test_unicast_reaches_only_its_destination(self, env):
        ch = Channel(env, bandwidth_bps=100)
        seen = {"c1": [], "c2": [], "tap": []}
        ch.attach(lambda m, now: seen["c1"].append(m.payload), dest=1)
        ch.attach(lambda m, now: seen["c2"].append(m.payload), dest=2)
        ch.attach(lambda m, now: seen["tap"].append(m.payload))  # promiscuous
        ch.send(msg(MessageKind.DATA_ITEM, 100, dest=1, payload="for-1"))
        env.run()
        assert seen == {"c1": ["for-1"], "c2": [], "tap": ["for-1"]}

    def test_dozing_destination_misses_unicast(self, env):
        ch = Channel(env, bandwidth_bps=100)
        seen = []

        def receiver(m, now):
            seen.append(m.payload)

        ch.attach(receiver, dest=1)
        ch.set_listening(receiver, False)
        ch.send(msg(MessageKind.DATA_ITEM, 100, dest=1, payload="lost"))
        env.run()
        assert seen == []
