"""Property-based tests of the shared channel (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import Environment
from repro.net import BROADCAST, Channel, Message, MessageKind, SERVER_ID

KINDS = [
    MessageKind.INVALIDATION_REPORT,
    MessageKind.VALIDITY_REPORT,
    MessageKind.DATA_ITEM,
]

message_strategy = st.lists(
    st.tuples(
        st.sampled_from(KINDS),
        st.integers(min_value=1, max_value=5000),   # size bits
        st.floats(min_value=0.0, max_value=50.0),   # send time
    ),
    min_size=1,
    max_size=30,
)


def run_mix(mix, bandwidth=1000.0):
    env = Environment()
    channel = Channel(env, bandwidth_bps=bandwidth)
    delivered = []
    channel.attach(lambda msg, now: delivered.append((msg, now)))

    def sender(env, delay, kind, size, tag):
        yield env.timeout(delay)
        channel.send(
            Message(kind=kind, size_bits=size, src=SERVER_ID, dest=BROADCAST,
                    payload=tag)
        )

    for tag, (kind, size, when) in enumerate(mix):
        env.process(sender(env, when, kind, size, tag))
    env.run()
    return channel, delivered


@settings(max_examples=60, deadline=None)
@given(mix=message_strategy)
def test_every_message_is_delivered_exactly_once(mix):
    channel, delivered = run_mix(mix)
    assert len(delivered) == len(mix)
    assert sorted(m.payload for m, _ in delivered) == list(range(len(mix)))


@settings(max_examples=60, deadline=None)
@given(mix=message_strategy)
def test_bits_are_conserved(mix):
    channel, delivered = run_mix(mix)
    total = sum(size for _k, size, _t in mix)
    assert channel.stats.bits_enqueued == total
    assert channel.stats.bits_delivered == total


@settings(max_examples=60, deadline=None)
@given(mix=message_strategy)
def test_deliveries_never_precede_send_plus_transmission(mix):
    _channel, delivered = run_mix(mix)
    lookup = {tag: (size, when) for tag, (_k, size, when) in enumerate(mix)}
    for msg, at in delivered:
        size, when = lookup[msg.payload]
        assert at >= when + size / 1000.0 - 1e-9


@settings(max_examples=60, deadline=None)
@given(mix=message_strategy)
def test_channel_is_never_faster_than_its_bandwidth(mix):
    """Total busy time must be at least total bits / bandwidth."""
    channel, delivered = run_mix(mix)
    last_delivery = max(at for _m, at in delivered)
    total_bits = sum(size for _k, size, _t in mix)
    first_send = min(when for _k, _s, when in mix)
    assert last_delivery - first_send >= total_bits / 1000.0 - 1e-9


@settings(max_examples=40, deadline=None)
@given(
    mix=message_strategy,
    preempt=st.sampled_from([-1, 0, 1]),
)
def test_preemption_setting_never_loses_messages(mix, preempt):
    env = Environment()
    channel = Channel(env, bandwidth_bps=500.0, preempt_threshold=preempt)
    delivered = []
    channel.attach(lambda msg, now: delivered.append(msg.payload))

    def sender(env, delay, kind, size, tag):
        yield env.timeout(delay)
        channel.send(
            Message(kind=kind, size_bits=size, src=SERVER_ID, dest=BROADCAST,
                    payload=tag)
        )

    for tag, (kind, size, when) in enumerate(mix):
        env.process(sender(env, when, kind, size, tag))
    env.run()
    assert sorted(delivered) == list(range(len(mix)))
