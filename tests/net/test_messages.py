"""Tests for message types and priority mapping."""

import pytest

from repro.net import (
    BROADCAST,
    Message,
    MessageKind,
    PRIORITY_CHECK,
    PRIORITY_DATA,
    PRIORITY_IR,
    SERVER_ID,
)


def make(kind, size=100, dest=BROADCAST):
    return Message(kind=kind, size_bits=size, src=SERVER_ID, dest=dest)


class TestPriorities:
    def test_ir_is_highest(self):
        assert make(MessageKind.INVALIDATION_REPORT).priority == PRIORITY_IR

    def test_checking_class(self):
        for kind in (
            MessageKind.CHECK_REQUEST,
            MessageKind.VALIDITY_REPORT,
            MessageKind.TLB_UPLOAD,
        ):
            assert make(kind).priority == PRIORITY_CHECK

    def test_data_class_is_lowest(self):
        for kind in (MessageKind.DATA_REQUEST, MessageKind.DATA_ITEM):
            assert make(kind).priority == PRIORITY_DATA

    def test_ordering_matches_paper(self):
        assert PRIORITY_IR < PRIORITY_CHECK < PRIORITY_DATA


class TestMessage:
    def test_broadcast_flag(self):
        assert make(MessageKind.INVALIDATION_REPORT).is_broadcast
        assert not make(MessageKind.DATA_ITEM, dest=3).is_broadcast

    def test_remaining_bits_initialized(self):
        msg = make(MessageKind.DATA_ITEM, size=64)
        assert msg.remaining_bits == 64.0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            make(MessageKind.DATA_ITEM, size=-1)

    def test_timestamps_unset_until_sent(self):
        msg = make(MessageKind.DATA_ITEM)
        assert msg.enqueued_at is None
        assert msg.delivered_at is None
