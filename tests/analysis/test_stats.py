"""Tests for replication statistics."""

import pytest

from repro.analysis import (
    ReplicationSummary,
    significantly_better,
    summarize,
    summarize_metric,
    welch_p_value,
)


class TestSummarize:
    def test_mean_and_interval_contain_truth(self):
        values = [10.0, 12.0, 11.0, 9.0, 13.0]
        s = summarize(values)
        assert s.n == 5
        assert s.mean == pytest.approx(11.0)
        assert s.ci_low < 11.0 < s.ci_high
        assert s.half_width > 0

    def test_interval_matches_t_table(self):
        # n=5, stdev=1: half width = t(0.975, 4) * 1/sqrt(5) = 2.776*0.4472
        values = [10.0, 11.0, 12.0, 13.0, 14.0]
        s = summarize(values)
        import math

        stdev = math.sqrt(2.5)  # variance of 10..14
        assert s.stdev == pytest.approx(stdev)
        assert s.half_width == pytest.approx(2.7764 * stdev / math.sqrt(5), rel=1e-3)

    def test_single_replication_degenerates(self):
        s = summarize([7.0])
        assert s.mean == s.ci_low == s.ci_high == 7.0
        assert s.stdev == 0.0

    def test_wider_confidence_wider_interval(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert summarize(values, 0.99).half_width > summarize(values, 0.9).half_width

    def test_validation(self):
        with pytest.raises(ValueError):
            summarize([])
        with pytest.raises(ValueError):
            summarize([1.0], confidence=1.5)

    def test_str(self):
        text = str(summarize([1.0, 2.0, 3.0]))
        assert "95 % CI" in text and "n=3" in text


class TestComparisons:
    def test_welch_detects_separated_groups(self):
        a = [10.0, 10.5, 9.8, 10.2, 10.1]
        b = [20.0, 19.5, 20.3, 20.1, 19.9]
        assert welch_p_value(a, b) < 0.001

    def test_welch_same_distribution_high_p(self):
        a = [10.0, 10.5, 9.8, 10.2]
        b = [10.1, 10.4, 9.9, 10.0]
        assert welch_p_value(a, b) > 0.1

    def test_requires_two_per_group(self):
        with pytest.raises(ValueError):
            welch_p_value([1.0], [2.0, 3.0])

    def test_significantly_better(self):
        winner = [20.0, 19.5, 20.3, 20.1]
        loser = [10.0, 10.5, 9.8, 10.2]
        assert significantly_better(winner, loser)
        assert not significantly_better(loser, winner)
        # Overlapping groups: not significant.
        assert not significantly_better([10.2, 10.3, 9.9], [10.0, 10.4, 10.1])


class TestWithSimulations:
    def test_summarize_metric_over_replications(self):
        from repro.sim import SystemParams, run_replications

        params = SystemParams(
            simulation_time=1500.0, n_clients=6, db_size=100,
            disconnect_prob=0.1, disconnect_time_mean=200.0,
        )
        results = run_replications(params, "uniform", "ts", seeds=[1, 2, 3, 4])
        summary = summarize_metric(results, "queries_answered")
        assert isinstance(summary, ReplicationSummary)
        assert summary.n == 4
        assert summary.mean > 0
        assert summary.ci_low <= summary.mean <= summary.ci_high
