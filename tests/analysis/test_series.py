"""Tests for series-shape helpers."""

import pytest

from repro.analysis import (
    crossover_x,
    dominates,
    mostly_decreasing,
    mostly_increasing,
    ratio_of_means,
    relative_spread,
    roughly_flat,
    trend_slope,
)


class TestTrendSlope:
    def test_exact_line(self):
        assert trend_slope([0, 1, 2], [5, 7, 9]) == pytest.approx(2.0)

    def test_flat(self):
        assert trend_slope([0, 1, 2], [4, 4, 4]) == pytest.approx(0.0)

    def test_degenerate(self):
        assert trend_slope([1], [2]) == 0.0
        assert trend_slope([3, 3], [1, 9]) == 0.0  # zero x-variance


class TestFlatAndMonotone:
    def test_roughly_flat(self):
        assert roughly_flat([100, 105, 98, 102])
        assert not roughly_flat([100, 10, 190])
        assert roughly_flat([])
        assert roughly_flat([0, 0, 0])
        assert not roughly_flat([0, 1, 0])

    def test_mostly_decreasing(self):
        assert mostly_decreasing([10, 8, 6, 1])
        assert mostly_decreasing([10, 10.2, 6, 1])  # small uptick tolerated
        assert not mostly_decreasing([10, 14, 6, 1])
        assert not mostly_decreasing([1, 2, 3])
        assert mostly_decreasing([5])

    def test_mostly_increasing(self):
        assert mostly_increasing([1, 2, 3])
        assert mostly_increasing([1, 0.98, 3])
        assert not mostly_increasing([3, 2, 1])


class TestComparisons:
    def test_dominates(self):
        assert dominates([10, 10], [5, 9])
        assert not dominates([10, 8], [5, 9])
        assert dominates([10, 10], [6, 6], margin=1.5)
        assert not dominates([10, 10], [8, 8], margin=1.5)

    def test_ratio_of_means(self):
        assert ratio_of_means([4, 6], [1, 1]) == pytest.approx(5.0)
        assert ratio_of_means([1], [0]) == float("inf")
        assert ratio_of_means([0], [0]) == 1.0

    def test_relative_spread(self):
        assert relative_spread([5, 5, 5]) == 0.0
        assert relative_spread([0, 10]) == pytest.approx(2.0)


class TestCrossover:
    def test_crossover_found(self):
        xs = [100, 200, 300, 400]
        a = [10, 9, 5, 2]   # leads early
        b = [5, 6, 7, 8]
        assert crossover_x(xs, a, b) == pytest.approx(250.0)

    def test_a_never_leads(self):
        assert crossover_x([1, 2], [0, 0], [5, 5]) == 1

    def test_a_always_leads(self):
        assert crossover_x([1, 2], [9, 9], [5, 5]) is None
