"""Property-based tests for the DES kernel (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import Environment, PriorityStore, Store


@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=60,
    )
)
def test_events_always_fire_in_nondecreasing_time_order(delays):
    env = Environment()
    fired = []
    for d in delays:
        env.timeout(d).callbacks.append(lambda ev: fired.append(env.now))
    env.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
        min_size=1,
        max_size=40,
    )
)
def test_timeouts_fire_exactly_at_their_time(delays):
    env = Environment()
    errors = []

    def proc(env, d):
        start = env.now
        yield env.timeout(d)
        if abs(env.now - (start + d)) > 1e-9 * max(1.0, d):
            errors.append((start, d, env.now))

    for d in delays:
        env.process(proc(env, d))
    env.run()
    assert errors == []


@given(
    items=st.lists(st.integers(min_value=-1000, max_value=1000), max_size=50)
)
def test_store_preserves_multiset_and_fifo(items):
    env = Environment()
    store = Store(env)
    got = []

    def run(env):
        for it in items:
            yield store.put(it)
        for _ in items:
            got.append((yield store.get()))

    env.run(until=env.process(run(env)))
    assert got == items


@given(
    items=st.lists(st.integers(min_value=-1000, max_value=1000), max_size=50)
)
def test_priority_store_yields_sorted_order(items):
    env = Environment()
    store = PriorityStore(env)
    got = []

    def run(env):
        for it in items:
            yield store.put(it)
        for _ in items:
            got.append((yield store.get()))

    env.run(until=env.process(run(env)))
    assert got == sorted(items)


@settings(max_examples=30)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    n=st.integers(min_value=1, max_value=20),
)
def test_interleaved_producers_consumers_conserve_items(seed, n):
    """Random producer/consumer interleavings never lose or duplicate items."""
    import random

    rnd = random.Random(seed)
    env = Environment()
    store = Store(env)
    produced = []
    consumed = []

    def producer(env, k):
        yield env.timeout(rnd.uniform(0, 10))
        yield store.put(k)
        produced.append(k)

    def consumer(env):
        item = yield store.get()
        consumed.append(item)

    for k in range(n):
        env.process(producer(env, k))
        env.process(consumer(env))
    env.run()
    assert sorted(consumed) == sorted(produced) == list(range(n))
