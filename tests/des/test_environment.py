"""Tests for the Environment run loop, clock and scheduling order."""

import pytest

from repro.des import EmptySchedule, Environment, Event, HIGH, LOW, NORMAL, URGENT


def test_initial_time_defaults_to_zero():
    assert Environment().now == 0.0


def test_initial_time_override():
    assert Environment(initial_time=42.5).now == 42.5


def test_run_until_time_advances_clock():
    env = Environment()
    env.run(until=10)
    assert env.now == 10


def test_run_until_past_time_rejected():
    env = Environment(initial_time=5)
    with pytest.raises(ValueError):
        env.run(until=1)


def test_step_empty_schedule_raises():
    with pytest.raises(EmptySchedule):
        Environment().step()


def test_peek_empty_is_infinity():
    assert Environment().peek() == float("inf")


def test_events_processed_in_time_order():
    env = Environment()
    seen = []
    for delay in (5, 1, 3):
        env.timeout(delay, value=delay).callbacks.append(
            lambda ev: seen.append(ev.value)
        )
    env.run()
    assert seen == [1, 3, 5]


def test_same_time_ties_broken_by_priority():
    env = Environment()
    seen = []
    env.timeout(1, value="low", priority=LOW).callbacks.append(
        lambda ev: seen.append(ev.value)
    )
    env.timeout(1, value="urgent", priority=URGENT).callbacks.append(
        lambda ev: seen.append(ev.value)
    )
    env.timeout(1, value="high", priority=HIGH).callbacks.append(
        lambda ev: seen.append(ev.value)
    )
    env.timeout(1, value="normal", priority=NORMAL).callbacks.append(
        lambda ev: seen.append(ev.value)
    )
    env.run()
    assert seen == ["urgent", "high", "normal", "low"]


def test_same_time_same_priority_is_fifo():
    env = Environment()
    seen = []
    for i in range(10):
        env.timeout(2, value=i).callbacks.append(lambda ev: seen.append(ev.value))
    env.run()
    assert seen == list(range(10))


def test_run_until_event_returns_its_value():
    env = Environment()

    def proc(env):
        yield env.timeout(3)
        return "done"

    result = env.run(until=env.process(proc(env)))
    assert result == "done"
    assert env.now == 3


def test_run_until_already_processed_event():
    env = Environment()
    ev = env.event()
    ev.succeed("early")
    env.run(until=5)
    assert env.run(until=ev) == "early"


def test_run_until_event_never_fires_raises():
    env = Environment()
    ev = env.event()  # never triggered
    env.timeout(1)
    with pytest.raises(RuntimeError):
        env.run(until=ev)


def test_run_until_failed_event_raises_its_exception():
    env = Environment()

    def boom(env):
        yield env.timeout(1)
        raise ValueError("kaboom")

    with pytest.raises(ValueError, match="kaboom"):
        env.run(until=env.process(boom(env)))


def test_clock_does_not_go_past_until():
    env = Environment()
    env.timeout(100)
    env.run(until=10)
    assert env.now == 10


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)
    with pytest.raises(ValueError):
        env.schedule(env.event(), delay=-0.5)


def test_unhandled_process_exception_propagates_from_run():
    env = Environment()

    def boom(env):
        yield env.timeout(1)
        raise RuntimeError("unhandled")

    env.process(boom(env))
    with pytest.raises(RuntimeError, match="unhandled"):
        env.run()


def test_event_callbacks_receive_the_event():
    env = Environment()
    box = []
    ev = env.timeout(1, value=7)
    ev.callbacks.append(box.append)
    env.run()
    assert box == [ev]
    assert box[0].value == 7


class TestTimeoutFastLane:
    """Bare-number yields and env.sleep() take the allocation-free lane."""

    def test_bare_number_yield_sleeps(self):
        env = Environment()
        trail = []

        def proc(env):
            yield 2.5
            trail.append(env.now)
            yield 0.5
            trail.append(env.now)

        env.process(proc(env))
        env.run()
        assert trail == [2.5, 3.0]

    def test_sleep_helper_matches_timeout(self):
        env = Environment()
        trail = []

        def proc(env):
            yield env.sleep(4.0)
            trail.append(env.now)
            yield env.timeout(1.0)
            trail.append(env.now)

        env.process(proc(env))
        env.run()
        assert trail == [4.0, 5.0]

    def test_fast_lane_interleaves_with_events(self):
        env = Environment()
        order = []

        def sleeper(env):
            yield 1.0
            order.append(("sleeper", env.now))

        def timeouter(env):
            yield env.timeout(1.0)
            order.append(("timeouter", env.now))

        env.process(sleeper(env))
        env.process(timeouter(env))
        env.run()
        # Same instant: insertion order breaks the tie, as for events.
        assert order == [("sleeper", 1.0), ("timeouter", 1.0)]

    def test_scheduled_events_counts_monotonically(self):
        env = Environment()

        def proc(env):
            yield 1.0
            yield env.timeout(1.0)

        env.process(proc(env))
        before = env.scheduled_events
        env.run()
        assert env.scheduled_events > before
