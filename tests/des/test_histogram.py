"""Tests for the log-scale histogram monitor."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.des import Histogram


class TestHistogram:
    def test_counts_and_mean(self):
        h = Histogram(base=1.0)
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.count == 4
        assert h.mean == pytest.approx(2.5)
        assert h.max == 4.0

    def test_underflow_bucket(self):
        h = Histogram(base=1.0)
        h.observe(0.5)
        assert h.buckets()[0.0] == 1

    def test_bucket_edges(self):
        h = Histogram(base=1.0)
        h.observe(1.0)   # [1, 2)
        h.observe(1.99)  # [1, 2)
        h.observe(2.0)   # [2, 4)
        assert h.buckets() == {1.0: 2, 2.0: 1}

    def test_percentiles_bracket_true_quantiles(self):
        h = Histogram(base=0.001)
        samples = [float(i) for i in range(1, 101)]
        for v in samples:
            h.observe(v)
        # p50's covering bucket must contain the true median (50.5).
        assert h.percentile(0.5) >= 50.0
        assert h.percentile(0.5) <= 50.5 * 2
        assert h.percentile(1.0) >= 100.0

    def test_empty(self):
        assert Histogram().percentile(0.9) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Histogram(base=0.0)
        with pytest.raises(ValueError):
            Histogram().observe(-1.0)
        with pytest.raises(ValueError):
            Histogram().percentile(1.5)

    def test_metricset_snapshot_includes_percentiles(self):
        from repro.des import MetricSet

        ms = MetricSet()
        for v in (1.0, 5.0, 10.0):
            ms.histogram("lat").observe(v)
        snap = ms.snapshot(0.0)
        assert "lat.p50" in snap and "lat.p95" in snap and "lat.p99" in snap


@given(
    samples=st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=200,
    ),
    q=st.floats(min_value=0.01, max_value=1.0),
)
def test_property_percentile_at_least_true_quantile_lower_bucket(samples, q):
    """The reported percentile is an upper bucket edge: it never falls
    below the true q-quantile's own bucket's lower edge / 1."""
    h = Histogram(base=0.001)
    for v in samples:
        h.observe(v)
    true_q = sorted(samples)[max(0, int(q * len(samples)) - 1)]
    # The bucketed estimate is within a factor of 2 above the true value
    # (or the underflow floor).
    estimate = h.percentile(q)
    assert estimate >= min(true_q, 0.001) or estimate >= true_q / 2
