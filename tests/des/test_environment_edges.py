"""Edge-case tests for the environment: re-entrancy, exact boundaries,
callback-time scheduling."""

import pytest

from repro.des import Environment, Event


@pytest.fixture
def env():
    return Environment()


class TestBoundaries:
    def test_event_exactly_at_until_is_processed(self, env):
        fired = []
        env.timeout(10.0).callbacks.append(lambda ev: fired.append(env.now))
        env.run(until=10.0)
        assert fired == [10.0]

    def test_event_just_after_until_is_not_processed(self, env):
        fired = []
        env.timeout(10.0000001).callbacks.append(lambda ev: fired.append(1))
        env.run(until=10.0)
        assert fired == []
        # ... but survives for a later run.
        env.run(until=11.0)
        assert fired == [1]

    def test_multiple_sequential_runs_advance_monotonically(self, env):
        env.run(until=5)
        env.run(until=7)
        assert env.now == 7
        with pytest.raises(ValueError):
            env.run(until=6)

    def test_run_with_empty_schedule_advances_clock(self, env):
        env.run(until=100)
        assert env.now == 100


class TestCallbackScheduling:
    def test_callback_may_schedule_new_events(self, env):
        chain = []

        def relay(ev):
            chain.append(env.now)
            if len(chain) < 3:
                env.timeout(1.0).callbacks.append(relay)

        env.timeout(1.0).callbacks.append(relay)
        env.run()
        assert chain == [1.0, 2.0, 3.0]

    def test_callback_may_succeed_other_events_same_instant(self, env):
        fired = []
        gate = env.event()
        gate.callbacks.append(lambda ev: fired.append(("gate", env.now)))
        env.timeout(2.0).callbacks.append(lambda ev: gate.succeed())
        env.run()
        assert fired == [("gate", 2.0)]

    def test_spawning_process_from_callback(self, env):
        results = []

        def worker(env):
            yield env.timeout(1.0)
            results.append(env.now)

        env.timeout(3.0).callbacks.append(lambda ev: env.process(worker(env)))
        env.run()
        assert results == [4.0]


class TestEventMisuse:
    def test_schedule_same_event_twice_runs_callbacks_once(self, env):
        """succeed() guards against double triggering."""
        ev = env.event().succeed()
        with pytest.raises(RuntimeError):
            ev.succeed()

    def test_failed_event_with_waiter_does_not_crash_run(self, env):
        def waiter(env, ev):
            try:
                yield ev
            except RuntimeError:
                return "caught"

        ev = env.event()
        p = env.process(waiter(env, ev))
        ev.fail(RuntimeError("boom"))
        assert env.run(until=p) == "caught"

    def test_defused_failure_is_silent(self, env):
        ev = env.event()
        ev._defused = True
        ev.fail(RuntimeError("ignored"))
        env.run(until=1)  # no raise

    def test_repr_forms(self, env):
        ev = env.event()
        assert "pending" in repr(ev)
        ev.succeed()
        assert "triggered" in repr(ev)
        env.run(until=0)
        assert "processed" in repr(ev)


class TestPeek:
    def test_peek_tracks_next_event(self, env):
        env.timeout(7.0)
        env.timeout(3.0)
        assert env.peek() == 3.0

    def test_peek_after_step(self, env):
        env.timeout(3.0)
        env.timeout(7.0)
        env.step()
        assert env.peek() == 7.0
