"""Tests for Process semantics: joining, return values, interrupts."""

import pytest

from repro.des import Environment, Interrupt


@pytest.fixture
def env():
    return Environment()


class TestBasics:
    def test_process_runs_to_completion(self, env):
        trace = []

        def proc(env):
            trace.append(env.now)
            yield env.timeout(2)
            trace.append(env.now)
            yield env.timeout(3)
            trace.append(env.now)

        env.process(proc(env))
        env.run()
        assert trace == [0, 2, 5]

    def test_process_starts_at_current_time_not_immediately(self, env):
        started = []

        def proc(env):
            started.append(env.now)
            yield env.timeout(0)

        def spawner(env):
            yield env.timeout(7)
            env.process(proc(env))

        env.process(spawner(env))
        env.run()
        assert started == [7]

    def test_process_is_alive_until_done(self, env):
        def proc(env):
            yield env.timeout(5)

        p = env.process(proc(env))
        assert p.is_alive
        env.run()
        assert not p.is_alive

    def test_join_returns_value(self, env):
        def worker(env):
            yield env.timeout(3)
            return 123

        def boss(env):
            value = yield env.process(worker(env))
            assert value == 123
            assert env.now == 3

        env.run(until=env.process(boss(env)))

    def test_join_raises_worker_exception(self, env):
        def worker(env):
            yield env.timeout(1)
            raise KeyError("lost")

        def boss(env):
            with pytest.raises(KeyError):
                yield env.process(worker(env))

        env.run(until=env.process(boss(env)))

    def test_join_already_finished_process(self, env):
        def worker(env):
            yield env.timeout(1)
            return "early"

        p = env.process(worker(env))
        env.run(until=5)

        def boss(env):
            value = yield p
            assert value == "early"
            assert env.now == 5

        env.run(until=env.process(boss(env)))

    def test_non_generator_rejected(self, env):
        with pytest.raises(TypeError):
            env.process(lambda: None)

    def test_process_name(self, env):
        def my_proc(env):
            yield env.timeout(1)

        p = env.process(my_proc(env), name="client-3")
        assert p.name == "client-3"
        assert "client-3" in repr(p)

    def test_nested_spawning(self, env):
        order = []

        def leaf(env, n):
            yield env.timeout(n)
            order.append(n)
            return n * 10

        def root(env):
            total = 0
            for n in (3, 1, 2):
                total += yield env.process(leaf(env, n))
            return total

        result = env.run(until=env.process(root(env)))
        assert result == 60
        assert order == [3, 1, 2]  # sequential joins


class TestInterrupt:
    def test_interrupt_delivers_cause(self, env):
        causes = []

        def sleeper(env):
            try:
                yield env.timeout(100)
            except Interrupt as exc:
                causes.append((exc.cause, env.now))

        p = env.process(sleeper(env))

        def interrupter(env):
            yield env.timeout(4)
            p.interrupt("wake up")

        env.process(interrupter(env))
        env.run()
        assert causes == [("wake up", 4)]

    def test_interrupted_process_can_continue(self, env):
        trace = []

        def sleeper(env):
            try:
                yield env.timeout(100)
            except Interrupt:
                pass
            yield env.timeout(1)
            trace.append(env.now)

        p = env.process(sleeper(env))

        def interrupter(env):
            yield env.timeout(10)
            p.interrupt()

        env.process(interrupter(env))
        env.run()
        assert trace == [11]

    def test_interrupt_detaches_from_target(self, env):
        """The original target firing later must not resume the process twice."""
        resumed = []

        def sleeper(env):
            try:
                yield env.timeout(5)
                resumed.append("timeout")
            except Interrupt:
                resumed.append("interrupt")
            yield env.timeout(20)
            resumed.append("after")

        p = env.process(sleeper(env))

        def interrupter(env):
            yield env.timeout(1)
            p.interrupt()

        env.process(interrupter(env))
        env.run()
        assert resumed == ["interrupt", "after"]

    def test_interrupt_dead_process_raises(self, env):
        def quick(env):
            yield env.timeout(1)

        p = env.process(quick(env))
        env.run()
        with pytest.raises(RuntimeError):
            p.interrupt()

    def test_unhandled_interrupt_fails_process(self, env):
        def sleeper(env):
            yield env.timeout(100)

        p = env.process(sleeper(env))

        def interrupter(env):
            yield env.timeout(1)
            p.interrupt("boom")

        env.process(interrupter(env))
        with pytest.raises(Interrupt):
            env.run()

    def test_interrupt_cause_accessor(self):
        assert Interrupt("why").cause == "why"
