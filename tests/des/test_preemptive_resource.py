"""Tests for the preemptive resource."""

import pytest

from repro.des import Environment, Interrupt, Preempted, PreemptiveResource


@pytest.fixture
def env():
    return Environment()


class TestPreemption:
    def test_high_priority_evicts_holder(self, env):
        res = PreemptiveResource(env, capacity=1)
        trace = []

        def low(env):
            with res.request(priority=5) as req:
                yield req
                trace.append(("low-in", env.now))
                try:
                    yield env.timeout(100)
                    trace.append(("low-done", env.now))
                except Interrupt as exc:
                    assert isinstance(exc.cause, Preempted)
                    trace.append(("low-evicted", env.now))

        def high(env):
            yield env.timeout(3)
            with res.request(priority=0) as req:
                yield req
                trace.append(("high-in", env.now))
                yield env.timeout(2)

        env.process(low(env))
        env.process(high(env))
        env.run()
        assert trace == [
            ("low-in", 0),
            ("low-evicted", 3),
            ("high-in", 3),
        ]

    def test_equal_priority_does_not_preempt(self, env):
        res = PreemptiveResource(env, capacity=1)
        order = []

        def user(env, name, delay, prio):
            yield env.timeout(delay)
            with res.request(priority=prio) as req:
                yield req
                order.append((name, env.now))
                yield env.timeout(10)

        env.process(user(env, "first", 0, 3))
        env.process(user(env, "second", 2, 3))
        env.run()
        assert order == [("first", 0), ("second", 10)]

    def test_lower_priority_waits(self, env):
        res = PreemptiveResource(env, capacity=1)
        order = []

        def user(env, name, delay, prio):
            yield env.timeout(delay)
            with res.request(priority=prio) as req:
                yield req
                order.append((name, env.now))
                yield env.timeout(10)

        env.process(user(env, "high", 0, 0))
        env.process(user(env, "low", 2, 9))
        env.run()
        assert order == [("high", 0), ("low", 10)]

    def test_victim_is_worst_priority_holder(self, env):
        res = PreemptiveResource(env, capacity=2)
        evicted = []

        def holder(env, name, prio):
            with res.request(priority=prio) as req:
                yield req
                try:
                    yield env.timeout(100)
                except Interrupt:
                    evicted.append(name)

        def vip(env):
            yield env.timeout(5)
            with res.request(priority=0) as req:
                yield req
                yield env.timeout(1)

        env.process(holder(env, "mid", 3))
        env.process(holder(env, "worst", 7))
        env.process(vip(env))
        env.run()
        assert evicted == ["worst"]

    def test_preempted_cause_carries_context(self, env):
        res = PreemptiveResource(env, capacity=1)
        causes = []

        def low(env):
            with res.request(priority=5) as req:
                yield req
                try:
                    yield env.timeout(100)
                except Interrupt as exc:
                    causes.append(exc.cause)

        def high(env):
            yield env.timeout(1)
            with res.request(priority=0) as req:
                yield req

        env.process(low(env))
        env.process(high(env))
        env.run()
        (cause,) = causes
        assert cause.resource is res
        assert cause.by.priority == 0
        assert "Preempted" in repr(cause)

    def test_nonpreemptive_base_class_never_evicts(self, env):
        from repro.des import Resource

        res = Resource(env, capacity=1)
        order = []

        def user(env, name, delay, prio):
            yield env.timeout(delay)
            with res.request(priority=prio) as req:
                yield req
                order.append((name, env.now))
                yield env.timeout(10)

        env.process(user(env, "low", 0, 9))
        env.process(user(env, "high", 1, 0))
        env.run()
        assert order == [("low", 0), ("high", 10)]
