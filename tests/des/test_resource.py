"""Tests for Resource and Container."""

import pytest

from repro.des import Container, Environment, Resource


@pytest.fixture
def env():
    return Environment()


class TestResource:
    def test_capacity_one_serializes_users(self, env):
        res = Resource(env, capacity=1)
        trace = []

        def user(env, name, hold):
            with res.request() as req:
                yield req
                trace.append((name, "in", env.now))
                yield env.timeout(hold)
                trace.append((name, "out", env.now))

        env.process(user(env, "a", 3))
        env.process(user(env, "b", 2))
        env.run()
        assert trace == [
            ("a", "in", 0),
            ("a", "out", 3),
            ("b", "in", 3),
            ("b", "out", 5),
        ]

    def test_capacity_two_allows_concurrency(self, env):
        res = Resource(env, capacity=2)
        entered = []

        def user(env, name):
            with res.request() as req:
                yield req
                entered.append((name, env.now))
                yield env.timeout(10)

        for name in "abc":
            env.process(user(env, name))
        env.run()
        assert entered == [("a", 0), ("b", 0), ("c", 10)]

    def test_priority_order(self, env):
        res = Resource(env, capacity=1)
        order = []

        def holder(env):
            with res.request() as req:
                yield req
                yield env.timeout(10)

        def user(env, name, prio, delay):
            yield env.timeout(delay)
            with res.request(priority=prio) as req:
                yield req
                order.append(name)
                yield env.timeout(1)

        env.process(holder(env))
        env.process(user(env, "low", 5, 1))
        env.process(user(env, "high", 0, 2))
        env.run()
        assert order == ["high", "low"]

    def test_release_of_queued_request_cancels_it(self, env):
        res = Resource(env, capacity=1)
        first = res.request()
        second = res.request()
        env.run(until=0)
        assert first.triggered and not second.triggered
        res.release(second)
        assert res.queue == []
        res.release(first)
        assert res.count == 0

    def test_count_and_queue(self, env):
        res = Resource(env, capacity=1)
        r1 = res.request()
        r2 = res.request()
        assert res.count == 1
        assert res.queue == [r2]
        res.release(r1)
        assert res.count == 1  # r2 granted
        assert res.queue == []

    def test_invalid_capacity(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)


class TestContainer:
    def test_put_and_get_levels(self, env):
        tank = Container(env, capacity=100, init=10)

        def run(env):
            yield tank.put(40)
            assert tank.level == 50
            yield tank.get(25)
            assert tank.level == 25

        env.run(until=env.process(run(env)))

    def test_get_blocks_until_available(self, env):
        tank = Container(env, capacity=100)
        times = []

        def consumer(env):
            yield tank.get(30)
            times.append(env.now)

        def producer(env):
            yield env.timeout(2)
            yield tank.put(10)
            yield env.timeout(2)
            yield tank.put(25)

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert times == [4]

    def test_put_blocks_at_capacity(self, env):
        tank = Container(env, capacity=10, init=8)
        times = []

        def producer(env):
            yield tank.put(5)
            times.append(env.now)

        def consumer(env):
            yield env.timeout(3)
            yield tank.get(4)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert times == [3]

    def test_invalid_amounts(self, env):
        tank = Container(env, capacity=10)
        with pytest.raises(ValueError):
            tank.put(0)
        with pytest.raises(ValueError):
            tank.get(-1)
        with pytest.raises(ValueError):
            Container(env, capacity=5, init=6)
