"""Tests for statistics collectors."""

import math

import pytest

from repro.des import Counter, MetricSet, Tally, TimeWeighted


class TestCounter:
    def test_accumulates(self):
        c = Counter("bits")
        c.add(10)
        c.add(2.5)
        assert c.value == 12.5

    def test_default_increment(self):
        c = Counter()
        c.add()
        assert c.value == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter().add(-1)


class TestTally:
    def test_moments_match_reference(self):
        samples = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        t = Tally()
        for s in samples:
            t.observe(s)
        n = len(samples)
        mean = sum(samples) / n
        var = sum((s - mean) ** 2 for s in samples) / (n - 1)
        assert t.count == n
        assert t.mean == pytest.approx(mean)
        assert t.variance == pytest.approx(var)
        assert t.stdev == pytest.approx(math.sqrt(var))
        assert t.min == 1.0
        assert t.max == 9.0

    def test_empty_tally(self):
        t = Tally()
        assert t.count == 0
        assert t.mean == 0.0
        assert t.variance == 0.0
        assert t.min is None

    def test_single_sample(self):
        t = Tally()
        t.observe(5.0)
        assert t.mean == 5.0
        assert t.variance == 0.0


class TestTimeWeighted:
    def test_constant_level(self):
        lv = TimeWeighted(0.0, level=3.0)
        assert lv.average(10.0) == pytest.approx(3.0)

    def test_step_function(self):
        lv = TimeWeighted(0.0, level=0.0)
        lv.set(2.0, now=5.0)   # 0 for [0,5), 2 for [5,10)
        assert lv.average(10.0) == pytest.approx(1.0)

    def test_adjust(self):
        lv = TimeWeighted(0.0, level=1.0)
        lv.adjust(+1.0, now=4.0)
        assert lv.level == 2.0
        # 1*4 + 2*4 over 8
        assert lv.average(8.0) == pytest.approx(1.5)

    def test_time_reversal_rejected(self):
        lv = TimeWeighted(5.0)
        with pytest.raises(ValueError):
            lv.set(1.0, now=4.0)

    def test_empty_interval_average(self):
        assert TimeWeighted(3.0, level=9.0).average(3.0) == 0.0


class TestMetricSet:
    def test_lazy_creation_and_reuse(self):
        m = MetricSet()
        m.counter("queries").add(3)
        m.counter("queries").add(2)
        assert m.counter("queries").value == 5

    def test_snapshot_flattens_everything(self):
        m = MetricSet()
        m.counter("queries").add(7)
        m.tally("latency").observe(2.0)
        m.tally("latency").observe(4.0)
        m.level("queue", now=0.0).set(1.0, now=5.0)
        snap = m.snapshot(now=10.0)
        assert snap["queries"] == 7
        assert snap["latency.count"] == 2
        assert snap["latency.mean"] == pytest.approx(3.0)
        assert snap["queue.avg"] == pytest.approx(0.5)

    def test_snapshot_empty_tally_max(self):
        m = MetricSet()
        m.tally("x")
        assert m.snapshot(0.0)["x.max"] == 0.0


class TestBoundHandles:
    def test_bind_counter_is_the_same_object(self):
        m = MetricSet()
        handle = m.bind_counter("energy.rx")
        assert handle is m.counter("energy.rx")
        handle.add(3.0)
        assert m.snapshot(0.0)["energy.rx"] == 3.0

    def test_bind_tally_is_the_same_object(self):
        m = MetricSet()
        handle = m.bind_tally("latency")
        assert handle is m.tally("latency")
        handle.observe(2.0)
        assert m.snapshot(0.0)["latency.count"] == 1
