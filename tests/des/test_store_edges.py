"""Edge cases for stores: capacity backpressure chains, mixed waiters."""

import pytest

from repro.des import Environment, FilterStore, PriorityStore, Store


@pytest.fixture
def env():
    return Environment()


class TestBackpressure:
    def test_producer_chain_through_bounded_store(self, env):
        """A bounded store throttles a fast producer to the consumer."""
        store = Store(env, capacity=2)
        put_times = []
        got = []

        def producer(env):
            for i in range(5):
                yield store.put(i)
                put_times.append(env.now)

        def consumer(env):
            while len(got) < 5:
                yield env.timeout(10)
                got.append((yield store.get()))

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert got == [0, 1, 2, 3, 4]
        # First two puts immediate; the rest gated by consumption ticks.
        assert put_times[0] == put_times[1] == 0
        assert put_times[2] == 10 and put_times[3] == 20

    def test_multiple_blocked_producers_fifo(self, env):
        store = Store(env, capacity=1)
        order = []

        def producer(env, tag, delay):
            yield env.timeout(delay)
            yield store.put(tag)
            order.append((tag, env.now))

        def consumer(env):
            for _ in range(3):
                yield env.timeout(10)
                yield store.get()

        for tag, delay in (("a", 0), ("b", 1), ("c", 2)):
            env.process(producer(env, tag, delay))
        env.process(consumer(env))
        env.run()
        assert [tag for tag, _t in order] == ["a", "b", "c"]

    def test_priority_store_respects_capacity(self, env):
        store = PriorityStore(env, capacity=2)

        def run(env):
            yield store.put(5)
            yield store.put(1)
            assert len(store) == 2
            assert (yield store.get()) == 1
            yield store.put(3)
            assert (yield store.get()) == 3
            assert (yield store.get()) == 5

        env.run(until=env.process(run(env)))


class TestFilterStoreEdges:
    def test_many_waiters_distinct_filters(self, env):
        store = FilterStore(env)
        got = {}

        def waiter(env, want):
            got[want] = yield store.get(lambda it: it == want)

        for want in ("x", "y", "z"):
            env.process(waiter(env, want))

        def producer(env):
            yield env.timeout(1)
            for item in ("z", "x", "y"):
                yield store.put(item)

        env.process(producer(env))
        env.run()
        assert got == {"x": "x", "y": "y", "z": "z"}

    def test_unmatched_items_accumulate(self, env):
        store = FilterStore(env)

        def run(env):
            yield store.put("a")
            yield store.put("b")
            item = yield store.get(lambda it: it == "b")
            assert item == "b"
            assert store.items == ["a"]

        env.run(until=env.process(run(env)))
