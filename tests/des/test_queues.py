"""Tests for Store, PriorityStore and FilterStore."""

import pytest

from repro.des import Environment, FilterStore, PriorityItem, PriorityStore, Store


@pytest.fixture
def env():
    return Environment()


class TestStore:
    def test_put_then_get(self, env):
        store = Store(env)
        got = []

        def producer(env):
            yield store.put("x")
            yield store.put("y")

        def consumer(env):
            got.append((yield store.get()))
            got.append((yield store.get()))

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert got == ["x", "y"]

    def test_get_blocks_until_put(self, env):
        store = Store(env)
        times = []

        def consumer(env):
            item = yield store.get()
            times.append((item, env.now))

        def producer(env):
            yield env.timeout(9)
            yield store.put("late")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert times == [("late", 9)]

    def test_fifo_ordering_of_items(self, env):
        store = Store(env)
        got = []

        def run(env):
            for i in range(5):
                yield store.put(i)
            for _ in range(5):
                got.append((yield store.get()))

        env.run(until=env.process(run(env)))
        assert got == [0, 1, 2, 3, 4]

    def test_fifo_ordering_of_waiting_consumers(self, env):
        store = Store(env)
        got = []

        def consumer(env, name):
            item = yield store.get()
            got.append((name, item))

        for name in ("first", "second"):
            env.process(consumer(env, name))

        def producer(env):
            yield env.timeout(1)
            yield store.put("a")
            yield store.put("b")

        env.process(producer(env))
        env.run()
        assert got == [("first", "a"), ("second", "b")]

    def test_capacity_blocks_put(self, env):
        store = Store(env, capacity=1)
        trace = []

        def producer(env):
            yield store.put(1)
            trace.append(("put1", env.now))
            yield store.put(2)
            trace.append(("put2", env.now))

        def consumer(env):
            yield env.timeout(5)
            yield store.get()

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert trace == [("put1", 0), ("put2", 5)]

    def test_zero_capacity_rejected(self, env):
        with pytest.raises(ValueError):
            Store(env, capacity=0)

    def test_len(self, env):
        store = Store(env)
        store.put("a")
        store.put("b")
        env.run(until=0)
        assert len(store) == 2


class TestPriorityStore:
    def test_smallest_first(self, env):
        store = PriorityStore(env)
        got = []

        def run(env):
            for v in (5, 1, 3):
                yield store.put(v)
            for _ in range(3):
                got.append((yield store.get()))

        env.run(until=env.process(run(env)))
        assert got == [1, 3, 5]

    def test_priority_item_fifo_within_priority(self, env):
        store = PriorityStore(env)
        got = []

        def run(env):
            yield store.put(PriorityItem(priority=2, seq=0, item="first-p2"))
            yield store.put(PriorityItem(priority=1, seq=1, item="p1"))
            yield store.put(PriorityItem(priority=2, seq=2, item="second-p2"))
            for _ in range(3):
                got.append((yield store.get()).item)

        env.run(until=env.process(run(env)))
        assert got == ["p1", "first-p2", "second-p2"]

    def test_peek(self, env):
        store = PriorityStore(env)
        store.put(7)
        store.put(3)
        env.run(until=0)
        assert store.peek() == 3
        assert len(store) == 2


class TestFilterStore:
    def test_filter_matches_non_head_item(self, env):
        store = FilterStore(env)
        got = []

        def run(env):
            yield store.put({"kind": "a", "n": 1})
            yield store.put({"kind": "b", "n": 2})
            item = yield store.get(lambda it: it["kind"] == "b")
            got.append(item["n"])
            item = yield store.get()
            got.append(item["n"])

        env.run(until=env.process(run(env)))
        assert got == [2, 1]

    def test_nonmatching_getter_does_not_block_others(self, env):
        store = FilterStore(env)
        got = []

        def picky(env):
            item = yield store.get(lambda it: it == "never")
            got.append(("picky", item))

        def easy(env):
            item = yield store.get(lambda it: True)
            got.append(("easy", item))

        env.process(picky(env))
        env.process(easy(env))

        def producer(env):
            yield env.timeout(1)
            yield store.put("plain")

        env.process(producer(env))
        env.run()
        assert got == [("easy", "plain")]

    def test_waiting_filter_satisfied_later(self, env):
        store = FilterStore(env)
        got = []

        def picky(env):
            item = yield store.get(lambda it: it == "special")
            got.append((item, env.now))

        env.process(picky(env))

        def producer(env):
            yield store.put("plain")
            yield env.timeout(3)
            yield store.put("special")

        env.process(producer(env))
        env.run()
        assert got == [("special", 3)]


class TestPutNowait:
    def test_item_available_immediately(self, env):
        store = Store(env)
        store.put_nowait("x")
        assert len(store) == 1 and store.items == ["x"]

    def test_wakes_waiting_getter(self, env):
        store = Store(env)
        got = []

        def consumer(env):
            got.append((yield store.get()))

        env.process(consumer(env))
        store.put_nowait("x")
        env.run()
        assert got == ["x"]

    def test_full_store_raises_instead_of_blocking(self, env):
        store = Store(env, capacity=1)
        store.put_nowait("x")
        with pytest.raises(RuntimeError):
            store.put_nowait("y")
        assert store.items == ["x"]

    def test_matches_put_ordering(self, env):
        # Interleaving event-based puts with put_nowait keeps FIFO order.
        store = Store(env)
        got = []

        def producer(env):
            store.put_nowait("a")
            yield store.put("b")
            store.put_nowait("c")

        def consumer(env):
            for _ in range(3):
                got.append((yield store.get()))

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert got == ["a", "b", "c"]

    def test_priority_store_put_nowait_sorts(self, env):
        store = PriorityStore(env)
        for priority, payload in [(5, "e"), (1, "a"), (3, "c")]:
            store.put_nowait(PriorityItem(priority=priority, seq=0, item=payload))
        assert store.peek().item == "a"
