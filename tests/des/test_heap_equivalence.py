"""Differential tests: the SoA event heap against a reference ``heapq``.

The two heap backends (struct-of-arrays :class:`~repro.des.soa_heap.EventHeap`
and the tuple + C-``heapq`` list) must yield bit-identical pop sequences
for every schedule the kernel can produce — that is what lets
``REPRO_KERNEL`` switch backends without re-pinning a single golden.
These tests replay random schedules against CPython's ``heapq`` as the
executable specification, at three levels:

* the bare heap (interleaved pushes/pops, duplicate ``(when, prio)``
  keys resolved by the unique eid tie-break);
* the dispatch layer's cancellation protocol (stale wakeup entries
  skipped by eid generation — the heap itself has no tombstones);
* :class:`~repro.des.queues.PriorityStore`'s keyed sifts, where full key
  ties ARE possible and must arrange exactly as heapq arranges them.
"""

import heapq
import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import Environment, PriorityItem, PriorityStore
from repro.des.soa_heap import EventHeap

# Small value pools force (when, prio) collisions so the eid tie-break
# actually decides orderings instead of almost never firing.
whens = st.floats(min_value=0.0, max_value=4.0, allow_nan=False, width=16)
prios = st.sampled_from([0, 1, 5, 9])


@st.composite
def schedule_ops(draw):
    """A mixed push/pop script; pushes carry unique eids like the kernel."""
    ops = []
    n = draw(st.integers(min_value=1, max_value=80))
    eid = itertools.count(1)
    for _ in range(n):
        if draw(st.booleans()):
            ops.append(("push", draw(whens), draw(prios), next(eid)))
        else:
            ops.append(("pop",))
    return ops


@given(ops=schedule_ops())
@settings(max_examples=200)
def test_event_heap_matches_heapq_reference(ops):
    soa = EventHeap()
    ref = []
    for op in ops:
        if op[0] == "push":
            _, when, prio, eid = op
            payload = ("payload", eid)
            soa.push(when, prio, eid, payload)
            heapq.heappush(ref, (when, prio, eid, payload))
        elif ref:
            when, _prio, eid, payload = heapq.heappop(ref)
            assert soa.peek_when() == when
            assert soa.pop() == (when, eid, payload)
        else:
            assert not soa and len(soa) == 0
    # Drain: the full remaining sequence must agree too.
    while ref:
        when, _prio, eid, payload = heapq.heappop(ref)
        assert soa.pop() == (when, eid, payload)
    assert not soa


@given(ops=schedule_ops())
@settings(max_examples=100)
def test_event_heap_recycles_payload_slots(ops):
    """The slot list is bounded by the peak number of pending entries."""
    soa = EventHeap()
    pending = peak = 0
    for op in ops:
        if op[0] == "push":
            soa.push(op[1], op[2], op[3], None)
            pending += 1
            peak = max(peak, pending)
        elif pending:
            soa.pop()
            pending -= 1
    assert soa.slots_allocated == peak


@given(
    delays=st.lists(
        st.tuples(whens, st.booleans()), min_size=1, max_size=30
    )
)
@settings(max_examples=100)
def test_cancelled_sleeps_skip_identically_on_both_backends(delays):
    """Cancellation is dispatch-level: interrupting a sleeping process
    disarms its wakeup token and the stale heap entry is skipped on pop.
    Both backends must observe the identical resume/interrupt trace."""

    def run(kind):
        env = Environment()
        env._soa = EventHeap() if kind == "soa" else None
        trace = []

        def sleeper(env, i, d):
            try:
                yield d
                trace.append(("woke", i, env.now))
            except Exception:
                trace.append(("interrupted", i, env.now))

        procs = [
            env.process(sleeper(env, i, d)) for i, (d, _) in enumerate(delays)
        ]

        def canceller(env):
            yield 0.5
            for proc, (_, cancel) in zip(procs, delays):
                if cancel and proc.is_alive and proc.target is not None:
                    proc.interrupt()

        env.process(canceller(env))
        env.run()
        return trace, env.now, env.scheduled_events

    assert run("tuple") == run("soa")


priority_keys = st.tuples(
    st.integers(min_value=0, max_value=3), st.integers(min_value=0, max_value=3)
)


@given(keys=st.lists(priority_keys, min_size=1, max_size=40))
@settings(max_examples=200)
def test_priority_store_soa_sifts_match_heapq_on_ties(keys):
    """PriorityStore's keyed SoA sifts vs the tuple + C-heapq mode.

    Unlike the event heap, full ``(priority, seq)`` ties are legal here
    (the kernel never produces them, but the API allows it), so this
    pins that the hand-written sifts break ties exactly as heapq does —
    including _siftup's right-child preference on equal keys.
    """

    def drain(env):
        store = PriorityStore(env)
        for i, (prio, seq) in enumerate(keys):
            store.put_nowait(PriorityItem(priority=prio, seq=seq, item=i))
        return [store.get().value.item for _ in keys]

    tuple_env = Environment()
    soa_env = Environment()
    soa_env._soa = EventHeap()
    assert drain(tuple_env) == drain(soa_env)


@given(values=st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=40))
@settings(max_examples=100)
def test_priority_store_numeric_payloads_match_across_backends(values):
    """Duplicate numeric payloads tie on the full key in both modes."""

    def drain(env):
        store = PriorityStore(env)
        for v in values:
            store.put_nowait(v)
        return [store.get().value for _ in values]

    tuple_env = Environment()
    soa_env = Environment()
    soa_env._soa = EventHeap()
    assert drain(tuple_env) == drain(soa_env)
