"""Tests for named random streams."""

import numpy as np
import pytest

from repro.des import RandomStream, RandomStreams


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        a = RandomStreams(seed=7).stream("updates")
        b = RandomStreams(seed=7).stream("updates")
        assert [a.exponential(10) for _ in range(5)] == [
            b.exponential(10) for _ in range(5)
        ]

    def test_different_names_differ(self):
        streams = RandomStreams(seed=7)
        a = streams.stream("client-0")
        b = streams.stream("client-1")
        assert [a.uniform() for _ in range(4)] != [b.uniform() for _ in range(4)]

    def test_different_seeds_differ(self):
        a = RandomStreams(seed=1).stream("x")
        b = RandomStreams(seed=2).stream("x")
        assert a.uniform() != b.uniform()

    def test_stream_independent_of_creation_order(self):
        s1 = RandomStreams(seed=3)
        s1.stream("a")
        first = s1.stream("b").uniform()
        s2 = RandomStreams(seed=3)
        second = s2.stream("b").uniform()  # "a" never created
        assert first == second

    def test_stream_cached(self):
        streams = RandomStreams(seed=0)
        assert streams.stream("x") is streams.stream("x")


class TestDistributions:
    @pytest.fixture
    def stream(self):
        return RandomStreams(seed=42).stream("test")

    def test_exponential_mean(self, stream):
        samples = [stream.exponential(100.0) for _ in range(20000)]
        assert np.mean(samples) == pytest.approx(100.0, rel=0.05)
        assert min(samples) >= 0

    def test_exponential_zero_mean(self, stream):
        assert stream.exponential(0.0) == 0.0

    def test_exponential_negative_mean_rejected(self, stream):
        with pytest.raises(ValueError):
            stream.exponential(-1.0)

    def test_uniform_bounds(self, stream):
        for _ in range(1000):
            v = stream.uniform(5.0, 6.0)
            assert 5.0 <= v < 6.0

    def test_randint_inclusive(self, stream):
        values = {stream.randint(1, 3) for _ in range(200)}
        assert values == {1, 2, 3}

    def test_randint_single_point(self, stream):
        assert stream.randint(9, 9) == 9

    def test_randint_empty_range(self, stream):
        with pytest.raises(ValueError):
            stream.randint(5, 4)

    def test_bernoulli_extremes(self, stream):
        assert not any(stream.bernoulli(0.0) for _ in range(100))
        assert all(stream.bernoulli(1.0) for _ in range(100))

    def test_bernoulli_invalid_p(self, stream):
        with pytest.raises(ValueError):
            stream.bernoulli(1.5)

    def test_bernoulli_rate(self, stream):
        hits = sum(stream.bernoulli(0.3) for _ in range(20000))
        assert hits / 20000 == pytest.approx(0.3, abs=0.02)

    def test_poisson_at_least_one(self, stream):
        samples = [stream.poisson_at_least_one(5.0) for _ in range(20000)]
        assert min(samples) >= 1
        assert np.mean(samples) == pytest.approx(5.0, rel=0.05)

    def test_poisson_mean_below_one_rejected(self, stream):
        with pytest.raises(ValueError):
            stream.poisson_at_least_one(0.5)

    def test_choice_without_replacement(self, stream):
        picks = stream.choice_without_replacement(10, 19, 10)
        assert sorted(picks) == list(range(10, 20))

    def test_choice_too_many_rejected(self, stream):
        with pytest.raises(ValueError):
            stream.choice_without_replacement(0, 4, 6)

    def test_shuffled_is_permutation(self, stream):
        out = stream.shuffled([1, 2, 3, 4, 5])
        assert sorted(out) == [1, 2, 3, 4, 5]


class TestStateMemoization:
    """Stream creation memoizes initial PCG64 states per (seed, name)."""

    def test_memoized_stream_draws_identically(self):
        # Second construction hits the state cache; the draw sequence
        # must be indistinguishable from a cold derivation.
        cold = RandomStream(991, "memo-check")
        warm = RandomStream(991, "memo-check")
        assert [cold.uniform() for _ in range(8)] == [
            warm.uniform() for _ in range(8)
        ]

    def test_memoized_streams_do_not_share_state(self):
        a = RandomStream(992, "memo-iso")
        b = RandomStream(992, "memo-iso")
        a.uniform()  # advancing one must not advance the other
        assert b.uniform() == RandomStream(992, "memo-iso").uniform()
