"""Tests for Event lifecycle, Timeout and condition events."""

import pytest

from repro.des import AllOf, AnyOf, Environment, Event


@pytest.fixture
def env():
    return Environment()


class TestEventLifecycle:
    def test_new_event_is_pending(self, env):
        ev = env.event()
        assert not ev.triggered
        assert not ev.processed
        assert ev.ok is None

    def test_value_unavailable_before_trigger(self, env):
        with pytest.raises(AttributeError):
            env.event().value

    def test_succeed_sets_value(self, env):
        ev = env.event().succeed(99)
        assert ev.triggered
        assert ev.ok
        assert ev.value == 99

    def test_double_succeed_rejected(self, env):
        ev = env.event().succeed()
        with pytest.raises(RuntimeError):
            ev.succeed()

    def test_fail_then_succeed_rejected(self, env):
        ev = env.event()
        ev.fail(ValueError("x"))
        ev._defused = True  # silence the unhandled-failure check
        with pytest.raises(RuntimeError):
            ev.succeed()

    def test_fail_requires_exception(self, env):
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_processed_after_run(self, env):
        ev = env.event().succeed("v")
        env.run(until=1)
        assert ev.processed
        assert ev.callbacks is None


class TestTimeout:
    def test_timeout_value(self, env):
        results = []

        def proc(env):
            results.append((yield env.timeout(5, value="hello")))

        env.process(proc(env))
        env.run()
        assert results == ["hello"]

    def test_zero_delay_fires_at_current_time(self, env):
        fired_at = []

        def proc(env):
            yield env.timeout(0)
            fired_at.append(env.now)

        env.process(proc(env))
        env.run()
        assert fired_at == [0.0]

    def test_timeout_never_fires_early(self, env):
        def proc(env):
            start = env.now
            yield env.timeout(2.5)
            assert env.now == pytest.approx(start + 2.5)

        env.process(proc(env))
        env.run()


class TestConditions:
    def test_all_of_waits_for_every_event(self, env):
        def proc(env):
            t1 = env.timeout(1, value="a")
            t2 = env.timeout(5, value="b")
            result = yield env.all_of([t1, t2])
            assert env.now == 5
            assert result.values() == ["a", "b"]

        env.run(until=env.process(proc(env)))

    def test_any_of_fires_on_first(self, env):
        def proc(env):
            t1 = env.timeout(1, value="fast")
            t2 = env.timeout(5, value="slow")
            result = yield env.any_of([t1, t2])
            assert env.now == 1
            assert result.values() == ["fast"]
            assert t1 in result
            assert t2 not in result

        env.run(until=env.process(proc(env)))

    def test_all_of_empty_is_immediate(self, env):
        def proc(env):
            result = yield env.all_of([])
            assert len(result) == 0

        env.run(until=env.process(proc(env)))

    def test_any_of_empty_is_immediate(self, env):
        def proc(env):
            yield env.any_of([])

        env.run(until=env.process(proc(env)))

    def test_condition_value_mapping(self, env):
        def proc(env):
            t1 = env.timeout(1, value=10)
            t2 = env.timeout(1, value=20)
            result = yield env.all_of([t1, t2])
            assert result[t1] == 10
            assert result[t2] == 20
            with pytest.raises(KeyError):
                result[env.event()]

        env.run(until=env.process(proc(env)))

    def test_condition_propagates_failure(self, env):
        def failer(env):
            yield env.timeout(1)
            raise ValueError("inner")

        def proc(env):
            with pytest.raises(ValueError, match="inner"):
                yield env.all_of([env.timeout(10), env.process(failer(env))])

        env.run(until=env.process(proc(env)))

    def test_condition_over_mixed_environments_rejected(self, env):
        other = Environment()
        with pytest.raises(ValueError):
            AllOf(env, [env.timeout(1), other.timeout(1)])

    def test_condition_with_already_processed_child(self, env):
        ev = env.event().succeed("pre")
        env.run(until=0)  # process ev
        assert ev.processed

        def proc(env):
            result = yield env.all_of([ev, env.timeout(2, value="post")])
            assert result.values() == ["pre", "post"]

        env.run(until=env.process(proc(env)))

    def test_any_of_returns_simultaneous_events_together(self, env):
        def proc(env):
            t1 = env.timeout(3, value=1)
            t2 = env.timeout(3, value=2)
            result = yield env.any_of([t1, t2])
            # Both fire at t=3; the condition triggers on the first one
            # processed, so exactly one is captured.
            assert len(result) == 1

        env.run(until=env.process(proc(env)))


class TestYieldSemantics:
    def test_yielding_non_event_raises_in_process(self, env):
        def proc(env):
            yield "not an event"

        p = env.process(proc(env))
        with pytest.raises(TypeError):
            env.run(until=p)

    def test_yield_already_processed_event_resumes_immediately(self, env):
        ev = env.event().succeed("done-before")
        env.run(until=0)

        def proc(env):
            value = yield ev
            assert value == "done-before"
            assert env.now == 0

        env.run(until=env.process(proc(env)))

    def test_shared_event_wakes_all_waiters(self, env):
        gate = env.event()
        woken = []

        def waiter(env, name):
            value = yield gate
            woken.append((name, value, env.now))

        for name in ("a", "b", "c"):
            env.process(waiter(env, name))

        def opener(env):
            yield env.timeout(4)
            gate.succeed("open")

        env.process(opener(env))
        env.run()
        assert woken == [("a", "open", 4), ("b", "open", 4), ("c", "open", 4)]
