"""Tests for the event tracer."""

import pytest

from repro.des import Environment, TraceRecorder
from repro.des.trace import TraceRecord


def run_traced(tracer, n=5):
    env = Environment()
    env.set_tracer(tracer)

    def proc(env):
        for _ in range(n):
            yield env.timeout(1.0)

    env.process(proc(env), name="ticker")
    env.run()
    return env


class TestTraceRecorder:
    def test_records_processed_events(self):
        trace = TraceRecorder()
        run_traced(trace, n=3)
        # 1 init event + 3 timeouts + 1 process-completion event.
        assert trace.seen == 5
        assert len(trace.of_kind("Timeout")) == 3

    def test_times_are_nondecreasing(self):
        trace = TraceRecorder()
        run_traced(trace, n=5)
        times = [r.time for r in trace.records]
        assert times == sorted(times)

    def test_process_completion_carries_name(self):
        trace = TraceRecorder()
        run_traced(trace)
        procs = trace.of_kind("Process")
        assert procs and procs[0].name == "ticker"

    def test_limit_drops_oldest(self):
        trace = TraceRecorder(limit=3)
        run_traced(trace, n=10)
        assert len(trace.records) == 3
        assert trace.dropped > 0
        assert trace.records[-1].time == pytest.approx(10.0)

    def test_predicate_filters(self):
        from repro.des.event import Timeout

        trace = TraceRecorder(predicate=lambda ev: isinstance(ev, Timeout))
        run_traced(trace, n=4)
        assert all(r.kind == "Timeout" for r in trace.records)
        assert len(trace.records) == 4

    def test_between(self):
        trace = TraceRecorder()
        run_traced(trace, n=5)
        window = trace.between(2.0, 3.0)
        assert all(2.0 <= r.time <= 3.0 for r in window)
        assert len(window) == 2

    def test_clear(self):
        trace = TraceRecorder()
        run_traced(trace)
        trace.clear()
        assert trace.records == [] and trace.seen == 0

    def test_format_and_str(self):
        trace = TraceRecorder()
        run_traced(trace, n=2)
        text = trace.format(last=2)
        assert len(text.splitlines()) == 2
        assert "Timeout" in text or "Process" in text
        assert str(TraceRecord(1.0, "Timeout", "", True, None)).startswith("[")

    def test_invalid_limit(self):
        with pytest.raises(ValueError):
            TraceRecorder(limit=0)

    def test_tracer_removal(self):
        trace = TraceRecorder()
        env = Environment()
        env.set_tracer(trace)
        env.timeout(1.0)
        env.run()
        seen_before = trace.seen
        env.set_tracer(None)
        env.timeout(1.0)
        env.run(until=5.0)
        assert trace.seen == seen_before

    def test_tracing_full_simulation_is_side_effect_free(self):
        """Attaching a tracer must not perturb results."""
        from repro.sim import SimulationModel, SystemParams, UNIFORM

        params = SystemParams(
            simulation_time=500.0, n_clients=4, db_size=50, seed=2
        )
        plain = SimulationModel(params, UNIFORM, "ts")
        plain_result = plain.run()
        traced = SimulationModel(params, UNIFORM, "ts")
        traced.env.set_tracer(TraceRecorder(limit=100))
        traced_result = traced.run()
        assert plain_result.raw == traced_result.raw
