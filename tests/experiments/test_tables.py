"""Tests for text table rendering of figure results."""

from repro.experiments import DISPLAY_NAMES, format_figure, format_legend, get_figure
from repro.experiments.figures import Scale
from repro.experiments.sweep import FigureResult


def fake_result():
    spec = get_figure("fig05")
    result = FigureResult(
        spec=spec,
        scale=Scale(name="tiny", simulation_time=100.0, n_clients=2),
        xs=[1000, 80_000],
    )
    result.series = {"aaw": [1500.0, 1480.0], "bs": [1500.0, 300.0]}
    return result


class TestFormatFigure:
    def test_header_carries_context(self):
        text = format_figure(fake_result())
        assert "fig05" in text
        assert "workload=uniform" in text
        assert "scale=tiny" in text
        assert "expected shape" in text

    def test_rows_align_with_sweep(self):
        text = format_figure(fake_result())
        lines = text.splitlines()
        data_rows = [l for l in lines if l.strip().startswith(("1000", "80000"))]
        assert len(data_rows) == 2
        assert "300.00" in data_rows[1]

    def test_column_order_follows_series_dict(self):
        text = format_figure(fake_result())
        header = next(l for l in text.splitlines() if "aaw" in l and "bs" in l)
        assert header.index("aaw") < header.index("bs")

    def test_custom_width(self):
        wide = format_figure(fake_result(), width=20)
        narrow = format_figure(fake_result(), width=10)
        assert len(wide.splitlines()[-1]) > len(narrow.splitlines()[-1])


class TestLegend:
    def test_all_registered_schemes_have_display_names(self):
        from repro.schemes import available_schemes

        for scheme in available_schemes():
            assert scheme in DISPLAY_NAMES

    def test_paper_curve_labels(self):
        assert DISPLAY_NAMES["aaw"] == "adaptive with adjusting window"
        assert DISPLAY_NAMES["afw"] == "adaptive with fixed window"
        assert DISPLAY_NAMES["checking"] == "simple checking"
        assert DISPLAY_NAMES["bs"] == "bit sequences"

    def test_legend_lists_every_name(self):
        text = format_legend()
        for name in DISPLAY_NAMES.values():
            assert name in text
