"""Tests for CLI flags beyond the basics (plot, workers, scale)."""

import pytest

from repro.experiments import get_figure, run_figure
from repro.experiments.figures import Scale

TINY = Scale(name="tiny", simulation_time=1200.0, n_clients=5)


@pytest.fixture
def fast_cli(monkeypatch):
    """CLI with the sweep shrunk to a single fast cell."""
    import repro.experiments.cli as cli_mod

    def fake_run_figure_parallel(figure_id, scale, seed, workers):
        return run_figure(
            get_figure(figure_id), scale=TINY, points=[1000], schemes=["bs"], seed=seed
        )

    monkeypatch.setattr(cli_mod, "run_figure_parallel", fake_run_figure_parallel)
    return cli_mod.main


class TestFlags:
    def test_plot_flag_renders_chart(self, fast_cli, capsys):
        assert fast_cli(["--figure", "fig05", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "b = bs" in out            # chart legend
        assert "+-" in out                # chart axis

    def test_without_plot_no_chart(self, fast_cli, capsys):
        assert fast_cli(["--figure", "fig05"]) == 0
        out = capsys.readouterr().out
        assert "+-" not in out

    def test_seed_flag_passed_through(self, fast_cli, capsys):
        assert fast_cli(["--figure", "fig05", "--seed", "7"]) == 0

    def test_scale_flag_parses(self):
        from repro.experiments.cli import build_parser

        args = build_parser().parse_args(["--all", "--scale", "full"])
        assert args.scale == "full" and args.all

    def test_unknown_figure_raises(self, fast_cli):
        with pytest.raises(KeyError):
            fast_cli(["--figure", "fig99"])
