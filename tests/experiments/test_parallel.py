"""Tests for process-parallel figure sweeps."""

import pytest

from repro.experiments import get_figure, run_figure, run_figure_parallel
from repro.experiments.figures import Scale

TINY = Scale(name="tiny", simulation_time=1500.0, n_clients=8)


class TestParallelSweep:
    @pytest.fixture(scope="class")
    def pair(self):
        kwargs = dict(
            scale=TINY, points=[1000, 10_000], schemes=["aaw", "bs"], seed=3
        )
        serial = run_figure(get_figure("fig05"), **kwargs)
        parallel = run_figure_parallel("fig05", workers=2, **kwargs)
        return serial, parallel

    def test_results_bit_identical_to_serial(self, pair):
        serial, parallel = pair
        assert parallel.series == serial.series
        assert parallel.xs == serial.xs

    def test_full_results_preserved(self, pair):
        _serial, parallel = pair
        assert parallel.results["aaw"][0].scheme == "aaw"
        assert parallel.results["bs"][1].raw  # raw metrics survived pickling

    def test_single_worker_runs_inline(self):
        result = run_figure_parallel(
            "fig06", scale=TINY, points=[1000], schemes=["bs"], workers=1
        )
        assert result.series["bs"] == [0.0]

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            run_figure_parallel("fig05", scale=TINY, workers=0)

    def test_cli_accepts_workers_flag(self):
        from repro.experiments.cli import build_parser

        args = build_parser().parse_args(["--figure", "fig05", "--workers", "3"])
        assert args.workers == 3

    def test_cli_workers_defaults_to_auto(self):
        from repro.experiments.cli import build_parser

        args = build_parser().parse_args(["--figure", "fig05"])
        assert args.workers == "auto"
        auto = build_parser().parse_args(["--all", "--workers", "auto"])
        assert auto.workers == "auto"


class TestWorkerResolution:
    def test_auto_uses_cpu_count(self, monkeypatch):
        from repro.experiments import parallel

        monkeypatch.setattr(parallel.os, "cpu_count", lambda: 6)
        assert parallel.resolve_workers("auto") == 6

    def test_auto_survives_unknown_cpu_count(self, monkeypatch):
        from repro.experiments import parallel

        monkeypatch.setattr(parallel.os, "cpu_count", lambda: None)
        assert parallel.resolve_workers("auto") == 1

    def test_explicit_count_passes_through(self):
        from repro.experiments.parallel import resolve_workers

        assert resolve_workers(3) == 3

    def test_rejects_garbage(self):
        from repro.experiments.parallel import resolve_workers

        for bad in (0, -1, "fast", 2.5, True):
            with pytest.raises(ValueError):
                resolve_workers(bad)

    def test_chunksize_shape(self):
        from repro.experiments.parallel import sweep_chunksize

        # Four waves per worker; never below one cell per task.
        assert sweep_chunksize(80, 4) == 5
        assert sweep_chunksize(3, 8) == 1
