"""Tests for figure specs and the sweep machinery."""

import pytest

from repro.experiments import (
    BENCH_SCALE,
    FIGURES,
    FULL_SCALE,
    THROUGHPUT,
    UPLINK_COST,
    figure_ids,
    format_figure,
    format_legend,
    get_figure,
    run_figure,
    scale_from_env,
)
from repro.schemes.registry import EVALUATED_SCHEMES


class TestSpecs:
    def test_all_twelve_figures_defined(self):
        assert figure_ids() == [f"fig{i:02d}" for i in range(5, 17)]

    def test_every_figure_uses_the_evaluated_schemes(self):
        for spec in FIGURES.values():
            assert spec.schemes == EVALUATED_SCHEMES

    def test_throughput_and_uplink_pairs(self):
        assert get_figure("fig05").metric == THROUGHPUT
        assert get_figure("fig06").metric == UPLINK_COST
        assert get_figure("fig13").metric == THROUGHPUT
        assert get_figure("fig14").metric == UPLINK_COST

    def test_workloads_match_paper(self):
        for fid in ("fig05", "fig06", "fig07", "fig08", "fig09", "fig10", "fig15"):
            assert get_figure(fid).workload == "uniform"
        for fid in ("fig11", "fig12", "fig13", "fig14", "fig16"):
            assert get_figure(fid).workload == "hotcold"

    def test_fig09_uses_one_percent_buffer(self):
        assert get_figure("fig09").fixed["buffer_fraction"] == 0.01

    def test_unknown_figure(self):
        with pytest.raises(KeyError):
            get_figure("fig99")

    def test_params_for_applies_sweep_and_scale(self):
        spec = get_figure("fig05")
        params = spec.params_for(40_000, FULL_SCALE, seed=3)
        assert params.db_size == 40_000
        assert params.simulation_time == 100_000
        assert params.n_clients == 100
        assert params.seed == 3
        assert params.disconnect_time_mean == 4000.0

    def test_scale_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "full")
        assert scale_from_env() is FULL_SCALE
        monkeypatch.setenv("REPRO_SCALE", "bench")
        assert scale_from_env() is BENCH_SCALE
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(ValueError):
            scale_from_env()


class TestRunFigure:
    @pytest.fixture(scope="class")
    def mini_result(self):
        # One tiny smoke sweep shared by the assertions below.
        from repro.experiments.figures import Scale

        tiny = Scale(name="tiny", simulation_time=2000.0, n_clients=10)
        return run_figure(
            get_figure("fig05"),
            scale=tiny,
            points=[1000, 10_000],
            schemes=["aaw", "bs"],
        )

    def test_series_shapes(self, mini_result):
        assert mini_result.xs == [1000, 10_000]
        assert set(mini_result.series) == {"aaw", "bs"}
        assert all(len(v) == 2 for v in mini_result.series.values())

    def test_results_retained(self, mini_result):
        assert mini_result.results["aaw"][0].scheme == "aaw"
        assert mini_result.results["bs"][1].workload == "UNIFORM"

    def test_metric_accessors(self, mini_result):
        assert mini_result.metric_of("aaw", 1000) == mini_result.series["aaw"][0]
        assert mini_result.mean_of("bs") == pytest.approx(
            sum(mini_result.series["bs"]) / 2
        )

    def test_format_figure_contains_series(self, mini_result):
        text = format_figure(mini_result)
        assert "fig05" in text
        assert "aaw" in text and "bs" in text
        assert "10000" in text

    def test_format_legend(self):
        text = format_legend()
        assert "adaptive with adjusting window" in text
        assert "bit sequences" in text


class TestCLI:
    def test_list(self, capsys):
        from repro.experiments.cli import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig05" in out and "fig16" in out

    def test_requires_target(self, capsys):
        from repro.experiments.cli import main

        assert main([]) == 2
