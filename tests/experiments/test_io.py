"""Tests for figure-result serialization."""

import json

import pytest

from repro.experiments import (
    figure_result_to_dict,
    get_figure,
    load_figure_result,
    run_figure,
    save_figure_result,
)
from repro.experiments.figures import Scale

TINY = Scale(name="tiny", simulation_time=1500.0, n_clients=6)


@pytest.fixture(scope="module")
def result():
    return run_figure(
        get_figure("fig06"), scale=TINY, points=[1000, 5000], schemes=["aaw", "bs"]
    )


class TestRoundTrip:
    def test_dict_shape(self, result):
        d = figure_result_to_dict(result)
        assert d["figure_id"] == "fig06"
        assert d["xs"] == [1000, 5000]
        assert set(d["series"]) == {"aaw", "bs"}
        json.dumps(d)  # must be JSON-serializable

    def test_save_and_load(self, result, tmp_path):
        path = save_figure_result(result, tmp_path / "out" / "fig06.json")
        assert path.exists()
        loaded = load_figure_result(path)
        assert loaded.spec.figure_id == "fig06"
        assert loaded.xs == result.xs
        assert loaded.series == result.series
        assert loaded.scale.n_clients == 6

    def test_version_check(self, result, tmp_path):
        path = save_figure_result(result, tmp_path / "fig06.json")
        data = json.loads(path.read_text())
        data["version"] = 999
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError):
            load_figure_result(path)

    def test_spec_mismatch_detected(self, result, tmp_path):
        path = save_figure_result(result, tmp_path / "fig06.json")
        data = json.loads(path.read_text())
        data["metric"] = "something_else"
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError):
            load_figure_result(path)


class TestCLIOutput:
    def test_output_flag_writes_json(self, tmp_path, capsys, monkeypatch):
        from repro.experiments.cli import main

        # Shrink the sweep via the spec? The CLI runs full specs; use the
        # fastest figure at bench scale would take seconds — monkeypatch
        # the runner to keep the test quick.
        import repro.experiments.cli as cli_mod

        def fake_run_figure_parallel(figure_id, scale, seed, workers):
            from repro.experiments import get_figure

            return run_figure(
                get_figure(figure_id),
                scale=TINY,
                points=[1000],
                schemes=["bs"],
                seed=seed,
            )

        monkeypatch.setattr(
            cli_mod, "run_figure_parallel", fake_run_figure_parallel
        )
        assert main(["--figure", "fig06", "--output", str(tmp_path)]) == 0
        saved = tmp_path / "fig06.json"
        assert saved.exists()
        loaded = load_figure_result(saved)
        assert loaded.series["bs"] == [0.0]
