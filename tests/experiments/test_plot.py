"""Tests for ASCII chart rendering."""

import pytest

from repro.experiments import ascii_chart, chart_figure, get_figure, run_figure
from repro.experiments.figures import Scale


class TestAsciiChart:
    def test_dimensions(self):
        text = ascii_chart([1, 2, 3], {"aaw": [1, 2, 3]}, width=40, height=8)
        lines = text.splitlines()
        plot_rows = [l for l in lines if "|" in l]
        assert len(plot_rows) == 8
        assert all(len(l) <= 9 + 2 + 40 for l in plot_rows)

    def test_markers_present(self):
        text = ascii_chart(
            [1, 2], {"aaw": [1, 2], "bs": [2, 1]}, width=30, height=6
        )
        assert "a" in text and "b" in text
        assert "a = aaw" in text and "b = bs" in text

    def test_overlap_shows_star(self):
        text = ascii_chart(
            [1, 2], {"aaw": [5, 5], "bs": [5, 5]}, width=20, height=5
        )
        assert "*" in text

    def test_unknown_scheme_gets_digit_marker(self):
        text = ascii_chart([1, 2], {"my-scheme": [1, 2]}, width=20, height=5)
        assert "0 = my-scheme" in text

    def test_extremes_on_correct_rows(self):
        text = ascii_chart([1, 2], {"sig": [0, 10]}, width=20, height=5)
        lines = [l for l in text.splitlines() if "|" in l]
        assert "s" in lines[0]       # max on the top row
        assert "s" in lines[-1]      # zero on the bottom row

    def test_axis_labels(self):
        text = ascii_chart(
            [100, 900], {"sig": [1, 2]}, width=30, height=5,
            y_label="throughput", x_label="uplink bps",
        )
        assert "throughput" in text
        assert "uplink bps" in text
        assert "100" in text and "900" in text

    def test_all_zero_series(self):
        text = ascii_chart([1, 2], {"bs": [0, 0]}, width=20, height=5)
        assert "b" in text  # drawn on the zero row, no crash

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_chart([1], {"sig": [1]}, width=4, height=5)
        with pytest.raises(ValueError):
            ascii_chart([], {}, width=30, height=6)
        with pytest.raises(ValueError):
            ascii_chart([1, 2], {"sig": [1]}, width=30, height=6)

    def test_single_point(self):
        text = ascii_chart([5], {"sig": [3]}, width=20, height=5)
        assert "s = sig" in text


class TestChartFigure:
    def test_labels_from_spec(self):
        tiny = Scale(name="tiny", simulation_time=1200.0, n_clients=5)
        result = run_figure(
            get_figure("fig05"), scale=tiny, points=[1000], schemes=["bs"]
        )
        text = chart_figure(result, width=30, height=6)
        assert "queries_answered" in text
        assert "db_size" in text
