"""Tests for the LRU cache, including a hypothesis model check."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cache import LRUCache


class TestLRUBasics:
    def test_put_get(self):
        c = LRUCache(2)
        c.put("a", 1)
        assert c.get("a") == 1
        assert c.get("missing") is None

    def test_capacity_enforced_with_lru_eviction(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.put("b", 2)
        c.put("c", 3)
        assert "a" not in c
        assert c.keys() == ["b", "c"]
        assert c.evictions == 1

    def test_get_refreshes_recency(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.put("b", 2)
        c.get("a")
        c.put("c", 3)
        assert "b" not in c
        assert "a" in c

    def test_peek_does_not_refresh(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.put("b", 2)
        c.peek("a")
        c.put("c", 3)
        assert "a" not in c

    def test_replace_updates_value_and_recency(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.put("b", 2)
        c.put("a", 10)
        c.put("c", 3)
        assert c.get("a") == 10
        assert "b" not in c

    def test_remove(self):
        c = LRUCache(2)
        c.put("a", 1)
        assert c.remove("a")
        assert not c.remove("a")
        assert len(c) == 0

    def test_clear(self):
        c = LRUCache(3)
        for k in "abc":
            c.put(k, k)
        c.clear()
        assert len(c) == 0

    def test_eviction_callback(self):
        evicted = []
        c = LRUCache(1, on_evict=lambda k, v: evicted.append((k, v)))
        c.put("a", 1)
        c.put("b", 2)
        assert evicted == [("a", 1)]

    def test_lru_key(self):
        c = LRUCache(3)
        assert c.lru_key is None
        c.put("a", 1)
        c.put("b", 2)
        assert c.lru_key == "a"
        c.get("a")
        assert c.lru_key == "b"

    def test_min_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)


@given(
    capacity=st.integers(min_value=1, max_value=8),
    ops=st.lists(
        st.tuples(st.sampled_from(["put", "get", "remove"]), st.integers(0, 12)),
        max_size=200,
    ),
)
def test_lru_matches_reference_model(capacity, ops):
    """Model check against a straightforward list-based reference."""
    cache = LRUCache(capacity)
    ref_order = []  # LRU .. MRU
    ref_map = {}

    for op, key in ops:
        if op == "put":
            cache.put(key, key * 10)
            if key in ref_map:
                ref_order.remove(key)
            ref_map[key] = key * 10
            ref_order.append(key)
            if len(ref_order) > capacity:
                victim = ref_order.pop(0)
                del ref_map[victim]
        elif op == "get":
            got = cache.get(key)
            if key in ref_map:
                assert got == ref_map[key]
                ref_order.remove(key)
                ref_order.append(key)
            else:
                assert got is None
        else:
            removed = cache.remove(key)
            if key in ref_map:
                assert removed
                del ref_map[key]
                ref_order.remove(key)
            else:
                assert not removed
        assert len(cache) == len(ref_order) <= capacity
        assert cache.keys() == ref_order
