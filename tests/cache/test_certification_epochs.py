"""Tests for epoch-aware certification and suspect-entry tracking.

These pin down the fetch-across-report race: an entry inserted after a
certification must not inherit that certification's floor, and suspect
entries must stay visible until a scheme reconciles them.
"""

from repro.cache import CacheEntry, ClientCache


def entry(item, ts=0.0, version=1):
    return CacheEntry(item=item, version=version, ts=ts)


class TestEpochSemantics:
    def test_floor_covers_entries_present_at_certification(self):
        cc = ClientCache(capacity=8)
        e = entry(1, ts=5.0)
        cc.insert(e)
        cc.certify(20.0)
        assert cc.is_certified(e)
        assert cc.effective_ts(e) == 20.0

    def test_floor_does_not_cover_later_insertions(self):
        """The core of the fetch-across-report bug."""
        cc = ClientCache(capacity=8)
        cc.certify(20.0)
        late = entry(2, ts=15.0)  # coherence predates the certification
        cc.insert(late)
        assert not cc.is_certified(late)
        assert cc.effective_ts(late) == 15.0  # NOT 20.0

    def test_next_certification_covers_previous_insertions(self):
        cc = ClientCache(capacity=8)
        cc.certify(20.0)
        e = entry(2, ts=15.0)
        cc.insert(e)
        cc.certify(40.0)
        assert cc.is_certified(e)
        assert cc.effective_ts(e) == 40.0

    def test_effective_ts_never_below_own_ts(self):
        cc = ClientCache(capacity=8)
        e = entry(1, ts=50.0)
        cc.insert(e)
        cc.certify(20.0)  # floor below the entry's own coherence
        assert cc.effective_ts(e) == 50.0

    def test_epoch_monotone(self):
        cc = ClientCache(capacity=4)
        e0 = cc.epoch
        cc.certify(1.0)
        cc.certify(2.0)
        assert cc.epoch == e0 + 2


class TestUnreconciled:
    def test_suspect_insert_tracked(self):
        cc = ClientCache(capacity=8)
        cc.insert(entry(3, ts=10.0), suspect=True)
        assert [e.item for e in cc.unreconciled_entries()] == [3]

    def test_normal_insert_not_tracked(self):
        cc = ClientCache(capacity=8)
        cc.insert(entry(3, ts=10.0))
        assert cc.unreconciled_entries() == []

    def test_reinsert_clears_suspicion(self):
        cc = ClientCache(capacity=8)
        cc.insert(entry(3, ts=10.0), suspect=True)
        cc.insert(entry(3, ts=30.0), suspect=False)
        assert cc.unreconciled_entries() == []

    def test_certify_clears_suspects(self):
        cc = ClientCache(capacity=8)
        cc.insert(entry(3, ts=10.0), suspect=True)
        cc.certify(20.0)
        assert cc.unreconciled_entries() == []

    def test_invalidate_clears_mark(self):
        cc = ClientCache(capacity=8)
        cc.insert(entry(3, ts=10.0), suspect=True)
        cc.invalidate(3)
        assert cc.unreconciled_entries() == []

    def test_evicted_suspects_pruned(self):
        cc = ClientCache(capacity=1)
        cc.insert(entry(3, ts=10.0), suspect=True)
        cc.insert(entry(4, ts=11.0))  # evicts 3
        assert cc.unreconciled_entries() == []
        assert cc.unreconciled == set()

    def test_drop_all_clears_suspects(self):
        cc = ClientCache(capacity=8)
        cc.insert(entry(3, ts=10.0), suspect=True)
        cc.drop_all()
        assert cc.unreconciled_entries() == []


class TestSchemeReconciliation:
    def test_window_report_drops_suspect_older_than_window(self):
        from repro.reports import WindowReport
        from repro.schemes import apply_window_report

        cc = ClientCache(capacity=8)
        cc.insert(entry(1, ts=5.0), suspect=True)    # older than window
        cc.insert(entry(2, ts=150.0), suspect=True)  # inside window
        report = WindowReport(
            timestamp=300.0, window_start=100.0, items={}, n_items=64
        )
        apply_window_report(cc, report)
        assert 1 not in cc
        assert 2 in cc

    def test_window_report_validates_suspect_precisely(self):
        """A suspect entry listed with an update after its coherence must
        drop even when the certification floor is newer (the bug)."""
        from repro.reports import WindowReport
        from repro.schemes import apply_window_report

        cc = ClientCache(capacity=8)
        cc.certify(200.0)  # an earlier report certified the (other) cache
        cc.insert(entry(5, ts=194.0), suspect=True)  # fetched across it
        report = WindowReport(
            timestamp=220.0,
            window_start=20.0,
            items={5: 198.0},  # update between coherence and certification
            n_items=64,
        )
        apply_window_report(cc, report)
        assert 5 not in cc

    def test_bitseq_reconciliation_checks_own_coherence_level(self):
        from repro.db import Database
        from repro.reports import build_bitseq_report
        from repro.schemes import reconcile_with_bitseq

        db = Database(64)
        db.apply_update(5, 198.0)
        report = build_bitseq_report(db, timestamp=220.0, origin=0.0)
        cc = ClientCache(capacity=8)
        cc.insert(entry(5, ts=194.0), suspect=True)   # updated after coherence
        cc.insert(entry(9, ts=194.0), suspect=True)   # untouched item
        dropped = reconcile_with_bitseq(cc, report)
        assert dropped == 1
        assert 5 not in cc and 9 in cc

    def test_bitseq_reconciliation_drops_unsalvageable_suspects(self):
        from repro.db import Database
        from repro.reports import build_bitseq_report
        from repro.schemes import reconcile_with_bitseq

        db = Database(8)
        for i in range(6):
            db.apply_update(i, 100.0 + i)
        report = build_bitseq_report(db, timestamp=220.0, origin=0.0)
        cc = ClientCache(capacity=8)
        cc.insert(entry(7, ts=50.0), suspect=True)  # older than TS(Bn)
        reconcile_with_bitseq(cc, report)
        assert 7 not in cc

    def test_amnesic_reconciliation(self):
        from repro.db import Database
        from repro.reports import build_amnesic_report
        from repro.schemes import reconcile_with_amnesic

        db = Database(16)
        report = build_amnesic_report(db, timestamp=100.0, interval=20.0)
        cc = ClientCache(capacity=8)
        cc.insert(entry(1, ts=70.0), suspect=True)  # before last interval
        cc.insert(entry(2, ts=85.0), suspect=True)  # within last interval
        reconcile_with_amnesic(cc, report)
        assert 1 not in cc and 2 in cc

    def test_drop_unreconciled(self):
        from repro.schemes import drop_unreconciled

        cc = ClientCache(capacity=8)
        cc.insert(entry(1, ts=70.0), suspect=True)
        cc.insert(entry(2, ts=85.0))
        assert drop_unreconciled(cc) == 1
        assert 1 not in cc and 2 in cc
