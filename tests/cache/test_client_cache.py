"""Tests for the client cache's certification-floor semantics."""

from repro.cache import CacheEntry, ClientCache


def entry(item, ts=0.0, version=1):
    return CacheEntry(item=item, version=version, ts=ts)


class TestClientCache:
    def test_insert_and_lookup(self):
        cc = ClientCache(capacity=4)
        cc.insert(entry(1, ts=5.0))
        found = cc.lookup(1)
        assert found is not None and found.ts == 5.0
        assert cc.lookup(2) is None
        assert cc.insertions == 1

    def test_effective_ts_uses_floor(self):
        cc = ClientCache(capacity=4)
        e = entry(1, ts=5.0)
        cc.insert(e)
        assert cc.effective_ts(e) == 5.0
        cc.certify(20.0)
        assert cc.effective_ts(e) == 20.0

    def test_fresh_fetch_after_certification_keeps_own_ts(self):
        cc = ClientCache(capacity=4)
        cc.certify(20.0)
        e = entry(2, ts=25.0)  # fetched between reports
        cc.insert(e)
        assert cc.effective_ts(e) == 25.0

    def test_certify_never_lowers_floor(self):
        cc = ClientCache(capacity=4)
        cc.certify(20.0)
        cc.certify(10.0)
        assert cc.certified_floor == 20.0

    def test_invalidate_counts(self):
        cc = ClientCache(capacity=4)
        cc.insert(entry(1))
        assert cc.invalidate(1)
        assert not cc.invalidate(1)
        assert cc.invalidations == 1
        assert 1 not in cc

    def test_drop_all(self):
        cc = ClientCache(capacity=4)
        for i in range(3):
            cc.insert(entry(i))
        cc.drop_all()
        assert len(cc) == 0
        assert cc.full_drops == 1
        assert cc.invalidations == 3

    def test_drop_all_empty_cache_not_counted(self):
        cc = ClientCache(capacity=4)
        cc.drop_all()
        assert cc.full_drops == 0

    def test_lru_eviction_via_capacity(self):
        cc = ClientCache(capacity=2)
        cc.insert(entry(1))
        cc.insert(entry(2))
        cc.lookup(1)
        cc.insert(entry(3))
        assert 2 not in cc and 1 in cc and 3 in cc
        assert cc.evictions == 1

    def test_snapshots(self):
        cc = ClientCache(capacity=3)
        for i in (5, 7, 9):
            cc.insert(entry(i))
        assert cc.item_ids() == [5, 7, 9]
        assert [e.item for e in cc.entries()] == [5, 7, 9]

    def test_peek_does_not_touch(self):
        cc = ClientCache(capacity=2)
        cc.insert(entry(1))
        cc.insert(entry(2))
        cc.peek(1)
        cc.insert(entry(3))
        assert 1 not in cc
