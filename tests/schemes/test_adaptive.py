"""Unit tests for the AFW and AAW adaptive schemes (paper Section 3)."""

from repro.reports import ReportKind
from repro.schemes import (
    AAWServerPolicy,
    AFWServerPolicy,
    AdaptiveClientPolicy,
    ClientOutcome,
)


def fill_updates(db, n, start=10.0, step=10.0):
    t = start
    for i in range(n):
        db.apply_update(i, t)
        t += step
    return t - step  # time of last update


class TestAFWServer:
    def test_default_is_window_report(self, params, db):
        server = AFWServerPolicy(params=params, db=db)
        report = server.build_report(None, now=400.0)
        assert report.kind is ReportKind.WINDOW

    def test_salvageable_tlb_triggers_bs(self, params, db):
        fill_updates(db, 5)
        server = AFWServerPolicy(params=params, db=db)
        server.on_tlb(None, client_id=0, tlb=30.0, now=390.0)
        report = server.build_report(None, now=400.0)
        assert report.kind is ReportKind.BIT_SEQUENCES
        assert server.bs_broadcasts == 1

    def test_bs_broadcast_only_once_per_batch(self, params, db):
        fill_updates(db, 5)
        server = AFWServerPolicy(params=params, db=db)
        server.on_tlb(None, 0, 30.0, 390.0)
        server.build_report(None, 400.0)
        # No new uploads: back to the default window.
        assert server.build_report(None, 420.0).kind is ReportKind.WINDOW

    def test_unsalvageable_tlb_gets_window(self, params, db):
        # Update more than half the database after t=50; a client with
        # tlb=30 is beyond what BS can record.
        for i in range(40):
            db.apply_update(i, 50.0 + i)
        server = AFWServerPolicy(params=params, db=db)
        server.on_tlb(None, 0, 30.0, 390.0)
        assert server.build_report(None, 400.0).kind is ReportKind.WINDOW

    def test_tlb_within_window_is_not_a_trigger(self, params, db):
        """A covered client should never have sent Tlb; the guard filters
        stray uploads (tlb > T - wL)."""
        fill_updates(db, 5)
        server = AFWServerPolicy(params=params, db=db)
        server.on_tlb(None, 0, 390.0, 395.0)
        assert server.build_report(None, 400.0).kind is ReportKind.WINDOW


class TestAAWServer:
    def test_small_gap_gets_enlarged_window(self, params, db):
        fill_updates(db, 5)  # 5 updated items: IR(w') is tiny
        server = AAWServerPolicy(params=params, db=db)
        server.on_tlb(None, 0, tlb=30.0, now=390.0)
        report = server.build_report(None, now=400.0)
        assert report.kind is ReportKind.ENLARGED_WINDOW
        assert report.dummy_tlb == 30.0
        assert server.enlarged_broadcasts == 1

    def test_huge_history_falls_back_to_bs(self, params, db):
        # Many distinct updated items make IR(w') larger than IR(BS):
        # 64-item db -> BS = 128 + 7*32 + 34 = 2 * 64 + ...; each window
        # record costs 38 bits, so ~10+ records tip the balance.
        for i in range(30):
            db.apply_update(i, 50.0 + i)
        server = AAWServerPolicy(params=params, db=db)
        server.on_tlb(None, 0, tlb=49.0, now=390.0)
        report = server.build_report(None, now=400.0)
        assert report.kind is ReportKind.BIT_SEQUENCES
        assert server.bs_broadcasts == 1

    def test_enlarged_window_reaches_oldest_salvageable(self, params, db):
        fill_updates(db, 4)
        server = AAWServerPolicy(params=params, db=db)
        server.on_tlb(None, 0, 60.0, 390.0)
        server.on_tlb(None, 1, 35.0, 392.0)
        report = server.build_report(None, 400.0)
        assert report.dummy_tlb == 35.0

    def test_default_window_when_quiet(self, params, db):
        server = AAWServerPolicy(params=params, db=db)
        assert server.build_report(None, 400.0).kind is ReportKind.WINDOW


class TestAdaptiveClient:
    def test_covered_window_applies_ts(self, params, db, ctx):
        db.apply_update(3, 350.0)
        ctx.cache_items((3, 100.0), (7, 100.0))
        ctx.tlb = 300.0
        server = AFWServerPolicy(params=params, db=db)
        policy = AdaptiveClientPolicy(params=params, client_id=0)
        outcome = policy.on_report(ctx, server.build_report(None, 400.0))
        assert outcome is ClientOutcome.READY
        assert 3 not in ctx.cache and 7 in ctx.cache
        assert ctx.sent_tlbs == []

    def test_uncovered_sends_tlb_once(self, params, db, ctx):
        ctx.cache_items((7, 10.0))
        ctx.tlb = 30.0
        server = AFWServerPolicy(params=params, db=db)
        policy = AdaptiveClientPolicy(params=params, client_id=0)
        outcome = policy.on_report(ctx, server.build_report(None, 400.0))
        assert outcome is ClientOutcome.PENDING
        assert ctx.sent_tlbs == [30.0]
        assert 7 in ctx.cache  # nothing dropped while waiting

    def test_bs_answer_salvages(self, params, db, ctx):
        db.apply_update(1, 350.0)
        ctx.cache_items((1, 10.0), (7, 10.0))
        ctx.tlb = 30.0
        server = AFWServerPolicy(params=params, db=db)
        policy = AdaptiveClientPolicy(params=params, client_id=0)
        policy.on_report(ctx, server.build_report(None, 400.0))
        server.on_tlb(None, 0, ctx.sent_tlbs[0], 401.0)
        outcome = policy.on_report(ctx, server.build_report(None, 420.0))
        assert outcome is ClientOutcome.READY
        assert 1 not in ctx.cache and 7 in ctx.cache
        assert ctx.drops == 0
        assert ctx.tlb == 420.0

    def test_enlarged_window_answer_salvages(self, params, db, ctx):
        db.apply_update(1, 350.0)
        ctx.cache_items((1, 10.0), (7, 10.0))
        ctx.tlb = 30.0
        server = AAWServerPolicy(params=params, db=db)
        policy = AdaptiveClientPolicy(params=params, client_id=0)
        policy.on_report(ctx, server.build_report(None, 400.0))
        server.on_tlb(None, 0, ctx.sent_tlbs[0], 401.0)
        report = server.build_report(None, 420.0)
        assert report.kind is ReportKind.ENLARGED_WINDOW
        outcome = policy.on_report(ctx, report)
        assert outcome is ClientOutcome.READY
        assert 1 not in ctx.cache and 7 in ctx.cache

    def test_second_uncovered_window_drops_cache(self, params, db, ctx):
        """If the server never helps (unsalvageable), the client gives up."""
        ctx.cache_items((7, 10.0))
        ctx.tlb = 30.0
        server = AFWServerPolicy(params=params, db=db)
        policy = AdaptiveClientPolicy(params=params, client_id=0)
        policy.on_report(ctx, server.build_report(None, 400.0))
        # Server ignored us (e.g. upload lost / unsalvageable): next plain
        # window forces the drop.
        outcome = policy.on_report(ctx, server.build_report(None, 420.0))
        assert outcome is ClientOutcome.READY
        assert len(ctx.cache) == 0
        assert ctx.drops == 1
        assert len(ctx.sent_tlbs) == 1  # never re-asks within the episode

    def test_reconnect_resets_sent_latch(self, params, db, ctx):
        ctx.tlb = 30.0
        ctx.cache_items((7, 10.0))
        server = AFWServerPolicy(params=params, db=db)
        policy = AdaptiveClientPolicy(params=params, client_id=0)
        policy.on_report(ctx, server.build_report(None, 400.0))
        policy.on_reconnect(ctx, 410.0)
        policy.on_report(ctx, server.build_report(None, 420.0))
        assert len(ctx.sent_tlbs) == 2  # new episode, may ask again

    def test_unsalvageable_client_drops_on_bs(self, params, db, ctx):
        for i in range(40):
            db.apply_update(i, 50.0 + i)
        ctx.cache_items((60, 5.0))
        ctx.tlb = 5.0
        server = AFWServerPolicy(params=params, db=db)
        # Another client's request forces a BS broadcast.
        server.on_tlb(None, 1, 95.0, 390.0)
        report = server.build_report(None, 400.0)
        assert report.kind is ReportKind.BIT_SEQUENCES
        policy = AdaptiveClientPolicy(params=params, client_id=0)
        policy.on_report(ctx, report)
        assert len(ctx.cache) == 0
        assert ctx.drops == 1
