"""Property-based tests of report application against a brute-force
reference (hypothesis).

The reference tracks, for every cached entry, the full update history
of its item; an entry is *truly stale* relative to a report at ``T`` iff
its item was updated in ``(coherence, T]``.  Scheme application must

* never keep a truly stale entry (soundness), and
* for window reports inside coverage, never drop a fresh one
  (precision).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import CacheEntry, ClientCache
from repro.db import Database
from repro.reports import build_bitseq_report, build_window_report
from repro.schemes import (
    apply_invalidation,
    apply_window_report,
    reconcile_with_bitseq,
)

scenario = st.fixed_dictionaries(
    {
        "seed": st.integers(0, 10_000),
        "n_items": st.integers(4, 40),
        "n_updates": st.integers(0, 60),
        "n_cached": st.integers(0, 15),
        "tlb": st.floats(0.0, 120.0),
    }
)


def build(db_state):
    rnd = random.Random(db_state["seed"])
    db = Database(db_state["n_items"])
    t = 0.0
    for _ in range(db_state["n_updates"]):
        t += rnd.uniform(0.1, 3.0)
        db.apply_update(rnd.randrange(db_state["n_items"]), t)
    report_time = t + 1.0
    cache = ClientCache(capacity=max(1, db_state["n_cached"]))
    truth = {}
    for _ in range(db_state["n_cached"]):
        item = rnd.randrange(db_state["n_items"])
        coherence = rnd.uniform(0.0, report_time)
        cache.insert(
            CacheEntry(item=item, version=0, ts=coherence),
            suspect=coherence < db_state["tlb"],
        )
        truth[item] = coherence
    return rnd, db, cache, truth, report_time


def truly_stale(db, item, coherence, up_to):
    last = float(db.last_update[item])
    return coherence < last <= up_to


@settings(max_examples=80, deadline=None)
@given(scenario)
def test_window_application_precision(db_state):
    """Precision: an entry whose coherence the window can see and whose
    item was never updated afterwards must survive application (the
    window algorithm drops nothing unnecessarily)."""
    rnd, db, cache, truth, report_time = build(db_state)
    tlb = min(db_state["tlb"], report_time)
    report = build_window_report(db, report_time, rnd.uniform(5.0, 200.0))
    if not report.covers(tlb):
        return  # scheme code would drop the cache; nothing to check
    keep = {
        item
        for item, coherence in truth.items()
        if item in cache
        and coherence >= report.window_start
        and not truly_stale(db, item, coherence, report_time)
    }
    apply_window_report(cache, report)
    for item in keep:
        assert item in cache


@settings(max_examples=80, deadline=None)
@given(scenario)
def test_window_application_soundness_strict(db_state):
    """Sharper soundness statement: after application, no surviving entry
    whose coherence the report can see is truly stale."""
    rnd, db, cache, truth, report_time = build(db_state)
    report = build_window_report(db, report_time, rnd.uniform(5.0, 200.0))
    tlb = min(db_state["tlb"], report_time)
    if not report.covers(tlb):
        return
    apply_window_report(cache, report)
    for entry in cache.entries():
        coherence = truth[entry.item]
        if coherence >= report.window_start:
            assert not truly_stale(db, entry.item, coherence, report_time)


@settings(max_examples=80, deadline=None)
@given(scenario)
def test_bs_application_soundness(db_state):
    """After BS reconciliation + application, no surviving entry is truly
    stale (for covered clients)."""
    rnd, db, cache, truth, report_time = build(db_state)
    tlb = min(db_state["tlb"], report_time)
    report = build_bitseq_report(db, report_time, origin=0.0)
    inv = report.invalidation_for(tlb)
    if not inv.covered:
        return
    reconcile_with_bitseq(cache, report)
    apply_invalidation(cache, inv, report_time)
    for entry in cache.entries():
        coherence = truth[entry.item]
        if coherence >= tlb:
            # Non-suspect path: BS covers updates after tlb <= coherence.
            assert not truly_stale(db, entry.item, coherence, report_time)
        else:
            # Suspect path: reconciliation used the entry's own level.
            if report.salvageable(coherence):
                assert not truly_stale(db, entry.item, coherence, report_time)
