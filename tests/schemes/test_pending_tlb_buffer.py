"""The bounded ``PendingTlbBuffer``: order, dedup, shedding, w_eff.

The adaptive servers (AFW/AAW) keep at most ``max_pending_tlbs``
distinct clients' salvage state per interval.  These tests pin the
buffer's contract — arrival order on drain, retransmissions refresh
instead of grow, full means shed-and-count — and its interaction with
the loss-adaptive widened window through ``AFWServerPolicy``.
"""

from types import SimpleNamespace

import pytest

from repro.reports import ReportKind
from repro.schemes import AFWServerPolicy
from repro.schemes.base import PendingTlbBuffer

from .test_adaptive import fill_updates


class TestBufferContract:
    def test_drain_returns_arrival_order(self):
        buf = PendingTlbBuffer()
        for client, tlb in [(3, 30.0), (1, 10.0), (2, 20.0)]:
            assert buf.add(client, tlb)
        assert buf.drain() == [30.0, 10.0, 20.0]

    def test_drain_empties_the_buffer(self):
        buf = PendingTlbBuffer()
        buf.add(0, 5.0)
        buf.drain()
        assert len(buf) == 0
        assert buf.drain() == []

    def test_retransmission_refreshes_slot_in_place(self):
        # The retry layer re-sends a lost upload: same client, same
        # interval.  The slot updates (keeping its arrival position)
        # rather than consuming a second one.
        buf = PendingTlbBuffer(capacity=2)
        buf.add(7, 70.0)
        buf.add(8, 80.0)
        assert buf.add(7, 71.0)  # retransmission, buffer full
        assert buf.duplicates == 1
        assert buf.overflows == 0
        assert len(buf) == 2
        assert buf.drain() == [71.0, 80.0]

    def test_full_buffer_sheds_and_counts(self):
        buf = PendingTlbBuffer(capacity=2)
        assert buf.add(0, 1.0)
        assert buf.add(1, 2.0)
        assert not buf.add(2, 3.0)
        assert buf.overflows == 1
        # Earlier arrivals keep their slots: shedding, not eviction.
        assert buf.drain() == [1.0, 2.0]

    def test_unbounded_by_default(self):
        buf = PendingTlbBuffer()
        for client in range(1000):
            assert buf.add(client, float(client))
        assert buf.overflows == 0

    @pytest.mark.parametrize("capacity", [0, -1])
    def test_capacity_must_be_positive(self, capacity):
        with pytest.raises(ValueError):
            PendingTlbBuffer(capacity=capacity)


class TestShedFallback:
    """A shed upload degrades to drop-all; the next interval can salvage."""

    def test_shed_client_is_not_rescued_this_interval(self, params, db):
        fill_updates(db, 5)
        server = AFWServerPolicy(params=params.with_(max_pending_tlbs=1), db=db)
        server.on_tlb(None, client_id=0, tlb=30.0, now=388.0)
        server.on_tlb(None, client_id=1, tlb=40.0, now=390.0)  # shed
        assert server.tlb_buffer.overflows == 1
        # The buffered client still triggers the BS rescue broadcast.
        assert server.build_report(None, now=400.0).kind is ReportKind.BIT_SEQUENCES

    def test_shed_client_salvaged_after_the_drain(self, params, db):
        # The interval's drain frees the slot: when the shed client's
        # retry re-uploads next period, the rescue goes through.
        fill_updates(db, 5)
        server = AFWServerPolicy(params=params.with_(max_pending_tlbs=1), db=db)
        server.on_tlb(None, 0, 30.0, 388.0)
        server.on_tlb(None, 1, 40.0, 390.0)  # shed this interval
        server.build_report(None, 400.0)  # drains client 0's slot
        server.on_tlb(None, 1, 40.0, 410.0)  # retry lands in a free buffer
        assert server.tlb_buffer.overflows == 1  # no new shed
        assert server.build_report(None, 420.0).kind is ReportKind.BIT_SEQUENCES
        assert server.bs_broadcasts == 2


class TestWidenedWindowInteraction:
    """Loss-adaptive ``w_eff`` absorbs pending Tlbs the window now covers."""

    def widened_ctx(self, seconds):
        # The loss-adaptive controller advertises the widened span on the
        # server context each tick; a bare namespace stands in for it.
        return SimpleNamespace(effective_window_seconds=seconds)

    def test_tlb_inside_widened_window_needs_no_rescue(self, params, db):
        fill_updates(db, 5)
        server = AFWServerPolicy(params=params, db=db)
        # tlb=150 at now=400: outside the base 200 s window (start 200),
        # inside a widened 300 s one (start 100).
        server.on_tlb(None, 0, 150.0, 390.0)
        report = server.build_report(self.widened_ctx(300.0), now=400.0)
        assert report.kind is ReportKind.WINDOW
        assert server.bs_broadcasts == 0

    def test_same_tlb_without_widening_is_rescued(self, params, db):
        fill_updates(db, 5)
        server = AFWServerPolicy(params=params, db=db)
        server.on_tlb(None, 0, 150.0, 390.0)
        assert server.build_report(None, now=400.0).kind is ReportKind.BIT_SEQUENCES

    def test_tlb_beyond_widened_window_still_rescued(self, params, db):
        fill_updates(db, 5)
        server = AFWServerPolicy(params=params, db=db)
        server.on_tlb(None, 0, 50.0, 390.0)  # before even the widened start
        report = server.build_report(self.widened_ctx(300.0), now=400.0)
        assert report.kind is ReportKind.BIT_SEQUENCES
