"""Unit tests for the SIG scheme policies."""

from repro.schemes import ClientOutcome, SIGClientPolicy, SIGServerPolicy


def make_server(params, db, **kw):
    return SIGServerPolicy(params=params, db=db, **kw)


class TestSIGServer:
    def test_report_reflects_incremental_updates(self, params, db):
        server = make_server(params, db)
        before = server.build_report(None, 20.0).combined
        db.apply_update(5, 25.0)
        server.on_item_update(5, 0, 1)
        after = server.build_report(None, 40.0).combined
        assert before != after

    def test_report_size_independent_of_update_volume(self, params, db):
        server = make_server(params, db)
        a = server.build_report(None, 20.0).size_bits
        for i in range(20):
            db.apply_update(i, 25.0)
            server.on_item_update(i, 0, 1)
        b = server.build_report(None, 40.0).size_bits
        assert a == b


class TestSIGClient:
    def test_first_report_establishes_baseline(self, params, db, ctx):
        server = make_server(params, db)
        policy = SIGClientPolicy(params=params, client_id=0)
        outcome = policy.on_report(ctx, server.build_report(None, 20.0))
        assert outcome is ClientOutcome.READY
        assert ctx.tlb == 20.0

    def test_updated_item_diagnosed_across_long_gap(self, params, db, ctx):
        server = make_server(params, db)
        policy = SIGClientPolicy(params=params, client_id=0)
        policy.on_report(ctx, server.build_report(None, 20.0))
        ctx.cache_items((5, 20.0), (9, 20.0))
        db.apply_update(5, 500.0)
        server.on_item_update(5, 0, 1)
        # Client slept from t=20 to t=1000: SIG still diagnoses.
        policy.on_report(ctx, server.build_report(None, 1000.0))
        assert 5 not in ctx.cache

    def test_quiet_database_keeps_cache(self, params, db, ctx):
        server = make_server(params, db)
        policy = SIGClientPolicy(params=params, client_id=0)
        policy.on_report(ctx, server.build_report(None, 20.0))
        ctx.cache_items((5, 20.0), (9, 20.0))
        policy.on_report(ctx, server.build_report(None, 1000.0))
        assert 5 in ctx.cache and 9 in ctx.cache
