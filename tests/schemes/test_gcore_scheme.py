"""Unit tests for the GCORE-inspired grouped checking scheme."""

from repro.reports import checking_upload_bits
from repro.schemes import (
    ClientOutcome,
    GCOREClientPolicy,
    GCOREServerPolicy,
    group_of,
)
from repro.schemes.gcore import grouped_upload_bits


class TestGroupedUpload:
    def test_upload_cheaper_than_full_checking(self, params):
        grouped = grouped_upload_bits(200, params.db_size, 8, params.timestamp_bits)
        full = checking_upload_bits(200, params.db_size, params.timestamp_bits)
        assert grouped < full

    def test_group_assignment_stable(self):
        assert group_of(13, 8) == group_of(13, 8) == 13 % 8


class TestGCOREClient:
    def test_uncovered_uploads_group_minima(self, params, db, ctx):
        ctx.cache_items((1, 50.0), (9, 80.0))  # both in group 1 (mod 8)
        ctx.tlb = 80.0
        server = GCOREServerPolicy(params=params, db=db)
        policy = GCOREClientPolicy(params=params, client_id=0)
        outcome = policy.on_report(ctx, server.build_report(None, 500.0))
        assert outcome is ClientOutcome.PENDING
        (entries, size), = ctx.check_requests
        # Both items report the *group minimum* timestamp (50).
        assert sorted(entries) == [(1, 50.0), (9, 50.0)]
        assert size == policy.upload_size_bits(2)

    def test_over_invalidation_within_group(self, params, db, ctx):
        """An item updated after the group minimum but before its own
        fetch gets dropped: the price of the cheaper upload."""
        db.apply_update(9, 60.0)  # before item 9's fetch at 80
        ctx.cache_items((1, 50.0), (9, 80.0))
        ctx.tlb = 80.0
        server = GCOREServerPolicy(params=params, db=db)
        policy = GCOREClientPolicy(params=params, client_id=0)
        policy.on_report(ctx, server.build_report(None, 500.0))
        (entries, _), = ctx.check_requests
        invalid, certified, _ = server.on_check_request(None, 0, entries, 505.0)
        assert 9 in invalid  # over-invalidated (safe, wasteful)
        policy.on_validity_reply(ctx, invalid, certified)
        assert 9 not in ctx.cache and 1 in ctx.cache

    def test_truly_stale_items_always_dropped(self, params, db, ctx):
        db.apply_update(1, 400.0)
        ctx.cache_items((1, 50.0))
        ctx.tlb = 80.0
        server = GCOREServerPolicy(params=params, db=db)
        policy = GCOREClientPolicy(params=params, client_id=0)
        policy.on_report(ctx, server.build_report(None, 500.0))
        (entries, _), = ctx.check_requests
        invalid, certified, _ = server.on_check_request(None, 0, entries, 505.0)
        policy.on_validity_reply(ctx, invalid, certified)
        assert 1 not in ctx.cache

    def test_covered_report_no_upload(self, params, db, ctx):
        ctx.tlb = 400.0
        ctx.cache_items((1, 390.0))
        server = GCOREServerPolicy(params=params, db=db)
        policy = GCOREClientPolicy(params=params, client_id=0)
        assert policy.on_report(ctx, server.build_report(None, 500.0)) is (
            ClientOutcome.READY
        )
        assert ctx.check_requests == []


class TestRegistry:
    def test_all_schemes_registered(self):
        from repro.schemes import available_schemes

        assert set(available_schemes()) == {
            "aaw", "afw", "at", "bs", "checking", "gcore", "sig", "ts",
        }

    def test_lookup_and_errors(self):
        from repro.schemes import get_scheme

        assert get_scheme("AAW").name == "aaw"
        import pytest

        with pytest.raises(KeyError):
            get_scheme("nope")

    def test_register_custom_scheme(self):
        from repro.schemes import Scheme, get_scheme, register_scheme
        import pytest

        from repro.schemes.registry import _REGISTRY

        dummy = Scheme("dummy-test", lambda **kw: None, lambda **kw: None)
        try:
            register_scheme(dummy)
            assert get_scheme("dummy-test") is dummy
            with pytest.raises(ValueError):
                register_scheme(dummy)
            register_scheme(dummy, overwrite=True)  # allowed explicitly
        finally:
            # The registry is process-global: leaving the dummy behind
            # would leak into every later available_schemes() caller.
            _REGISTRY.pop("dummy-test", None)
