"""Unit tests for the TS, AT and BS scheme policies."""

from repro.schemes import (
    ATClientPolicy,
    ATServerPolicy,
    BSClientPolicy,
    BSServerPolicy,
    ClientOutcome,
    TSClientPolicy,
    TSServerPolicy,
)
from repro.reports import ReportKind


class TestTSServer:
    def test_builds_window_report_every_tick(self, params, db):
        db.apply_update(3, 150.0)
        policy = TSServerPolicy(params=params, db=db)
        report = policy.build_report(None, now=200.0)
        assert report.kind is ReportKind.WINDOW
        assert report.window_start == 0.0  # 200 - 10*20
        assert report.items == {3: 150.0}


class TestTSClient:
    def test_covered_report_precise_invalidation(self, params, db, ctx):
        db.apply_update(3, 150.0)
        ctx.cache_items((3, 100.0), (7, 100.0))
        ctx.tlb = 100.0
        report = TSServerPolicy(params=params, db=db).build_report(None, 200.0)
        policy = TSClientPolicy(params=params, client_id=0)
        outcome = policy.on_report(ctx, report)
        assert outcome is ClientOutcome.READY
        assert 3 not in ctx.cache  # updated after fetch
        assert 7 in ctx.cache      # untouched item survives
        assert ctx.tlb == 200.0
        assert ctx.cache.certified_floor == 200.0

    def test_uncovered_report_drops_entire_cache(self, params, db, ctx):
        ctx.cache_items((1, 10.0), (2, 10.0))
        ctx.tlb = 10.0
        report = TSServerPolicy(params=params, db=db).build_report(None, 500.0)
        # window starts at 300 > tlb=10 -> gap too long
        policy = TSClientPolicy(params=params, client_id=0)
        policy.on_report(ctx, report)
        assert len(ctx.cache) == 0
        assert ctx.drops == 1
        assert ctx.tlb == 500.0

    def test_entry_fetched_between_reports_survives(self, params, db, ctx):
        """An item updated then refetched must not be re-invalidated."""
        db.apply_update(5, 150.0)
        ctx.tlb = 140.0
        ctx.cache_items((5, 160.0))  # fetched after the update
        report = TSServerPolicy(params=params, db=db).build_report(None, 200.0)
        TSClientPolicy(params=params, client_id=0).on_report(ctx, report)
        assert 5 in ctx.cache


class TestAT:
    def test_server_reports_one_interval(self, params, db):
        db.apply_update(1, 170.0)
        db.apply_update(2, 195.0)
        policy = ATServerPolicy(params=params, db=db)
        report = policy.build_report(None, now=200.0)
        assert report.kind is ReportKind.AMNESIC
        assert report.items == {2}  # only (180, 200]

    def test_client_gap_free_applies(self, params, db, ctx):
        db.apply_update(2, 195.0)
        ctx.cache_items((2, 100.0), (9, 100.0))
        ctx.tlb = 180.0
        report = ATServerPolicy(params=params, db=db).build_report(None, 200.0)
        ATClientPolicy(params=params, client_id=0).on_report(ctx, report)
        assert 2 not in ctx.cache and 9 in ctx.cache

    def test_client_with_gap_drops_all(self, params, db, ctx):
        ctx.cache_items((9, 100.0))
        ctx.tlb = 150.0  # missed the report at 180
        report = ATServerPolicy(params=params, db=db).build_report(None, 200.0)
        ATClientPolicy(params=params, client_id=0).on_report(ctx, report)
        assert len(ctx.cache) == 0
        assert ctx.drops == 1


class TestBS:
    def test_server_builds_bs_every_tick(self, params, db):
        policy = BSServerPolicy(params=params, db=db)
        report = policy.build_report(None, now=20.0)
        assert report.kind is ReportKind.BIT_SEQUENCES
        assert report.size_bits > 2 * 64  # ~2N plus timestamps

    def test_client_salvages_after_long_gap(self, params, db, ctx):
        db.apply_update(1, 500.0)
        db.apply_update(2, 900.0)
        ctx.cache_items((1, 100.0), (2, 100.0), (9, 100.0))
        ctx.tlb = 100.0  # gap of 800 s >> window, but BS covers it
        report = BSServerPolicy(params=params, db=db).build_report(None, 1000.0)
        outcome = BSClientPolicy(params=params, client_id=0).on_report(ctx, report)
        assert outcome is ClientOutcome.READY
        assert 1 not in ctx.cache and 2 not in ctx.cache
        assert 9 in ctx.cache  # never updated: retained despite the gap
        assert ctx.drops == 0

    def test_client_beyond_half_database_drops(self, params, db, ctx):
        for i in range(40):  # 40 of 64 items updated
            db.apply_update(i, 10.0 + i)
        ctx.cache_items((60, 5.0))
        ctx.tlb = 5.0  # older than TS(Bn)
        report = BSServerPolicy(params=params, db=db).build_report(None, 100.0)
        BSClientPolicy(params=params, client_id=0).on_report(ctx, report)
        assert len(ctx.cache) == 0
        assert ctx.drops == 1
