"""Property suite for the loss-adaptive control law.

Four families of invariants, each a guarantee the simulation layer leans
on:

* the loss estimate is always a probability (bounded in ``[0, 1]``) and
  monotone in the observed gap counts;
* ``w_eff == w`` exactly when the estimated loss is zero (the paper-
  faithful configuration is a fixed point of the controller);
* ``w_eff`` never leaves ``[w, w_max]``;
* ``WindowReport.covers`` is monotone in the window span — widening can
  only *gain* covered clients, so the controller can never un-salvage
  anyone by reacting to loss.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.reports.window import WindowReport
from repro.schemes.loss_adaptive import (
    LossAdaptationConfig,
    LossAdaptiveController,
    LossEstimator,
    consecutive_loss_tolerance,
    effective_window_intervals,
)

# One simulated run's worth of per-interval evidence: (gaps, salvage,
# expected listeners) triples.
INTERVALS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=1, max_value=200),
    ),
    min_size=1,
    max_size=50,
)


def run_estimator(intervals, alpha=0.3, salvage_weight=0.5):
    est = LossEstimator(alpha=alpha, salvage_weight=salvage_weight)
    trajectory = []
    for gaps, salvage, expected in intervals:
        est.observe_gaps(gaps)
        for _ in range(salvage):
            est.observe_salvage()
        trajectory.append(est.end_interval(expected))
    return trajectory


class TestEstimatorBounds:
    @given(intervals=INTERVALS, alpha=st.floats(min_value=0.01, max_value=1.0))
    def test_estimate_is_always_a_probability(self, intervals, alpha):
        for value in run_estimator(intervals, alpha=alpha):
            assert 0.0 <= value <= 1.0

    @given(intervals=INTERVALS)
    def test_zero_evidence_keeps_estimate_zero(self, intervals):
        silent = [(0, 0, expected) for _, _, expected in intervals]
        assert all(value == 0.0 for value in run_estimator(silent))

    @given(
        intervals=INTERVALS,
        index=st.integers(min_value=0, max_value=49),
        extra=st.integers(min_value=1, max_value=300),
    )
    def test_estimate_is_monotone_in_gap_counts(self, intervals, index, extra):
        """More observed gaps in any one interval never lower any later
        point of the estimate trajectory."""
        index %= len(intervals)
        gaps, salvage, expected = intervals[index]
        louder = list(intervals)
        louder[index] = (gaps + extra, salvage, expected)
        base = run_estimator(intervals)
        bumped = run_estimator(louder)
        for lo, hi in zip(base[index:], bumped[index:]):
            assert hi >= lo


class TestWindowLaw:
    @given(
        w=st.integers(min_value=1, max_value=100),
        slack=st.integers(min_value=0, max_value=400),
    )
    def test_zero_loss_is_the_identity(self, w, slack):
        assert effective_window_intervals(w, w + slack, 0.0) == w

    @given(
        w=st.integers(min_value=1, max_value=100),
        slack=st.integers(min_value=0, max_value=400),
        loss=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_w_eff_stays_in_band(self, w, slack, loss):
        w_max = w + slack
        w_eff = effective_window_intervals(w, w_max, loss)
        assert w <= w_eff <= w_max

    @given(
        w=st.integers(min_value=1, max_value=100),
        slack=st.integers(min_value=0, max_value=400),
        lo=st.floats(min_value=0.0, max_value=1.0),
        hi=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_w_eff_is_monotone_in_estimated_loss(self, w, slack, lo, hi):
        if lo > hi:
            lo, hi = hi, lo
        w_max = w + slack
        assert effective_window_intervals(w, w_max, lo) <= effective_window_intervals(
            w, w_max, hi
        )

    @given(
        lo=st.floats(min_value=0.001, max_value=0.999),
        hi=st.floats(min_value=0.001, max_value=0.999),
        eps=st.floats(min_value=1e-6, max_value=0.5),
    )
    def test_tolerance_is_monotone_and_sufficient(self, lo, hi, eps):
        if lo > hi:
            lo, hi = hi, lo
        k_lo = consecutive_loss_tolerance(lo, eps)
        k_hi = consecutive_loss_tolerance(hi, eps)
        assert k_lo <= k_hi
        # The defining guarantee: k+1 consecutive losses are rarer than eps.
        assert hi ** (k_hi + 1) <= eps + 1e-12


class TestControllerEndToEnd:
    @given(
        w=st.integers(min_value=1, max_value=40),
        slack=st.integers(min_value=0, max_value=100),
        intervals=INTERVALS,
    )
    def test_controller_trajectory_stays_in_band(self, w, slack, intervals):
        controller = LossAdaptiveController(
            LossAdaptationConfig(w_max=w + slack),
            window_intervals=w,
            broadcast_interval=20.0,
            expected_listeners=50,
        )
        for gaps, salvage, _expected in intervals:
            controller.observe_nack(gaps) if gaps else None
            for _ in range(salvage):
                controller.observe_salvage()
            w_eff = controller.tick()
            assert w <= w_eff <= w + slack
            assert 0.0 <= controller.estimate <= 1.0

    def test_silent_cell_never_widens(self):
        controller = LossAdaptiveController(
            LossAdaptationConfig(w_max=40),
            window_intervals=10,
            broadcast_interval=20.0,
            expected_listeners=50,
        )
        for _ in range(100):
            assert controller.tick() == 10
        assert controller.estimate == 0.0


class TestValidation:
    """Every config/argument guard raises — bad knobs fail loudly at
    construction, never as silent mis-adaptation mid-run."""

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(w_max=0),
            dict(alpha=0.0),
            dict(alpha=1.5),
            dict(salvage_weight=-0.1),
            dict(target_residual=0.0),
            dict(target_residual=1.0),
            dict(repeat=0),
        ],
    )
    def test_config_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            LossAdaptationConfig(**kwargs)

    def test_estimator_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            LossEstimator(alpha=0.0)
        with pytest.raises(ValueError):
            LossEstimator(salvage_weight=-1.0)
        with pytest.raises(ValueError):
            LossEstimator().observe_gaps(-1)

    def test_tolerance_edge_cases(self):
        assert consecutive_loss_tolerance(0.0, 0.01) == 0
        assert consecutive_loss_tolerance(-0.5, 0.01) == 0
        with pytest.raises(ValueError):
            consecutive_loss_tolerance(1.0, 0.01)
        with pytest.raises(ValueError):
            consecutive_loss_tolerance(0.5, 0.0)

    def test_window_law_rejects_degenerate_bands(self):
        with pytest.raises(ValueError):
            effective_window_intervals(0, 10, 0.5)
        with pytest.raises(ValueError):
            effective_window_intervals(10, 9, 0.5)

    def test_controller_rejects_cap_below_base_window(self):
        with pytest.raises(ValueError):
            LossAdaptiveController(
                LossAdaptationConfig(w_max=5),
                window_intervals=10,
                broadcast_interval=20.0,
                expected_listeners=10,
            )


class TestCoverageMonotonicity:
    @given(
        tlb=st.floats(min_value=0.0, max_value=1000.0),
        narrow=st.floats(min_value=0.0, max_value=1000.0),
        widen_by=st.floats(min_value=0.0, max_value=1000.0),
    )
    def test_widening_never_unsalvages(self, tlb, narrow, widen_by):
        """``WindowReport(w_eff).covers(tlb)`` is monotone in ``w_eff``:
        every client covered by the narrow window is covered by the wide
        one."""
        timestamp = 1000.0
        narrow_report = WindowReport(
            timestamp=timestamp,
            window_start=timestamp - narrow,
            items={},
            n_items=64,
        )
        wide_report = WindowReport(
            timestamp=timestamp,
            window_start=timestamp - narrow - widen_by,
            items={},
            n_items=64,
        )
        if narrow_report.covers(tlb):
            assert wide_report.covers(tlb)

    @given(
        tlb=st.floats(min_value=0.0, max_value=999.0),
        spans=st.lists(
            st.floats(min_value=1.0, max_value=2000.0), min_size=2, max_size=8
        ),
    )
    def test_coverage_is_a_threshold_in_the_span(self, tlb, spans):
        """Coverage flips from False to True exactly once as the span
        grows — the controller can treat ``w_eff`` as a dial."""
        timestamp = 1000.0
        outcomes = [
            WindowReport(
                timestamp=timestamp,
                window_start=timestamp - span,
                items={},
                n_items=64,
            ).covers(tlb)
            for span in sorted(spans)
        ]
        # Once covered, always covered: no True followed by a False.
        for earlier, later in zip(outcomes, outcomes[1:]):
            assert later >= earlier
