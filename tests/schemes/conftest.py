"""Shared fixtures for scheme policy tests: fake contexts, tiny databases."""

import pytest

from repro.cache import CacheEntry, ClientCache
from repro.db import Database
from repro.sim import SystemParams


class FakeClientCtx:
    """Duck-typed client context capturing a policy's outgoing actions."""

    def __init__(self, capacity=10):
        self.cache = ClientCache(capacity)
        self.tlb = 0.0
        self.sent_tlbs = []
        self.check_requests = []
        self.drops = 0

    def send_tlb(self, tlb):
        self.sent_tlbs.append(tlb)

    def send_check_request(self, entries, size_bits=None):
        self.check_requests.append((list(entries), size_bits))

    def note_cache_drop(self):
        self.drops += 1

    def cache_items(self, *pairs):
        """Insert (item, ts) pairs as cache entries."""
        for item, ts in pairs:
            self.cache.insert(CacheEntry(item=item, version=1, ts=ts))


@pytest.fixture
def ctx():
    return FakeClientCtx()


@pytest.fixture
def params():
    # Small but paper-shaped: L=20, w=10 -> window 200 s.
    return SystemParams(
        simulation_time=1000.0,
        n_clients=2,
        db_size=64,
        buffer_fraction=0.2,
        seed=0,
    )


@pytest.fixture
def db():
    return Database(64)
