"""Unit tests for the TS-with-checking scheme."""

from repro.schemes import (
    CheckingClientPolicy,
    CheckingServerPolicy,
    ClientOutcome,
)


class TestCheckingClient:
    def test_covered_behaves_like_ts(self, params, db, ctx):
        db.apply_update(3, 150.0)
        ctx.cache_items((3, 100.0), (7, 100.0))
        ctx.tlb = 100.0
        server = CheckingServerPolicy(params=params, db=db)
        report = server.build_report(None, 200.0)
        policy = CheckingClientPolicy(params=params, client_id=0)
        assert policy.on_report(ctx, report) is ClientOutcome.READY
        assert 3 not in ctx.cache and 7 in ctx.cache
        assert ctx.check_requests == []

    def test_uncovered_uploads_whole_cache(self, params, db, ctx):
        ctx.cache_items((1, 10.0), (2, 30.0))
        ctx.tlb = 30.0
        server = CheckingServerPolicy(params=params, db=db)
        report = server.build_report(None, 500.0)  # window (300, 500]
        policy = CheckingClientPolicy(params=params, client_id=0)
        assert policy.on_report(ctx, report) is ClientOutcome.PENDING
        (entries, size), = ctx.check_requests
        assert sorted(entries) == [(1, 10.0), (2, 30.0)]
        assert size is None  # default sizing (full checking upload)
        assert len(ctx.cache) == 2  # nothing dropped yet

    def test_uncovered_with_empty_cache_just_resyncs(self, params, db, ctx):
        ctx.tlb = 30.0
        report = CheckingServerPolicy(params=params, db=db).build_report(None, 500.0)
        policy = CheckingClientPolicy(params=params, client_id=0)
        assert policy.on_report(ctx, report) is ClientOutcome.READY
        assert ctx.check_requests == []
        assert ctx.tlb == 500.0

    def test_validity_reply_salvages_valid_entries(self, params, db, ctx):
        db.apply_update(1, 400.0)
        ctx.cache_items((1, 10.0), (2, 10.0))
        ctx.tlb = 30.0
        server = CheckingServerPolicy(params=params, db=db)
        report = server.build_report(None, 500.0)
        policy = CheckingClientPolicy(params=params, client_id=0)
        policy.on_report(ctx, report)
        (entries, _size), = ctx.check_requests
        invalid, certified, bits = server.on_check_request(None, 0, entries, 505.0)
        assert invalid == [1]
        assert bits == len(entries)  # one bit per checked item
        policy.on_validity_reply(ctx, invalid, certified)
        assert 1 not in ctx.cache and 2 in ctx.cache
        assert ctx.tlb == 505.0
        assert ctx.cache.certified_floor == 505.0

    def test_reports_ignored_while_check_pending(self, params, db, ctx):
        ctx.cache_items((2, 10.0))
        ctx.tlb = 30.0
        server = CheckingServerPolicy(params=params, db=db)
        policy = CheckingClientPolicy(params=params, client_id=0)
        policy.on_report(ctx, server.build_report(None, 500.0))
        outcome = policy.on_report(ctx, server.build_report(None, 520.0))
        assert outcome is ClientOutcome.PENDING
        assert len(ctx.check_requests) == 1  # no duplicate upload

    def test_after_reply_next_report_covers(self, params, db, ctx):
        ctx.cache_items((2, 10.0))
        ctx.tlb = 30.0
        server = CheckingServerPolicy(params=params, db=db)
        policy = CheckingClientPolicy(params=params, client_id=0)
        policy.on_report(ctx, server.build_report(None, 500.0))
        (entries, _), = ctx.check_requests
        invalid, certified, _ = server.on_check_request(None, 0, entries, 505.0)
        policy.on_validity_reply(ctx, invalid, certified)
        outcome = policy.on_report(ctx, server.build_report(None, 520.0))
        assert outcome is ClientOutcome.READY
        assert len(ctx.check_requests) == 1


class TestCheckingServer:
    def test_counts_checks(self, params, db):
        server = CheckingServerPolicy(params=params, db=db)
        server.on_check_request(None, 0, [(1, 0.0)], 10.0)
        server.on_check_request(None, 1, [(2, 0.0)], 11.0)
        assert server.checks_served == 2

    def test_boundary_equal_timestamp_is_valid(self, params, db):
        db.apply_update(4, 100.0)
        server = CheckingServerPolicy(params=params, db=db)
        invalid, _, _ = server.on_check_request(None, 0, [(4, 100.0)], 200.0)
        assert invalid == []  # entry coherent as of exactly the update time
