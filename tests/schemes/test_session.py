"""ClientSession: the transport-free port of the sim client's intake."""

from repro.cache import CacheEntry, ClientCache
from repro.reports.window import WindowReport
from repro.schemes import ClientSession, SessionOutcome, get_scheme
from repro.service import ServiceParams


def make_session(scheme="ts", check_log=None, tlb_log=None, **params_kw):
    params_kw.setdefault("window_intervals", 10)
    params = ServiceParams(broadcast_interval=20.0, db_size=50, **params_kw)
    policy = get_scheme(scheme).make_client_policy(params, 0)
    session = ClientSession(
        policy,
        ClientCache(16),
        params,
        send_tlb=(tlb_log.append if tlb_log is not None else None),
        send_check_request=(check_log.append if check_log is not None else None),
    )
    return session


def wreport(ts, window=200.0, items=None, epoch=0, cell=0):
    r = WindowReport(
        timestamp=ts, window_start=ts - window, items=items or {}, n_items=50
    )
    r.epoch = epoch
    r.cell = cell
    return r


def entry(item, ts, version=0):
    return CacheEntry(item=item, version=version, ts=ts)


def test_covered_report_certifies_and_advances_tlb():
    s = make_session()
    s.cache.insert(entry(1, 10.0))
    assert s.offer_report(wreport(20.0), now=20.0) is SessionOutcome.READY
    assert s.tlb == 20.0
    assert len(s.cache) == 1
    assert s.last_report_applied == 20.0


def test_duplicate_report_is_discarded():
    s = make_session()
    r = wreport(20.0)
    assert s.offer_report(r, now=20.0) is SessionOutcome.READY
    assert s.offer_report(r, now=20.5) is SessionOutcome.DUPLICATE
    assert s.duplicate_reports == 1


def test_first_report_adopts_epoch_without_purge():
    s = make_session()
    s.cache.insert(entry(1, 10.0))
    assert s.offer_report(wreport(20.0, epoch=7), now=20.0) is SessionOutcome.READY
    assert s.report_identity == (0, 7)
    assert s.cache.full_drops == 0
    assert len(s.cache) == 1


def test_epoch_change_purges_and_resyncs_tlb():
    s = make_session()
    s.offer_report(wreport(20.0, epoch=1), now=20.0)
    s.cache.insert(entry(1, 21.0))
    drops = []
    s._note_drop = lambda: drops.append(1)
    assert s.offer_report(wreport(40.0, epoch=2), now=40.0) is SessionOutcome.READY
    assert s.epoch_purges == 1
    assert len(s.cache) == 0
    assert s.cache.full_drops == 1
    assert s.report_identity == (0, 2)


def test_lagged_report_is_skipped():
    s = make_session()
    s.tlb = 100.0  # policy-certified past this publisher's timeline
    assert s.offer_report(wreport(40.0), now=101.0) is SessionOutcome.LAGGED
    assert s.lagged_reports == 1
    assert s.last_report_applied is None


def test_gap_detection_counts_missed_reports():
    s = make_session()
    s.offer_report(wreport(20.0), now=20.0)
    assert s.offer_report(wreport(80.0), now=80.0) is SessionOutcome.READY
    assert s.missed_reports == 2  # 40 and 60 never arrived


def test_reconnect_suppresses_gap_accounting():
    s = make_session()
    s.offer_report(wreport(20.0), now=20.0)
    s.disconnect(21.0)
    s.reconnect(199.0)
    assert s.offer_report(wreport(200.0), now=200.0) is SessionOutcome.READY
    assert s.missed_reports == 0  # sleeping through reports is not loss


def test_uncovered_report_drops_cache():
    s = make_session(window_intervals=1)  # window = one interval
    s.offer_report(wreport(20.0, window=20.0), now=20.0)
    s.cache.insert(entry(1, 20.0))
    # 9 reports missed; window reaches only to 180 > Tlb=20.
    assert s.offer_report(wreport(200.0, window=20.0), now=200.0) is (
        SessionOutcome.READY
    )
    assert len(s.cache) == 0
    assert s.cache.full_drops == 1
    assert s.tlb == 200.0


def test_covered_report_invalidates_precisely():
    s = make_session()
    s.offer_report(wreport(20.0), now=20.0)
    s.cache.insert(entry(1, 20.0))
    s.cache.insert(entry(2, 20.0))
    r = wreport(40.0, items={1: 33.0})  # item 1 updated at t=33
    assert s.offer_report(r, now=40.0) is SessionOutcome.READY
    assert s.cache.lookup(1) is None
    assert s.cache.lookup(2) is not None
    assert s.cache.full_drops == 0


def test_insert_fetched_marks_suspect_below_tlb():
    s = make_session()
    s.tlb = 20.0
    assert s.insert_fetched(entry(1, 10.0)) is True
    assert 1 in s.cache.unreconciled
    assert s.insert_fetched(entry(2, 25.0)) is False
    assert 2 not in s.cache.unreconciled


def test_checking_scheme_goes_pending_then_certifies_on_reply():
    checks = []
    s = make_session("checking", check_log=checks)
    s.offer_report(wreport(20.0), now=20.0)
    s.cache.insert(entry(1, 20.0))
    s.cache.insert(entry(2, 20.0))
    # Way beyond the window: the client uploads its cache for checking.
    r = wreport(500.0, window=200.0)
    assert s.offer_report(r, now=500.0) is SessionOutcome.PENDING
    assert s.pending
    assert s.check_uploads == 1
    assert sorted(checks[0]) == [(1, 20.0), (2, 20.0)]
    s.validity_reply([1], certified_at=500.0)
    assert not s.pending
    assert s.cache.lookup(1) is None
    assert s.cache.lookup(2) is not None
    assert s.tlb == 500.0


def test_stale_validity_reply_is_dropped():
    s = make_session("checking")
    s.offer_report(wreport(20.0), now=20.0)
    s.cache.insert(entry(1, 20.0))
    s.validity_reply([1], certified_at=10.0)  # no upload outstanding
    assert s.cache.lookup(1) is not None
    assert s.tlb == 20.0


def test_validation_timeout_reissues_then_degrades():
    checks = []
    s = make_session("checking", check_log=checks)
    s.offer_report(wreport(20.0), now=20.0)
    s.cache.insert(entry(1, 20.0))
    s.offer_report(wreport(500.0, window=200.0), now=500.0)
    assert s.pending
    # The checking policy re-uploads on timeout: still pending.
    assert s.validation_timeout(540.0) is True
    assert s.pending
    assert len(checks) == 2


def test_adaptive_scheme_uploads_tlb_when_uncovered():
    tlbs = []
    s = make_session("afw", tlb_log=tlbs)
    s.offer_report(wreport(20.0), now=20.0)
    s.cache.insert(entry(1, 20.0))
    outcome = s.offer_report(wreport(500.0, window=200.0), now=500.0)
    assert outcome is SessionOutcome.PENDING
    assert s.pending
    assert tlbs == [20.0]
    assert s.tlb_uploads == 1
    assert len(s.cache) == 1  # salvage deferred, not purged


def test_snapshot_is_plain_and_deterministic():
    s = make_session()
    s.offer_report(wreport(20.0), now=20.0)
    snap = s.snapshot()
    assert snap["tlb"] == 20.0
    assert snap == s.snapshot()
    assert all(isinstance(v, float) for v in snap.values())
