"""Tests for scheme base helpers not covered elsewhere."""

import pytest

from repro.cache import CacheEntry, ClientCache
from repro.reports import Invalidation, WindowReport
from repro.schemes import ClientOutcome, apply_invalidation, apply_window_report
from repro.schemes.base import ClientPolicy, Scheme, ServerPolicy


def entry(item, ts=0.0):
    return CacheEntry(item=item, version=1, ts=ts)


class TestApplyInvalidation:
    def test_uncovered_rejected(self):
        cache = ClientCache(4)
        with pytest.raises(ValueError):
            apply_invalidation(cache, Invalidation.drop_all(), 10.0)

    def test_small_set_path(self):
        cache = ClientCache(8)
        for i in range(5):
            cache.insert(entry(i))
        dropped = apply_invalidation(cache, Invalidation.drop({1, 3, 99}), 10.0)
        assert dropped == 2
        assert 1 not in cache and 3 not in cache and 0 in cache

    def test_large_set_path(self):
        """When the drop set dwarfs the cache, iteration flips sides."""
        cache = ClientCache(4)
        cache.insert(entry(2))
        cache.insert(entry(7))
        big = Invalidation.drop(frozenset(range(100)))
        dropped = apply_invalidation(cache, big, 10.0)
        assert dropped == 2
        assert len(cache) == 0

    def test_certifies_even_when_nothing_dropped(self):
        cache = ClientCache(4)
        cache.insert(entry(1))
        apply_invalidation(cache, Invalidation.nothing(), 42.0)
        assert cache.certified_floor == 42.0


class TestApplyWindowReport:
    def test_large_report_iterates_cache_side(self):
        cache = ClientCache(2)
        cache.insert(entry(0, ts=5.0))
        cache.insert(entry(1, ts=5.0))
        items = {i: 50.0 for i in range(100)}  # report >> cache
        report = WindowReport(
            timestamp=60.0, window_start=0.0, items=items, n_items=200
        )
        dropped = apply_window_report(cache, report)
        assert dropped == 2
        assert len(cache) == 0

    def test_returns_drop_count(self):
        cache = ClientCache(4)
        cache.insert(entry(1, ts=5.0))
        cache.insert(entry(2, ts=55.0))
        report = WindowReport(
            timestamp=60.0, window_start=0.0,
            items={1: 50.0, 2: 50.0}, n_items=100,
        )
        # item 1: 50 > 5 -> drop; item 2: 50 < 55 -> keep
        assert apply_window_report(cache, report) == 1


class TestPolicyInterfaces:
    def test_client_policy_defaults(self):
        policy = ClientPolicy()
        with pytest.raises(NotImplementedError):
            policy.on_report(None, None)
        with pytest.raises(NotImplementedError):
            policy.on_validity_reply(None, [], 0.0)
        # Reconnect hooks are optional no-ops.
        policy.on_reconnect(None, 0.0)
        policy.on_disconnect(None, 0.0)

    def test_server_policy_defaults(self):
        policy = ServerPolicy()
        with pytest.raises(NotImplementedError):
            policy.build_report(None, 0.0)
        with pytest.raises(NotImplementedError):
            policy.on_tlb(None, 0, 0.0, 0.0)
        with pytest.raises(NotImplementedError):
            policy.on_check_request(None, 0, [], 0.0)
        policy.on_item_update(0, 0, 1)  # optional no-op

    def test_scheme_factories(self):
        made = []

        def server_factory(params, db):
            made.append(("server", params, db))
            return ServerPolicy()

        def client_factory(params, client_id):
            made.append(("client", params, client_id))
            return ClientPolicy()

        scheme = Scheme("demo", server_factory, client_factory, "desc")
        scheme.make_server_policy("P", "DB")
        scheme.make_client_policy("P", 7)
        assert made == [("server", "P", "DB"), ("client", "P", 7)]
        assert "demo" in repr(scheme)

    def test_client_outcome_values(self):
        assert ClientOutcome.READY.value == "ready"
        assert ClientOutcome.PENDING.value == "pending"
