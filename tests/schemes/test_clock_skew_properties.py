"""Property suite: certification safety under bounded clock skew.

A client whose clock runs up to ``±eps`` seconds off the server's
records cache-entry coherence timestamps that are wrong by at most
``eps``.  The window invalidation test (Figure 1's ``t_c < t_j``)
compares those skewed timestamps against the server's true update
times, so a skewed-but-bounded clock can keep an entry at most ``eps``
seconds past its own knowledge — never more:

* any update a surviving entry *missed* happened within ``eps`` of the
  entry's true coherence time;
* hence a surviving stale entry's certified true age is below
  ``w + eps`` (updates older than the window are the coverage
  precondition's job, handled by earlier reports);
* with a perfect clock (``eps = 0``) survivors are exactly the
  never-stale entries — the classic invariant this suite generalises.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.cache import CacheEntry, ClientCache
from repro.reports.window import WindowReport
from repro.schemes.base import apply_window_report

#: Report timestamp; everything else is placed relative to this.
T = 1000.0
N_ITEMS = 32


@st.composite
def skewed_cells(draw, max_eps=10.0):
    """One report's worth of ground truth plus a skewed client cache.

    Returns ``(eps, window, updates, entries)`` where ``updates`` maps
    item -> true last-update time inside the window ``(T - w, T]`` and
    ``entries`` is a list of ``(item, true_coherence, recorded_ts)``
    with ``|recorded_ts - true_coherence| <= eps``.
    """
    eps = draw(st.floats(min_value=0.0, max_value=max_eps))
    window = draw(st.floats(min_value=50.0, max_value=500.0))
    window_start = T - window
    updates = draw(
        st.dictionaries(
            st.integers(min_value=0, max_value=N_ITEMS - 1),
            st.floats(min_value=window_start, max_value=T, exclude_min=True),
            max_size=16,
        )
    )
    raw_entries = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=N_ITEMS - 1),
                st.floats(min_value=0.0, max_value=T),   # true coherence
                st.floats(min_value=-1.0, max_value=1.0),  # skew, in eps
            ),
            max_size=16,
            unique_by=lambda e: e[0],
        )
    )
    entries = [
        (item, true_ts, true_ts + fraction * eps)
        for item, true_ts, fraction in raw_entries
    ]
    return eps, window, updates, entries


def certify_skewed_cache(updates, entries, window):
    """Build the cache and report, apply, and return the survivors."""
    cache = ClientCache(N_ITEMS)
    for item, _true_ts, recorded_ts in entries:
        cache.insert(CacheEntry(item=item, version=1, ts=recorded_ts))
    report = WindowReport(
        timestamp=T,
        window_start=T - window,
        items=dict(updates),
        n_items=N_ITEMS,
    )
    apply_window_report(cache, report)
    return {
        item: true_ts
        for item, true_ts, _recorded in entries
        if cache.peek(item) is not None
    }


class TestSkewBoundedCertification:
    @given(cell=skewed_cells())
    def test_missed_updates_are_within_eps_of_true_coherence(self, cell):
        eps, window, updates, entries = cell
        survivors = certify_skewed_cache(updates, entries, window)
        for item, true_ts in survivors.items():
            update = updates.get(item)
            if update is not None and update > true_ts:
                # The entry certified through an update it never saw:
                # only a clock error could do that, and it is bounded.
                assert update - true_ts <= eps

    @given(cell=skewed_cells())
    def test_certified_true_age_is_below_w_plus_eps(self, cell):
        eps, window, updates, entries = cell
        survivors = certify_skewed_cache(updates, entries, window)
        for item, true_ts in survivors.items():
            update = updates.get(item)
            if update is not None and update > true_ts:
                # A *stale* survivor is still young: its true coherence
                # lies inside the (eps-padded) window.
                assert T - true_ts < window + eps

    @given(cell=skewed_cells(max_eps=0.0))
    def test_perfect_clock_never_certifies_stale(self, cell):
        _eps, window, updates, entries = cell
        survivors = certify_skewed_cache(updates, entries, window)
        for item, true_ts in survivors.items():
            update = updates.get(item)
            assert update is None or update <= true_ts

    @given(cell=skewed_cells())
    def test_fresh_entries_always_survive(self, cell):
        # Liveness side: skew must not invalidate an entry that already
        # reflects the item's newest state (recorded >= true update and
        # true coherence >= update means the value is current).
        eps, window, updates, entries = cell
        current = {
            item
            for item, true_ts, recorded in entries
            if (up := updates.get(item)) is not None
            and true_ts >= up
            and recorded >= up
        }
        survivors = certify_skewed_cache(updates, entries, window)
        assert current <= set(survivors)
