"""Liveness: no scheme may wedge a client permanently.

The dangerous pattern: a checking-style client uploads its cache, then
dozes before the validity reply lands.  The reply is lost on the air
(broadcast delivery is instantaneous, not a mailbox); without a reset
the client would treat every future report as "still pending" and never
answer another query.
"""

import pytest

from repro.schemes import (
    CheckingClientPolicy,
    CheckingServerPolicy,
    ClientOutcome,
    GCOREClientPolicy,
    GCOREServerPolicy,
    available_schemes,
)
from repro.sim import SimulationModel, SystemParams, UNIFORM


class TestLostReplyRecovery:
    @pytest.mark.parametrize(
        "client_cls,server_cls",
        [
            (CheckingClientPolicy, CheckingServerPolicy),
            (GCOREClientPolicy, GCOREServerPolicy),
        ],
    )
    def test_reconnect_clears_pending_check(
        self, params, db, ctx, client_cls, server_cls
    ):
        ctx.cache_items((2, 10.0))
        ctx.tlb = 30.0
        server = server_cls(params=params, db=db)
        policy = client_cls(params=params, client_id=0)
        assert policy.on_report(ctx, server.build_report(None, 500.0)) is (
            ClientOutcome.PENDING
        )
        # The reply never arrives: the client dozes and wakes up.
        policy.on_reconnect(ctx, 900.0)
        # The next uncovered report triggers a fresh upload, not a wedge.
        outcome = policy.on_report(ctx, server.build_report(None, 920.0))
        assert outcome is ClientOutcome.PENDING
        assert len(ctx.check_requests) == 2


class TestEveryClientKeepsAnswering:
    @pytest.mark.parametrize("scheme", sorted(available_schemes()))
    def test_all_clients_answer_queries_under_churn(self, scheme):
        """Under frequent doze cycles every client must stay live.

        Catches wedges statistically: with 3000 s of simulated time and
        ~19 expected queries per client, a permanently stuck client would
        show as a generated-answered gap far above the in-flight slack.
        """
        params = SystemParams(
            simulation_time=3000.0,
            n_clients=8,
            db_size=60,
            buffer_fraction=0.4,
            think_time_mean=40.0,
            disconnect_prob=0.4,
            disconnect_time_mean=120.0,
            seed=5,
        )
        result = SimulationModel(params, UNIFORM, scheme).run()
        generated = result.counter("queries.generated")
        answered = result.counter("queries.answered")
        assert generated > 50
        # Every generated query either completed or is the (single)
        # in-flight one per client at the horizon.
        assert generated - answered <= params.n_clients
