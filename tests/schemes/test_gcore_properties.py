"""Property-based safety test for GCORE grouped checking.

Collapsing per-item timestamps to group minima may over-invalidate but
must never under-invalidate: every truly stale cached item is always in
the server's invalid list.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Database
from repro.schemes.gcore import GCOREServerPolicy, group_of
from repro.sim import SystemParams

scenario = st.fixed_dictionaries(
    {
        "seed": st.integers(0, 100_000),
        "n_items": st.integers(8, 60),
        "n_updates": st.integers(0, 80),
        "n_cached": st.integers(1, 20),
        "n_groups": st.integers(1, 12),
    }
)


@settings(max_examples=80, deadline=None)
@given(scenario)
def test_grouped_check_never_misses_a_stale_item(cfg):
    rnd = random.Random(cfg["seed"])
    db = Database(cfg["n_items"])
    t = 0.0
    for _ in range(cfg["n_updates"]):
        t += rnd.uniform(0.1, 3.0)
        db.apply_update(rnd.randrange(cfg["n_items"]), t)
    now = t + 1.0

    params = SystemParams(
        simulation_time=10.0, n_clients=1, db_size=cfg["n_items"]
    )
    server = GCOREServerPolicy(params=params, db=db, n_groups=cfg["n_groups"])

    # A client cache: items with their true coherence times.
    cached = {}
    for _ in range(cfg["n_cached"]):
        item = rnd.randrange(cfg["n_items"])
        cached[item] = rnd.uniform(0.0, now)

    # The GCORE client collapses timestamps to per-group minima.
    group_min = {}
    for item, ts in cached.items():
        g = group_of(item, cfg["n_groups"])
        group_min[g] = min(group_min.get(g, ts), ts)
    payload = [
        (item, group_min[group_of(item, cfg["n_groups"])]) for item in cached
    ]

    invalid, _certified, _bits = server.on_check_request(None, 0, payload, now)

    for item, coherence in cached.items():
        truly_stale = coherence < float(db.last_update[item]) <= now
        if truly_stale:
            assert item in invalid  # safety: over- but never under-invalidate
