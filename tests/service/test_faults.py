"""Fault injection: blackholes bounded by deadlines, breaker lifecycle."""

import asyncio

import pytest

from repro.chaos import OutageSchedule
from repro.des.rng import RandomStream
from repro.net import FaultConfig
from repro.service import (
    BackendUnavailable,
    BreakerConfig,
    CacheNode,
    CircuitOpenError,
    DeadlineExceeded,
    FlakyBackend,
    FlakyBroker,
    InMemoryBackend,
    InMemoryBroker,
    NodeConfig,
    Origin,
    RetryConfig,
    ServiceParams,
    VirtualClock,
)

PARAMS = ServiceParams(broadcast_interval=20.0, db_size=50, cache_capacity=16, seed=3)


def run(coro):
    return asyncio.run(coro)


def test_outage_blackhole_is_silence_not_error():
    """A dropped call sleeps — only the caller's deadline unsticks it."""

    async def main():
        clock = VirtualClock()
        broker = InMemoryBroker()
        origin = Origin("ts", PARAMS, clock=clock, broker=broker)
        flaky = FlakyBackend(
            InMemoryBackend(origin),
            clock,
            outage=OutageSchedule.scripted((0.0, 1000.0)),
            hang_seconds=50.0,
        )
        task = asyncio.ensure_future(flaky.backend_fetch(3))
        await clock.advance(49.0)
        assert not task.done()  # silent, exactly like a black-holed socket
        await clock.advance(2.0)
        with pytest.raises(BackendUnavailable):
            await task
        assert flaky.calls_blackholed == 1

    run(main())


def test_deadline_bounds_every_blackholed_call():
    """With the robustness sandwich on, no call outlives its budget."""

    async def main():
        clock = VirtualClock()
        broker = InMemoryBroker()
        origin = Origin("ts", PARAMS, clock=clock, broker=broker)
        flaky = FlakyBackend(
            InMemoryBackend(origin),
            clock,
            outage=OutageSchedule.scripted((0.0, 1000.0)),
        )
        node = CacheNode(
            "ts",
            PARAMS,
            backend=flaky,
            broker=broker,
            clock=clock,
            config=NodeConfig(
                retry=RetryConfig(
                    attempts=2, base_delay=0.1, jitter=0.0, attempt_timeout=0.5
                ),
                deadline=0.5,
            ),
        )
        await node.start()
        t0 = clock.now()
        with pytest.raises(DeadlineExceeded):
            await clock.drive(node.get(3))
        # 2 attempts x 0.5 s deadline + 0.1 s backoff: bounded, no hang.
        assert clock.now() - t0 == pytest.approx(1.1)
        await node.stop()

    run(main())


def test_breaker_trips_recovers_through_half_open_and_journals():
    async def main():
        clock = VirtualClock()
        broker = InMemoryBroker()
        origin = Origin("ts", PARAMS, clock=clock, broker=broker)
        outage = OutageSchedule.scripted((0.0, 100.0), name="l2")
        flaky = FlakyBackend(InMemoryBackend(origin), clock, outage=outage)
        node = CacheNode(
            "ts",
            PARAMS,
            backend=flaky,
            broker=broker,
            clock=clock,
            config=NodeConfig(
                retry=RetryConfig(
                    attempts=1, base_delay=0.1, jitter=0.0, attempt_timeout=0.5
                ),
                deadline=0.5,
                breaker=BreakerConfig(
                    failure_threshold=3,
                    window_seconds=60.0,
                    reset_timeout=30.0,
                    probe_budget=1,
                    probe_successes=1,
                ),
            ),
        )
        await node.start()
        # Three failed fetches trip the breaker.
        for k in range(3):
            with pytest.raises(DeadlineExceeded):
                await clock.drive(node.get(k))
            await clock.advance(1.0)
        assert node.breaker.state.value == "open"
        assert node.breaker.trips == 1
        # While open: fail fast, zero backend traffic.
        blackholed_before = flaky.calls_blackholed
        with pytest.raises(CircuitOpenError):
            await clock.drive(node.get(9))
        assert flaky.calls_blackholed == blackholed_before
        # Past the outage AND the reset timeout: one probe recloses.
        await clock.run_until(110.0)
        a = await clock.drive(node.get(3))
        assert a.source == "l2"
        assert node.breaker.state.value == "closed"
        # health() + journal report the full lifecycle.
        h = node.health()
        assert h.breaker_trips == 1
        assert h.breakers == {"l2": "closed"}
        moves = [
            (tr.old, tr.new)
            for tr in node.metrics.transitions
            if tr.subject == "breaker.l2"
        ]
        assert moves == [
            ("closed", "open"),
            ("open", "half-open"),
            ("half-open", "closed"),
        ]
        await node.stop()

    run(main())


def test_fate_model_drops_are_seeded_and_counted():
    async def main():
        clock = VirtualClock()
        broker = InMemoryBroker()
        origin = Origin("ts", PARAMS, clock=clock, broker=broker)
        faults = FaultConfig(drop_prob=0.5)
        flaky = FlakyBackend(
            InMemoryBackend(origin),
            clock,
            faults=faults,
            stream=RandomStream(3, "test/fates"),
            hang_seconds=10.0,
        )
        outcomes = []
        for k in range(30):
            try:
                await clock.drive(flaky.backend_fetch(k % 50))
                outcomes.append("ok")
            except BackendUnavailable:
                outcomes.append("lost")
        assert "ok" in outcomes and "lost" in outcomes
        assert flaky.calls_blackholed + flaky.calls_corrupted == outcomes.count(
            "lost"
        )
        # Same seed, same fate sequence.
        clock2 = VirtualClock()
        origin2 = Origin("ts", PARAMS, clock=clock2, broker=InMemoryBroker())
        flaky2 = FlakyBackend(
            InMemoryBackend(origin2),
            clock2,
            faults=faults,
            stream=RandomStream(3, "test/fates"),
            hang_seconds=10.0,
        )
        outcomes2 = []
        for k in range(30):
            try:
                await clock2.drive(flaky2.backend_fetch(k % 50))
                outcomes2.append("ok")
            except BackendUnavailable:
                outcomes2.append("lost")
        assert outcomes == outcomes2

    run(main())


def test_null_fault_config_adds_no_model():
    clock = VirtualClock()
    broker = InMemoryBroker()
    origin = Origin("ts", PARAMS, clock=clock, broker=broker)
    flaky = FlakyBackend(InMemoryBackend(origin), clock, faults=FaultConfig())
    assert flaky.model is None
    with pytest.raises(ValueError):
        FlakyBackend(
            InMemoryBackend(origin),
            clock,
            faults=FaultConfig(drop_prob=0.5),  # lossy but no stream
        )


def test_flaky_broker_loses_reports_during_outage():
    async def main():
        clock = VirtualClock()
        inner = InMemoryBroker()
        outage = OutageSchedule.scripted((30.0, 70.0), name="ir")
        flaky = FlakyBroker(inner, clock, outage=outage)
        origin = Origin("ts", PARAMS, clock=clock, broker=flaky)
        sub = flaky.broker_subscribe()
        for t in (20.0, 40.0, 60.0, 80.0):
            await clock.run_until(t)
            await origin.publish_once()
        assert flaky.reports_lost == 2
        assert inner.published == 2
        assert (await sub.next_report()).timestamp == 20.0
        assert (await sub.next_report()).timestamp == 80.0

    run(main())


def test_ping_reports_outage_without_erroring():
    async def main():
        clock = VirtualClock()
        origin = Origin("ts", PARAMS, clock=clock, broker=InMemoryBroker())
        flaky = FlakyBackend(
            InMemoryBackend(origin),
            clock,
            outage=OutageSchedule.scripted((10.0, 20.0)),
        )
        assert await flaky.backend_ping() is True
        await clock.run_until(15.0)
        assert await flaky.backend_ping() is False

    run(main())
