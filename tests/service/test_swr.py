"""SWR entries: two independent timers; refresh never extends expiry."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cache import CacheEntry, ClientCache
from repro.service import ServiceEntry, SWRConfig


def test_config_validation():
    with pytest.raises(ValueError):
        SWRConfig(freshness_seconds=0)
    with pytest.raises(ValueError):
        SWRConfig(freshness_seconds=10, expiry_seconds=5)


def test_timers_from_fetch_instant():
    swr = SWRConfig(freshness_seconds=30.0, expiry_seconds=100.0)
    e = ServiceEntry(item=1, version=0, ts=50.0, fetched_at=50.0, swr=swr)
    assert e.is_fresh(79.9) and not e.is_expired(79.9)
    assert not e.is_fresh(80.0)  # SWR-stale but alive
    assert not e.is_expired(149.9)
    assert e.is_expired(150.0)


def test_no_swr_means_infinite_timers():
    e = ServiceEntry(item=1, version=0, ts=0.0)
    assert e.is_fresh(1e12) and not e.is_expired(1e12)


def test_service_entry_is_a_cache_entry():
    """The L1 store and the scheme reconciliation code see a CacheEntry."""
    swr = SWRConfig()
    e = ServiceEntry(item=3, version=2, ts=7.0, value="v", fetched_at=7.0, swr=swr)
    assert isinstance(e, CacheEntry)
    cache = ClientCache(4)
    cache.insert(e)
    assert cache.lookup(3) is e
    assert cache.effective_ts(e) == 7.0


def test_refresh_restores_freshness_and_restamps():
    swr = SWRConfig(freshness_seconds=10.0, expiry_seconds=100.0)
    e = ServiceEntry(item=1, version=0, ts=0.0, value="old", fetched_at=0.0, swr=swr)
    e.refreshing = True
    e.refreshed(version=3, ts=50.0, value="new", now=50.0, swr=swr)
    assert (e.version, e.ts, e.value) == (3, 50.0, "new")
    assert e.fresh_until == 60.0
    assert e.refreshing is False


def test_refresh_never_extends_expiry():
    swr = SWRConfig(freshness_seconds=10.0, expiry_seconds=30.0)
    e = ServiceEntry(item=1, version=0, ts=0.0, fetched_at=0.0, swr=swr)
    original_expiry = e.expires_at
    e.refreshed(version=1, ts=25.0, value=None, now=25.0, swr=swr)
    assert e.expires_at == original_expiry
    # Freshness clamps to the hard deadline, never past it.
    assert e.fresh_until == original_expiry


@given(
    fresh=st.floats(0.1, 100.0),
    extra=st.floats(0.0, 1000.0),
    fetched_at=st.floats(0.0, 1e6),
    refreshes=st.lists(st.floats(0.0, 1e5), max_size=8),
)
def test_property_expiry_is_fixed_at_insert(fresh, extra, fetched_at, refreshes):
    """However many refreshes land, ``expires_at`` is the original bound
    and ``fresh_until`` never exceeds it."""
    swr = SWRConfig(freshness_seconds=fresh, expiry_seconds=fresh + extra)
    e = ServiceEntry(item=0, version=0, ts=fetched_at, fetched_at=fetched_at, swr=swr)
    fixed = e.expires_at
    t = fetched_at
    for dt in refreshes:
        t += dt
        e.refreshed(version=1, ts=t, value=None, now=t, swr=swr)
        assert e.expires_at == fixed
        assert e.fresh_until <= fixed
