"""CacheNode: the serving ladder, SWR composition, decorator, health."""

import asyncio

import pytest

from repro.service import (
    CacheNode,
    FetchResult,
    InMemoryBackend,
    InMemoryBroker,
    NodeConfig,
    NodeDegraded,
    Origin,
    RetryConfig,
    ServiceParams,
    SWRConfig,
    VirtualClock,
)
from repro.service.faults import FlakyBackend
from repro.chaos import OutageSchedule

PARAMS = ServiceParams(
    broadcast_interval=20.0, db_size=50, cache_capacity=16, seed=7
)

FAST_RETRY = RetryConfig(
    attempts=2, base_delay=0.05, jitter=0.0, attempt_timeout=0.5
)


def run(coro):
    return asyncio.run(coro)


def build(scheme="ts", config=None, backend_wrap=None, params=PARAMS):
    clock = VirtualClock()
    broker = InMemoryBroker()
    origin = Origin(scheme, params, clock=clock, broker=broker)
    backend = InMemoryBackend(origin)
    if backend_wrap is not None:
        backend = backend_wrap(backend, clock)
    node = CacheNode(
        scheme,
        params,
        backend=backend,
        broker=broker,
        clock=clock,
        config=config or NodeConfig(retry=FAST_RETRY, deadline=0.5),
    )
    return clock, origin, backend, node


async def start_all(clock, origin, node):
    await node.start()
    task = asyncio.get_running_loop().create_task(origin.run())
    return task


def test_miss_then_certified_hit():
    async def main():
        clock, origin, backend, node = build()
        origin_task = await start_all(clock, origin, node)
        await clock.run_until(45.0)
        a = await clock.drive(node.get(3))
        assert (a.source, a.stale) == ("l2", False)
        assert a.tlb == 40.0
        b = await clock.drive(node.get(3))
        assert (b.source, b.stale) == ("b".replace("b", "l1"), False)
        assert backend.fetches == 1
        origin.stop(), origin_task.cancel()
        await node.stop()

    run(main())


def test_ir_invalidation_forces_refetch():
    async def main():
        clock, origin, backend, node = build()
        origin_task = await start_all(clock, origin, node)
        await clock.run_until(45.0)
        a = await clock.drive(node.get(3))
        assert a.version == 0
        await clock.run_until(50.0)
        origin.apply_update(3)
        await clock.run_until(65.0)  # the t=60 report invalidates item 3
        b = await clock.drive(node.get(3))
        assert (b.source, b.version) == ("l2", 1)
        assert node.session.tlb == 60.0
        origin.stop(), origin_task.cancel()
        await node.stop()

    run(main())


def test_swr_stale_serve_is_flagged_and_refreshes():
    async def main():
        cfg = NodeConfig(
            retry=FAST_RETRY,
            deadline=0.5,
            swr=SWRConfig(freshness_seconds=30.0, expiry_seconds=500.0),
        )
        clock, origin, backend, node = build(config=cfg)
        origin_task = await start_all(clock, origin, node)
        await clock.run_until(45.0)
        await clock.drive(node.get(3))
        await clock.run_until(90.0)  # past freshness, before expiry
        a = await clock.drive(node.get(3))
        assert (a.source, a.stale) == ("l1-swr", True)
        assert node.served_stale == 1
        await clock.advance(1.0)  # let the background refresh land
        b = await clock.drive(node.get(3))
        assert (b.source, b.stale) == ("l1", False)
        assert backend.fetches == 2
        assert node.metrics.get("swr.refreshes") == 1
        origin.stop(), origin_task.cancel()
        await node.stop()

    run(main())


def test_swr_expiry_is_a_hard_miss():
    async def main():
        cfg = NodeConfig(
            retry=FAST_RETRY,
            deadline=0.5,
            swr=SWRConfig(freshness_seconds=10.0, expiry_seconds=40.0),
        )
        clock, origin, backend, node = build(config=cfg)
        origin_task = await start_all(clock, origin, node)
        await clock.run_until(45.0)
        await clock.drive(node.get(3))
        await clock.run_until(86.0)  # expired at 45+40=85
        a = await clock.drive(node.get(3))
        assert a.source == "l2"
        assert node.metrics.get("swr.expired") == 1
        assert backend.fetches == 2
        origin.stop(), origin_task.cancel()
        await node.stop()

    run(main())


async def _drive_into_double_outage(clock, origin, node):
    """Warm an entry, kill the IR feed past the window, bring one report
    back while L2 is down: the checking salvage cannot complete, so L1
    is uncertifiable and L2 unreachable — the ladder's bottom rung."""
    await clock.run_until(40.0)
    await origin.publish_once()  # t=40: certifies Tlb=40
    await clock.run_until(45.0)
    a = await clock.drive(node.get(3))
    assert a.source == "l2"
    # Feed silent until far beyond the window; watchdog degrades.
    await clock.run_until(500.0)
    assert node.health().state == "disconnected"
    await origin.publish_once()  # window_start=300 > Tlb: salvage needed
    await clock.advance(2.0)  # check upload retries fail against the outage
    assert node.session.pending


def test_degraded_serves_flagged_stale_when_l2_down():
    async def main():
        outage = OutageSchedule.scripted((490.0, 600.0), name="l2")

        def wrap(inner, clock):
            return FlakyBackend(inner, clock, outage=outage)

        clock, origin, backend, node = build("checking", backend_wrap=wrap)
        await node.start()
        await _drive_into_double_outage(clock, origin, node)
        a = await clock.drive(node.get(3))
        assert (a.source, a.stale) == ("l1-degraded", True)
        assert node.metrics.get("get.l2_failures") >= 1
        assert node.metrics.get("get.certify_timeouts") >= 1
        await node.stop()

    run(main())


def test_strict_mode_raises_instead_of_serving_stale():
    async def main():
        outage = OutageSchedule.scripted((490.0, 600.0), name="l2")

        def wrap(inner, clock):
            return FlakyBackend(inner, clock, outage=outage)

        cfg = NodeConfig(
            retry=FAST_RETRY, deadline=0.5, serve_stale_when_degraded=False
        )
        clock, origin, backend, node = build(
            "checking", config=cfg, backend_wrap=wrap
        )
        await node.start()
        await _drive_into_double_outage(clock, origin, node)
        with pytest.raises(NodeDegraded):
            await clock.drive(node.get(3))
        await node.stop()

    run(main())


def test_cached_decorator_materializes_and_reuses():
    async def main():
        clock, origin, backend, node = build()
        origin_task = await start_all(clock, origin, node)
        calls = []

        @node.cached(item=lambda user_id: user_id % 50)
        async def profile(fetched: FetchResult, user_id: int):
            calls.append(user_id)
            return {"user": user_id, "rev": fetched.version}

        await clock.run_until(45.0)
        value = await clock.drive(profile(3))
        assert value == {"user": 3, "rev": 0}
        again = await clock.drive(profile(3))
        assert again == value
        assert calls == [3]  # the hit never re-ran the materializer
        origin.stop(), origin_task.cancel()
        await node.stop()

    run(main())


def test_watchdog_degrades_on_silent_feed_and_salvages_on_return():
    async def main():
        clock, origin, backend, node = build()
        await node.start()
        await clock.run_until(1.0)
        await origin.publish_once()  # t=1
        await clock.run_until(2.0)
        a = await clock.drive(node.get(3))
        assert node.state.is_live
        # Feed silent past the lag budget (2.5 intervals = 50 s).
        await clock.run_until(80.0)
        assert node.health().state == "disconnected"
        assert node.state.tlb_at_disconnect == 1.0
        assert node.metrics.get("ir.feed_losses") == 1
        # Feed returns; the window (200 s) covers the gap: salvage.
        await origin.publish_once()  # t=80
        await clock.advance(0.5)
        assert node.health().state == "live"
        assert node.session.cache.full_drops == 0
        b = await clock.drive(node.get(3))
        assert (b.source, b.stale) == ("l1", False)
        assert b.tlb == 80.0
        await node.stop()

    run(main())


def test_health_reports_the_full_surface():
    async def main():
        clock, origin, backend, node = build()
        origin_task = await start_all(clock, origin, node)
        await clock.run_until(45.0)
        await clock.drive(node.get(3))
        h = node.health()
        assert h.state == "live"
        assert h.tlb == 40.0
        assert h.breakers == {"l2": "closed"}
        assert h.pending_validation is False
        d = h.as_dict()
        assert d["counters"]["get.l2_fetches"] == 1.0
        origin.stop(), origin_task.cancel()
        await node.stop()

    run(main())


def test_context_manager_lifecycle():
    async def main():
        clock, origin, backend, node = build()
        async with node:
            assert node._started
        assert not node._started
        assert node.broker.broker_subscriber_count() == 0

    run(main())
