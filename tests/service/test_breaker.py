"""Circuit breaker: the state-machine law, pinned by Hypothesis."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.service import BreakerConfig, BreakerState, CircuitBreaker


def make(threshold=3, window=30.0, reset=60.0, budget=2, successes=2):
    return CircuitBreaker(
        BreakerConfig(
            failure_threshold=threshold,
            window_seconds=window,
            reset_timeout=reset,
            probe_budget=budget,
            probe_successes=successes,
        )
    )


def test_config_validation():
    with pytest.raises(ValueError):
        BreakerConfig(failure_threshold=0)
    with pytest.raises(ValueError):
        BreakerConfig(window_seconds=0)
    with pytest.raises(ValueError):
        BreakerConfig(probe_budget=0)


def test_trips_after_threshold_failures():
    br = make(threshold=3)
    for t in (1.0, 2.0):
        assert br.allow(t)
        br.on_failure(t)
        assert br.state is BreakerState.CLOSED
    assert br.allow(3.0)
    br.on_failure(3.0)
    assert br.state is BreakerState.OPEN
    assert br.trips == 1


def test_old_failures_age_out_of_window():
    br = make(threshold=3, window=10.0)
    br.on_failure(0.0)
    br.on_failure(1.0)
    # 0.0 and 1.0 have aged out by t=20: this is failure #1 again.
    br.on_failure(20.0)
    assert br.state is BreakerState.CLOSED


def test_success_resets_the_failure_count():
    br = make(threshold=2)
    br.on_failure(1.0)
    br.on_success(2.0)
    br.on_failure(3.0)
    assert br.state is BreakerState.CLOSED


def test_open_fast_fails_until_reset_timeout():
    br = make(threshold=1, reset=60.0)
    br.on_failure(0.0)
    assert br.state is BreakerState.OPEN
    assert not br.allow(10.0)
    assert not br.allow(59.9)
    assert br.fast_fails == 2
    assert br.allow(60.0)  # first probe admitted
    assert br.state is BreakerState.HALF_OPEN


def test_half_open_probe_budget_bounds_concurrency():
    br = make(threshold=1, reset=10.0, budget=2)
    br.on_failure(0.0)
    assert br.allow(10.0)
    assert br.allow(10.0)
    assert not br.allow(10.0)  # budget exhausted
    br.on_success(11.0)  # one probe returns a slot
    assert br.allow(11.0)


def test_no_thundering_reclose():
    """One good probe must not reclose when two are required."""
    br = make(threshold=1, reset=10.0, budget=2, successes=2)
    br.on_failure(0.0)
    assert br.allow(10.0)
    br.on_success(10.5)
    assert br.state is BreakerState.HALF_OPEN  # still cautious
    assert br.allow(11.0)
    br.on_success(11.5)
    assert br.state is BreakerState.CLOSED


def test_probe_failure_reopens_and_restarts_timer():
    br = make(threshold=1, reset=10.0)
    br.on_failure(0.0)
    assert br.allow(10.0)
    br.on_failure(10.5)
    assert br.state is BreakerState.OPEN
    assert br.trips == 2
    assert not br.allow(19.0)  # timer restarted from 10.5
    assert br.allow(20.5)


def test_straggler_failure_while_open_is_ignored():
    br = make(threshold=1, reset=60.0)
    br.on_failure(0.0)
    br.on_failure(1.0)  # straggler from a call admitted pre-trip
    assert br.trips == 1
    assert br.allow(60.0)  # reset clock not disturbed


def test_release_probe_returns_slot_without_verdict():
    br = make(threshold=1, reset=10.0, budget=1)
    br.on_failure(0.0)
    assert br.allow(10.0)
    assert not br.allow(10.0)
    br.release_probe()
    assert br.allow(10.0)
    assert br.state is BreakerState.HALF_OPEN


def test_transition_hook_sees_every_change():
    seen = []
    br = CircuitBreaker(
        BreakerConfig(failure_threshold=1, reset_timeout=5.0, probe_successes=1),
        on_transition=lambda now, old, new: seen.append((now, old.value, new.value)),
    )
    br.on_failure(1.0)
    br.allow(6.0)
    br.on_success(6.5)
    assert seen == [
        (1.0, "closed", "open"),
        (6.0, "open", "half-open"),
        (6.5, "half-open", "closed"),
    ]


# -- Hypothesis properties --------------------------------------------------

_events = st.lists(
    st.tuples(st.sampled_from(["fail", "ok"]), st.floats(0.0, 1.0)),
    min_size=0,
    max_size=60,
)


@given(threshold=st.integers(1, 6), events=_events)
def test_property_opens_only_at_threshold(threshold, events):
    """Within one window, the breaker opens exactly when ``threshold``
    failures accumulate with no intervening success — never earlier."""
    br = make(threshold=threshold, window=1000.0, reset=1e9)
    t = 0.0
    consecutive = 0
    for kind, dt in events:
        t += dt
        if br.state is not BreakerState.CLOSED:
            break
        if kind == "fail":
            br.allow(t)
            br.on_failure(t)
            consecutive += 1
            if consecutive < threshold:
                assert br.state is BreakerState.CLOSED
            else:
                assert br.state is BreakerState.OPEN
        else:
            br.allow(t)
            br.on_success(t)
            consecutive = 0
            assert br.state is BreakerState.CLOSED


@given(
    budget=st.integers(1, 5),
    attempts=st.integers(1, 20),
)
def test_property_half_open_never_exceeds_probe_budget(budget, attempts):
    br = make(threshold=1, reset=1.0, budget=budget, successes=budget + 1)
    br.on_failure(0.0)
    admitted = sum(1 for _ in range(attempts) if br.allow(2.0))
    assert admitted == min(attempts, budget)
    assert br.state is BreakerState.HALF_OPEN


@given(
    successes_needed=st.integers(1, 5),
    delivered=st.integers(0, 10),
)
def test_property_recloses_only_after_enough_probe_successes(
    successes_needed, delivered
):
    br = make(
        threshold=1,
        reset=1.0,
        budget=successes_needed,
        successes=successes_needed,
    )
    br.on_failure(0.0)
    t = 2.0
    done = 0
    for _ in range(delivered):
        if br.state is BreakerState.CLOSED:
            break
        if br.allow(t):
            br.on_success(t)
            done += 1
        t += 0.1
    if delivered >= successes_needed:
        assert br.state is BreakerState.CLOSED
        assert done == successes_needed  # not one probe more than needed
    else:
        # Not enough probes delivered: the breaker must stay cautious
        # (OPEN if never probed, HALF_OPEN otherwise) — never reclosed.
        assert br.state is not BreakerState.CLOSED


@given(st.data())
def test_property_open_never_admits_before_reset_timeout(data):
    reset = data.draw(st.floats(1.0, 100.0))
    br = make(threshold=1, reset=reset)
    trip_at = data.draw(st.floats(0.0, 50.0))
    br.on_failure(trip_at)
    probe_at = data.draw(st.floats(trip_at, trip_at + 2 * reset))
    allowed = br.allow(probe_at)
    assert allowed == (probe_at - trip_at >= reset)
