"""VirtualClock: ordering, deadlines, drive(), and the heap backends."""

import asyncio

import pytest

from repro.service import DeadlineExceeded, VirtualClock, WallClock, with_deadline


def run(coro):
    return asyncio.run(coro)


def test_wall_clock_is_the_running_loops_time():
    async def main():
        clock = WallClock()
        t0 = clock.now()
        await clock.sleep(0.005)
        assert clock.now() - t0 >= 0.004
        # with_deadline works identically against real time.
        value = await with_deadline(clock, asyncio.sleep(0, "ok"), 1.0)
        assert value == "ok"

    run(main())


def test_sleep_fires_in_time_order():
    async def main():
        clock = VirtualClock()
        fired = []

        async def sleeper(delay, tag):
            await clock.sleep(delay)
            fired.append((clock.now(), tag))

        tasks = [
            asyncio.ensure_future(sleeper(d, t))
            for d, t in [(3.0, "c"), (1.0, "a"), (2.0, "b")]
        ]
        await clock.advance(5.0)
        await asyncio.gather(*tasks)
        assert fired == [(1.0, "a"), (2.0, "b"), (3.0, "c")]
        assert clock.now() == 5.0

    run(main())


def test_equal_deadlines_fire_in_schedule_order():
    async def main():
        clock = VirtualClock()
        fired = []

        async def sleeper(tag):
            await clock.sleep(10.0)
            fired.append(tag)

        for tag in ("first", "second", "third"):
            asyncio.ensure_future(sleeper(tag))
        await clock.advance(10.0)
        assert fired == ["first", "second", "third"]

    run(main())


def test_zero_sleep_is_a_yield():
    async def main():
        clock = VirtualClock()
        await clock.sleep(0)
        assert clock.now() == 0.0
        assert clock.pending_timers == 0

    run(main())


def test_negative_sleep_rejected():
    async def main():
        clock = VirtualClock()
        with pytest.raises(ValueError):
            await clock.sleep(-1.0)
        with pytest.raises(ValueError):
            await clock.advance(-1.0)

    run(main())


def test_causal_chain_completes_within_one_advance():
    """Timer -> task -> second sleep -> task, all inside advance()."""

    async def main():
        clock = VirtualClock()
        steps = []

        async def chain():
            await clock.sleep(1.0)
            steps.append(("woke", clock.now()))
            await clock.sleep(2.0)
            steps.append(("done", clock.now()))

        task = asyncio.ensure_future(chain())
        await clock.advance(10.0)
        await task
        assert steps == [("woke", 1.0), ("done", 3.0)]

    run(main())


def test_with_deadline_task_wins():
    async def main():
        clock = VirtualClock()

        async def quick():
            await clock.sleep(1.0)
            return "value"

        result_task = asyncio.ensure_future(
            with_deadline(clock, quick(), timeout=5.0)
        )
        await clock.advance(2.0)
        assert await result_task == "value"

    run(main())


def test_with_deadline_timeout_cancels_task():
    async def main():
        clock = VirtualClock()
        cancelled = []

        async def slow():
            try:
                await clock.sleep(100.0)
            except asyncio.CancelledError:
                cancelled.append(True)
                raise

        result_task = asyncio.ensure_future(
            with_deadline(clock, slow(), timeout=1.0)
        )
        await clock.advance(2.0)
        with pytest.raises(DeadlineExceeded):
            await result_task
        assert cancelled == [True]

    run(main())


def test_with_deadline_none_is_unbounded():
    async def main():
        clock = VirtualClock()

        async def quick():
            return 42

        assert await with_deadline(clock, quick(), timeout=None) == 42

    run(main())


def test_simultaneous_finish_prefers_task():
    """Task and timer due at the same instant: the value wins."""

    async def main():
        clock = VirtualClock()

        async def exact():
            await clock.sleep(3.0)
            return "made it"

        result_task = asyncio.ensure_future(
            with_deadline(clock, exact(), timeout=3.0)
        )
        await clock.advance(3.0)
        assert await result_task == "made it"

    run(main())


def test_drive_runs_awaitable_to_completion():
    async def main():
        clock = VirtualClock()

        async def worker():
            await clock.sleep(5.0)
            await clock.sleep(7.0)
            return clock.now()

        assert await clock.drive(worker()) == 12.0

    run(main())


def test_drive_detects_deadlock():
    async def main():
        clock = VirtualClock()

        async def stuck():
            await asyncio.get_running_loop().create_future()

        with pytest.raises(RuntimeError, match="deadlock"):
            await clock.drive(stuck())

    run(main())


def test_run_until_is_absolute_and_monotonic():
    async def main():
        clock = VirtualClock(start=10.0)
        await clock.run_until(25.0)
        assert clock.now() == 25.0
        await clock.run_until(5.0)  # already past: no-op
        assert clock.now() == 25.0

    run(main())


def test_cancelled_sleep_leaves_tombstone_not_crash():
    async def main():
        clock = VirtualClock()

        async def sleeper():
            await clock.sleep(4.0)

        task = asyncio.ensure_future(sleeper())
        await asyncio.sleep(0)
        task.cancel()
        await clock.advance(10.0)  # tombstone dropped unfired
        assert clock.now() == 10.0

    run(main())
