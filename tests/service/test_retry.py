"""Retry/backoff: jitter bounds (Hypothesis) and the retry sandwich."""

import asyncio

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.des.rng import RandomStream
from repro.service import (
    BackendUnavailable,
    BreakerConfig,
    CircuitBreaker,
    CircuitOpenError,
    DeadlineExceeded,
    RetryConfig,
    VirtualClock,
    backoff_delay,
    call_with_retry,
)


def run(coro):
    return asyncio.run(coro)


# -- the pure delay law -----------------------------------------------------

def test_backoff_grows_exponentially_then_caps():
    cfg = RetryConfig(base_delay=0.1, backoff_base=2.0, max_delay=0.5, jitter=0.0)
    delays = [backoff_delay(cfg, k) for k in range(5)]
    assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]


def test_negative_attempt_rejected():
    with pytest.raises(ValueError):
        backoff_delay(RetryConfig(), -1)


def test_config_validation():
    with pytest.raises(ValueError):
        RetryConfig(attempts=0)
    with pytest.raises(ValueError):
        RetryConfig(jitter=1.0)
    with pytest.raises(ValueError):
        RetryConfig(backoff_base=0.5)


@given(
    attempt=st.integers(0, 20),
    base=st.floats(0.001, 5.0),
    factor=st.floats(1.0, 4.0),
    cap=st.floats(0.001, 10.0),
    jitter=st.floats(0.0, 0.99),
    seed=st.integers(0, 2**31),
)
def test_property_jitter_stays_in_bounds(attempt, base, factor, cap, jitter, seed):
    """backoff_delay always lands in [nominal*(1-j), nominal*(1+j)]."""
    cfg = RetryConfig(
        base_delay=base, backoff_base=factor, max_delay=cap, jitter=jitter
    )
    stream = RandomStream(seed, "test/jitter")
    nominal = min(base * factor**attempt, cap)
    d = backoff_delay(cfg, attempt, stream)
    assert nominal * (1 - jitter) <= d <= nominal * (1 + jitter)


@given(seed=st.integers(0, 2**31), attempt=st.integers(0, 10))
def test_property_jitter_is_seed_deterministic(seed, attempt):
    cfg = RetryConfig(jitter=0.5)
    a = backoff_delay(cfg, attempt, RandomStream(seed, "test/jitter"))
    b = backoff_delay(cfg, attempt, RandomStream(seed, "test/jitter"))
    assert a == b


# -- the retry sandwich -----------------------------------------------------

def test_retries_then_succeeds():
    async def main():
        clock = VirtualClock()
        calls = []

        async def flaky():
            calls.append(clock.now())
            if len(calls) < 3:
                raise BackendUnavailable("down")
            return "finally"

        cfg = RetryConfig(attempts=3, base_delay=1.0, jitter=0.0, attempt_timeout=None)
        value = await clock.drive(call_with_retry(clock, flaky, retry=cfg))
        assert value == "finally"
        # attempt 0 at t=0, backoff 1s, attempt 1 at 1, backoff 2s, attempt 2 at 3
        assert calls == [0.0, 1.0, 3.0]

    run(main())


def test_exhausted_attempts_raise_last_error():
    async def main():
        clock = VirtualClock()

        async def dead():
            raise BackendUnavailable("still down")

        cfg = RetryConfig(attempts=2, base_delay=0.1, jitter=0.0, attempt_timeout=None)
        with pytest.raises(BackendUnavailable):
            await clock.drive(call_with_retry(clock, dead, retry=cfg))

    run(main())


def test_attempt_deadline_converts_hang_to_retry():
    async def main():
        clock = VirtualClock()
        attempts = []

        async def hang_once():
            attempts.append(clock.now())
            if len(attempts) == 1:
                await clock.sleep(1000.0)
            return "recovered"

        cfg = RetryConfig(
            attempts=2, base_delay=0.5, jitter=0.0, attempt_timeout=2.0
        )
        value = await clock.drive(call_with_retry(clock, hang_once, retry=cfg))
        assert value == "recovered"
        assert attempts == [0.0, 2.5]  # 2s deadline + 0.5s backoff

    run(main())


def test_non_retryable_error_propagates_immediately():
    async def main():
        clock = VirtualClock()
        calls = []

        async def broken():
            calls.append(1)
            raise KeyError("a bug, not an outage")

        with pytest.raises(KeyError):
            await clock.drive(
                call_with_retry(clock, broken, retry=RetryConfig(attempts=3))
            )
        assert len(calls) == 1

    run(main())


def test_breaker_hears_one_verdict_per_attempt():
    async def main():
        clock = VirtualClock()
        breaker = CircuitBreaker(
            BreakerConfig(failure_threshold=3, window_seconds=1e6)
        )

        async def dead():
            raise BackendUnavailable("down")

        cfg = RetryConfig(attempts=3, base_delay=0.1, jitter=0.0, attempt_timeout=None)
        with pytest.raises(BackendUnavailable):
            await clock.drive(
                call_with_retry(clock, dead, retry=cfg, breaker=breaker)
            )
        assert breaker.trips == 1  # exactly 3 failures -> one trip

    run(main())


def test_open_breaker_refuses_without_calling():
    async def main():
        clock = VirtualClock()
        breaker = CircuitBreaker(
            BreakerConfig(failure_threshold=1, reset_timeout=1e6)
        )
        breaker.on_failure(0.0)
        calls = []

        async def never():
            calls.append(1)
            return "?"

        with pytest.raises(CircuitOpenError):
            await clock.drive(call_with_retry(clock, never, breaker=breaker))
        assert calls == []
        assert breaker.fast_fails >= 1

    run(main())


def test_failure_callback_observes_each_attempt():
    async def main():
        clock = VirtualClock()
        seen = []

        async def dead():
            raise DeadlineExceeded("slow")

        cfg = RetryConfig(attempts=3, base_delay=0.0, jitter=0.0, attempt_timeout=None)
        with pytest.raises(DeadlineExceeded):
            await clock.drive(
                call_with_retry(
                    clock,
                    dead,
                    retry=cfg,
                    on_attempt_failure=lambda k, e: seen.append(k),
                )
            )
        assert seen == [0, 1, 2]

    run(main())
