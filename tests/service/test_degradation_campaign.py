"""The acceptance campaign: every scheme through :class:`CacheNode`
under scripted IR-feed and L2 outages, on virtual time.

Three properties, straight from the paper's client contract:

* **Strict staleness** — every answer the node serves *unflagged* is
  certified fresh by the oracle analog: the origin's append-only
  :class:`~repro.db.UpdateLog` shows no update to the item in
  ``(answer.ts, answer.tlb]``.  Served-stale answers only ever carry
  the SWR or degraded flag.
* **Salvage, not purge** — the IR gap (120 s) sits inside the window
  (200 s), so on reconnect every window/BS scheme must re-certify its
  cache instead of dropping it (``full_drops == 0``).  AT is amnesic
  by design and legitimately drops.
* **Determinism** — the full campaign transcript (answers, refusals,
  session + metrics snapshots) is byte-identical across repeat runs
  of the same seed.
"""

import asyncio
import json

import pytest

from repro.chaos import OutageSchedule
from repro.des.rng import RandomStream
from repro.schemes import available_schemes
from repro.service import (
    CacheNode,
    FlakyBackend,
    FlakyBroker,
    InMemoryBackend,
    InMemoryBroker,
    NodeConfig,
    Origin,
    RetryConfig,
    ServiceError,
    ServiceParams,
    SWRConfig,
    VirtualClock,
)

PARAMS = ServiceParams(
    broadcast_interval=20.0,
    window_intervals=10,  # window = 200 s
    db_size=64,
    cache_capacity=32,
    seed=11,
)

FAST_RETRY = RetryConfig(attempts=2, base_delay=0.05, jitter=0.0, attempt_timeout=0.5)

HORIZON = 900.0
IR_OUTAGE = (300.0, 420.0)  # 6 reports lost; gap < window: salvageable
L2_OUTAGE = (600.0, 660.0)  # disjoint from the IR outage

#: Schemes whose reconnect rule certifies the survivors instead of
#: purging when the gap is window/BS-covered.  AT is amnesic (drops by
#: design past one missed report); SIG diagnoses per-item and is
#: asserted on staleness only.
SALVAGE_SCHEMES = {"ts", "bs", "afw", "aaw", "checking", "gcore"}


def _times(offset, stride, horizon):
    out = []
    t = offset
    while t < horizon:
        out.append(round(t, 6))
        t += stride
    return out


async def _campaign(scheme, swr=None):
    """Run one node through the outage script; return the transcript."""
    clock = VirtualClock()
    ir_outage = OutageSchedule.scripted(IR_OUTAGE, name="ir")
    l2_outage = OutageSchedule.scripted(L2_OUTAGE, name="l2")
    broker = FlakyBroker(InMemoryBroker(), clock, outage=ir_outage)
    origin = Origin(scheme, PARAMS, clock=clock, broker=broker)
    backend = FlakyBackend(InMemoryBackend(origin), clock, outage=l2_outage)
    node = CacheNode(
        scheme,
        PARAMS,
        backend=backend,
        broker=broker,
        clock=clock,
        config=NodeConfig(retry=FAST_RETRY, deadline=0.5, swr=swr),
    )
    await node.start()
    origin_task = asyncio.get_running_loop().create_task(origin.run())

    queries = RandomStream(PARAMS.seed, "campaign/queries")
    updates = RandomStream(PARAMS.seed, "campaign/updates")
    events = sorted(
        [(t, "q") for t in _times(5.0, 7.0, HORIZON)]
        + [(t, "u") for t in _times(3.0, 15.0, HORIZON)]
    )

    answers = []
    refusals = {}
    served_stale = 0
    for t, kind in events:
        if clock.now() < t:
            await clock.run_until(t)
        if kind == "u":
            origin.apply_update(
                int(updates.uniform(0.0, PARAMS.db_size)) % PARAMS.db_size
            )
            continue
        item = int(queries.uniform(0.0, PARAMS.db_size)) % PARAMS.db_size
        try:
            a = await clock.drive(node.get(item))
        except ServiceError as exc:
            kindname = type(exc).__name__
            refusals[kindname] = refusals.get(kindname, 0) + 1
            answers.append({"t": t, "item": item, "refused": kindname})
            continue
        if a.stale:
            served_stale += 1
            # Served-stale is only ever explicitly flagged degraded/SWR.
            assert a.source in ("l1-swr", "l1-degraded"), (scheme, t, a)
        else:
            # The strict-staleness oracle analog: no update landed in
            # (answer.ts, answer.tlb] or the serve was provably stale.
            assert not origin.update_log.updated_in(
                a.item, after=a.ts, up_to=a.tlb
            ), (scheme, t, a)
        answers.append(
            {
                "t": t,
                "item": item,
                "source": a.source,
                "stale": a.stale,
                "version": a.version,
                "ts": round(a.ts, 6),
                "tlb": round(a.tlb, 6),
            }
        )

    origin.stop()
    origin_task.cancel()
    health = node.health()
    transcript = {
        "scheme": scheme,
        "answers": answers,
        "refusals": refusals,
        "served_stale": served_stale,
        "session": node.session.snapshot(),
        "metrics": node.metrics.snapshot(),
        "health_state": health.state,
        "full_drops": node.session.cache.full_drops,
        "reports_lost": broker.reports_lost,
        "origin_reports": origin.reports_published,
        "origin_updates": origin.updates_applied,
    }
    await node.stop()
    return transcript


def run_campaign(scheme, swr=None):
    return asyncio.run(_campaign(scheme, swr=swr))


@pytest.mark.parametrize("scheme", available_schemes())
def test_campaign_certified_salvaging_and_byte_identical(scheme):
    first = run_campaign(scheme)

    # The script actually exercised the failure modes.
    assert first["reports_lost"] >= 6
    assert first["metrics"].get("ir.feed_losses", 0) >= 1
    assert first["health_state"] == "live"  # reconnected and re-certified
    served = [a for a in first["answers"] if "source" in a]
    assert served, "campaign produced no served answers"

    if scheme in SALVAGE_SCHEMES:
        # Window (200 s) covers the 120 s gap: salvage, never purge.
        assert first["full_drops"] == 0, first["session"]
    if scheme == "at":
        # Amnesic by construction: the gap forces at least one drop.
        assert first["full_drops"] >= 1

    # The L2 outage was felt (degraded serves and/or refusals) and the
    # node kept answering from certified L1 where it could.
    in_l2_outage = [
        a for a in first["answers"] if L2_OUTAGE[0] <= a["t"] < L2_OUTAGE[1]
    ]
    assert in_l2_outage
    degraded_or_refused = first["refusals"] or any(
        a.get("stale") for a in in_l2_outage
    )
    l1_during_outage = any(a.get("source") == "l1" for a in in_l2_outage)
    assert degraded_or_refused or l1_during_outage

    # Byte-identical repeat run of the same seed.
    second = run_campaign(scheme)
    blob1 = json.dumps(first, sort_keys=True)
    blob2 = json.dumps(second, sort_keys=True)
    assert blob1 == blob2


@pytest.mark.parametrize("scheme", ["ts", "checking"])
def test_campaign_with_swr_flags_every_stale_serve(scheme):
    """With SWR timers on, stale serves happen — and every one is
    flagged ``l1-swr`` while refreshes restore unflagged service.
    The oracle assertions inside the campaign still gate every
    unflagged answer, so SWR composes with IR without leaking."""
    swr = SWRConfig(freshness_seconds=60.0, expiry_seconds=10_000.0)
    t = run_campaign(scheme, swr=swr)
    assert t["served_stale"] > 0
    flagged = [a for a in t["answers"] if a.get("stale")]
    assert flagged and all(a["source"] == "l1-swr" for a in flagged)
    assert t["metrics"].get("swr.refreshes", 0) > 0
    # Determinism holds for the SWR variant too.
    assert json.dumps(t, sort_keys=True) == json.dumps(
        run_campaign(scheme, swr=swr), sort_keys=True
    )
