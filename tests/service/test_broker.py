"""In-memory broker: fan-out, bounded backlog, shed accounting, close."""

import asyncio

import pytest

from repro.reports.window import WindowReport
from repro.service import InMemoryBroker, Subscription


def report(ts):
    return WindowReport(timestamp=ts, window_start=ts - 200.0, items={}, n_items=10)


def run(coro):
    return asyncio.run(coro)


def test_publish_fans_out_to_every_subscription():
    async def main():
        broker = InMemoryBroker()
        a = broker.broker_subscribe()
        b = broker.broker_subscribe()
        await broker.broker_publish(report(20.0))
        assert (await a.next_report()).timestamp == 20.0
        assert (await b.next_report()).timestamp == 20.0
        assert broker.published == 1
        assert broker.broker_subscriber_count() == 2

    run(main())


def test_bounded_backlog_sheds_oldest_and_counts():
    async def main():
        broker = InMemoryBroker()
        sub = broker.broker_subscribe(maxlen=2)
        for ts in (20.0, 40.0, 60.0):
            await broker.broker_publish(report(ts))
        assert sub.dropped == 1
        assert sub.backlog == 2
        # Consumer sees the *newest* two: the shed one is the oldest,
        # exactly like wireless IR loss of the report it slept through.
        assert (await sub.next_report()).timestamp == 40.0
        assert (await sub.next_report()).timestamp == 60.0

    run(main())


def test_next_report_blocks_until_publish():
    async def main():
        broker = InMemoryBroker()
        sub = broker.broker_subscribe()
        waiter = asyncio.ensure_future(sub.next_report())
        await asyncio.sleep(0)
        assert not waiter.done()
        await broker.broker_publish(report(20.0))
        assert (await waiter).timestamp == 20.0

    run(main())


def test_close_wakes_blocked_consumer_with_none():
    async def main():
        broker = InMemoryBroker()
        sub = broker.broker_subscribe()
        waiter = asyncio.ensure_future(sub.next_report())
        await asyncio.sleep(0)
        sub.close()
        assert await waiter is None
        assert broker.broker_subscriber_count() == 0
        # Publishing to a closed subscription is a silent no-op.
        await broker.broker_publish(report(20.0))
        assert sub.backlog == 0

    run(main())


def test_close_drains_backlog_first():
    async def main():
        broker = InMemoryBroker()
        sub = broker.broker_subscribe()
        await broker.broker_publish(report(20.0))
        sub.close()
        assert (await sub.next_report()).timestamp == 20.0
        assert await sub.next_report() is None

    run(main())


def test_subscription_depth_validation():
    with pytest.raises(ValueError):
        Subscription(maxlen=0)
