"""Legacy shim so editable installs work offline (no `wheel` package).

`pip install -e .` needs bdist_wheel under PEP 660; this environment has no
network to fetch it, so `python setup.py develop` (or `pip install -e .
--config-settings editable_mode=compat`) provides the fallback.
Configuration lives in pyproject.toml.
"""

from setuptools import setup

setup()
