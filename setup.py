"""Build shim: editable-install fallback + opt-in mypyc kernel build.

`pip install -e .` needs bdist_wheel under PEP 660; this environment has no
network to fetch it, so `python setup.py develop` (or `pip install -e .
--config-settings editable_mode=compat`) provides the fallback.
Configuration lives in pyproject.toml.

Compiled kernel tier
--------------------

``REPRO_COMPILE=1 pip install .`` compiles the strict-mypy tier
(``repro.des``, ``repro.reports``, ``repro.cache``) with mypyc.  The
default build stays pure python — mypy/mypyc is only needed when the
flag is set (CI's ``compiled-smoke`` job exercises it).  At runtime the
compiled extensions shadow the ``.py`` sources transparently;
``REPRO_PURE_PYTHON=1`` forces the sources back (see
``repro/_backend.py`` and ``repro/_purity.py``).
"""

import os

from setuptools import setup

#: Strict-tier modules compiled when REPRO_COMPILE=1.  Deliberately NOT
#: everything under the tier:
#:   * ``__init__.py`` files stay interpreted so packages keep normal
#:     import semantics and the REPRO_PURE_PYTHON source-only finder can
#:     reroute their submodules;
#:   * ``des/_backend.py`` stays interpreted — it decides between the
#:     compiled and interpreted builds, so it cannot live inside either;
#:   * ``des/rng.py`` is numpy-bound (no hot pure-python arithmetic);
#:   * ``des/trace.py`` and ``cache/entry.py`` use
#:     ``@dataclass(slots=True)``, which mypyc does not support.
MYPYC_MODULES = [
    "src/repro/des/environment.py",
    "src/repro/des/errors.py",
    "src/repro/des/event.py",
    "src/repro/des/monitor.py",
    "src/repro/des/process.py",
    "src/repro/des/queues.py",
    "src/repro/des/resource.py",
    "src/repro/des/soa_heap.py",
    "src/repro/cache/client_cache.py",
    "src/repro/cache/lru.py",
    "src/repro/reports/amnesic.py",
    "src/repro/reports/base.py",
    "src/repro/reports/bitseq.py",
    "src/repro/reports/signatures.py",
    "src/repro/reports/sizes.py",
    "src/repro/reports/window.py",
]


def _ext_modules():
    if os.environ.get("REPRO_COMPILE", "") in ("", "0"):
        return []
    from mypyc.build import mypycify

    return mypycify(MYPYC_MODULES, opt_level="3")


setup(ext_modules=_ext_modules())
