"""Per-figure experiment definitions for the paper's evaluation (Figs 5-16).

Every figure is a :class:`FigureSpec`: a workload, one swept parameter,
fixed parameter overrides, and the metric its y-axis plots.  The specs
carry the paper's exact x-values; the simulation *scale* (length, client
count) is chosen separately so benches finish in seconds while
``REPRO_SCALE=full`` reproduces Table 1's scale.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..schemes.registry import EVALUATED_SCHEMES
from ..sim.params import SystemParams

#: Metric accessor names on SimulationResult.
THROUGHPUT = "queries_answered"
UPLINK_COST = "uplink_cost_per_query"


@dataclass(frozen=True)
class Scale:
    """Simulation size knobs decoupled from the swept science parameters."""

    name: str
    simulation_time: float
    n_clients: int

    def apply(self, params: SystemParams) -> SystemParams:
        return params.with_(
            simulation_time=self.simulation_time, n_clients=self.n_clients
        )


#: Fast scale for benches/tests: 600 broadcast intervals, 80 clients —
#: enough offered load to keep the downlink saturated (the regime the
#: paper measures throughput in) at ~1/10 the full event count.
BENCH_SCALE = Scale(name="bench", simulation_time=12_000.0, n_clients=80)
#: The paper's Table 1 scale.
FULL_SCALE = Scale(name="full", simulation_time=100_000.0, n_clients=100)


def scale_from_env(default: Scale = BENCH_SCALE) -> Scale:
    """Pick the scale from ``REPRO_SCALE`` (``bench`` or ``full``)."""
    name = os.environ.get("REPRO_SCALE", default.name).lower()
    if name == "full":
        return FULL_SCALE
    if name == "bench":
        return BENCH_SCALE
    raise ValueError(f"REPRO_SCALE must be 'bench' or 'full', not {name!r}")


@dataclass(frozen=True)
class FigureSpec:
    """One figure of the paper's evaluation section."""

    figure_id: str                 # e.g. "fig05"
    title: str
    workload: str                  # "uniform" | "hotcold"
    sweep_param: str               # SystemParams field name
    sweep_values: Tuple[float, ...]
    metric: str                    # THROUGHPUT or UPLINK_COST
    fixed: Dict[str, float] = field(default_factory=dict)
    schemes: Tuple[str, ...] = EVALUATED_SCHEMES
    x_label: str = ""
    expected_shape: str = ""       # documented expectation, used in benches

    def params_for(self, x: float, scale: Scale, seed: int = 0) -> SystemParams:
        """Concrete parameters for one sweep point."""
        overrides = dict(self.fixed)
        overrides[self.sweep_param] = x
        overrides["seed"] = seed
        params = SystemParams(**overrides)
        return scale.apply(params)


_DB_SWEEP = (1000, 10_000, 20_000, 40_000, 60_000, 80_000)
_P_SWEEP = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8)
_DISC_SWEEP_SHORT = (200, 400, 800, 1200, 1600, 2000)
_DISC_SWEEP_LONG = (200, 1000, 2000, 4000, 6000, 8000)
_UPLINK_SWEEP = (100, 200, 300, 400, 600, 800, 1000)

FIGURES: Dict[str, FigureSpec] = {}


def _register(spec: FigureSpec):
    FIGURES[spec.figure_id] = spec


_register(FigureSpec(
    figure_id="fig05",
    title="UNIFORM: throughput vs database size",
    workload="uniform",
    sweep_param="db_size",
    sweep_values=_DB_SWEEP,
    metric=THROUGHPUT,
    fixed=dict(disconnect_prob=0.1, disconnect_time_mean=4000.0,
               buffer_fraction=0.02),
    x_label="Database Size",
    expected_shape="BS falls sharply with db size; others stay level, "
                   "checking >= AAW >= AFW",
))

_register(FigureSpec(
    figure_id="fig06",
    title="UNIFORM: uplink cost vs database size",
    workload="uniform",
    sweep_param="db_size",
    sweep_values=_DB_SWEEP,
    metric=UPLINK_COST,
    fixed=dict(disconnect_prob=0.1, disconnect_time_mean=4000.0,
               buffer_fraction=0.02),
    x_label="Database Size",
    expected_shape="BS = 0; adaptive low and flat; checking high and growing",
))

_register(FigureSpec(
    figure_id="fig07",
    title="UNIFORM: throughput vs disconnection probability",
    workload="uniform",
    sweep_param="disconnect_prob",
    sweep_values=_P_SWEEP,
    metric=THROUGHPUT,
    fixed=dict(db_size=10_000, disconnect_time_mean=400.0,
               buffer_fraction=0.02),
    x_label="Probability of Disconnection in an Interval",
    expected_shape="mild decline with p; BS lowest throughout",
))

_register(FigureSpec(
    figure_id="fig08",
    title="UNIFORM: uplink cost vs disconnection probability",
    workload="uniform",
    sweep_param="disconnect_prob",
    sweep_values=_P_SWEEP,
    metric=UPLINK_COST,
    fixed=dict(db_size=10_000, disconnect_time_mean=400.0,
               buffer_fraction=0.02),
    x_label="Probability of Disconnection in an Interval",
    expected_shape="costs grow with p; checking >> adaptive; BS = 0",
))

_register(FigureSpec(
    figure_id="fig09",
    title="UNIFORM: throughput vs mean disconnection time",
    workload="uniform",
    sweep_param="disconnect_time_mean",
    sweep_values=_DISC_SWEEP_SHORT,
    metric=THROUGHPUT,
    fixed=dict(db_size=10_000, disconnect_prob=0.1, buffer_fraction=0.01),
    x_label="Mean Disconnection Time",
    expected_shape="mild decline; BS lowest",
))

_register(FigureSpec(
    figure_id="fig10",
    title="UNIFORM: uplink cost vs mean disconnection time",
    workload="uniform",
    sweep_param="disconnect_time_mean",
    sweep_values=_DISC_SWEEP_LONG,
    metric=UPLINK_COST,
    fixed=dict(db_size=10_000, disconnect_prob=0.1, buffer_fraction=0.01),
    x_label="Mean Disconnection Time",
    expected_shape="checking >> adaptive; BS = 0",
))

_register(FigureSpec(
    figure_id="fig11",
    title="HOTCOLD: throughput vs database size",
    workload="hotcold",
    sweep_param="db_size",
    sweep_values=_DB_SWEEP,
    metric=THROUGHPUT,
    fixed=dict(disconnect_prob=0.1, disconnect_time_mean=400.0,
               buffer_fraction=0.02),
    x_label="Database Size",
    expected_shape="depressed below db~5000 (cache smaller than hot set); "
                   "checking best, AAW second, AFW third, BS worst",
))

_register(FigureSpec(
    figure_id="fig12",
    title="HOTCOLD: uplink cost vs database size",
    workload="hotcold",
    sweep_param="db_size",
    sweep_values=_DB_SWEEP,
    metric=UPLINK_COST,
    fixed=dict(disconnect_prob=0.1, disconnect_time_mean=400.0,
               buffer_fraction=0.02),
    x_label="Database Size",
    expected_shape="like fig06: BS = 0, adaptive low, checking grows",
))

_register(FigureSpec(
    figure_id="fig13",
    title="HOTCOLD: throughput vs disconnection probability",
    workload="hotcold",
    sweep_param="disconnect_prob",
    sweep_values=_P_SWEEP,
    metric=THROUGHPUT,
    fixed=dict(db_size=10_000, disconnect_time_mean=400.0,
               buffer_fraction=0.02),
    x_label="Probability of Disconnection in an Interval",
    expected_shape="like fig07 with higher absolute throughput (caching pays)",
))

_register(FigureSpec(
    figure_id="fig14",
    title="HOTCOLD: uplink cost vs disconnection probability",
    workload="hotcold",
    sweep_param="disconnect_prob",
    sweep_values=_P_SWEEP,
    metric=UPLINK_COST,
    fixed=dict(db_size=10_000, disconnect_time_mean=400.0,
               buffer_fraction=0.02),
    x_label="Probability of Disconnection in an Interval",
    expected_shape="like fig08",
))

_register(FigureSpec(
    figure_id="fig15",
    title="Asymmetric: UNIFORM throughput vs uplink bandwidth",
    workload="uniform",
    sweep_param="uplink_bps",
    sweep_values=_UPLINK_SWEEP,
    metric=THROUGHPUT,
    fixed=dict(db_size=5000, disconnect_prob=0.1,
               disconnect_time_mean=4000.0, buffer_fraction=0.02),
    x_label="Uplink Bandwidth (bits/second)",
    expected_shape="below ~200 bps the adaptive methods beat checking "
                   "(crossover)",
))

_register(FigureSpec(
    figure_id="fig16",
    title="Asymmetric: HOTCOLD throughput vs uplink bandwidth",
    workload="hotcold",
    sweep_param="uplink_bps",
    sweep_values=_UPLINK_SWEEP,
    metric=THROUGHPUT,
    fixed=dict(db_size=5000, disconnect_prob=0.1,
               disconnect_time_mean=4000.0, buffer_fraction=0.02),
    x_label="Uplink Bandwidth (bits/second)",
    expected_shape="same crossover as fig15, higher absolutes",
))


def figure_ids() -> List[str]:
    """All defined figure ids, in paper order."""
    return sorted(FIGURES)


def get_figure(figure_id: str) -> FigureSpec:
    """Look up a figure spec."""
    try:
        return FIGURES[figure_id]
    except KeyError:
        raise KeyError(f"unknown figure {figure_id!r}; have {figure_ids()}")
