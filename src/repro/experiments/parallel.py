"""Process-parallel execution of figure sweeps.

Every (scheme, sweep-point) cell is an independent, deterministic
simulation — embarrassingly parallel.  This module fans the cells of a
figure out over a process pool; results are bit-identical to the serial
path because all randomness derives from named, seed-addressed streams
(`repro.des.rng`), never from process state.

``workers="auto"`` (the default everywhere: the CLI, the figure benches)
sizes the pool from ``os.cpu_count()``; on a single-core box it degrades
to the inline serial path, so callers never pay pool start-up for
nothing.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence, Tuple, Union

from ..sim.metrics import SimulationResult
from ..sim.runner import run_simulation
from .figures import Scale, get_figure
from .sweep import FigureResult

Workers = Union[int, str]


def resolve_workers(workers: Workers) -> int:
    """Turn a worker count or ``"auto"`` into a concrete pool size.

    ``"auto"`` uses every core the box reports (sweep cells are
    CPU-bound, near-equal-cost simulations — there is nothing to gain
    from oversubscription).
    """
    if workers == "auto":
        return os.cpu_count() or 1
    if not isinstance(workers, int) or isinstance(workers, bool):
        raise ValueError(f"workers must be an int or 'auto', got {workers!r}")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    return workers


def sweep_chunksize(n_cells: int, workers: int) -> int:
    """Pool chunksize tuned for the many-small-cells sweep shape.

    Cells are numerous and individually short, so per-task IPC matters;
    but cost still varies by scheme/sweep point, so chunks must stay
    small enough to balance.  Four waves per worker is the usual
    compromise.
    """
    return max(1, n_cells // (workers * 4))


def _run_cell(
    args: Tuple[str, str, float, str, float, int, int]
) -> Tuple[str, float, SimulationResult]:
    """Worker entry point (module-level so it pickles)."""
    figure_id, scheme, x, scale_name, sim_time, n_clients, seed = args
    spec = get_figure(figure_id)
    scale = Scale(name=scale_name, simulation_time=sim_time, n_clients=n_clients)
    params = spec.params_for(x, scale, seed=seed)
    result = run_simulation(params, spec.workload, scheme)
    return scheme, x, result


def run_figure_parallel(
    figure_id: str,
    scale: Scale,
    seed: int = 0,
    points: Optional[Sequence[float]] = None,
    schemes: Optional[Sequence[str]] = None,
    workers: Workers = "auto",
) -> FigureResult:
    """Regenerate one figure with cells fanned over *workers* processes.

    Returns the same :class:`FigureResult` as
    :func:`repro.experiments.sweep.run_figure` with identical numbers
    (deterministic per cell); only wall-clock differs.
    """
    n_workers = resolve_workers(workers)
    spec = get_figure(figure_id)
    xs = list(points if points is not None else spec.sweep_values)
    scheme_names = list(schemes if schemes is not None else spec.schemes)
    cells = [
        (figure_id, scheme, x, scale.name, scale.simulation_time,
         scale.n_clients, seed)
        for scheme in scheme_names
        for x in xs
    ]
    out = FigureResult(spec=spec, scale=scale, xs=xs)
    collected: dict = {}
    if n_workers == 1:
        results = list(map(_run_cell, cells))
    else:
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            results = list(
                pool.map(
                    _run_cell,
                    cells,
                    chunksize=sweep_chunksize(len(cells), n_workers),
                )
            )
    for scheme, x, result in results:
        collected[(scheme, x)] = result
    for scheme in scheme_names:
        series: List[float] = []
        per_scheme: List[SimulationResult] = []
        for x in xs:
            result = collected[(scheme, x)]
            per_scheme.append(result)
            series.append(float(getattr(result, spec.metric)))
        out.series[scheme] = series
        out.results[scheme] = per_scheme
    return out
