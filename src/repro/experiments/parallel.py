"""Process-parallel execution of figure sweeps.

Every (scheme, sweep-point) cell is an independent, deterministic
simulation — embarrassingly parallel.  This module fans the cells of a
figure out over a process pool; results are bit-identical to the serial
path because all randomness derives from named, seed-addressed streams
(`repro.des.rng`), never from process state.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence, Tuple

from ..sim.metrics import SimulationResult
from ..sim.runner import run_simulation
from .figures import Scale, get_figure
from .sweep import FigureResult


def _run_cell(
    args: Tuple[str, str, float, str, float, int, int]
) -> Tuple[str, float, SimulationResult]:
    """Worker entry point (module-level so it pickles)."""
    figure_id, scheme, x, scale_name, sim_time, n_clients, seed = args
    spec = get_figure(figure_id)
    scale = Scale(name=scale_name, simulation_time=sim_time, n_clients=n_clients)
    params = spec.params_for(x, scale, seed=seed)
    result = run_simulation(params, spec.workload, scheme)
    return scheme, x, result


def run_figure_parallel(
    figure_id: str,
    scale: Scale,
    seed: int = 0,
    points: Optional[Sequence[float]] = None,
    schemes: Optional[Sequence[str]] = None,
    workers: int = 2,
) -> FigureResult:
    """Regenerate one figure with cells fanned over *workers* processes.

    Returns the same :class:`FigureResult` as
    :func:`repro.experiments.sweep.run_figure` with identical numbers
    (deterministic per cell); only wall-clock differs.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    spec = get_figure(figure_id)
    xs = list(points if points is not None else spec.sweep_values)
    scheme_names = list(schemes if schemes is not None else spec.schemes)
    cells = [
        (figure_id, scheme, x, scale.name, scale.simulation_time,
         scale.n_clients, seed)
        for scheme in scheme_names
        for x in xs
    ]
    out = FigureResult(spec=spec, scale=scale, xs=xs)
    collected: dict = {}
    if workers == 1:
        results = map(_run_cell, cells)
    else:
        pool = ProcessPoolExecutor(max_workers=workers)
        try:
            results = list(pool.map(_run_cell, cells))
        finally:
            pool.shutdown()
    for scheme, x, result in results:
        collected[(scheme, x)] = result
    for scheme in scheme_names:
        series: List[float] = []
        per_scheme: List[SimulationResult] = []
        for x in xs:
            result = collected[(scheme, x)]
            per_scheme.append(result)
            series.append(float(getattr(result, spec.metric)))
        out.series[scheme] = series
        out.results[scheme] = per_scheme
    return out
