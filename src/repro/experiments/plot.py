"""ASCII charts of regenerated figures.

Renders a :class:`~repro.experiments.sweep.FigureResult` as a terminal
line chart — the closest offline equivalent of the paper's gnuplot
figures.  Each scheme gets a marker character; overlapping points show
``*``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

#: Marker per scheme key (falls back to digits for custom schemes).
MARKERS = {
    "aaw": "a",
    "afw": "f",
    "checking": "c",
    "bs": "b",
    "ts": "t",
    "at": "m",
    "sig": "s",
    "gcore": "g",
}


def _marker_for(scheme: str, taken: set) -> str:
    mark = MARKERS.get(scheme)
    if mark is None or mark in taken:
        for candidate in "0123456789":
            if candidate not in taken:
                mark = candidate
                break
    taken.add(mark)
    return mark


def ascii_chart(
    xs: Sequence[float],
    series: Dict[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    y_label: str = "",
    x_label: str = "",
) -> str:
    """Render *series* over *xs* as an ASCII line chart.

    The y-axis starts at 0 (the paper's figures mostly do) and the
    x-positions are spread evenly (the paper's sweeps are near-uniform
    in x).  Returns a multi-line string.
    """
    if width < 16 or height < 4:
        raise ValueError("chart too small to draw")
    if not xs or not series:
        raise ValueError("nothing to plot")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(f"series {name!r} length mismatch")
    y_max = max(max(ys) for ys in series.values())
    if y_max <= 0:
        y_max = 1.0
    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    taken: set = set()
    legend: List[str] = []
    n = len(xs)
    for scheme, ys in series.items():
        mark = _marker_for(scheme, taken)
        legend.append(f"{mark} = {scheme}")
        for i, y in enumerate(ys):
            col = 0 if n == 1 else round(i * (width - 1) / (n - 1))
            row = height - 1 - round((y / y_max) * (height - 1))
            row = min(max(row, 0), height - 1)
            cell = grid[row][col]
            grid[row][col] = mark if cell == " " else "*"

    lines: List[str] = []
    if y_label:
        lines.append(f"{y_label}  (y max = {y_max:g})")
    for r, row in enumerate(grid):
        if r == 0:
            edge = f"{y_max:>9.3g} |"
        elif r == height - 1:
            edge = f"{0:>9g} |"
        else:
            edge = " " * 9 + " |"
        lines.append(edge + "".join(row))
    lines.append(" " * 10 + "+" + "-" * width)
    x_left = f"{xs[0]:g}"
    x_right = f"{xs[-1]:g}"
    pad = width - len(x_left) - len(x_right)
    lines.append(" " * 11 + x_left + " " * max(1, pad) + x_right)
    if x_label:
        lines.append(" " * 11 + x_label)
    lines.append("  " + "   ".join(legend))
    return "\n".join(lines)


def chart_figure(result, width: int = 64, height: int = 16) -> str:
    """ASCII chart of a :class:`FigureResult` with labels from its spec."""
    return ascii_chart(
        result.xs,
        result.series,
        width=width,
        height=height,
        y_label=result.spec.metric,
        x_label=result.spec.sweep_param,
    )
