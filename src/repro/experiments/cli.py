"""Command-line entry point: regenerate the paper's figures.

Usage::

    repro-experiments --figure fig05
    repro-experiments --all --scale full
    repro-experiments --list
"""

from __future__ import annotations

import argparse
import sys
import time

from .figures import BENCH_SCALE, FULL_SCALE, figure_ids, get_figure
from .parallel import run_figure_parallel
from .tables import format_figure, format_legend


def _workers_arg(value: str):
    """``--workers`` accepts a positive integer or ``auto`` (cpu_count)."""
    if value == "auto":
        return value
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"workers must be an integer or 'auto', got {value!r}"
        ) from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate figures from 'Adaptive Cache Invalidation "
        "Methods in Mobile Environments' (HPDC 1997).",
    )
    parser.add_argument(
        "--figure",
        action="append",
        dest="figures",
        metavar="FIG",
        help="figure id (e.g. fig05); may repeat",
    )
    parser.add_argument("--all", action="store_true", help="run every figure")
    parser.add_argument("--list", action="store_true", help="list figures")
    parser.add_argument(
        "--scale",
        choices=("bench", "full"),
        default="bench",
        help="bench = 20000 s / 40 clients; full = Table 1 scale",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--output",
        metavar="DIR",
        help="also save each regenerated figure as DIR/<fig>.json",
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="render each figure as an ASCII chart too",
    )
    parser.add_argument(
        "--strict-staleness",
        action="store_true",
        help="fail (exit 1) if any sweep cell served a stale cache hit "
        "or broke the liveness ledger (the repro.chaos safety oracle)",
    )
    parser.add_argument(
        "--workers",
        type=_workers_arg,
        default="auto",
        metavar="N",
        help="fan sweep cells over N processes, or 'auto' for cpu_count "
        "(default; results are identical at any worker count)",
    )
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list:
        for fid in figure_ids():
            spec = get_figure(fid)
            print(f"{fid}: {spec.title}")
        return 0
    targets = list(args.figures or [])
    if args.all:
        targets = figure_ids()
    if not targets:
        print("nothing to do; use --figure, --all or --list", file=sys.stderr)
        return 2
    scale = FULL_SCALE if args.scale == "full" else BENCH_SCALE
    print("scheme legend:")
    print(format_legend())
    violations = []
    for fid in targets:
        # perf_counter: monotonic, immune to NTP/wall-clock steps.  (The
        # experiments layer is exempt from DET001 by path, not because
        # wall-clock reads are harmless in elapsed-time math.)
        started = time.perf_counter()
        result = run_figure_parallel(
            fid, scale=scale, seed=args.seed, workers=args.workers
        )
        print()
        print(format_figure(result))
        if args.plot:
            from .plot import chart_figure

            print()
            print(chart_figure(result))
        print(f"  [{time.perf_counter() - started:.1f} s wall]")
        if args.output:
            from .io import save_figure_result

            written = save_figure_result(result, f"{args.output}/{fid}.json")
            print(f"  saved {written}")
        if args.strict_staleness:
            for scheme in result.results:
                stale = result.stale_hits_of(scheme)
                verdict = result.oracle_verdict_of(scheme)
                if stale or verdict != "SAFE":
                    violations.append(
                        f"{fid}/{scheme}: {stale:.0f} stale hits, "
                        f"oracle {verdict}"
                    )
    if violations:
        print("strict staleness check FAILED:", file=sys.stderr)
        for line in violations:
            print(f"  {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
