"""Experiment harness: figure specs, sweeps, and text rendering."""

from .figures import (
    BENCH_SCALE,
    FIGURES,
    FULL_SCALE,
    FigureSpec,
    Scale,
    THROUGHPUT,
    UPLINK_COST,
    figure_ids,
    get_figure,
    scale_from_env,
)
from .io import (
    figure_result_to_dict,
    load_figure_result,
    save_figure_result,
)
from .parallel import run_figure_parallel
from .plot import ascii_chart, chart_figure
from .sweep import FigureResult, run_figure
from .tables import DISPLAY_NAMES, format_figure, format_legend

__all__ = [
    "BENCH_SCALE",
    "DISPLAY_NAMES",
    "FIGURES",
    "FULL_SCALE",
    "FigureResult",
    "FigureSpec",
    "Scale",
    "THROUGHPUT",
    "UPLINK_COST",
    "ascii_chart",
    "chart_figure",
    "figure_ids",
    "figure_result_to_dict",
    "load_figure_result",
    "save_figure_result",
    "format_figure",
    "format_legend",
    "get_figure",
    "run_figure",
    "run_figure_parallel",
    "scale_from_env",
]
