"""Serialization of regenerated figures (JSON round-trip).

Lets long sweeps be saved and re-analyzed without re-running them, and
gives the CLI a machine-readable ``--output`` format.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from .figures import Scale, get_figure
from .sweep import FigureResult

FORMAT_VERSION = 1


def figure_result_to_dict(result: FigureResult) -> dict:
    """Flatten a figure result (series only; full per-run raws stay live)."""
    return {
        "version": FORMAT_VERSION,
        "figure_id": result.spec.figure_id,
        "title": result.spec.title,
        "workload": result.spec.workload,
        "metric": result.spec.metric,
        "sweep_param": result.spec.sweep_param,
        "scale": {
            "name": result.scale.name,
            "simulation_time": result.scale.simulation_time,
            "n_clients": result.scale.n_clients,
        },
        "xs": list(result.xs),
        "series": {scheme: list(ys) for scheme, ys in result.series.items()},
    }


def save_figure_result(result: FigureResult, path: Union[str, Path]) -> Path:
    """Write a figure result as JSON; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(figure_result_to_dict(result), indent=2))
    return path


def load_figure_result(path: Union[str, Path]) -> FigureResult:
    """Re-hydrate a saved figure result (per-run raws are not restored)."""
    data = json.loads(Path(path).read_text())
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported figure-result version {data.get('version')!r}"
        )
    spec = get_figure(data["figure_id"])
    if spec.metric != data["metric"] or spec.sweep_param != data["sweep_param"]:
        raise ValueError(
            f"saved result for {data['figure_id']} does not match the "
            "current spec"
        )
    scale = Scale(
        name=data["scale"]["name"],
        simulation_time=data["scale"]["simulation_time"],
        n_clients=data["scale"]["n_clients"],
    )
    result = FigureResult(spec=spec, scale=scale, xs=list(data["xs"]))
    result.series = {k: list(v) for k, v in data["series"].items()}
    return result
