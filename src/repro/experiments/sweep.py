"""Sweep execution: run a figure spec into plottable series."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..sim.metrics import SimulationResult
from ..sim.runner import run_simulation
from .figures import BENCH_SCALE, FigureSpec, Scale


@dataclass
class FigureResult:
    """The regenerated series of one figure.

    ``series[scheme][i]`` is the metric at ``xs[i]``; ``results`` keeps
    the full :class:`SimulationResult` per (scheme, x) for deeper checks.
    """

    spec: FigureSpec
    scale: Scale
    xs: List[float]
    series: Dict[str, List[float]] = field(default_factory=dict)
    results: Dict[str, List[SimulationResult]] = field(default_factory=dict)

    def metric_of(self, scheme: str, x: float) -> float:
        """The y value of *scheme* at sweep point *x*."""
        return self.series[scheme][self.xs.index(x)]

    def mean_of(self, scheme: str) -> float:
        """Mean of a scheme's series across the sweep."""
        values = self.series[scheme]
        return sum(values) / len(values)

    def stale_hits_of(self, scheme: str) -> float:
        """Total stale cache hits of *scheme* across the sweep."""
        return sum(r.stale_hits for r in self.results[scheme])

    def total_stale_hits(self) -> float:
        """Total stale cache hits across every (scheme, x) cell."""
        return sum(self.stale_hits_of(scheme) for scheme in self.results)

    def oracle_verdict_of(self, scheme: str) -> str:
        """Worst oracle verdict of *scheme* across the sweep (SAFE when
        every cell served zero stale reads and balanced its queries)."""
        worst = "SAFE"
        for r in self.results[scheme]:
            verdict = r.oracle_verdict
            if verdict != "SAFE":
                worst = verdict
        return worst


def run_figure(
    spec: FigureSpec,
    scale: Scale = BENCH_SCALE,
    seed: int = 0,
    points: Optional[Sequence[float]] = None,
    schemes: Optional[Sequence[str]] = None,
) -> FigureResult:
    """Regenerate one figure: run every (scheme, x) cell.

    *points*/*schemes* restrict the sweep (useful for smoke tests); the
    defaults use the spec's full definition.
    """
    xs = list(points if points is not None else spec.sweep_values)
    scheme_names = list(schemes if schemes is not None else spec.schemes)
    out = FigureResult(spec=spec, scale=scale, xs=xs)
    for scheme in scheme_names:
        values: List[float] = []
        results: List[SimulationResult] = []
        for x in xs:
            params = spec.params_for(x, scale, seed=seed)
            result = run_simulation(params, spec.workload, scheme)
            results.append(result)
            values.append(float(getattr(result, spec.metric)))
        out.series[scheme] = values
        out.results[scheme] = results
    return out
