"""Text rendering of regenerated figures (the series the paper plots)."""

from __future__ import annotations

from typing import List

from .sweep import FigureResult

#: Paper display names for scheme keys.
DISPLAY_NAMES = {
    "aaw": "adaptive with adjusting window",
    "afw": "adaptive with fixed window",
    "checking": "simple checking",
    "bs": "bit sequences",
    "ts": "TS (no checking)",
    "at": "amnesic terminals",
    "sig": "signatures",
    "gcore": "grouped checking",
}


def format_figure(result: FigureResult, width: int = 12) -> str:
    """Render one figure's series as an aligned text table."""
    spec = result.spec
    lines: List[str] = []
    lines.append(f"{spec.figure_id}: {spec.title}")
    lines.append(
        f"  workload={spec.workload}  metric={spec.metric}  "
        f"scale={result.scale.name} "
        f"(T={result.scale.simulation_time:.0f}s, "
        f"{result.scale.n_clients} clients)"
    )
    if spec.expected_shape:
        lines.append(f"  expected shape: {spec.expected_shape}")
    header = f"  {spec.sweep_param:>20s}"
    for scheme in result.series:
        header += f" {scheme:>{width}s}"
    lines.append(header)
    for i, x in enumerate(result.xs):
        row = f"  {x:>20g}"
        for scheme in result.series:
            row += f" {result.series[scheme][i]:>{width}.2f}"
        lines.append(row)
    if result.results:
        # Safety oracle row: stale hits + verdict per scheme, so a
        # consistency violation can never hide behind a throughput table.
        row = f"  {'stale/oracle':>20s}"
        for scheme in result.series:
            cell = (
                f"{result.stale_hits_of(scheme):.0f}/"
                f"{result.oracle_verdict_of(scheme)}"
            )
            row += f" {cell:>{width}s}"
        lines.append(row)
    return "\n".join(lines)


def format_legend() -> str:
    """Scheme-key legend matching the paper's curve labels."""
    return "\n".join(
        f"  {key:>9s} = {name}" for key, name in DISPLAY_NAMES.items()
    )
