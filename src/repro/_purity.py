"""Source-only import rerouting for ``REPRO_PURE_PYTHON=1``.

When the strict tier has been compiled with mypyc (``REPRO_COMPILE=1``
at install time), extension modules shadow the ``.py`` sources on
``sys.path``.  This module installs a meta-path finder that undoes the
shadowing for the tier packages only: any submodule whose resolved spec
points at an extension is re-resolved to the sibling ``.py`` file, so
the whole tier runs interpreted.  Installed by ``repro/__init__``
*before* any tier import when the environment variable is set; a no-op
on a pure-python install (specs already point at sources).

Specs with no ``.py`` twin (e.g. the shared ``<pkg>__mypyc`` runtime
extension mypyc emits per build group) are left untouched — they are
harmless on their own and only referenced by the compiled modules we
are bypassing.
"""

from __future__ import annotations

import os
import sys
from importlib.machinery import EXTENSION_SUFFIXES, PathFinder, SourceFileLoader
from importlib.util import spec_from_file_location
from types import ModuleType
from typing import Optional, Sequence

#: Package prefixes rerouted to source (the mypyc compilation tier).
PURE_PREFIXES = ("repro.des", "repro.reports", "repro.cache")

_EXT_SUFFIXES = tuple(EXTENSION_SUFFIXES)


class _SourceOnlyFinder:
    """Meta-path finder preferring ``.py`` sources for the strict tier."""

    def find_spec(
        self,
        fullname: str,
        path: Optional[Sequence[str]] = None,
        target: Optional[ModuleType] = None,
    ):
        if not fullname.startswith(PURE_PREFIXES):
            return None
        spec = PathFinder.find_spec(fullname, path)
        if spec is None or not spec.origin:
            return None
        origin = spec.origin
        if not origin.endswith(_EXT_SUFFIXES):
            return spec  # already source (or namespace); use as-is
        for suffix in _EXT_SUFFIXES:
            if origin.endswith(suffix):
                source = origin[: -len(suffix)] + ".py"
                break
        if not os.path.isfile(source):
            return None  # no .py twin (mypyc group runtime lib) - skip
        return spec_from_file_location(
            fullname, source, loader=SourceFileLoader(fullname, source)
        )


def install() -> None:
    """Insert the source-only finder ahead of the default path finder."""
    if not any(isinstance(f, _SourceOnlyFinder) for f in sys.meta_path):
        sys.meta_path.insert(0, _SourceOnlyFinder())
