"""Rule framework: findings, registry, suppression scanning, the runner.

The engine is deliberately tiny: every rule is an AST pass over one
module (:meth:`Rule.check_module`) or over the whole scanned tree at
once (:meth:`Rule.check_project`, for cross-module rules like the import
layering).  Rules self-register via :func:`register_rule`; the CLI in
:mod:`repro.checks.cli` is a thin wrapper over :func:`run_checks`.
"""

from __future__ import annotations

import ast
import enum
import re
from dataclasses import dataclass
from pathlib import Path, PurePosixPath
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
    Union,
)

from .baseline import Baseline


class Severity(enum.Enum):
    """How bad a finding is; both levels currently fail the gate."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is the *package-relative* posix path (``repro/des/event.py``)
    so fingerprints are stable no matter which directory the engine was
    invoked from or on.
    """

    code: str
    path: str
    line: int
    message: str
    severity: Severity = Severity.ERROR

    @property
    def fingerprint(self) -> Tuple[str, str, str]:
        """Baseline identity: deliberately excludes the line number so
        unrelated edits above a grandfathered finding do not unbaseline
        it."""
        return (self.path, self.code, self.message)

    def format(self) -> str:
        where = f"{self.path}:{self.line}"
        return f"{where}: {self.code} [{self.severity.value}] {self.message}"


#: Same-line suppression comments: a hash followed by ``checks: ignore``
#: alone, or with codes — ``checks: ignore[DET001]``,
#: ``checks: ignore[DET001, PERF001]``.  (The examples here spell the
#: comment without its leading hash so this very file does not register
#: phantom suppressions — CHK001 would flag them as unused.)
_SUPPRESS_RE = re.compile(
    r"#\s*checks:\s*ignore(?:\[(?P<codes>[A-Z0-9_,\s]+)\])?"
)


def _scan_suppressions(text: str) -> Dict[int, Optional[FrozenSet[str]]]:
    """Map line number -> suppressed codes (``None`` = every code)."""
    out: Dict[int, Optional[FrozenSet[str]]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if "#" not in line:
            continue
        m = _SUPPRESS_RE.search(line)
        if m is None:
            continue
        codes = m.group("codes")
        if codes is None:
            out[lineno] = None
        else:
            out[lineno] = frozenset(
                c.strip() for c in codes.split(",") if c.strip()
            )
    return out


def package_path_of(path: str) -> str:
    """Normalise *path* to the package-relative form used for scoping.

    ``src/repro/des/event.py`` -> ``repro/des/event.py``; paths that do
    not contain a ``repro`` segment are returned posix-normalised as
    given (fixture trees in the self-tests rely on this).
    """
    parts = PurePosixPath(Path(path).as_posix()).parts
    if "repro" in parts:
        idx = parts.index("repro")
        return "/".join(parts[idx:])
    return "/".join(parts)


class ModuleInfo:
    """One parsed source module plus its suppression table."""

    __slots__ = ("path", "text", "tree", "suppressions")

    def __init__(self, path: str, text: str, tree: ast.AST) -> None:
        self.path = path          # package-relative posix path
        self.text = text
        self.tree = tree
        self.suppressions = _scan_suppressions(text)

    @classmethod
    def from_source(cls, path: str, text: str) -> "ModuleInfo":
        """Parse *text*; raises SyntaxError for the caller to report."""
        return cls(package_path_of(path), text, ast.parse(text))

    def is_suppressed(self, code: str, line: int) -> bool:
        codes = self.suppressions.get(line, ...)
        if codes is ...:
            return False
        return codes is None or code in codes

    @property
    def package(self) -> str:
        """First-level subpackage (``des`` for ``repro/des/event.py``),
        or ``""`` for top-level modules."""
        parts = self.path.split("/")
        if len(parts) >= 3 and parts[0] == "repro":
            return parts[1]
        return ""


class Project:
    """Every module of one engine invocation, for cross-module rules."""

    __slots__ = ("modules", "_by_path", "callgraph_cache")

    def __init__(self, modules: Sequence[ModuleInfo]) -> None:
        self.modules = list(modules)
        self._by_path = {m.path: m for m in self.modules}
        #: Lazily built by :func:`repro.checks.callgraph.build_call_graph`
        #: so the interprocedural rules share one graph per invocation.
        self.callgraph_cache: Optional[object] = None

    def module(self, package_path: str) -> Optional[ModuleInfo]:
        return self._by_path.get(package_path)


class Rule:
    """Base class: subclass, set the class attributes, register.

    ``include``/``exclude`` are fnmatch patterns over the
    package-relative path; an empty ``include`` means every module.
    """

    code: str = ""
    name: str = ""
    description: str = ""
    severity: Severity = Severity.ERROR
    include: Tuple[str, ...] = ()
    exclude: Tuple[str, ...] = ()

    def applies_to(self, package_path: str) -> bool:
        from fnmatch import fnmatch

        if self.include and not any(
            fnmatch(package_path, pat) for pat in self.include
        ):
            return False
        return not any(fnmatch(package_path, pat) for pat in self.exclude)

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        return ()

    def finding(self, module: ModuleInfo, line: int, message: str) -> Finding:
        return Finding(
            code=self.code,
            path=module.path,
            line=line,
            message=message,
            severity=self.severity,
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add *cls* to the rule registry (keyed by code)."""
    if not cls.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if cls.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {cls.code}")
    _REGISTRY[cls.code] = cls
    return cls


def _load_builtin_rules() -> None:
    from . import rules  # noqa: F401  (import registers the rule classes)


def all_rules() -> List[Rule]:
    """One instance of every registered rule, sorted by code."""
    _load_builtin_rules()
    return [_REGISTRY[code]() for code in sorted(_REGISTRY)]


def get_rule(code: str) -> Rule:
    _load_builtin_rules()
    try:
        return _REGISTRY[code]()
    except KeyError:
        raise KeyError(
            f"unknown rule {code!r}; known: {', '.join(sorted(_REGISTRY))}"
        ) from None


#: Pseudo-code for files the engine could not parse at all.
SYNTAX_ERROR_CODE = "CHK000"


def _collect_files(paths: Sequence[str]) -> List[Path]:
    files: List[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.is_file():
            files.append(p)
        else:
            raise FileNotFoundError(raw)
    # De-duplicate while keeping order (overlapping roots).
    seen = set()
    unique = []
    for f in files:
        key = f.resolve()
        if key not in seen:
            seen.add(key)
            unique.append(f)
    return unique


def _parse_one(path_str: str) -> Union[ModuleInfo, Finding]:
    """Read and parse one file (top-level so worker processes can run it)."""
    text = Path(path_str).read_text(encoding="utf-8")
    try:
        return ModuleInfo.from_source(path_str, text)
    except SyntaxError as exc:
        return Finding(
            code=SYNTAX_ERROR_CODE,
            path=package_path_of(path_str),
            line=exc.lineno or 1,
            message=f"could not parse: {exc.msg}",
        )


def _parse_files(
    files: Sequence[Path], jobs: Optional[int]
) -> List[Union[ModuleInfo, Finding]]:
    """Parse *files*, fanning out over processes when ``jobs > 1``.

    ``ModuleInfo`` (slots of str + AST) pickles cleanly; ``map`` keeps
    input order so the run is byte-identical to the serial path.
    """
    paths = [str(f) for f in files]
    if jobs is not None and jobs > 1 and len(paths) > 1:
        from concurrent.futures import ProcessPoolExecutor

        try:
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                return list(pool.map(_parse_one, paths, chunksize=8))
        except (OSError, ImportError):  # no fork/spawn available: fall back
            pass
    return [_parse_one(p) for p in paths]


#: Code for ``checks: ignore`` comments that no longer suppress anything.
UNUSED_SUPPRESSION_CODE = "CHK001"


def _unused_suppressions(
    project: Project,
    used: Set[Tuple[str, int]],
    active_codes: Set[str],
    all_codes: Set[str],
) -> List[Finding]:
    """CHK001 findings for suppression comments that never fired.

    A coded suppression is judged only when *every* code it names ran in
    this invocation (otherwise the un-run rule might have fired); a bare
    ``checks: ignore`` is judged only when the full registry ran.
    """
    judgeable = active_codes - {UNUSED_SUPPRESSION_CODE, SYNTAX_ERROR_CODE}
    full_run = judgeable >= (all_codes - {UNUSED_SUPPRESSION_CODE})
    out: List[Finding] = []
    for module in project.modules:
        for line, codes in sorted(module.suppressions.items()):
            if (module.path, line) in used:
                continue
            if codes is None:
                if not full_run:
                    continue
                detail = "suppresses no finding of any rule"
            else:
                if not codes <= judgeable:
                    continue
                detail = f"suppresses no {', '.join(sorted(codes))} finding"
            out.append(
                Finding(
                    code=UNUSED_SUPPRESSION_CODE,
                    path=module.path,
                    line=line,
                    message=f"unused suppression: {detail}; remove the comment",
                    severity=Severity.WARNING,
                )
            )
    return out


def run_checks(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Baseline] = None,
    jobs: Optional[int] = None,
) -> List[Finding]:
    """Run *rules* (default: all) over *paths*; return surviving findings.

    Suppressed (``checks: ignore[CODE]`` on the finding's line) and
    baselined findings are filtered out.  Unparseable files surface as
    ``CHK000`` findings rather than crashing the run.  ``jobs`` parallelises
    the parse phase over processes (analysis itself stays serial — rules
    share the in-process project/call-graph).
    """
    active = list(rules) if rules is not None else all_rules()
    modules: List[ModuleInfo] = []
    findings: List[Finding] = []
    for parsed in _parse_files(_collect_files(paths), jobs):
        if isinstance(parsed, ModuleInfo):
            modules.append(parsed)
        else:
            findings.append(parsed)
    project = Project(modules)
    for rule in active:
        for module in modules:
            if rule.applies_to(module.path):
                findings.extend(rule.check_module(module))
        findings.extend(rule.check_project(project))

    def suppressed(f: Finding) -> bool:
        mod = project.module(f.path)
        if mod is None:
            return False
        if f.code == UNUSED_SUPPRESSION_CODE:
            # A bare ignore must not shield its own unused-ness finding
            # (it would be unflaggable by construction); only an explicit
            # ``checks: ignore[CHK001]`` opts a line out.
            codes = mod.suppressions.get(f.line)
            return codes is not None and f.code in codes
        return mod.is_suppressed(f.code, f.line)

    def survivors(candidates: Iterable[Finding]) -> List[Finding]:
        kept = []
        for f in candidates:
            if suppressed(f):
                used_suppressions.add((f.path, f.line))
                continue
            if baseline is not None and f.fingerprint in baseline:
                continue
            kept.append(f)
        return kept

    used_suppressions: Set[Tuple[str, int]] = set()
    kept = survivors(findings)
    active_codes = {r.code for r in active}
    if UNUSED_SUPPRESSION_CODE in active_codes:
        _load_builtin_rules()
        kept.extend(
            survivors(
                _unused_suppressions(
                    project, used_suppressions, active_codes, set(_REGISTRY)
                )
            )
        )
    kept.sort(key=lambda f: (f.path, f.line, f.code, f.message))
    return kept
