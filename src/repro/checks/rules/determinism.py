"""Determinism rules: DET001 (wall clock), DET002 (bare randomness),
DET003 (set-iteration ordering hazards).

The simulation's whole correctness story rests on replayability: a
seeded run must be bit-identical across processes and Python versions
(golden tests, parallel==serial pinning, chaos conviction traces).  Wall
clock and unseeded randomness break that silently; set iteration order
is stable only *within* one process, so any set that feeds event
scheduling is a cross-run hazard.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set, Tuple

from ..engine import Finding, ModuleInfo, Rule, Severity, register_rule

#: Subpackages that hold protocol/simulation logic.  ``experiments`` is
#: deliberately exempt *by path*: wall-clock timing of a sweep is fine.
PROTOCOL_PACKAGES = (
    "des",
    "sim",
    "net",
    "schemes",
    "reports",
    "cache",
    "db",
    "chaos",
    "service",
)

_PROTOCOL_GLOBS = tuple(f"repro/{pkg}/*" for pkg in PROTOCOL_PACKAGES)

#: ``time`` module attributes that read the wall/CPU clock.
_BANNED_TIME_ATTRS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "clock",
    }
)

#: ``datetime.datetime`` / ``datetime.date`` constructors that read the
#: wall clock.
_BANNED_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})


def _module_aliases(tree: ast.AST, target: str) -> Set[str]:
    """Names that refer to module *target* (handles ``import x as y``)."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == target:
                    aliases.add(alias.asname or alias.name)
                elif alias.name.startswith(target + ".") and alias.asname is None:
                    # ``import numpy.random`` binds ``numpy``.
                    aliases.add(target)
    return aliases


@register_rule
class WallClockRule(Rule):
    """DET001: no wall-clock reads inside protocol/simulation code.

    Protocol time is ``env.now`` — the event loop's virtual clock.  Any
    ``time.time()``/``datetime.now()``-style read couples behaviour to
    the host machine and destroys replay.
    """

    code = "DET001"
    name = "no-wall-clock"
    description = "wall-clock read inside protocol/simulation code"
    severity = Severity.ERROR
    include = _PROTOCOL_GLOBS

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        tree = module.tree
        time_aliases = _module_aliases(tree, "time")
        datetime_mod_aliases = _module_aliases(tree, "datetime")
        # Classes imported straight from the datetime module.
        datetime_class_aliases: Set[str] = set()
        from_time_names: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in _BANNED_TIME_ATTRS:
                            from_time_names[alias.asname or alias.name] = alias.name
                elif node.module == "datetime":
                    for alias in node.names:
                        if alias.name in ("datetime", "date"):
                            datetime_class_aliases.add(alias.asname or alias.name)
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Attribute):
                value = node.value
                # time.<banned> via a module alias
                if (
                    isinstance(value, ast.Name)
                    and value.id in time_aliases
                    and node.attr in _BANNED_TIME_ATTRS
                ):
                    findings.append(
                        self.finding(
                            module,
                            node.lineno,
                            f"wall-clock read time.{node.attr}: use the "
                            "simulation clock (env.now)",
                        )
                    )
                # datetime.<class>.<banned> or <class-alias>.<banned>
                elif node.attr in _BANNED_DATETIME_ATTRS:
                    if (
                        isinstance(value, ast.Name)
                        and value.id in datetime_class_aliases
                    ) or (
                        isinstance(value, ast.Attribute)
                        and isinstance(value.value, ast.Name)
                        and value.value.id in datetime_mod_aliases
                        and value.attr in ("datetime", "date")
                    ):
                        findings.append(
                            self.finding(
                                module,
                                node.lineno,
                                f"wall-clock read datetime...{node.attr}(): use "
                                "the simulation clock (env.now)",
                            )
                        )
            elif isinstance(node, ast.Name) and node.id in from_time_names:
                if isinstance(node.ctx, ast.Load):
                    findings.append(
                        self.finding(
                            module,
                            node.lineno,
                            f"wall-clock read {from_time_names[node.id]}() "
                            "(imported from time): use the simulation clock",
                        )
                    )
        return findings


@register_rule
class BareRandomnessRule(Rule):
    """DET002: randomness must flow through ``repro.des.rng`` streams.

    Named streams give every stochastic component an independent,
    seed-derived generator (common random numbers across schemes; one
    component's draw count cannot perturb another's).  Bare ``random.*``
    or ``numpy.random.*`` calls bypass both properties.
    """

    code = "DET002"
    name = "no-bare-randomness"
    description = "randomness outside repro.des.rng named streams"
    severity = Severity.ERROR
    include = _PROTOCOL_GLOBS
    # The stream implementation itself is the one sanctioned numpy.random
    # call site.
    exclude = ("repro/des/rng.py",)

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        tree = module.tree
        findings: List[Finding] = []
        numpy_aliases = _module_aliases(tree, "numpy")
        random_aliases: Set[str] = set()
        numpy_random_aliases: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        findings.append(
                            self.finding(
                                module,
                                node.lineno,
                                "import of stdlib random: draw from a "
                                "repro.des.rng named stream instead",
                            )
                        )
                        random_aliases.add(alias.asname or alias.name)
                    elif alias.name == "numpy.random":
                        findings.append(
                            self.finding(
                                module,
                                node.lineno,
                                "import of numpy.random: draw from a "
                                "repro.des.rng named stream instead",
                            )
                        )
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "random":
                    findings.append(
                        self.finding(
                            module,
                            node.lineno,
                            "import from stdlib random: draw from a "
                            "repro.des.rng named stream instead",
                        )
                    )
                elif node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            findings.append(
                                self.finding(
                                    module,
                                    node.lineno,
                                    "import of numpy.random: draw from a "
                                    "repro.des.rng named stream instead",
                                )
                            )
                            numpy_random_aliases.add(alias.asname or alias.name)
                elif node.module == "numpy.random":
                    findings.append(
                        self.finding(
                            module,
                            node.lineno,
                            "import from numpy.random: draw from a "
                            "repro.des.rng named stream instead",
                        )
                    )
        for node in ast.walk(tree):
            if isinstance(node, ast.Attribute):
                value = node.value
                # random.<anything>(...) via stdlib alias
                if isinstance(value, ast.Name) and value.id in random_aliases:
                    findings.append(
                        self.finding(
                            module,
                            node.lineno,
                            f"bare random.{node.attr}: draw from a "
                            "repro.des.rng named stream instead",
                        )
                    )
                # np.random.<anything>
                elif (
                    isinstance(value, ast.Attribute)
                    and value.attr == "random"
                    and isinstance(value.value, ast.Name)
                    and value.value.id in numpy_aliases
                ):
                    findings.append(
                        self.finding(
                            module,
                            node.lineno,
                            f"bare numpy.random.{node.attr}: draw from a "
                            "repro.des.rng named stream instead",
                        )
                    )
                # <numpy-random-alias>.<anything> from ``from numpy import random``
                elif (
                    isinstance(value, ast.Name)
                    and value.id in numpy_random_aliases
                ):
                    findings.append(
                        self.finding(
                            module,
                            node.lineno,
                            f"bare numpy.random.{node.attr}: draw from a "
                            "repro.des.rng named stream instead",
                        )
                    )
        return findings


@register_rule
class SetIterationRule(Rule):
    """DET003: iteration over sets in event-scheduling code is a replay
    hazard.

    Set iteration order depends on insertion history and hash seeds of
    the *process*; two runs that schedule events from a set walk can
    diverge even with identical RNG streams.  Iterate a list/tuple, or
    ``sorted(...)`` the set first.
    """

    code = "DET003"
    name = "no-set-iteration"
    description = "iteration over a set where ordering feeds scheduling"
    severity = Severity.WARNING
    include = ("repro/des/*", "repro/sim/*", "repro/net/*")

    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        )

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        findings: List[Finding] = []
        seen: Set[Tuple[int, int]] = set()

        def flag(it: ast.expr) -> None:
            key = (it.lineno, it.col_offset)
            if key in seen:
                return
            seen.add(key)
            findings.append(
                self.finding(
                    module,
                    it.lineno,
                    "iterating a set: ordering is process-dependent; "
                    "iterate a list/tuple or sorted(...) instead",
                )
            )

        for node in ast.walk(module.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)) and self._is_set_expr(
                node.iter
            ):
                flag(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for gen in node.generators:
                    if self._is_set_expr(gen.iter):
                        flag(gen.iter)
        return findings
