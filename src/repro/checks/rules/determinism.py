"""Determinism rules: DET001 (wall clock), DET002 (bare randomness),
DET003 (set-iteration ordering hazards).

The simulation's whole correctness story rests on replayability: a
seeded run must be bit-identical across processes and Python versions
(golden tests, parallel==serial pinning, chaos conviction traces).  Wall
clock and unseeded randomness break that silently; set iteration order
is stable only *within* one process, so any set that feeds event
scheduling is a cross-run hazard.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set, Tuple

from ..engine import Finding, ModuleInfo, Rule, Severity, register_rule

#: Subpackages that hold protocol/simulation logic.  ``experiments`` is
#: deliberately exempt *by path*: wall-clock timing of a sweep is fine.
PROTOCOL_PACKAGES = (
    "des",
    "sim",
    "net",
    "schemes",
    "reports",
    "cache",
    "db",
    "chaos",
    "service",
)

_PROTOCOL_GLOBS = tuple(f"repro/{pkg}/*" for pkg in PROTOCOL_PACKAGES)

#: ``time`` module attributes that read the wall/CPU clock.
_BANNED_TIME_ATTRS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "clock",
    }
)

#: ``datetime.datetime`` / ``datetime.date`` constructors that read the
#: wall clock.
_BANNED_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})


def _module_aliases(tree: ast.AST, target: str) -> Set[str]:
    """Names that refer to module *target* (handles ``import x as y``)."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == target:
                    aliases.add(alias.asname or alias.name)
                elif alias.name.startswith(target + ".") and alias.asname is None:
                    # ``import numpy.random`` binds ``numpy``.
                    aliases.add(target)
    return aliases


@register_rule
class WallClockRule(Rule):
    """DET001: no wall-clock reads inside protocol/simulation code.

    Protocol time is ``env.now`` — the event loop's virtual clock.  Any
    ``time.time()``/``datetime.now()``-style read couples behaviour to
    the host machine and destroys replay.
    """

    code = "DET001"
    name = "no-wall-clock"
    description = "wall-clock read inside protocol/simulation code"
    severity = Severity.ERROR
    include = _PROTOCOL_GLOBS

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        tree = module.tree
        time_aliases = _module_aliases(tree, "time")
        datetime_mod_aliases = _module_aliases(tree, "datetime")
        # Classes imported straight from the datetime module.
        datetime_class_aliases: Set[str] = set()
        from_time_names: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in _BANNED_TIME_ATTRS:
                            from_time_names[alias.asname or alias.name] = alias.name
                elif node.module == "datetime":
                    for alias in node.names:
                        if alias.name in ("datetime", "date"):
                            datetime_class_aliases.add(alias.asname or alias.name)
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Attribute):
                value = node.value
                # time.<banned> via a module alias
                if (
                    isinstance(value, ast.Name)
                    and value.id in time_aliases
                    and node.attr in _BANNED_TIME_ATTRS
                ):
                    findings.append(
                        self.finding(
                            module,
                            node.lineno,
                            f"wall-clock read time.{node.attr}: use the "
                            "simulation clock (env.now)",
                        )
                    )
                # datetime.<class>.<banned> or <class-alias>.<banned>
                elif node.attr in _BANNED_DATETIME_ATTRS:
                    if (
                        isinstance(value, ast.Name)
                        and value.id in datetime_class_aliases
                    ) or (
                        isinstance(value, ast.Attribute)
                        and isinstance(value.value, ast.Name)
                        and value.value.id in datetime_mod_aliases
                        and value.attr in ("datetime", "date")
                    ):
                        findings.append(
                            self.finding(
                                module,
                                node.lineno,
                                f"wall-clock read datetime...{node.attr}(): use "
                                "the simulation clock (env.now)",
                            )
                        )
            elif isinstance(node, ast.Name) and node.id in from_time_names:
                if isinstance(node.ctx, ast.Load):
                    findings.append(
                        self.finding(
                            module,
                            node.lineno,
                            f"wall-clock read {from_time_names[node.id]}() "
                            "(imported from time): use the simulation clock",
                        )
                    )
        return findings


@register_rule
class BareRandomnessRule(Rule):
    """DET002: randomness must flow through ``repro.des.rng`` streams.

    Named streams give every stochastic component an independent,
    seed-derived generator (common random numbers across schemes; one
    component's draw count cannot perturb another's).  Bare ``random.*``
    or ``numpy.random.*`` calls bypass both properties.
    """

    code = "DET002"
    name = "no-bare-randomness"
    description = "randomness outside repro.des.rng named streams"
    severity = Severity.ERROR
    include = _PROTOCOL_GLOBS
    # The stream implementation itself is the one sanctioned numpy.random
    # call site.
    exclude = ("repro/des/rng.py",)

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        tree = module.tree
        findings: List[Finding] = []
        numpy_aliases = _module_aliases(tree, "numpy")
        random_aliases: Set[str] = set()
        numpy_random_aliases: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        findings.append(
                            self.finding(
                                module,
                                node.lineno,
                                "import of stdlib random: draw from a "
                                "repro.des.rng named stream instead",
                            )
                        )
                        random_aliases.add(alias.asname or alias.name)
                    elif alias.name == "numpy.random":
                        findings.append(
                            self.finding(
                                module,
                                node.lineno,
                                "import of numpy.random: draw from a "
                                "repro.des.rng named stream instead",
                            )
                        )
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "random":
                    findings.append(
                        self.finding(
                            module,
                            node.lineno,
                            "import from stdlib random: draw from a "
                            "repro.des.rng named stream instead",
                        )
                    )
                elif node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            findings.append(
                                self.finding(
                                    module,
                                    node.lineno,
                                    "import of numpy.random: draw from a "
                                    "repro.des.rng named stream instead",
                                )
                            )
                            numpy_random_aliases.add(alias.asname or alias.name)
                elif node.module == "numpy.random":
                    findings.append(
                        self.finding(
                            module,
                            node.lineno,
                            "import from numpy.random: draw from a "
                            "repro.des.rng named stream instead",
                        )
                    )
        for node in ast.walk(tree):
            if isinstance(node, ast.Attribute):
                value = node.value
                # random.<anything>(...) via stdlib alias
                if isinstance(value, ast.Name) and value.id in random_aliases:
                    findings.append(
                        self.finding(
                            module,
                            node.lineno,
                            f"bare random.{node.attr}: draw from a "
                            "repro.des.rng named stream instead",
                        )
                    )
                # np.random.<anything>
                elif (
                    isinstance(value, ast.Attribute)
                    and value.attr == "random"
                    and isinstance(value.value, ast.Name)
                    and value.value.id in numpy_aliases
                ):
                    findings.append(
                        self.finding(
                            module,
                            node.lineno,
                            f"bare numpy.random.{node.attr}: draw from a "
                            "repro.des.rng named stream instead",
                        )
                    )
                # <numpy-random-alias>.<anything> from ``from numpy import random``
                elif (
                    isinstance(value, ast.Name)
                    and value.id in numpy_random_aliases
                ):
                    findings.append(
                        self.finding(
                            module,
                            node.lineno,
                            f"bare numpy.random.{node.attr}: draw from a "
                            "repro.des.rng named stream instead",
                        )
                    )
        return findings


@register_rule
class SetIterationRule(Rule):
    """DET003: iteration over sets in event-scheduling code is a replay
    hazard.

    Set iteration order depends on insertion history and hash seeds of
    the *process*; two runs that schedule events from a set walk can
    diverge even with identical RNG streams.  Iterate a list/tuple, or
    ``sorted(...)`` the set first.
    """

    code = "DET003"
    name = "no-set-iteration"
    description = "iteration over a set where ordering feeds scheduling"
    severity = Severity.WARNING
    include = ("repro/des/*", "repro/sim/*", "repro/net/*")

    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        )

    @staticmethod
    def _is_identity_keyed_dict(node: ast.AST) -> bool:
        """A dict display/comprehension whose keys are freshly constructed
        instances (capitalised constructor calls): without a __hash__
        override those hash by id(), so key order is process-dependent."""

        def identity_key(key: ast.expr) -> bool:
            return (
                isinstance(key, ast.Call)
                and isinstance(key.func, ast.Name)
                and key.func.id[:1].isupper()
            )

        if isinstance(node, ast.Dict):
            return bool(node.keys) and all(
                k is not None and identity_key(k) for k in node.keys
            )
        if isinstance(node, ast.DictComp):
            return identity_key(node.key)
        return False

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        findings: List[Finding] = []
        seen: Set[Tuple[int, int]] = set()

        def flag(it: ast.expr, reason: str) -> None:
            key = (it.lineno, it.col_offset)
            if key in seen:
                return
            seen.add(key)
            findings.append(self.finding(module, it.lineno, reason))

        set_reason = (
            "iterating a set: ordering is process-dependent; "
            "iterate a list/tuple or sorted(...) instead"
        )
        keys_reason = (
            "iterating .keys() of an identity-hash-keyed dict: ordering is "
            "process-dependent; key by a value type or sort the keys"
        )

        # Names whose every assignment in their scope is a set expression
        # (or, for the .keys() check, an identity-keyed dict): iterating
        # such a name is the same hazard one assignment later.
        set_names, ident_dict_names = self._scope_names(module.tree)

        def is_set_iter(it: ast.expr) -> bool:
            if self._is_set_expr(it):
                return True
            return isinstance(it, ast.Name) and it.id in set_names

        def is_ident_keys_iter(it: ast.expr) -> bool:
            return (
                isinstance(it, ast.Call)
                and isinstance(it.func, ast.Attribute)
                and it.func.attr == "keys"
                and not it.args
                and isinstance(it.func.value, ast.Name)
                and it.func.value.id in ident_dict_names
            )

        for node in ast.walk(module.tree):
            iters: List[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters = [node.iter]
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iters = [gen.iter for gen in node.generators]
            for it in iters:
                if is_set_iter(it):
                    flag(it, set_reason)
                elif is_ident_keys_iter(it):
                    flag(it, keys_reason)
        return findings

    def _scope_names(self, tree: ast.AST) -> Tuple[Set[str], Set[str]]:
        """Names that only ever hold sets / identity-keyed dicts.

        Tracked by bare name across the whole module: a name is eligible
        only if *every* assignment to it anywhere in the module is the
        hazardous kind — mixed or mutated names are skipped.  Coarser
        than true scoping (a set-valued ``pending`` in one function
        convicts iteration of a different ``pending`` in another), but
        the conservative direction for a warning-severity rule and it
        keeps the pass O(n).
        """
        set_ok: Set[str] = set()
        set_bad: Set[str] = set()
        dict_ok: Set[str] = set()
        dict_bad: Set[str] = set()
        for node in ast.walk(tree):
            targets: List[ast.expr] = []
            value: ast.expr
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            elif isinstance(node, ast.AugAssign):
                # ``s |= {...}`` keeps a set a set; anything else is a
                # mutation we cannot track — disqualify.
                targets, value = [node.target], node.value
            else:
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                name = target.id
                if self._is_set_expr(value):
                    set_ok.add(name)
                else:
                    set_bad.add(name)
                if self._is_identity_keyed_dict(value):
                    dict_ok.add(name)
                else:
                    dict_bad.add(name)
        return set_ok - set_bad, dict_ok - dict_bad
