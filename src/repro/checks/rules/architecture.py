"""ARCH001: the package layering DAG and import-cycle detection.

The dependency order is::

    des -> net -> reports -> schemes -> sim -> chaos -> experiments

(with ``cache``/``db``/``analysis`` as low-level leaves) — a package may
import only packages at or below its own layer, *at module level*.
Function-scoped (lazy) imports are the sanctioned escape hatch for the
few runtime inversions (``sim`` raising chaos-oracle violations), as are
``if TYPE_CHECKING:`` blocks, which never execute at runtime.

Rationale: the layering is what keeps the DES kernel reusable, the
schemes unit-testable without an event loop, and the import graph
acyclic — a cycle means ``import repro.X`` works or crashes depending on
who imported what first.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..engine import Finding, Project, Rule, Severity, register_rule

#: Direct allowed dependencies per subpackage; the rule closes them
#: transitively.  A subpackage missing from this table is itself a
#: finding — extend the table when adding one.
LAYER_DAG: Dict[str, Tuple[str, ...]] = {
    "des": (),
    "cache": (),
    "analysis": (),
    "checks": (),
    "topology": (),
    "db": ("des",),
    "net": ("des",),
    "reports": ("des",),
    "schemes": ("reports", "cache", "db"),
    # The DAG is keyed by top-level subpackage: intra-package modules
    # (sim.population, sim.propagation, sim.multicell, ...) are covered
    # by their package's node and impose no extra edges.
    "sim": ("schemes", "net", "analysis", "topology"),
    # The service tier reuses the certification core and the fault
    # models but must stay importable without the simulator: it may
    # never depend on sim or chaos (chaos outage schedules reach it
    # duck-typed through the OutageLike protocol).
    "service": ("schemes", "net"),
    "chaos": ("sim",),
    "experiments": ("chaos",),
}


def _transitive_allowed() -> Dict[str, Set[str]]:
    closed: Dict[str, Set[str]] = {}

    def close(pkg: str) -> Set[str]:
        if pkg in closed:
            return closed[pkg]
        allowed: Set[str] = set()
        closed[pkg] = allowed  # DAG by construction; no recursion guard needed
        for dep in LAYER_DAG[pkg]:
            allowed.add(dep)
            allowed.update(close(dep))
        return allowed

    for pkg in LAYER_DAG:
        close(pkg)
    return closed


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name) and test.id == "TYPE_CHECKING":
        return True
    return isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"


def _module_level_imports(
    tree: ast.Module,
) -> Iterable["ast.Import | ast.ImportFrom"]:
    """Imports executed when the module is imported: skips function
    bodies and ``if TYPE_CHECKING:`` blocks, descends into classes,
    try/except and ordinary conditionals."""
    stack: List[ast.stmt] = list(tree.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            yield node
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        elif isinstance(node, ast.If):
            if not _is_type_checking_test(node.test):
                stack.extend(node.body)
            stack.extend(node.orelse)
        elif isinstance(node, ast.ClassDef):
            stack.extend(node.body)
        elif isinstance(node, ast.Try):
            stack.extend(node.body)
            for handler in node.handlers:
                stack.extend(handler.body)
            stack.extend(node.orelse)
            stack.extend(node.finalbody)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            stack.extend(node.body)
        elif isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
            stack.extend(node.body)
            stack.extend(node.orelse)


def _target_packages(
    node: "ast.Import | ast.ImportFrom", importer_path: str
) -> List[Tuple[str, int]]:
    """Top-level ``repro`` subpackages a single import statement pulls in
    (with the statement's line), resolving relative imports against the
    importer's own dotted path."""
    out: List[Tuple[str, int]] = []

    def add(parts: List[str]) -> None:
        if len(parts) >= 2 and parts[0] == "repro":
            out.append((parts[1], node.lineno))

    if isinstance(node, ast.Import):
        for alias in node.names:
            add(alias.name.split("."))
        return out
    if node.level == 0:
        if node.module:
            parts = node.module.split(".")
            if parts == ["repro"]:  # ``from repro import sim``
                for alias in node.names:
                    add(["repro", alias.name])
            else:
                add(parts)
        return out
    # Relative: ``repro/checks/rules/api.py`` -> package repro.checks.rules;
    # level k strips k-1 further components off the package.
    package = importer_path.split("/")[:-1]  # __init__.py *is* its package
    base = package[: len(package) - (node.level - 1)]
    if node.module:
        add(base + node.module.split("."))
    else:  # ``from .. import pkg`` — each alias is a submodule of base
        for alias in node.names:
            add(base + [alias.name])
    return out


@register_rule
class LayeringRule(Rule):
    """ARCH001: module-level imports must respect the layering DAG."""

    code = "ARCH001"
    name = "import-layering"
    description = "package import outside the layering DAG, or a cycle"
    severity = Severity.ERROR
    include = ("repro/*",)

    def check_project(self, project: Project) -> Iterable[Finding]:
        allowed = _transitive_allowed()
        findings: List[Finding] = []
        # Observed package-level import graph (for cycle detection).
        graph: Dict[str, Set[str]] = {}
        graph_edge_site: Dict[Tuple[str, str], Tuple[str, int]] = {}
        for module in project.modules:
            pkg = module.package
            if not pkg:
                # repro/__init__.py (the facade) and top-level modules sit
                # above every layer; still contribute no DAG constraint.
                continue
            if not isinstance(module.tree, ast.Module):
                continue
            for node in _module_level_imports(module.tree):
                for target, lineno in _target_packages(node, module.path):
                    if target == pkg or target not in LAYER_DAG and pkg not in LAYER_DAG:
                        continue
                    graph.setdefault(pkg, set()).add(target)
                    graph_edge_site.setdefault((pkg, target), (module.path, lineno))
                    if pkg not in LAYER_DAG:
                        findings.append(
                            self.finding(
                                module,
                                lineno,
                                f"package {pkg!r} is not in the layering DAG; "
                                "add it to repro/checks/rules/architecture.py",
                            )
                        )
                    elif target not in LAYER_DAG:
                        findings.append(
                            self.finding(
                                module,
                                lineno,
                                f"import target package {target!r} is not in "
                                "the layering DAG; add it to "
                                "repro/checks/rules/architecture.py",
                            )
                        )
                    elif target not in allowed[pkg]:
                        findings.append(
                            self.finding(
                                module,
                                lineno,
                                f"layering violation: {pkg} may not import "
                                f"{target} at module level (allowed: "
                                f"{', '.join(sorted(allowed[pkg])) or 'nothing'}; "
                                "use a function-scoped import for a runtime "
                                "inversion)",
                            )
                        )
        findings.extend(self._cycle_findings(graph, graph_edge_site))
        return findings

    def _cycle_findings(
        self,
        graph: Dict[str, Set[str]],
        sites: Dict[Tuple[str, str], Tuple[str, int]],
    ) -> List[Finding]:
        """One finding per import cycle among the observed packages."""
        findings: List[Finding] = []
        path: List[str] = []
        on_path: Set[str] = set()
        done: Set[str] = set()
        reported: Set[FrozenSet[str]] = set()

        def visit(pkg: str) -> None:
            if pkg in done:
                return
            if pkg in on_path:
                cycle = path[path.index(pkg) :] + [pkg]
                key = frozenset(cycle)
                if key not in reported:
                    reported.add(key)
                    first_edge = (cycle[0], cycle[1])
                    where, line = sites.get(first_edge, (f"repro/{pkg}", 1))
                    findings.append(
                        Finding(
                            code=self.code,
                            path=where,
                            line=line,
                            message=(
                                "import cycle: " + " -> ".join(cycle)
                            ),
                            severity=self.severity,
                        )
                    )
                return
            on_path.add(pkg)
            path.append(pkg)
            for dep in sorted(graph.get(pkg, ())):
                visit(dep)
            path.pop()
            on_path.discard(pkg)
            done.add(pkg)

        for pkg in sorted(graph):
            visit(pkg)
        return findings
