"""DET004: interprocedural RNG-stream discipline.

Replayability rests on every draw coming from a *named*
:class:`repro.des.rng.RandomStream` and on each stream staying inside
the component that minted it (common random numbers: one component's
draw count must not perturb another's).  The per-file DET002 rule bans
bare ``random``/``numpy.random``; this rule closes the remaining gaps
with the whole-program taint result:

* **untraceable draw** — a ``.uniform()``/``.bernoulli()``/... call whose
  receiver the taint engine cannot trace back to a stream source;
* **shared-state store** — a stream handle assigned to a module global,
  a ``global``-declared name, or a class attribute (shared across
  instances): any second consumer desynchronises the draw sequence;
* **cross-DAG pass** — a stream handed to a function in a package the
  caller's package may not depend on (judged against the ARCH001
  layering DAG closure): ownership would cross the architecture's
  component boundaries;
* **fault-ordered draw** — a draw lexically inside ``except``/``finally``:
  whether it executes depends on fault timing, so replay diverges the
  moment fault schedules change.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from ..callgraph import build_call_graph
from ..dataflow import DRAW_METHODS, StreamTaint, build_stream_taint
from ..engine import Finding, ModuleInfo, Project, Rule, Severity, register_rule
from .architecture import LAYER_DAG, _transitive_allowed
from .determinism import _PROTOCOL_GLOBS


@register_rule
class StreamEscapeRule(Rule):
    """DET004: draws traceable to named streams; streams never escape."""

    code = "DET004"
    name = "stream-taint"
    description = "RNG draw untraceable to a named stream, or a stream escape"
    severity = Severity.ERROR
    include = _PROTOCOL_GLOBS
    # The stream implementation draws on its internal numpy generator.
    exclude = ("repro/des/rng.py",)

    def check_project(self, project: Project) -> Iterable[Finding]:
        graph = build_call_graph(project)
        taint = build_stream_taint(graph)
        findings: List[Finding] = []
        findings.extend(self._untraceable_draws(taint))
        findings.extend(self._shared_stores(taint))
        findings.extend(self._cross_dag_passes(taint))
        for module in project.modules:
            if self.applies_to(module.path) and isinstance(module.tree, ast.Module):
                findings.extend(self._fault_ordered_draws(module, taint))
        return findings

    def _untraceable_draws(self, taint: StreamTaint) -> List[Finding]:
        out: List[Finding] = []
        for module, scope, call in taint.draw_sites():
            if not self.applies_to(module.path):
                continue
            assert isinstance(call.func, ast.Attribute)
            if not taint.receiver_tainted(module, scope, call):
                out.append(
                    self.finding(
                        module,
                        call.lineno,
                        f"draw .{call.func.attr}() on a receiver not traceable "
                        "to a named repro.des.rng stream; mint it via "
                        "RandomStreams.stream(name) or annotate the parameter "
                        "as RandomStream",
                    )
                )
        return out

    def _shared_stores(self, taint: StreamTaint) -> List[Finding]:
        out: List[Finding] = []
        for store in taint.shared_stores:
            if not self.applies_to(store.module.path):
                continue
            out.append(
                self.finding(
                    store.module,
                    store.lineno,
                    f"stream handle stored on shared state "
                    f"({store.kind} {store.target!r}): a stream must stay "
                    "owned by the one component that draws from it",
                )
            )
        return out

    def _cross_dag_passes(self, taint: StreamTaint) -> List[Finding]:
        allowed = _transitive_allowed()
        out: List[Finding] = []
        for ev in taint.cross_package:
            if ev.fuzzy or not self.applies_to(ev.module.path):
                continue
            src_pkg = ev.module.package
            dst_pkg = ev.callee.package
            if not src_pkg or not dst_pkg:
                continue
            if src_pkg not in LAYER_DAG or dst_pkg not in LAYER_DAG:
                continue
            if dst_pkg == src_pkg or dst_pkg in allowed[src_pkg]:
                continue
            out.append(
                self.finding(
                    ev.module,
                    ev.lineno,
                    f"stream handle passed from package {src_pkg!r} to "
                    f"{ev.callee.qualname} (package {dst_pkg!r}), outside the "
                    "layering DAG: pass a seed or a stream *name* across "
                    "layers, never the handle",
                )
            )
        return out

    def _fault_ordered_draws(
        self, module: ModuleInfo, taint: StreamTaint
    ) -> List[Finding]:
        out: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Try):
                continue
            shielded: List[ast.stmt] = []
            for handler in node.handlers:
                shielded.extend(handler.body)
            shielded.extend(node.finalbody)
            for stmt in shielded:
                for sub in ast.walk(stmt):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr in DRAW_METHODS
                    ):
                        scope = taint.scope_of(sub) or ""
                        if scope and taint.receiver_tainted(module, scope, sub):
                            out.append(
                                self.finding(
                                    module,
                                    sub.lineno,
                                    f"stream draw .{sub.func.attr}() inside "
                                    "except/finally: execution becomes "
                                    "fault-dependent and replay diverges when "
                                    "fault timing changes; draw before the "
                                    "try block instead",
                                )
                            )
        return out
