"""SVC001 + ASYNC001/ASYNC002: service-tier call-path discipline.

The resilience guarantees of :mod:`repro.service` (breaker-gated
degradation, budgeted retries, deadlines — the paper's disconnect
semantics mapped onto an async cache node) hold only if *every* path
from the node to the L2 backend or the invalidation-report broker goes
through the one sanctioned wrapper, ``call_with_retry``.  These rules
make that an invariant the gate checks, over the project call graph:

* **SVC001** — a call path from a ``CacheNode`` public method that
  reaches an async ``backend_*``/``broker_*`` hook without passing
  ``call_with_retry``.  Reachability stops *at* the wrapper (lambdas
  passed to it hang off the wrapper in the call graph), so the wrapped
  ``lambda: backend.backend_fetch(item)`` thunks are sanctioned and a
  future helper that "just quickly" calls the backend directly is not.
  Sync hooks (``broker_subscribe``/``broker_subscriber_count``) are
  in-process registry operations, not remote calls, and are exempt.
* **ASYNC001** — a blocking call (``time.sleep``, sync socket/file I/O,
  non-awaited ``.acquire()``) lexically inside service-tier code
  reachable from an ``async def``: it would stall the event loop every
  node shares.
* **ASYNC002** — ``create_task`` whose result is dropped (or kept
  without an exception-handling ``add_done_callback`` and never
  awaited/returned): task exceptions would vanish into "never
  retrieved" warnings instead of the node's failure accounting.
  (``asyncio.ensure_future`` in the virtual clock is the sanctioned
  low-level shim and predates tasks; the rule covers ``create_task``,
  the API node code is expected to use.)
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from ..callgraph import CallGraph, CallSite, build_call_graph
from ..engine import Finding, Project, Rule, Severity, register_rule

_SERVICE_PREFIX = "repro/service/"
_HOOK_PREFIXES = ("backend_", "broker_")
_WRAPPER_NAME = "call_with_retry"


def _async_hooks(graph: CallGraph) -> Set[str]:
    """Async ``backend_*``/``broker_*`` methods in the service package —
    base-class hooks *and* every override (duck-typed call sites resolve
    by name to all of them)."""
    return {
        qual
        for qual, info in graph.functions.items()
        if info.is_async
        and info.cls is not None
        and info.name.startswith(_HOOK_PREFIXES)
        and info.module.path.startswith(_SERVICE_PREFIX)
    }


@register_rule
class ResiliencePathRule(Rule):
    """SVC001: CacheNode -> backend/broker only through call_with_retry."""

    code = "SVC001"
    name = "resilience-path"
    description = "backend/broker reached from CacheNode without call_with_retry"
    severity = Severity.ERROR
    include = ("repro/service/*",)

    def check_project(self, project: Project) -> Iterable[Finding]:
        graph = build_call_graph(project)
        hooks = _async_hooks(graph)
        if not hooks:
            return []
        wrappers = {
            qual
            for qual, info in graph.functions.items()
            if info.name == _WRAPPER_NAME
        }
        roots = sorted(
            qual
            for qual, info in graph.functions.items()
            if info.cls == "CacheNode"
            and info.module.path.startswith(_SERVICE_PREFIX)
            and not info.name.startswith("_")
        )
        findings: List[Finding] = []
        reachable = graph.reachable(roots, stop=wrappers)
        for caller in sorted(reachable):
            info = graph.functions.get(caller)
            if info is None or caller in wrappers:
                continue
            if info.cls is not None and info.name.startswith(_HOOK_PREFIXES):
                # Below the boundary: a backend impl delegating to
                # another backend is the wrapper's callee, not a bypass.
                continue
            for site in graph.function_calls(caller):
                hit = sorted(set(site.targets) & hooks)
                if not hit:
                    continue
                witness = graph.witness_root(roots, caller, stop=wrappers)
                findings.append(
                    self.finding(
                        info.module,
                        site.lineno,
                        f"{hit[0].split('::')[1]} reached from CacheNode "
                        f"public API ({witness or caller}) without passing "
                        f"{_WRAPPER_NAME}: wrap the call in the "
                        "breaker/retry/deadline stack",
                    )
                )
        return findings


#: Dotted callables that block the event loop outright.
_BLOCKING_DOTTED = frozenset({"time.sleep", "os.system", "os.wait", "input"})
#: Module prefixes whose direct calls are synchronous I/O.
_BLOCKING_PREFIXES = ("socket.", "subprocess.", "requests.", "urllib.")


def _blocking_reason(site: CallSite) -> Optional[str]:
    dotted = site.dotted
    if dotted is not None:
        if dotted in _BLOCKING_DOTTED:
            return f"blocking call {dotted}()"
        if dotted.startswith(_BLOCKING_PREFIXES):
            return f"synchronous I/O call {dotted}()"
        if dotted == "open":
            return "synchronous file I/O open()"
    if site.attr == "acquire" and not site.awaited:
        return "non-awaited .acquire() (blocks the loop on contention)"
    return None


@register_rule
class AsyncBlockingRule(Rule):
    """ASYNC001: no blocking calls on async service paths."""

    code = "ASYNC001"
    name = "async-no-blocking"
    description = "blocking call inside async-reachable service code"
    severity = Severity.ERROR
    include = ("repro/service/*",)

    def check_project(self, project: Project) -> Iterable[Finding]:
        graph = build_call_graph(project)
        roots = sorted(
            qual
            for qual, info in graph.functions.items()
            if info.is_async and info.module.path.startswith(_SERVICE_PREFIX)
        )
        findings: List[Finding] = []
        for caller in sorted(graph.reachable(roots)):
            info = graph.functions.get(caller)
            if info is None or not info.module.path.startswith(_SERVICE_PREFIX):
                continue
            for site in graph.function_calls(caller):
                reason = _blocking_reason(site)
                if reason is not None:
                    findings.append(
                        self.finding(
                            info.module,
                            site.lineno,
                            f"{reason} on an async-reachable service path "
                            f"({caller.split('::')[1]}): use the Clock/async "
                            "primitives instead",
                        )
                    )
        return findings


@register_rule
class FireAndForgetRule(Rule):
    """ASYNC002: every create_task gets an exception-handling callback."""

    code = "ASYNC002"
    name = "no-fire-and-forget"
    description = "create_task without done-callback, await, or return"
    severity = Severity.ERROR
    include = ("repro/*",)

    def check_project(self, project: Project) -> Iterable[Finding]:
        graph = build_call_graph(project)
        findings: List[Finding] = []
        for qual, info in graph.functions.items():
            if isinstance(info.node, ast.Lambda):
                continue
            sites = graph.function_calls(qual)
            spawns = [s for s in sites if s.attr == "create_task"]
            if not spawns:
                continue
            if any(s.attr == "add_done_callback" for s in sites):
                continue
            returned = self._returned_exprs(info.node)
            for site in spawns:
                if site.awaited or id(site.node) in returned:
                    continue
                findings.append(
                    self.finding(
                        info.module,
                        site.lineno,
                        "fire-and-forget create_task: attach an "
                        "exception-handling add_done_callback (or await/"
                        "return the task) so failures reach the node's "
                        "accounting instead of 'never retrieved' warnings",
                    )
                )
        return findings

    @staticmethod
    def _returned_exprs(
        node: "ast.FunctionDef | ast.AsyncFunctionDef",
    ) -> Set[int]:
        """ids of expressions whose value leaves via ``return`` — either
        directly or through a name that is later returned."""
        returned_names: Set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Return) and isinstance(sub.value, ast.Name):
                returned_names.add(sub.value.id)
        out: Set[int] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Return) and sub.value is not None:
                out.add(id(sub.value))
            elif isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                target = sub.targets[0]
                if isinstance(target, ast.Name) and target.id in returned_names:
                    out.add(id(sub.value))
        return out
