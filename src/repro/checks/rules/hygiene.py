"""CHK001: unused-suppression detection.

A ``checks: ignore[CODE]`` comment is a standing claim that the line
violates CODE for a sanctioned reason.  When the code is refactored and
the violation disappears, the stale comment keeps the door open for a
*new* violation to land on that line unnoticed — so the gate flags
suppressions that no longer suppress anything.

The detection itself lives in the engine (:func:`repro.checks.engine.
run_checks` knows which suppressions fired during filtering); this class
is the catalog entry that makes CHK001 selectable, listable, and
baseline-able like every other code.  A coded suppression is only judged
when every code it names ran in the invocation, and a bare ``# checks:
ignore`` only on a full-registry run — a rule that did not run might
have fired.
"""

from __future__ import annotations

from ..engine import Rule, Severity, register_rule


@register_rule
class UnusedSuppressionRule(Rule):
    """CHK001: a suppression comment that suppresses nothing."""

    code = "CHK001"
    name = "unused-suppression"
    description = "suppression comment that no longer suppresses any finding"
    severity = Severity.WARNING
    # Findings are synthesised by the engine after filtering; the rule
    # class itself contributes no per-module/per-project pass.
