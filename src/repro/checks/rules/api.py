"""API001/API002: hook-surface contracts, checked statically.

API001: every registered scheme implements the policy hook surface.

:mod:`repro.schemes.base` declares the contract by convention:

* a method whose body is a bare ``raise NotImplementedError`` (no
  message) is a **required hook** — every concrete policy must override
  it somewhere in its class chain;
* a ``raise NotImplementedError("...")`` *with* a message is an optional
  capability (e.g. ``on_tlb`` — only adaptive schemes answer uploads);
* any other body is a default implementation.

The rule statically resolves each ``*_SCHEME = Scheme(...)`` the
registry imports, walks the factory classes' bases across the package,
and checks (a) required hooks are overridden and (b) no subclass defines
an ``on_*``/``build_*`` method the base surface does not know (typo
guard: a misspelled hook silently never fires).

API002 applies the same convention to the service tier's dependency
interfaces (:mod:`repro.service.interfaces`): every ``L2Backend`` /
``IRBroker`` subclass in the tree must override the required hooks, and
any ``backend_*`` / ``broker_*`` method it defines must exist on the
base surface — a misspelled wrapper method would silently break the
delegation chain.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..engine import Finding, ModuleInfo, Project, Rule, Severity, register_rule

REGISTRY_PATH = "repro/schemes/registry.py"
BASE_PATH = "repro/schemes/base.py"
SERVICE_INTERFACES_PATH = "repro/service/interfaces.py"
_POLICY_BASES = ("ServerPolicy", "ClientPolicy")
_HOOK_PREFIXES = ("on_", "build_", "salvage_")
#: Service dependency interfaces and their hook prefix.
_SERVICE_BASES = {"L2Backend": "backend_", "IRBroker": "broker_"}


def _is_bare_not_implemented(stmt: ast.stmt) -> Optional[bool]:
    """True = bare raise (required), False = messaged raise (optional),
    None = not a NotImplementedError raise."""
    if not isinstance(stmt, ast.Raise) or stmt.exc is None:
        return None
    exc = stmt.exc
    if isinstance(exc, ast.Name) and exc.id == "NotImplementedError":
        return True
    if (
        isinstance(exc, ast.Call)
        and isinstance(exc.func, ast.Name)
        and exc.func.id == "NotImplementedError"
    ):
        return not exc.args and not exc.keywords
    return None


def _method_defs(cls: ast.ClassDef) -> Dict[str, ast.FunctionDef]:
    return {
        stmt.name: stmt
        for stmt in cls.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _hook_surface(cls: ast.ClassDef) -> Tuple[Set[str], Set[str]]:
    """(all public hooks, required hooks) of one base policy class."""
    surface: Set[str] = set()
    required: Set[str] = set()
    for name, fn in _method_defs(cls).items():
        if name.startswith("_"):
            continue
        surface.add(name)
        body = [
            s
            for s in fn.body
            if not (
                isinstance(s, ast.Expr) and isinstance(s.value, ast.Constant)
            )
        ]
        if len(body) == 1:
            kind = _is_bare_not_implemented(body[0])
            if kind is True:
                required.add(name)
    return surface, required


class _ClassIndex:
    """All class definitions under ``repro/schemes``, with enough import
    resolution to follow ``from .afw import AdaptiveClientPolicy``."""

    def __init__(self, project: Project) -> None:
        # (module path, class name) -> ClassDef; plus per-module alias
        # maps for names imported from sibling scheme modules.
        self.classes: Dict[Tuple[str, str], ast.ClassDef] = {}
        self.imports: Dict[Tuple[str, str], Tuple[str, str]] = {}
        for module in project.modules:
            if not module.path.startswith("repro/schemes/"):
                continue
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    self.classes[(module.path, node.name)] = node
            for node in module.tree.body:
                if isinstance(node, ast.ImportFrom) and node.level == 1 and node.module:
                    target = f"repro/schemes/{node.module.split('.')[0]}.py"
                    for alias in node.names:
                        self.imports[(module.path, alias.asname or alias.name)] = (
                            target,
                            alias.name,
                        )

    def resolve(
        self, module_path: str, name: str
    ) -> Optional[Tuple[str, ast.ClassDef]]:
        cls = self.classes.get((module_path, name))
        if cls is not None:
            return module_path, cls
        imported = self.imports.get((module_path, name))
        if imported is not None:
            return self.resolve(*imported)
        return None

    def mro_methods(
        self, module_path: str, name: str
    ) -> Tuple[Set[str], Set[str]]:
        """(methods defined along the chain below the policy base,
        policy base names reached)."""
        methods: Set[str] = set()
        bases_reached: Set[str] = set()
        seen: Set[Tuple[str, str]] = set()

        def walk(mod: str, cls_name: str) -> None:
            if cls_name in _POLICY_BASES:
                bases_reached.add(cls_name)
                return
            key = (mod, cls_name)
            if key in seen:
                return
            seen.add(key)
            resolved = self.resolve(mod, cls_name)
            if resolved is None:
                return
            rmod, cls = resolved
            methods.update(
                n for n in _method_defs(cls) if not n.startswith("_")
            )
            for base in cls.bases:
                if isinstance(base, ast.Name):
                    walk(rmod, base.id)

        walk(module_path, name)
        return methods, bases_reached


def _registered_scheme_modules(registry: ModuleInfo) -> List[str]:
    out: List[str] = []
    for node in registry.tree.body:
        if isinstance(node, ast.ImportFrom) and node.level == 1 and node.module:
            if any(a.name.endswith("_SCHEME") for a in node.names):
                out.append(f"repro/schemes/{node.module.split('.')[0]}.py")
    return out


def _scheme_factories(
    module: ModuleInfo,
) -> List[Tuple[str, str, str, int]]:
    """``(scheme name, server factory, client factory, line)`` for each
    ``*_SCHEME = Scheme(...)`` assignment (class-name factories only)."""
    out: List[Tuple[str, str, str, int]] = []
    for node in module.tree.body:
        if not (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id.endswith("_SCHEME")
            and isinstance(node.value, ast.Call)
            and isinstance(node.value.func, ast.Name)
            and node.value.func.id == "Scheme"
        ):
            continue
        call = node.value
        args: Dict[str, ast.expr] = {}
        positional = ("name", "server_factory", "client_factory", "description")
        for i, a in enumerate(call.args[: len(positional)]):
            args[positional[i]] = a
        for kw in call.keywords:
            if kw.arg:
                args[kw.arg] = kw.value
        name_node = args.get("name")
        scheme_name = (
            name_node.value
            if isinstance(name_node, ast.Constant) and isinstance(name_node.value, str)
            else node.targets[0].id
        )
        factories = {}
        for role in ("server_factory", "client_factory"):
            expr = args.get(role)
            factories[role] = expr.id if isinstance(expr, ast.Name) else ""
        out.append(
            (scheme_name, factories["server_factory"], factories["client_factory"], node.lineno)
        )
    return out


@register_rule
class SchemeSurfaceRule(Rule):
    """API001: registered schemes implement the base.py hook surface."""

    code = "API001"
    name = "scheme-hook-surface"
    description = "registered scheme missing or misspelling a policy hook"
    severity = Severity.ERROR
    include = ("repro/schemes/*",)

    def check_project(self, project: Project) -> Iterable[Finding]:
        registry = project.module(REGISTRY_PATH)
        base = project.module(BASE_PATH)
        if registry is None or base is None:
            return []
        surfaces: Dict[str, Tuple[Set[str], Set[str]]] = {}
        for node in ast.walk(base.tree):
            if isinstance(node, ast.ClassDef) and node.name in _POLICY_BASES:
                surfaces[node.name] = _hook_surface(node)
        if set(surfaces) != set(_POLICY_BASES):
            return []  # base.py reshaped beyond this rule's model
        index = _ClassIndex(project)
        findings: List[Finding] = []
        role_base = {"server_factory": "ServerPolicy", "client_factory": "ClientPolicy"}
        for mod_path in _registered_scheme_modules(registry):
            module = project.module(mod_path)
            if module is None:
                findings.append(
                    Finding(
                        code=self.code,
                        path=registry.path,
                        line=1,
                        message=f"registry imports {mod_path} but it was not scanned",
                        severity=self.severity,
                    )
                )
                continue
            for scheme_name, server_cls, client_cls, line in _scheme_factories(module):
                for role, cls_name in (
                    ("server_factory", server_cls),
                    ("client_factory", client_cls),
                ):
                    base_name = role_base[role]
                    surface, required = surfaces[base_name]
                    if not cls_name:
                        continue  # lambda/partial factory: not checkable
                    methods, bases_reached = index.mro_methods(mod_path, cls_name)
                    if base_name not in bases_reached:
                        findings.append(
                            self.finding(
                                module,
                                line,
                                f"scheme {scheme_name!r}: {role} {cls_name} "
                                f"does not subclass {base_name}",
                            )
                        )
                        continue
                    for hook in sorted(required - methods):
                        findings.append(
                            self.finding(
                                module,
                                line,
                                f"scheme {scheme_name!r}: {role} {cls_name} "
                                f"never implements required hook {hook}()",
                            )
                        )
                    # Typo guard on the class chain's own hook-shaped names.
                    for name in sorted(methods):
                        if name.startswith(_HOOK_PREFIXES) and name not in surface:
                            findings.append(
                                self.finding(
                                    module,
                                    line,
                                    f"scheme {scheme_name!r}: {cls_name} defines "
                                    f"{name}(), which is not a {base_name} hook "
                                    "(typo? it will never be called)",
                                )
                            )
        return findings


@register_rule
class ServiceSurfaceRule(Rule):
    """API002: backend/broker implementations match the interface surface."""

    code = "API002"
    name = "service-hook-surface"
    description = "service backend/broker missing or misspelling a hook"
    severity = Severity.ERROR
    include = ("repro/*",)

    def check_project(self, project: Project) -> Iterable[Finding]:
        interfaces = project.module(SERVICE_INTERFACES_PATH)
        if interfaces is None:
            return []
        surfaces: Dict[str, Tuple[Set[str], Set[str]]] = {}
        for node in ast.walk(interfaces.tree):
            if isinstance(node, ast.ClassDef) and node.name in _SERVICE_BASES:
                surfaces[node.name] = _hook_surface(node)
        if set(surfaces) != set(_SERVICE_BASES):
            return []  # interfaces.py reshaped beyond this rule's model
        findings: List[Finding] = []
        for module in project.modules:
            if module.path == SERVICE_INTERFACES_PATH:
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                base_names = {
                    b.id if isinstance(b, ast.Name) else b.attr
                    for b in node.bases
                    if isinstance(b, (ast.Name, ast.Attribute))
                }
                for base_name in sorted(base_names & set(_SERVICE_BASES)):
                    surface, required = surfaces[base_name]
                    prefix = _SERVICE_BASES[base_name]
                    methods = {
                        n for n in _method_defs(node) if not n.startswith("_")
                    }
                    for hook in sorted(required - methods):
                        findings.append(
                            self.finding(
                                module,
                                node.lineno,
                                f"{node.name} subclasses {base_name} but never "
                                f"implements required hook {hook}()",
                            )
                        )
                    for name in sorted(methods):
                        if name.startswith(prefix) and name not in surface:
                            findings.append(
                                self.finding(
                                    module,
                                    node.lineno,
                                    f"{node.name} defines {name}(), which is "
                                    f"not an {base_name} hook (typo? callers "
                                    "resolve it to the base default instead)",
                                )
                            )
        return findings
