"""PERF001: hot-path layout invariants (``__slots__``, sift allocation).

PR 3's profile-driven optimisation pass gave the per-event / per-message
/ per-cache-entry classes ``__slots__`` (docs/PERFORMANCE.md inventories
the hot modules).  Losing the declaration is silent — the class still
works, just slower and fatter — so the regression is guarded statically.

The struct-of-arrays event heap added the second invariant: its sift
hot paths (``push``/``pop``/``_sift*`` in :mod:`repro.des.soa_heap`,
``_push_key``/``_pop_key`` in :mod:`repro.des.queues`) are index
arithmetic over parallel primitive arrays *by design* — a tuple or list
literal creeping in reintroduces the per-event boxing the SoA layout
exists to eliminate (and defeats mypyc's unboxing in the compiled
build).  The one sanctioned container is the single result tuple that
hands a freed payload slot back to the caller, suppressed inline where
it occurs.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from ..engine import Finding, ModuleInfo, Rule, Severity, register_rule

#: The hot modules inventoried in docs/PERFORMANCE.md.
HOT_MODULE_GLOBS = (
    "repro/des/*.py",
    "repro/net/channel.py",
    "repro/cache/*.py",
    # The population pool holds one PooledMember per absorbed client —
    # at megacell scale that is ~10^6 instances, so object layout IS the
    # memory bound the aggregation layer exists to enforce.
    "repro/sim/population.py",
)

#: Base classes under which ``__slots__`` is pointless or impossible.
#: Exception instances always carry a ``__dict__`` (BaseException), and
#: Enum/Protocol/NamedTuple/TypedDict machinery manages its own storage.
_EXEMPT_BASE_SUFFIXES = ("Error", "Exception", "Warning", "Interrupt")
_EXEMPT_BASE_NAMES = frozenset(
    {
        "BaseException",
        "Enum",
        "IntEnum",
        "StrEnum",
        "Flag",
        "IntFlag",
        "Protocol",
        "NamedTuple",
        "TypedDict",
    }
)


def _base_name(node: ast.expr) -> str:
    """Rightmost dotted component of a base-class expression."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Subscript):  # Generic[...] bases
        return _base_name(node.value)
    return ""


def _declares_slots(cls: ast.ClassDef) -> bool:
    for stmt in cls.body:
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    return False


def _dataclass_with_slots(cls: ast.ClassDef) -> bool:
    for deco in cls.decorator_list:
        if isinstance(deco, ast.Call):
            name = _base_name(deco.func)
            if name == "dataclass":
                for kw in deco.keywords:
                    if (
                        kw.arg == "slots"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                    ):
                        return True
    return False


#: Modules holding hand-written heap sifts over parallel arrays.
_SIFT_MODULES = ("repro/des/soa_heap.py", "repro/des/queues.py")

#: Function names that are sift hot paths in those modules.
_SIFT_FUNC_NAMES = frozenset({"push", "pop", "_push_key", "_pop_key"})

#: Container-literal nodes that allocate per call/iteration.
_CONTAINER_NODES = (ast.Tuple, ast.List, ast.Set, ast.Dict, ast.ListComp)


def _is_sift_function(node: ast.FunctionDef) -> bool:
    return node.name in _SIFT_FUNC_NAMES or "sift" in node.name


def _container_literals(fn: ast.FunctionDef) -> Iterable[ast.expr]:
    """Tuple/list/set/dict literals in *fn*, skipping annotations.

    ``ast.Tuple`` in a Store context (``a, b = ...`` unpacking) compiles
    to plain stack shuffling, not an allocation, so only Load-context
    tuples count.  Annotations (``Tuple[float, int, Any]`` et al.) are
    type expressions, not runtime allocations, and are skipped.
    """
    skip = set()
    for node in ast.walk(fn):
        annotation = getattr(node, "annotation", None) or getattr(
            node, "returns", None
        )
        if annotation is not None:
            skip.update(id(sub) for sub in ast.walk(annotation))
    for node in ast.walk(fn):
        if id(node) in skip or not isinstance(node, _CONTAINER_NODES):
            continue
        if isinstance(node, ast.Tuple) and not isinstance(node.ctx, ast.Load):
            continue
        yield node


def _is_exempt(cls: ast.ClassDef) -> bool:
    for base in cls.bases:
        name = _base_name(base)
        if name in _EXEMPT_BASE_NAMES or name.endswith(_EXEMPT_BASE_SUFFIXES):
            return True
    for kw in cls.keywords:  # class Foo(metaclass=..., total=...) styles
        if kw.arg == "metaclass":
            return True
    return False


@register_rule
class SlotsRule(Rule):
    """PERF001: classes in hot modules must declare ``__slots__``."""

    code = "PERF001"
    name = "hot-class-slots"
    description = "hot-module class without __slots__"
    severity = Severity.ERROR
    include = HOT_MODULE_GLOBS
    exclude = ("repro/*/__init__.py",)

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if _is_exempt(node):
                continue
            if _declares_slots(node) or _dataclass_with_slots(node):
                continue
            findings.append(
                self.finding(
                    module,
                    node.lineno,
                    f"class {node.name} in a hot module lacks __slots__ "
                    "(docs/PERFORMANCE.md inventory); subclasses of slotted "
                    "classes need an explicit __slots__ = () too",
                )
            )
        if module.path in _SIFT_MODULES:
            findings.extend(self._check_sift_allocations(module))
        return findings

    def _check_sift_allocations(self, module: ModuleInfo) -> Iterable[Finding]:
        """Flag container literals in the heap sift hot paths."""
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.FunctionDef):
                continue
            if not _is_sift_function(node):
                continue
            for literal in _container_literals(node):
                kind = type(literal).__name__.lower()
                yield self.finding(
                    module,
                    literal.lineno,
                    f"{kind} literal in sift hot path {node.name}(): the "
                    "SoA heap sifts must stay index arithmetic over the "
                    "parallel primitive arrays (no per-event boxing)",
                )
