"""Built-in rule set.  Importing this package registers every rule."""

from . import api, architecture, determinism, performance

__all__ = ["api", "architecture", "determinism", "performance"]
