"""Built-in rule set.  Importing this package registers every rule."""

from . import (
    api,
    architecture,
    asynchrony,
    determinism,
    hygiene,
    performance,
    streams,
)

__all__ = [
    "api",
    "architecture",
    "asynchrony",
    "determinism",
    "hygiene",
    "performance",
    "streams",
]
