"""Forward dataflow: which values are (or contain) RNG stream handles.

DET004's question — "is every random draw traceable to a named
:class:`repro.des.rng.RandomStream`, and does any stream handle escape
its owning component?" — is a taint problem.  Taint **sources** are the
two ways the codebase mints streams:

* ``RandomStream(seed, name)`` construction, and
* ``<anything>.stream(name)`` — the :class:`RandomStreams` factory
  method (any ``.stream()`` call taints: over-approximate, never miss).

Taint then propagates through assignments, returns, and call arguments
to a fixpoint over the whole project:

* **locals** per function;
* **parameters** — seeded from annotations mentioning ``RandomStream``
  (covers ``Optional[RandomStream]`` etc.) and grown interprocedurally
  from call sites passing tainted arguments;
* **returns** — functions whose return value may be a stream;
* **attributes** — keyed by *attribute name alone*, project-wide
  (``self.stream = <tainted>`` anywhere taints ``x.stream`` everywhere).
  Deliberately coarse: the analysis has no alias information, and for a
  gate the safe direction is "more values count as streams", which can
  only *reduce* untraceable-draw findings and costs nothing for the
  escape checks (those fire on stores, not reads);
* **module globals** per module.

Along the way the engine records the two escape-shaped *events* DET004
reports: stores of tainted values into module/class/``global`` state,
and tainted arguments crossing a package boundary (the rule judges the
latter against the ARCH001 layering DAG).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .callgraph import CallGraph, CallSite, FunctionInfo
from .engine import ModuleInfo

__all__ = [
    "DRAW_METHODS",
    "CrossPackagePass",
    "SharedStateStore",
    "StreamTaint",
    "scoped_walk",
]

#: The draw surface of :class:`repro.des.rng.RandomStream`.
DRAW_METHODS = frozenset(
    {
        "exponential",
        "uniform",
        "randint",
        "bernoulli",
        "poisson_at_least_one",
        "choice_without_replacement",
        "shuffled",
    }
)

#: Constructors that mint stream objects.
_STREAM_CLASSES = frozenset({"RandomStream", "RandomStreams"})
#: The factory method name (``RandomStreams.stream``).
_FACTORY_METHOD = "stream"

#: Scope qualname used for module-level code of a given module path.
def module_scope(path: str) -> str:
    return f"{path}::<module>"


class SharedStateStore:
    """A tainted value stored into module-level / class-level / ``global``
    state — the "stream handle on shared state" escape (DET004)."""

    __slots__ = ("module", "lineno", "target", "kind")

    def __init__(self, module: ModuleInfo, lineno: int, target: str, kind: str) -> None:
        self.module = module
        self.lineno = lineno
        self.target = target
        #: ``module-global`` | ``global-statement`` | ``class-attribute``
        self.kind = kind


class CrossPackagePass:
    """A tainted argument handed to a function in another package.

    ``fuzzy`` marks passes found only through duck-typed by-name call
    resolution — DET004 skips those (protocol injection across layers is
    the architecture's sanctioned inversion mechanism; judging every
    same-named method project-wide would flag it constantly)."""

    __slots__ = ("module", "lineno", "callee", "param", "fuzzy")

    def __init__(
        self,
        module: ModuleInfo,
        lineno: int,
        callee: FunctionInfo,
        param: str,
        fuzzy: bool,
    ) -> None:
        self.module = module
        self.lineno = lineno
        self.callee = callee
        self.param = param
        self.fuzzy = fuzzy


def scoped_walk(stmts: List[ast.stmt]) -> Iterator[ast.AST]:
    """Walk *stmts* without descending into nested function/class scopes.

    Nested ``def``s, lambdas, and class bodies are separate scopes with
    their own taint state; yielding their interiors here would attribute
    their effects to the enclosing scope.
    """
    stack: List[ast.AST] = list(stmts)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
        ):
            continue  # boundary nodes are yielded but never entered
        stack.extend(ast.iter_child_nodes(node))


class StreamTaint:
    """Whole-project stream-handle taint, computed to a fixpoint."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        #: (function qualname, parameter name)
        self.tainted_params: Set[Tuple[str, str]] = set()
        #: function qualnames whose return value may be a stream
        self.tainted_returns: Set[str] = set()
        #: attribute names (project-wide, see module docstring)
        self.tainted_attrs: Set[str] = set()
        #: (module path, global name)
        self.tainted_globals: Set[Tuple[str, str]] = set()
        #: scope qualname -> tainted local names
        self.locals_of: Dict[str, Set[str]] = {}
        self.shared_stores: List[SharedStateStore] = []
        self.cross_package: List[CrossPackagePass] = []
        #: id(ast.Call) -> resolved CallSite (from the call graph)
        self._site: Dict[int, CallSite] = {}
        for sites in graph.calls.values():
            for s in sites:
                self._site[id(s.node)] = s
        self._seen_stores: Set[Tuple[str, int, str]] = set()
        self._seen_passes: Set[Tuple[str, int, str, str]] = set()
        self._seed_annotations()
        self._fixpoint()

    # -- setup -------------------------------------------------------------

    def _seed_annotations(self) -> None:
        for qual, info in self.graph.functions.items():
            for param, annotation in info.annotations.items():
                if "RandomStream" in annotation:
                    self.tainted_params.add((qual, param))

    def _state_size(self) -> int:
        return (
            len(self.tainted_params)
            + len(self.tainted_returns)
            + len(self.tainted_attrs)
            + len(self.tainted_globals)
            + sum(len(v) for v in self.locals_of.values())
        )

    def _fixpoint(self) -> None:
        for _ in range(64):  # far beyond any real call-chain depth
            before = self._state_size()
            for module in self.graph.project.modules:
                if isinstance(module.tree, ast.Module):
                    self._process_module_scope(module)
            for info in self.graph.functions.values():
                self._process_function(info)
            if self._state_size() == before:
                break

    # -- per-scope transfer ------------------------------------------------

    def _process_module_scope(self, module: ModuleInfo) -> None:
        scope = module_scope(module.path)
        # Class bodies execute at import time; their assignments are
        # shared (class-attribute) state.
        pending: List[Tuple[List[ast.stmt], Optional[ast.ClassDef]]] = [
            (list(module.tree.body), None)
        ]
        while pending:
            stmts, cls = pending.pop()
            for node in scoped_walk(stmts):
                if isinstance(node, ast.ClassDef):
                    pending.append((list(node.body), node))
                else:
                    self._transfer(node, scope, module, cls)

    def _process_function(self, info: FunctionInfo) -> None:
        scope = info.qualname
        local = self.locals_of.setdefault(scope, set())
        for param in info.params:
            if (info.qualname, param) in self.tainted_params:
                local.add(param)
        node = info.node
        if isinstance(node, ast.Lambda):
            if self.expr_tainted(scope, info.module, node.body):
                self.tainted_returns.add(scope)
            for sub in ast.walk(node.body):
                if isinstance(sub, ast.Call):
                    self._propagate_call(sub, scope, info.module)
            return
        declared_global: Set[str] = set()
        for stmt in scoped_walk(list(node.body)):
            if isinstance(stmt, ast.Global):
                declared_global.update(stmt.names)
        for sub in scoped_walk(list(node.body)):
            self._transfer(sub, scope, info.module, None, declared_global, info)

    def _transfer(
        self,
        node: ast.AST,
        scope: str,
        module: ModuleInfo,
        cls: Optional[ast.ClassDef],
        declared_global: Optional[Set[str]] = None,
        info: Optional[FunctionInfo] = None,
    ) -> None:
        if isinstance(node, ast.Assign):
            if self.expr_tainted(scope, module, node.value):
                for target in node.targets:
                    self._store(target, scope, module, cls, declared_global)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if self.expr_tainted(scope, module, node.value):
                self._store(node.target, scope, module, cls, declared_global)
        elif isinstance(node, ast.AugAssign):
            if self.expr_tainted(scope, module, node.value):
                self._store(node.target, scope, module, cls, declared_global)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if self.expr_tainted(scope, module, node.iter):
                self._store(node.target, scope, module, cls, declared_global)
        elif isinstance(node, ast.NamedExpr):
            if self.expr_tainted(scope, module, node.value):
                self._store(node.target, scope, module, cls, declared_global)
        elif isinstance(node, ast.Return) and node.value is not None:
            if info is not None and self.expr_tainted(scope, module, node.value):
                self.tainted_returns.add(scope)
        elif isinstance(node, ast.Call):
            self._propagate_call(node, scope, module)

    def _store(
        self,
        target: ast.expr,
        scope: str,
        module: ModuleInfo,
        cls: Optional[ast.ClassDef],
        declared_global: Optional[Set[str]],
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._store(element, scope, module, cls, declared_global)
        elif isinstance(target, ast.Starred):
            self._store(target.value, scope, module, cls, declared_global)
        elif isinstance(target, ast.Name):
            name = target.id
            if cls is not None:
                self.tainted_attrs.add(name)
                self._record_store(
                    module, target.lineno, f"{cls.name}.{name}", "class-attribute"
                )
            elif declared_global is not None and name not in declared_global:
                self.locals_of.setdefault(scope, set()).add(name)
            else:
                kind = (
                    "global-statement"
                    if declared_global is not None
                    else "module-global"
                )
                self.tainted_globals.add((module.path, name))
                self._record_store(module, target.lineno, name, kind)
        elif isinstance(target, ast.Attribute):
            self.tainted_attrs.add(target.attr)
        elif isinstance(target, ast.Subscript):
            # Storing a stream into a container: taint the container.
            self._store(target.value, scope, module, cls, declared_global)

    def _record_store(
        self, module: ModuleInfo, lineno: int, target: str, kind: str
    ) -> None:
        key = (module.path, lineno, target)
        if key not in self._seen_stores:
            self._seen_stores.add(key)
            self.shared_stores.append(SharedStateStore(module, lineno, target, kind))

    # -- calls -------------------------------------------------------------

    def _propagate_call(
        self, call: ast.Call, scope: str, module: ModuleInfo
    ) -> None:
        site = self._site.get(id(call))
        if site is None or not site.targets:
            return
        for target_qual in site.targets:
            callee = self.graph.functions.get(target_qual)
            if callee is None:
                continue
            params = list(callee.params)
            if callee.cls is not None and params and params[0] in ("self", "cls"):
                params = params[1:]
            for index, arg in enumerate(call.args):
                if isinstance(arg, ast.Starred) or index >= len(params):
                    continue
                if self.expr_tainted(scope, module, arg):
                    self._taint_param(
                        callee, params[index], module, arg.lineno, site.fuzzy
                    )
            for keyword in call.keywords:
                if keyword.arg is None:
                    continue
                if keyword.arg in callee.params and self.expr_tainted(
                    scope, module, keyword.value
                ):
                    self._taint_param(
                        callee, keyword.arg, module, keyword.value.lineno, site.fuzzy
                    )

    def _taint_param(
        self,
        callee: FunctionInfo,
        param: str,
        module: ModuleInfo,
        lineno: int,
        fuzzy: bool,
    ) -> None:
        self.tainted_params.add((callee.qualname, param))
        if callee.module.package != module.package:
            key = (module.path, lineno, callee.qualname, param)
            if key not in self._seen_passes:
                self._seen_passes.add(key)
                self.cross_package.append(
                    CrossPackagePass(module, lineno, callee, param, fuzzy)
                )

    # -- expression taint --------------------------------------------------

    def is_source(self, call: ast.Call) -> bool:
        func = call.func
        if isinstance(func, ast.Name) and func.id in _STREAM_CLASSES:
            return True
        if isinstance(func, ast.Attribute):
            if func.attr == _FACTORY_METHOD:
                return True
            # repro.des.rng.RandomStream spelled through a module alias.
            if func.attr in _STREAM_CLASSES:
                return True
        return False

    def expr_tainted(self, scope: str, module: ModuleInfo, expr: ast.expr) -> bool:
        if isinstance(expr, ast.Name):
            if expr.id in self.locals_of.get(scope, ()):
                return True
            return (module.path, expr.id) in self.tainted_globals
        if isinstance(expr, ast.Attribute):
            return expr.attr in self.tainted_attrs
        if isinstance(expr, ast.Call):
            if self.is_source(expr):
                return True
            site = self._site.get(id(expr))
            if site is not None:
                return any(t in self.tainted_returns for t in site.targets)
            return False
        if isinstance(expr, ast.Await):
            return self.expr_tainted(scope, module, expr.value)
        if isinstance(expr, ast.NamedExpr):
            return self.expr_tainted(scope, module, expr.value)
        if isinstance(expr, ast.IfExp):
            return self.expr_tainted(scope, module, expr.body) or self.expr_tainted(
                scope, module, expr.orelse
            )
        if isinstance(expr, ast.BoolOp):
            return any(self.expr_tainted(scope, module, v) for v in expr.values)
        if isinstance(expr, ast.Subscript):
            return self.expr_tainted(scope, module, expr.value)
        if isinstance(expr, ast.Starred):
            return self.expr_tainted(scope, module, expr.value)
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            return any(self.expr_tainted(scope, module, e) for e in expr.elts)
        return False

    # -- queries for DET004 ------------------------------------------------

    def draw_sites(self) -> Iterator[Tuple[ModuleInfo, str, ast.Call]]:
        """Every ``<receiver>.<draw_method>(...)`` call: (module, scope,
        call).  Scope is the enclosing function qualname or the module
        scope sentinel."""
        for caller, sites in self.graph.calls.items():
            for site in sites:
                if site.attr in DRAW_METHODS and isinstance(
                    site.node.func, ast.Attribute
                ):
                    info = self.graph.functions.get(caller)
                    if info is not None:
                        yield info.module, caller, site.node
        # Module-level draw calls are keyed under caller "" and carry no
        # module back-reference; rescan those rare sites directly.
        for module in self.graph.project.modules:
            if not isinstance(module.tree, ast.Module):
                continue
            scope = module_scope(module.path)
            for node in scoped_walk(list(module.tree.body)):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in DRAW_METHODS
                ):
                    yield module, scope, node

    def scope_of(self, call: ast.Call) -> Optional[str]:
        """Qualname of the function containing *call* (from the call
        graph's site index), or ``None`` for unindexed/module-level."""
        site = self._site.get(id(call))
        return site.caller if site is not None and site.caller else None

    def receiver_tainted(self, module: ModuleInfo, scope: str, call: ast.Call) -> bool:
        assert isinstance(call.func, ast.Attribute)
        return self.expr_tainted(scope, module, call.func.value)


def build_stream_taint(graph: CallGraph) -> StreamTaint:
    """Build (or fetch the per-graph cached) taint result."""
    cached = getattr(graph, "_taint", None)
    if not isinstance(cached, StreamTaint):
        cached = StreamTaint(graph)
        graph._taint = cached  # type: ignore[attr-defined]
    return cached
