"""repro.checks — simulation-invariant static analysis.

A small AST-based lint engine encoding this repository's *semantic*
invariants — the ones generic linters cannot know about:

* protocol code must be deterministic (no wall clock, no unseeded
  randomness, no iteration-order hazards) so seeded runs replay
  bit-identically and golden tests stay meaningful;
* the hot-path classes inventoried in ``docs/PERFORMANCE.md`` must keep
  their ``__slots__`` optimisation;
* the package layering DAG (``des -> net -> reports -> schemes -> sim ->
  chaos -> experiments``) must hold, with no import cycles;
* every registered invalidation scheme must implement the policy hook
  surface declared in :mod:`repro.schemes.base`;
* whole-program rules over the project call graph
  (:mod:`repro.checks.callgraph`) and stream-taint result
  (:mod:`repro.checks.dataflow`): RNG draws traceable to named streams
  with no escaping handles (DET004), every CacheNode-to-backend path
  breaker-wrapped (SVC001), and async hygiene in the service tier
  (ASYNC001/ASYNC002).

Run it with ``python -m repro.checks src`` (or the ``repro-checks``
console script).  See ``docs/STATIC_ANALYSIS.md`` for the rule catalog,
the ``checks: ignore[CODE]`` suppression syntax, and the baseline
workflow for grandfathered findings.
"""

from .baseline import Baseline
from .engine import (
    Finding,
    ModuleInfo,
    Project,
    Rule,
    Severity,
    all_rules,
    get_rule,
    register_rule,
    run_checks,
)

__all__ = [
    "Baseline",
    "Finding",
    "ModuleInfo",
    "Project",
    "Rule",
    "Severity",
    "all_rules",
    "get_rule",
    "register_rule",
    "run_checks",
]
