"""Command line for the static-analysis engine.

Exit codes (stable contract, tested in ``tests/checks``):

* **0** — no findings (after suppressions and baseline filtering), or a
  baseline was (re)written;
* **1** — at least one finding;
* **2** — usage error (unknown flag, unknown rule code, missing path,
  unreadable baseline).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .baseline import DEFAULT_BASELINE_NAME, Baseline
from .engine import Rule, all_rules, get_rule, run_checks

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-checks",
        description="Run the repro simulation-invariant static checks.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to scan (default: src)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help=(
            "baseline file of grandfathered findings "
            f"(default: {DEFAULT_BASELINE_NAME} when it exists)"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record every current finding into the baseline file and exit 0",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file (report grandfathered findings too)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="parse files with N worker processes (default: serial)",
    )
    parser.add_argument(
        "--callgraph-dump",
        action="store_true",
        help="print the resolved project call graph (caller -> callee) and exit",
    )
    return parser


def _select_rules(spec: Optional[str]) -> List[Rule]:
    if spec is None:
        return all_rules()
    rules: List[Rule] = []
    for code in spec.split(","):
        code = code.strip()
        if code:
            rules.append(get_rule(code))  # KeyError -> usage error upstream
    if not rules:
        raise KeyError("empty --select")
    return rules


def _dump_callgraph(paths: Sequence[str], jobs: Optional[int]) -> int:
    """Debugging aid behind ``--callgraph-dump``: print resolved edges."""
    from .callgraph import build_call_graph
    from .engine import ModuleInfo, Project, _collect_files, _parse_files

    try:
        parsed = _parse_files(_collect_files(paths), jobs)
    except FileNotFoundError as exc:
        print(f"error: no such path: {exc.args[0]}", file=sys.stderr)
        return EXIT_USAGE
    modules = [m for m in parsed if isinstance(m, ModuleInfo)]
    graph = build_call_graph(Project(modules))
    print(graph.dump())
    print(
        f"# {len(graph.functions)} functions, "
        f"{sum(len(e) for e in graph.edges.values())} edges "
        f"across {len(modules)} modules",
        file=sys.stderr,
    )
    return EXIT_CLEAN


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  [{rule.severity.value:7s}]  {rule.description}")
        return EXIT_CLEAN

    if args.callgraph_dump:
        return _dump_callgraph(args.paths, args.jobs)

    try:
        rules = _select_rules(args.select)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return EXIT_USAGE

    baseline_path = (
        Path(args.baseline) if args.baseline else Path(DEFAULT_BASELINE_NAME)
    )
    baseline: Optional[Baseline] = None
    if not args.no_baseline and not args.write_baseline and baseline_path.exists():
        try:
            baseline = Baseline.load(baseline_path)
        except (ValueError, KeyError, OSError) as exc:
            print(f"error: bad baseline {baseline_path}: {exc}", file=sys.stderr)
            return EXIT_USAGE

    try:
        findings = run_checks(
            args.paths, rules=rules, baseline=baseline, jobs=args.jobs
        )
    except FileNotFoundError as exc:
        print(f"error: no such path: {exc.args[0]}", file=sys.stderr)
        return EXIT_USAGE

    if args.write_baseline:
        Baseline.from_findings(findings).save(baseline_path)
        print(f"wrote {len(findings)} finding(s) to {baseline_path}")
        return EXIT_CLEAN

    for finding in findings:
        print(finding.format())
    n = len(findings)
    suffix = f" (baseline: {len(baseline)} grandfathered)" if baseline else ""
    if n:
        print(f"{n} finding(s){suffix}")
        return EXIT_FINDINGS
    print(f"clean{suffix}")
    return EXIT_CLEAN


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
