"""Project-wide symbol table and call graph for interprocedural rules.

The per-file AST rules (DET001-003, PERF001, API001/002) cannot see a
``random`` draw seeded in one module and consumed two modules away, or a
service code path that reaches an ``L2Backend`` without passing the
breaker/retry/deadline wrapper.  This module builds the shared
infrastructure those cross-module rules (DET004, SVC001, ASYNC001/002)
query: every function/method definition in the scanned tree, each
module's import table, and a resolved call-site graph.

Approximations (documented in ``docs/STATIC_ANALYSIS.md``):

* **Name calls** resolve through the module's import table (absolute and
  relative ``from``-imports both supported) or to a same-module
  definition; calling a project class resolves to its ``__init__``.
* **``self.method()``** resolves along the enclosing class's base chain
  (bases followed across modules via the import table).
* **``obj.method()``** on anything else resolves *by name* to every
  class method in the project with that name — an over-approximation
  (extra edges, never missing ones) that makes duck-typed dependency
  injection (``self.backend.backend_fetch``) visible to reachability
  rules.
* **Lambdas** are first-class graph nodes.  A lambda passed as an
  argument to a call that resolves inside the project hangs off the
  *callee* (the receiver is who invokes it) — which is exactly what lets
  SVC001 treat ``call_with_retry(..., lambda: backend.backend_fetch(i))``
  as passing through the wrapper.  A lambda handed to unresolved code
  (``sorted``, ``functools.partial``) hangs off the enclosing function.
* **Nested ``def``s** get an edge from their enclosing function (the
  definition may escape; treating definition as potential call
  over-approximates reachability, the conservative direction).
* Dynamic dispatch via ``getattr``/``exec`` and calls through container
  elements are invisible: the graph under-approximates there.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .engine import ModuleInfo, Project

__all__ = [
    "CallGraph",
    "CallSite",
    "FunctionInfo",
    "build_call_graph",
    "dotted_name",
]

_FuncNode = "ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda"


def dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for a pure Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    cur: ast.expr = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    parts.append(cur.id)
    return ".".join(reversed(parts))


def module_dotted(package_path: str) -> str:
    """``repro/service/node.py`` -> ``repro.service.node``."""
    path = package_path
    if path.endswith("/__init__.py"):
        path = path[: -len("/__init__.py")]
    elif path.endswith(".py"):
        path = path[:-3]
    return path.replace("/", ".")


def _path_candidates(dotted: str) -> Tuple[str, str]:
    """Module and package file paths a dotted module name may live at."""
    base = dotted.replace(".", "/")
    return f"{base}.py", f"{base}/__init__.py"


class FunctionInfo:
    """One function, method, nested def, or lambda in the project."""

    __slots__ = (
        "qualname",
        "module",
        "name",
        "cls",
        "node",
        "is_async",
        "lineno",
        "params",
        "annotations",
    )

    def __init__(
        self,
        qualname: str,
        module: ModuleInfo,
        name: str,
        cls: Optional[str],
        node: "ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda",
    ) -> None:
        self.qualname = qualname
        self.module = module
        self.name = name
        #: Immediately enclosing class name, or None for plain functions.
        self.cls = cls
        self.node = node
        self.is_async = isinstance(node, ast.AsyncFunctionDef)
        self.lineno = node.lineno
        args = node.args
        ordered = [*args.posonlyargs, *args.args]
        self.params: Tuple[str, ...] = tuple(a.arg for a in ordered) + tuple(
            a.arg for a in args.kwonlyargs
        )
        #: Parameter name -> unparsed annotation text.
        self.annotations: Dict[str, str] = {}
        if not isinstance(node, ast.Lambda):
            for a in [*ordered, *args.kwonlyargs]:
                if a.annotation is not None:
                    self.annotations[a.arg] = ast.unparse(a.annotation)

    @property
    def package(self) -> str:
        return self.module.package

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FunctionInfo {self.qualname}>"


class CallSite:
    """One call expression inside one function."""

    __slots__ = (
        "caller",
        "node",
        "lineno",
        "attr",
        "dotted",
        "targets",
        "awaited",
        "fuzzy",
    )

    def __init__(
        self,
        caller: str,
        node: ast.Call,
        *,
        attr: Optional[str],
        dotted: Optional[str],
        targets: Tuple[str, ...],
        awaited: bool,
        fuzzy: bool,
    ) -> None:
        #: Qualname of the enclosing function ("" for module level).
        self.caller = caller
        self.node = node
        self.lineno = node.lineno
        #: Bare method name for attribute calls (``backend_fetch``).
        self.attr = attr
        #: Import-resolved dotted path (``time.sleep``) when the callee
        #: is a pure Name/Attribute chain.
        self.dotted = dotted
        #: Qualnames of project functions this call may land in.
        self.targets = targets
        self.awaited = awaited
        #: True when targets came from duck-typed by-name resolution
        #: (every project method with this name) rather than an
        #: import/self-resolved definition.
        self.fuzzy = fuzzy


_ClassKey = Tuple[str, str]


class CallGraph:
    """Symbol table + call sites + edges over one :class:`Project`."""

    def __init__(self, project: Project) -> None:
        self.project = project
        #: qualname -> FunctionInfo (lambdas included).
        self.functions: Dict[str, FunctionInfo] = {}
        #: method name -> qualnames of class-scoped defs with that name.
        self.methods_by_name: Dict[str, List[str]] = {}
        #: (module path, class name) -> ClassDef (top-level classes).
        self.classes: Dict[_ClassKey, ast.ClassDef] = {}
        #: per-module import table: local name -> absolute dotted target.
        self.imports: Dict[str, Dict[str, str]] = {}
        #: caller qualname -> call sites within it ("" = module level).
        self.calls: Dict[str, List[CallSite]] = {}
        #: caller qualname -> callee qualnames.
        self.edges: Dict[str, Set[str]] = {}
        #: id(def node) -> qualname (internal index).
        self._node_qual: Dict[int, str] = {}
        self._build()

    # -- construction ------------------------------------------------------

    def _build(self) -> None:
        for module in self.project.modules:
            if isinstance(module.tree, ast.Module):
                self.imports[module.path] = _import_table(module.tree, module.path)
                self._index_module(module)
        for module in self.project.modules:
            if isinstance(module.tree, ast.Module):
                self._collect_calls(module)

    def _index_module(self, module: ModuleInfo) -> None:
        """Register every def/class/lambda with a stable qualname."""

        def visit(node: ast.AST, prefix: str, cls: Optional[str]) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{module.path}::{prefix}{child.name}"
                    self._add(
                        FunctionInfo(qual, module, child.name, cls, child)
                    )
                    visit(child, f"{prefix}{child.name}.<locals>.", None)
                elif isinstance(child, ast.ClassDef):
                    if not prefix:
                        self.classes[(module.path, child.name)] = child
                    visit(child, f"{prefix}{child.name}.", child.name)
                elif isinstance(child, ast.Lambda):
                    qual = (
                        f"{module.path}::"
                        f"<lambda:{child.lineno}:{child.col_offset}>"
                    )
                    self._add(FunctionInfo(qual, module, "<lambda>", None, child))
                    visit(child, prefix, None)
                else:
                    visit(child, prefix, cls)

        visit(module.tree, "", None)

    def _add(self, info: FunctionInfo) -> None:
        self.functions[info.qualname] = info
        self._node_qual[id(info.node)] = info.qualname
        if info.cls is not None:
            self.methods_by_name.setdefault(info.name, []).append(info.qualname)

    # -- resolution --------------------------------------------------------

    def module_qual(self, dotted: str) -> Optional[str]:
        """Project qualname for dotted ``repro.x.y.func``, if indexed."""
        mod, _, obj = dotted.rpartition(".")
        if not mod:
            return None
        for path in _path_candidates(mod):
            qual = f"{path}::{obj}"
            if qual in self.functions:
                return qual
        return None

    def resolve_class(
        self, module_path: str, name: str, _seen: Optional[Set[_ClassKey]] = None
    ) -> Optional[Tuple[str, ast.ClassDef]]:
        """Find a class by local *name*, following the import table."""
        seen = _seen if _seen is not None else set()
        key = (module_path, name)
        if key in seen:
            return None
        seen.add(key)
        cls = self.classes.get(key)
        if cls is not None:
            return module_path, cls
        target = self.imports.get(module_path, {}).get(name)
        if target:
            mod, _, obj = target.rpartition(".")
            for path in _path_candidates(mod):
                if path in self.imports:
                    return self.resolve_class(path, obj, seen)
        return None

    def method_on_class(
        self, module_path: str, cls_name: str, method: str
    ) -> Optional[str]:
        """Resolve *method* along the class's base chain; qualname or None."""
        seen: Set[_ClassKey] = set()

        def walk(mod: str, name: str) -> Optional[str]:
            key = (mod, name)
            if key in seen:
                return None
            seen.add(key)
            resolved = self.resolve_class(mod, name)
            if resolved is None:
                return None
            rmod, cls = resolved
            qual = f"{rmod}::{cls.name}.{method}"
            if qual in self.functions:
                return qual
            for base in cls.bases:
                base_name = (
                    base.id
                    if isinstance(base, ast.Name)
                    else base.attr
                    if isinstance(base, ast.Attribute)
                    else None
                )
                if base_name:
                    found = walk(rmod, base_name)
                    if found:
                        return found
            return None

        return walk(module_path, cls_name)

    def resolve_call(
        self, module: ModuleInfo, func: Optional[FunctionInfo], call: ast.Call
    ) -> Tuple[Optional[str], Optional[str], Tuple[str, ...], bool]:
        """(attr, dotted, target qualnames, fuzzy) for one call expression.

        ``fuzzy`` is True when the targets are the duck-typed by-name
        fallback rather than an import/self-resolved definition.
        """
        table = self.imports.get(module.path, {})
        callee = call.func
        raw_dotted = dotted_name(callee)
        resolved_dotted: Optional[str] = None
        if raw_dotted is not None:
            head, _, rest = raw_dotted.partition(".")
            target = table.get(head)
            if target is not None:
                resolved_dotted = target + ("." + rest if rest else "")
            else:
                resolved_dotted = raw_dotted
        if isinstance(callee, ast.Name):
            qual = f"{module.path}::{callee.id}"
            if qual in self.functions:
                return None, resolved_dotted, (qual,), False
            target = table.get(callee.id)
            if target:
                found = self.module_qual(target)
                if found is not None:
                    return None, resolved_dotted, (found,), False
            # Class instantiation -> its __init__ when resolvable.
            cls = self.resolve_class(module.path, callee.id)
            if cls is not None:
                rmod, cdef = cls
                init = self.method_on_class(rmod, cdef.name, "__init__")
                return None, resolved_dotted, (init,) if init else (), False
            return None, resolved_dotted, (), False
        if isinstance(callee, ast.Attribute):
            attr = callee.attr
            # self.method() -> enclosing class chain.
            if (
                isinstance(callee.value, ast.Name)
                and callee.value.id == "self"
                and func is not None
                and func.cls is not None
            ):
                qual = self.method_on_class(module.path, func.cls, attr)
                if qual is not None:
                    return attr, resolved_dotted, (qual,), False
            # module_alias.func() through the import table.
            if isinstance(callee.value, ast.Name):
                target = table.get(callee.value.id)
                if target:
                    found = self.module_qual(f"{target}.{attr}")
                    if found is not None:
                        return attr, resolved_dotted, (found,), False
            # Duck-typed: every project method with this name.
            return (
                attr,
                resolved_dotted,
                tuple(self.methods_by_name.get(attr, ())),
                True,
            )
        return None, None, (), False

    # -- call-site collection ---------------------------------------------

    def _collect_calls(self, module: ModuleInfo) -> None:
        graph = self

        class Visitor(ast.NodeVisitor):
            def __init__(self) -> None:
                #: Stack of (qualname, FunctionInfo|None) scopes.
                self.scope: List[Tuple[str, Optional[FunctionInfo]]] = [("", None)]
                self.awaiting: List[ast.expr] = []

            def _enter(self, node: ast.AST) -> None:
                qual = graph._node_qual.get(id(node), "")
                self.scope.append((qual, graph.functions.get(qual)))

            def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
                self._handle_def(node)

            def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
                self._handle_def(node)

            def _handle_def(
                self, node: "ast.FunctionDef | ast.AsyncFunctionDef"
            ) -> None:
                qual = graph._node_qual.get(id(node), "")
                caller = self.scope[-1][0]
                if caller and qual:
                    # Nested def: reachable from its enclosing function.
                    graph.edges.setdefault(caller, set()).add(qual)
                self._enter(node)
                for stmt in node.body:
                    self.visit(stmt)
                self.scope.pop()

            def visit_Lambda(self, node: ast.Lambda) -> None:
                self._enter(node)
                self.visit(node.body)
                self.scope.pop()

            def visit_Await(self, node: ast.Await) -> None:
                self.awaiting.append(node.value)
                self.visit(node.value)
                self.awaiting.pop()

            def visit_Call(self, node: ast.Call) -> None:
                caller, info = self.scope[-1]
                attr, dotted, targets, fuzzy = graph.resolve_call(
                    module, info, node
                )
                site = CallSite(
                    caller,
                    node,
                    attr=attr,
                    dotted=dotted,
                    targets=targets,
                    awaited=bool(self.awaiting) and self.awaiting[-1] is node,
                    fuzzy=fuzzy,
                )
                graph.calls.setdefault(caller, []).append(site)
                edges = graph.edges.setdefault(caller, set())
                edges.update(targets)
                # Lambda arguments: a resolved callee is who invokes
                # them; unresolved receivers leave them with the caller.
                owners = (
                    [graph.edges.setdefault(t, set()) for t in targets]
                    if targets
                    else [edges]
                )
                for arg in [*node.args, *[k.value for k in node.keywords]]:
                    if isinstance(arg, ast.Lambda):
                        qual = graph._node_qual.get(id(arg), "")
                        if qual:
                            for owner in owners:
                                owner.add(qual)
                for child in ast.iter_child_nodes(node):
                    self.visit(child)

        Visitor().visit(module.tree)

    # -- queries -----------------------------------------------------------

    def function_calls(self, qualname: str) -> List[CallSite]:
        return self.calls.get(qualname, [])

    def reachable(
        self, roots: Sequence[str], *, stop: Optional[Set[str]] = None
    ) -> Set[str]:
        """Qualnames reachable from *roots* over the edge set.

        Functions in *stop* are reached but not traversed *through* —
        the SVC001 wrapper-boundary semantics.
        """
        stop_set = stop or set()
        seen: Set[str] = set()
        frontier = list(roots)
        while frontier:
            cur = frontier.pop()
            if cur in seen:
                continue
            seen.add(cur)
            if cur in stop_set:
                continue
            frontier.extend(self.edges.get(cur, ()))
        return seen

    def witness_root(
        self, roots: Sequence[str], target: str, *, stop: Optional[Set[str]] = None
    ) -> Optional[str]:
        """One root from which *target* is reachable (for messages)."""
        for root in sorted(roots):
            if target in self.reachable([root], stop=stop):
                return root
        return None

    def dump(self) -> str:
        """Human-readable edge listing for ``--callgraph-dump``."""
        lines: List[str] = []
        for caller in sorted(self.edges):
            for callee in sorted(self.edges[caller]):
                lines.append(f"{caller or '<module>'} -> {callee}")
        return "\n".join(lines)


def _import_table(tree: ast.Module, module_path: str) -> Dict[str, str]:
    """Local name -> absolute dotted path, for every import in the module.

    ``import a.b`` binds ``a`` -> ``a``; ``import a.b as m`` binds ``m``
    -> ``a.b``; ``from a.b import c as d`` binds ``d`` -> ``a.b.c``.
    Relative imports resolve against *module_path* (``from ..des.rng
    import RandomStream`` in ``repro/service/retry.py`` binds
    ``RandomStream`` -> ``repro.des.rng.RandomStream``).
    """
    table: Dict[str, str] = {}
    package_parts = module_path.split("/")[:-1]  # __init__.py IS its package
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    table[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    table[head] = head
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module or ""
            else:
                parts = package_parts[: len(package_parts) - (node.level - 1)]
                base = ".".join(parts)
                if node.module:
                    base = f"{base}.{node.module}" if base else node.module
            if not base:
                continue
            for alias in node.names:
                table[alias.asname or alias.name] = f"{base}.{alias.name}"
    return table


def build_call_graph(project: Project) -> CallGraph:
    """Build (or fetch the per-project cached) call graph."""
    cached = project.callgraph_cache
    if not isinstance(cached, CallGraph):
        cached = CallGraph(project)
        project.callgraph_cache = cached
    return cached
