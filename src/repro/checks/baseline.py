"""Baseline file: grandfathered findings the gate tolerates.

The baseline is a checked-in JSON file mapping each tolerated finding to
its fingerprint ``(path, code, message)`` — line numbers are excluded on
purpose so edits elsewhere in a file do not churn the baseline.  The
workflow (see ``docs/STATIC_ANALYSIS.md``):

* ``python -m repro.checks src --write-baseline`` records every current
  finding and exits 0;
* subsequent runs stay silent for baselined findings and fail only on
  *new* ones;
* fixing a baselined finding leaves a stale entry behind — prune with
  ``--write-baseline`` again (the file is rewritten from scratch).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, List, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle with engine
    from .engine import Finding

DEFAULT_BASELINE_NAME = "checks-baseline.json"

_Fingerprint = Tuple[str, str, str]


class Baseline:
    """A set of finding fingerprints with JSON round-tripping."""

    __slots__ = ("_fingerprints",)

    def __init__(self, fingerprints: Iterable[_Fingerprint] = ()) -> None:
        self._fingerprints: Set[_Fingerprint] = set(fingerprints)

    def __contains__(self, fingerprint: _Fingerprint) -> bool:
        return fingerprint in self._fingerprints

    def __len__(self) -> int:
        return len(self._fingerprints)

    @classmethod
    def from_findings(cls, findings: Iterable["Finding"]) -> "Baseline":
        return cls(f.fingerprint for f in findings)

    @classmethod
    def load(cls, path: "str | Path") -> "Baseline":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        if not isinstance(data, dict) or data.get("version") != 1:
            raise ValueError(f"{path}: not a version-1 checks baseline")
        entries = data.get("findings", [])
        fingerprints: List[_Fingerprint] = []
        for entry in entries:
            fingerprints.append(
                (str(entry["path"]), str(entry["code"]), str(entry["message"]))
            )
        return cls(fingerprints)

    def save(self, path: "str | Path") -> None:
        entries = [
            {"path": p, "code": c, "message": m}
            for (p, c, m) in sorted(self._fingerprints)
        ]
        payload = {"version": 1, "findings": entries}
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
