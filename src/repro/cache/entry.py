"""Cache entry bookkeeping for a mobile client."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class CacheEntry:
    """One cached data item.

    Attributes
    ----------
    item:
        The item id.
    version:
        Server version the cached value reflects (ground truth only; a
        real client would hold the bytes).
    ts:
        The server time the value was coherent as of (the TS algorithm's
        ``t_c`` at fetch time).
    cert_epoch:
        The owning cache's certification epoch at insertion; entries are
        only covered by certifications issued *after* they were inserted
        (see :class:`~repro.cache.client_cache.ClientCache`).
    """

    item: int
    version: int
    ts: float
    cert_epoch: int = 0
