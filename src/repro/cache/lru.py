"""A small, exact LRU map.

Used for the clients' item caches (Section 4: "Cached data items are
managed using an LRU replacement policy").  Kept generic so tests can
model-check it against a reference implementation.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Iterator, Optional, Tuple


class LRUCache:
    """Bounded mapping evicting the least-recently-used entry on overflow."""

    def __init__(
        self, capacity: int, on_evict: Optional[Callable[[Any, Any], None]] = None
    ):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = int(capacity)
        self._data: "OrderedDict[Any, Any]" = OrderedDict()
        self._on_evict = on_evict
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data

    def get(self, key, touch: bool = True):
        """Return the value for *key* (None if absent); touching marks use."""
        try:
            value = self._data[key]
        except KeyError:
            return None
        if touch:
            self._data.move_to_end(key)
        return value

    def peek(self, key):
        """Return the value without refreshing recency (None if absent)."""
        return self._data.get(key)

    def put(self, key, value):
        """Insert/replace *key*; evicts the LRU entry when over capacity."""
        if key in self._data:
            self._data[key] = value
            self._data.move_to_end(key)
            return
        self._data[key] = value
        if len(self._data) > self.capacity:
            old_key, old_value = self._data.popitem(last=False)
            self.evictions += 1
            if self._on_evict is not None:
                self._on_evict(old_key, old_value)

    def remove(self, key) -> bool:
        """Delete *key* if present; returns whether it was there."""
        return self._data.pop(key, None) is not None

    def clear(self):
        """Drop every entry (without eviction callbacks)."""
        self._data.clear()

    def keys(self):
        """Keys in LRU-to-MRU order (a snapshot list)."""
        return list(self._data.keys())

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """Iterate ``(key, value)`` in LRU-to-MRU order."""
        return iter(list(self._data.items()))

    @property
    def lru_key(self):
        """The key next in line for eviction (None when empty)."""
        return next(iter(self._data), None)
