"""A small, exact LRU map.

Used for the clients' item caches (Section 4: "Cached data items are
managed using an LRU replacement policy").  Kept generic so tests can
model-check it against a reference implementation.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Generic, Iterator, List, Optional, Tuple, TypeVar

K = TypeVar("K")
V = TypeVar("V")


class LRUCache(Generic[K, V]):
    """Bounded mapping evicting the least-recently-used entry on overflow."""

    __slots__ = ("capacity", "_data", "_on_evict", "evictions")

    def __init__(
        self, capacity: int, on_evict: Optional[Callable[[K, V], None]] = None
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = int(capacity)
        self._data: "OrderedDict[K, V]" = OrderedDict()
        self._on_evict = on_evict
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: object) -> bool:
        return key in self._data

    def get(self, key: K, touch: bool = True) -> Optional[V]:
        """Return the value for *key* (None if absent); touching marks use."""
        try:
            value = self._data[key]
        except KeyError:
            return None
        if touch:
            self._data.move_to_end(key)
        return value

    def peek(self, key: K) -> Optional[V]:
        """Return the value without refreshing recency (None if absent)."""
        return self._data.get(key)

    def put(self, key: K, value: V) -> None:
        """Insert/replace *key*; evicts the LRU entry when over capacity."""
        if key in self._data:
            self._data[key] = value
            self._data.move_to_end(key)
            return
        self._data[key] = value
        if len(self._data) > self.capacity:
            old_key, old_value = self._data.popitem(last=False)
            self.evictions += 1
            if self._on_evict is not None:
                self._on_evict(old_key, old_value)

    def remove(self, key: K) -> bool:
        """Delete *key* if present; returns whether it was there."""
        return self._data.pop(key, None) is not None

    def clear(self) -> None:
        """Drop every entry (without eviction callbacks)."""
        self._data.clear()

    def keys(self) -> List[K]:
        """Keys in LRU-to-MRU order (a snapshot list)."""
        return list(self._data.keys())

    def items(self) -> Iterator[Tuple[K, V]]:
        """Iterate ``(key, value)`` in LRU-to-MRU order."""
        return iter(list(self._data.items()))

    @property
    def lru_key(self) -> Optional[K]:
        """The key next in line for eviction (None when empty)."""
        return next(iter(self._data), None)
