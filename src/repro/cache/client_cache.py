"""The mobile client's item cache with TS-style certification semantics.

The TS client algorithm (paper Figure 1) re-stamps every surviving entry
with the report timestamp ``Ti`` after each report.  Doing that literally
costs O(cache size) per report per client; this class instead keeps one
client-wide *certification floor*: an entry's effective timestamp is the
floor when the entry was present at the last certification, else its own
fetch timestamp.  Presence is tracked with an epoch counter — raising
the floor bumps the epoch, and entries remember the epoch they were
inserted under — so the floor never leaks onto entries inserted *after*
the certification it represents.

That leak is not hypothetical: a fetch whose response crosses a report
boundary installs a value whose coherence time predates the report the
client just consumed.  Such *suspect* entries are tracked in
``unreconciled`` and must be re-validated (or conservatively dropped) by
the scheme at the next report — see ``repro.schemes.base``.
"""

from __future__ import annotations

from typing import List, Optional, Set

from .entry import CacheEntry
from .lru import LRUCache


class ClientCache:
    """LRU cache of :class:`CacheEntry` plus epoch-aware certification."""

    __slots__ = (
        "_lru",
        "certified_floor",
        "_epoch",
        "unreconciled",
        "insertions",
        "invalidations",
        "full_drops",
    )

    def __init__(self, capacity: int) -> None:
        self._lru: LRUCache[int, CacheEntry] = LRUCache(capacity)
        #: Entries present at the last certification are valid as of this.
        self.certified_floor = float("-inf")
        self._epoch = 0
        #: Items inserted with a coherence time older than the client's
        #: last-heard report; they need scheme reconciliation.
        self.unreconciled: Set[int] = set()
        self.insertions = 0
        self.invalidations = 0
        self.full_drops = 0

    def __len__(self) -> int:
        return len(self._lru)

    def __contains__(self, item: object) -> bool:
        return item in self._lru

    @property
    def capacity(self) -> int:
        """Maximum number of cached items."""
        return self._lru.capacity

    @property
    def evictions(self) -> int:
        """LRU evictions so far."""
        return self._lru.evictions

    @property
    def epoch(self) -> int:
        """Certification epoch (bumped by every :meth:`certify`)."""
        return self._epoch

    def lookup(self, item: int) -> Optional[CacheEntry]:
        """Return the entry for *item* and mark it recently used."""
        return self._lru.get(item)

    def peek(self, item: int) -> Optional[CacheEntry]:
        """Return the entry without touching LRU recency."""
        return self._lru.peek(item)

    def insert(self, entry: CacheEntry, suspect: bool = False) -> None:
        """Add a freshly fetched entry (may evict the LRU one).

        *suspect* marks an entry whose coherence time predates the
        client's last processed report: it is recorded in
        ``unreconciled`` for the scheme to handle at the next report.
        """
        entry.cert_epoch = self._epoch
        self._lru.put(entry.item, entry)
        if suspect:
            self.unreconciled.add(entry.item)
        else:
            self.unreconciled.discard(entry.item)
        self.insertions += 1

    def is_certified(self, entry: CacheEntry) -> bool:
        """Whether the last certification covered this entry."""
        return entry.cert_epoch < self._epoch

    def effective_ts(self, entry: CacheEntry) -> float:
        """The entry's TS-algorithm timestamp ``t_c``.

        The certification floor applies only to entries that were present
        when it was raised.
        """
        if entry.cert_epoch < self._epoch and self.certified_floor > entry.ts:
            return self.certified_floor
        return entry.ts

    def invalidate(self, item: int) -> bool:
        """Drop *item* if cached; returns whether it was present."""
        self.unreconciled.discard(item)
        if self._lru.remove(item):
            self.invalidations += 1
            return True
        return False

    def unreconciled_entries(self) -> List[CacheEntry]:
        """Snapshot of the suspect entries still cached.

        Items evicted since being marked are pruned on the way.
        """
        out: List[CacheEntry] = []
        stale_marks: List[int] = []
        for item in self.unreconciled:
            entry = self._lru.peek(item)
            if entry is None:
                stale_marks.append(item)
            else:
                out.append(entry)
        for item in stale_marks:
            self.unreconciled.discard(item)
        return out

    def certify(self, report_time: float) -> None:
        """Certify every current entry as valid as of *report_time*.

        The caller (scheme code) must have invalidated or reconciled
        everything stale first; certification clears the suspect set.
        """
        if report_time > self.certified_floor:
            self.certified_floor = report_time
        self._epoch += 1
        self.unreconciled.clear()

    def drop_all(self) -> None:
        """Discard the entire cache (long-disconnection path)."""
        count = len(self._lru)
        self._lru.clear()
        self.unreconciled.clear()
        if count:
            self.full_drops += 1
        self.invalidations += count

    def entries(self) -> List[CacheEntry]:
        """Snapshot of entries in LRU-to-MRU order."""
        return [entry for _key, entry in self._lru.items()]

    def item_ids(self) -> List[int]:
        """Snapshot of cached item ids in LRU-to-MRU order."""
        return self._lru.keys()
