"""Client cache substrate: LRU policy and certification-timestamp cache."""

from .client_cache import ClientCache
from .entry import CacheEntry
from .lru import LRUCache

__all__ = ["CacheEntry", "ClientCache", "LRUCache"]
