"""Series-shape helpers used by benches to check figures qualitatively.

The reproduction matches the paper's *shape* (who wins, growth
directions, crossover locations), not 1997 testbed absolutes; these
helpers express those assertions readably.
"""

from __future__ import annotations

from typing import Optional, Sequence


def trend_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of y over x (0.0 for degenerate inputs)."""
    n = len(xs)
    if n < 2 or len(ys) != n:
        return 0.0
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        return 0.0
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    return sxy / sxx


def roughly_flat(ys: Sequence[float], tolerance: float = 0.35) -> bool:
    """Whether the series varies less than *tolerance* of its mean."""
    if not ys:
        return True
    mean = sum(ys) / len(ys)
    if mean == 0:
        return all(y == 0 for y in ys)
    return (max(ys) - min(ys)) / abs(mean) <= tolerance


def mostly_decreasing(ys: Sequence[float], slack: float = 0.05) -> bool:
    """Whether the series trends downward (small upticks tolerated).

    *slack* is the relative uptick allowed between adjacent points.
    """
    if len(ys) < 2:
        return True
    for a, b in zip(ys, ys[1:]):
        if b > a * (1 + slack) + 1e-12:
            return False
    return ys[-1] < ys[0]


def mostly_increasing(ys: Sequence[float], slack: float = 0.05) -> bool:
    """Mirror of :func:`mostly_decreasing`."""
    return mostly_decreasing([-y for y in ys], slack=0.0) or (
        len(ys) >= 2
        and ys[-1] > ys[0]
        and all(b >= a * (1 - slack) - 1e-12 for a, b in zip(ys, ys[1:]))
    )


def dominates(
    winner: Sequence[float], loser: Sequence[float], margin: float = 1.0
) -> bool:
    """Whether *winner* >= *margin* * *loser* at every sweep point."""
    return all(w >= margin * l for w, l in zip(winner, loser))


def ratio_of_means(a: Sequence[float], b: Sequence[float]) -> float:
    """mean(a) / mean(b) (inf when b's mean is zero and a's is not)."""
    mean_a = sum(a) / len(a)
    mean_b = sum(b) / len(b)
    if mean_b == 0:
        return float("inf") if mean_a else 1.0
    return mean_a / mean_b


def crossover_x(
    xs: Sequence[float], a: Sequence[float], b: Sequence[float]
) -> Optional[float]:
    """The first x where series *a* stops beating series *b*.

    Returns the midpoint of the bracketing interval, x[0] if *a* never
    leads, or None if *a* leads everywhere.
    """
    leading = [ai > bi for ai, bi in zip(a, b)]
    if not any(leading):
        return xs[0]
    if all(leading):
        return None
    for i in range(1, len(xs)):
        if leading[i - 1] != leading[i]:
            return (xs[i - 1] + xs[i]) / 2.0
    return None


def relative_spread(ys: Sequence[float]) -> float:
    """(max - min) / mean; 0 for constant or empty series."""
    if not ys:
        return 0.0
    mean = sum(ys) / len(ys)
    if mean == 0:
        return 0.0
    return (max(ys) - min(ys)) / abs(mean)
