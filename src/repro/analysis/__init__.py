"""Series-shape analysis and replication statistics."""

from .series import (
    crossover_x,
    dominates,
    mostly_decreasing,
    mostly_increasing,
    ratio_of_means,
    relative_spread,
    roughly_flat,
    trend_slope,
)
from .stats import (
    ReplicationSummary,
    significantly_better,
    summarize,
    summarize_metric,
    welch_p_value,
)

__all__ = [
    "ReplicationSummary",
    "crossover_x",
    "dominates",
    "mostly_decreasing",
    "mostly_increasing",
    "ratio_of_means",
    "relative_spread",
    "roughly_flat",
    "significantly_better",
    "summarize",
    "summarize_metric",
    "trend_slope",
    "welch_p_value",
]
