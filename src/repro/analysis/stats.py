"""Replication statistics: confidence intervals and scheme comparisons.

The paper reports single-run numbers (era-typical); a modern evaluation
runs independent replications and reports confidence intervals.  These
helpers summarize :func:`repro.sim.run_replications` outputs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from scipy import stats as _scipy_stats


@dataclass(frozen=True)
class ReplicationSummary:
    """Mean and a t-based confidence interval over replications."""

    n: int
    mean: float
    stdev: float
    ci_low: float
    ci_high: float
    confidence: float

    @property
    def half_width(self) -> float:
        """Half the confidence interval's width."""
        return (self.ci_high - self.ci_low) / 2.0

    def __str__(self):
        pct = int(self.confidence * 100)
        return (
            f"{self.mean:.4g} ± {self.half_width:.3g} "
            f"({pct} % CI, n={self.n})"
        )


def summarize(values: Sequence[float], confidence: float = 0.95) -> ReplicationSummary:
    """Mean and t-distribution confidence interval of *values*."""
    if not values:
        raise ValueError("no replications to summarize")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return ReplicationSummary(
            n=1, mean=mean, stdev=0.0, ci_low=mean, ci_high=mean,
            confidence=confidence,
        )
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    stdev = math.sqrt(variance)
    t_crit = float(_scipy_stats.t.ppf(0.5 + confidence / 2.0, df=n - 1))
    half = t_crit * stdev / math.sqrt(n)
    return ReplicationSummary(
        n=n,
        mean=mean,
        stdev=stdev,
        ci_low=mean - half,
        ci_high=mean + half,
        confidence=confidence,
    )


def summarize_metric(
    results, metric: str, confidence: float = 0.95
) -> ReplicationSummary:
    """Summarize one :class:`SimulationResult` attribute across replications."""
    return summarize(
        [float(getattr(r, metric)) for r in results], confidence=confidence
    )


def welch_p_value(a: Sequence[float], b: Sequence[float]) -> float:
    """Two-sided Welch t-test p-value for mean(a) != mean(b)."""
    if len(a) < 2 or len(b) < 2:
        raise ValueError("need at least two replications per group")
    _stat, p = _scipy_stats.ttest_ind(list(a), list(b), equal_var=False)
    return float(p)


def significantly_better(
    winner: Sequence[float],
    loser: Sequence[float],
    alpha: float = 0.05,
) -> bool:
    """True when mean(winner) > mean(loser) at significance *alpha*."""
    if sum(winner) / len(winner) <= sum(loser) / len(loser):
        return False
    return welch_p_value(winner, loser) < alpha
