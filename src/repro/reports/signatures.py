"""Signature (SIG) invalidation reports.

Barbara & Imielinski's third scheme: the server periodically broadcasts
*combined signatures* — XOR-combinations of per-item signatures over
pseudo-random item subsets.  A client saves the combined signatures it
last heard; after waking it compares them with the fresh ones and
diagnoses as invalid any cached item that appears in "too many" differing
subsets.  The scheme is probabilistic both ways:

* *false positives*: a valid cached item sharing many subsets with
  updated items may be dropped (costs a re-fetch, never correctness);
* *false negatives*: an updated item can survive only through signature
  collisions, with probability ~``subsets_per_item * 2**-signature_bits``.

Our implementation derives subset membership and item signatures from
deterministic hashes, so server and client agree without communication
(both sides know the scheme seed), exactly like sharing the generator
polynomial in the original proposal.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Sequence, Set

from .base import Invalidation, Report, ReportKind, UpdateLog
from .sizes import DEFAULT_TIMESTAMP_BITS, signature_report_bits


def _hash64(*parts: object) -> int:
    h = hashlib.blake2b(
        "/".join(str(p) for p in parts).encode(), digest_size=8
    ).digest()
    return int.from_bytes(h, "little")


def item_signature(item: int, version: int, signature_bits: int, seed: int) -> int:
    """The *signature_bits*-bit signature of one item at one version."""
    return _hash64("sig", seed, item, version) & ((1 << signature_bits) - 1)


def subsets_of_item(
    item: int, n_subsets: int, membership: float, seed: int
) -> List[int]:
    """Indices of the combined signatures whose subset contains *item*.

    Membership of each item in each subset is an independent pseudo-random
    Bernoulli(*membership*) draw, derived from (seed, subset, item).
    """
    threshold = int(membership * 2**32)
    return [
        s
        for s in range(n_subsets)
        if (_hash64("member", seed, s, item) & 0xFFFFFFFF) < threshold
    ]


class SignatureScheme:
    """Shared parameters of a signature deployment (server and clients).

    Parameters
    ----------
    n_items:
        Database size.
    n_subsets:
        Number of combined signatures per report.
    signature_bits:
        Width of each (combined) signature.
    membership:
        Probability an item belongs to a given subset.
    diagnose_threshold:
        A cached item is diagnosed invalid when the fraction of its
        subsets that mismatch exceeds this value.  0 is maximally
        conservative (any mismatching subset kills all its members).
    """

    def __init__(
        self,
        n_items: int,
        n_subsets: int = 64,
        signature_bits: int = 32,
        membership: float = 0.5,
        diagnose_threshold: float = 0.9,
        seed: int = 0,
    ) -> None:
        if not 0 < membership <= 1:
            raise ValueError("membership must be in (0, 1]")
        if not 0 <= diagnose_threshold <= 1:
            raise ValueError("diagnose_threshold must be in [0, 1]")
        self.n_items = n_items
        self.n_subsets = n_subsets
        self.signature_bits = signature_bits
        self.membership = membership
        self.diagnose_threshold = diagnose_threshold
        self.seed = seed
        self._subsets_cache: Dict[int, List[int]] = {}

    def subsets_of(self, item: int) -> List[int]:
        """Cached subset membership of *item*."""
        try:
            return self._subsets_cache[item]
        except KeyError:
            subs = subsets_of_item(item, self.n_subsets, self.membership, self.seed)
            self._subsets_cache[item] = subs
            return subs

    def combine(self, versions: Sequence[int]) -> List[int]:
        """Compute all combined signatures for the given item versions."""
        combined = [0] * self.n_subsets
        for item in range(self.n_items):
            sig = item_signature(
                item, int(versions[item]), self.signature_bits, self.seed
            )
            for s in self.subsets_of(item):
                combined[s] ^= sig
        return combined


class IncrementalCombiner:
    """Maintains the combined signatures under single-item updates.

    Recomputing every combined signature from scratch costs
    O(N * subsets_per_item) per broadcast; the server instead XORs the
    old item signature out and the new one in on each update — O(subsets
    per item) — and snapshots when building a report.
    """

    def __init__(
        self, scheme: SignatureScheme, versions: Sequence[int] | None = None
    ) -> None:
        self.scheme = scheme
        if versions is None:
            versions = [0] * scheme.n_items
        self._combined = scheme.combine(versions)

    def on_update(self, item: int, old_version: int, new_version: int) -> None:
        """Fold one item-version change into the combined signatures."""
        scheme = self.scheme
        delta = item_signature(
            item, old_version, scheme.signature_bits, scheme.seed
        ) ^ item_signature(item, new_version, scheme.signature_bits, scheme.seed)
        for s in scheme.subsets_of(item):
            self._combined[s] ^= delta

    def snapshot(self) -> List[int]:
        """Current combined signatures (a copy)."""
        return list(self._combined)


class SignatureReport(Report):
    """One broadcast of combined signatures."""

    kind = ReportKind.SIGNATURES

    def __init__(
        self,
        timestamp: float,
        scheme: SignatureScheme,
        combined: Sequence[int],
        timestamp_bits: int = DEFAULT_TIMESTAMP_BITS,
    ) -> None:
        if len(combined) != scheme.n_subsets:
            raise ValueError("wrong number of combined signatures")
        self.timestamp = float(timestamp)
        self.scheme = scheme
        self.combined = list(combined)
        self.size_bits = signature_report_bits(
            scheme.n_subsets, scheme.signature_bits, timestamp_bits
        )

    def __repr__(self) -> str:
        return f"<SignatureReport T={self.timestamp} m={len(self.combined)}>"

    def covers(self, tlb: float) -> bool:
        """SIG diagnosis works across any gap (probabilistically)."""
        return True

    def diff_subsets(self, saved: Sequence[int]) -> Set[int]:
        """Indices of combined signatures that changed since *saved*."""
        if len(saved) != len(self.combined):
            raise ValueError("saved signature count mismatch")
        return {s for s, (a, b) in enumerate(zip(saved, self.combined)) if a != b}

    def diagnose(
        self, cached_items: Iterable[int], saved: Sequence[int]
    ) -> Invalidation:
        """Diagnose which of *cached_items* to drop, given the previously
        saved combined signatures.

        An item is dropped when the fraction of its subsets that mismatch
        exceeds the scheme's threshold (items in no subset are dropped
        conservatively — the report carries no information about them).
        """
        changed = self.diff_subsets(saved)
        to_drop: Set[int] = set()
        for item in cached_items:
            subs = self.scheme.subsets_of(item)
            if not subs:
                to_drop.add(item)
                continue
            mismatches = sum(1 for s in subs if s in changed)
            if mismatches / len(subs) > self.scheme.diagnose_threshold:
                to_drop.add(item)
        return Invalidation.drop(to_drop)

    def invalidation_for(self, tlb: float) -> Invalidation:
        raise NotImplementedError(
            "SIG diagnosis needs the client's saved signatures; use diagnose()"
        )


def build_signature_report(
    db: UpdateLog,
    timestamp: float, scheme: SignatureScheme,
    timestamp_bits: int = DEFAULT_TIMESTAMP_BITS,
) -> SignatureReport:
    """Construct a SIG report from current database versions."""
    return SignatureReport(
        timestamp=timestamp,
        scheme=scheme,
        combined=scheme.combine(db.version),
        timestamp_bits=timestamp_bits,
    )
