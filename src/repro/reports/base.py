"""Common surface of invalidation reports.

A report is an immutable value object the server broadcasts each period;
clients query it to decide what to invalidate.  The three possible
client-side outcomes are captured by :class:`Invalidation`:

* ``covered`` with a set of items to drop — the report reaches back to the
  client's ``Tlb``, so only the listed items are stale;
* not covered (``drop_all``) — the client cannot tell which entries are
  valid and must discard its whole cache (or, in the adaptive schemes,
  ask the server for more history first).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import AbstractSet, Any, FrozenSet, List, Optional, Protocol, Tuple


class UpdateLog(Protocol):
    """Structural view of the server database that report builders read.

    Satisfied by :class:`repro.db.Database`; declared here so the
    reports layer can type its inputs without importing upward in the
    layering DAG (see ARCH001 in ``docs/STATIC_ANALYSIS.md``).
    """

    n_items: int
    origin_time: float
    total_updates: int
    #: Per-item version counters (a numpy int array on the real database;
    #: ``Any`` keeps the protocol free of a numpy type dependency).
    version: Any

    def updated_since(self, cutoff: float) -> List[Tuple[int, float]]:
        """``(item, latest update time)`` pairs with time > *cutoff*."""
        ...

    def recency_order(self, limit: Optional[int] = None) -> List[Tuple[int, float]]:
        """Up to *limit* most-recently-updated items, most recent first."""
        ...


class ReportKind(enum.Enum):
    """Which report structure a broadcast carries."""

    WINDOW = "window"            # TS-style IR(w)
    ENLARGED_WINDOW = "window+"  # AAW's IR(w') with a dummy record
    BIT_SEQUENCES = "bs"         # Jing-style IR(BS)
    AMNESIC = "amnesic"          # AT: last interval's ids only
    SIGNATURES = "sig"           # Barbara/Imielinski combined signatures


@dataclass(frozen=True)
class Invalidation:
    """Outcome of applying a report to a client state.

    Attributes
    ----------
    covered:
        Whether the report's history reaches back to the client's ``Tlb``.
        When False the client cannot salvage anything from this report
        alone (``items`` is empty and must be ignored).
    items:
        Item ids the client must invalidate (only meaningful when
        ``covered``).  The set is conservative: a listed item *may* still
        hold its old value, but no stale item is ever omitted.
    """

    covered: bool
    items: FrozenSet[int] = field(default_factory=frozenset)

    @staticmethod
    def drop_all() -> "Invalidation":
        """The client must discard its entire cache."""
        return _DROP_ALL

    @staticmethod
    def nothing() -> "Invalidation":
        """The cache is entirely valid."""
        return _NOTHING

    @staticmethod
    def drop(items: AbstractSet[int]) -> "Invalidation":
        """Invalidate exactly *items*."""
        return Invalidation(covered=True, items=frozenset(items))


# Frozen, so the two argument-free outcomes are shared singletons (every
# connected client materializes one per broadcast tick).
_DROP_ALL = Invalidation(covered=False)
_NOTHING = Invalidation(covered=True)


class Report:
    """Base class for broadcast invalidation reports.

    Attributes
    ----------
    kind:
        The :class:`ReportKind`.
    timestamp:
        Broadcast time ``Ti``; the report describes updates up to and
        including this instant.
    size_bits:
        Wire size, from :mod:`repro.reports.sizes`.
    """

    kind: ReportKind
    timestamp: float
    size_bits: float
    #: Server incarnation that built this report.  Stamped by the server
    #: at broadcast time (instance attribute); a restart after a crash
    #: bumps it, telling clients the history behind earlier reports has
    #: been truncated and their ``Tlb``-certified knowledge is void.  The
    #: class default keeps pre-epoch pickles/tests valid.
    epoch: int = 0
    #: Cell that broadcast this report (stamped like ``epoch``).  Epochs
    #: are per-cell timelines, so a client that just handed off must
    #: adopt the pair ``(cell, epoch)`` together rather than mistake a
    #: neighbor's epoch counter for a restart of its old cell.
    cell: int = 0

    @property
    def dedup_key(self) -> float:
        """Identity of the broadcast this report belongs to.

        Reports are broadcast at unique instants (one per interval), so
        the timestamp identifies the logical report across repetition-
        coded copies; clients discard a copy whose key they already
        applied.
        """
        return self.timestamp

    def covers(self, tlb: float) -> bool:
        """Whether a client that last heard a report at *tlb* can use this
        report alone to invalidate precisely."""
        raise NotImplementedError

    def invalidation_for(self, tlb: float) -> Invalidation:
        """What a client with last-heard time *tlb* must invalidate."""
        raise NotImplementedError
