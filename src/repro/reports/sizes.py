"""Bit-size accounting for invalidation reports and control payloads.

These follow the formulas in Section 3.1 of the paper:

* ``IR(w)`` (window report):   ``n_w * (ceil(log2 N) + b_T)`` bits
* ``IR(BS)`` (bit-sequences):  ``2N + b_T * ceil(log2 N)`` bits

plus a ``b_T``-bit current timestamp and a small type tag on every report.
The same id/timestamp widths price the uplink payloads (a ``Tlb`` upload,
a checking upload, a validity report), which is what the paper's "uplink
cost per query" metric counts.
"""

from __future__ import annotations

import math

#: Default timestamp width in bits (Table 1 does not fix it; 32 is the
#: conventional choice for second-resolution timestamps).
DEFAULT_TIMESTAMP_BITS = 32

#: Width of the report type tag (window / enlarged / BS / ...).
REPORT_TAG_BITS = 2


def id_bits(n_items: int) -> int:
    """Bits needed for one item id: ``ceil(log2 N)`` (min 1)."""
    if n_items < 1:
        raise ValueError("database must have at least one item")
    return max(1, math.ceil(math.log2(n_items)))


def window_report_bits(
    n_reported: int, n_items: int, timestamp_bits: int = DEFAULT_TIMESTAMP_BITS
) -> float:
    """Size of a TS window report carrying *n_reported* (id, ts) pairs."""
    return (
        n_reported * (id_bits(n_items) + timestamp_bits)
        + timestamp_bits
        + REPORT_TAG_BITS
    )


def enlarged_window_report_bits(
    n_reported: int, n_items: int, timestamp_bits: int = DEFAULT_TIMESTAMP_BITS
) -> float:
    """Size of an AAW enlarged window report: adds one dummy record."""
    return window_report_bits(n_reported + 1, n_items, timestamp_bits)


def bitseq_report_bits(
    n_items: int, timestamp_bits: int = DEFAULT_TIMESTAMP_BITS
) -> float:
    """Size of a Bit-Sequences report over an *n_items* database.

    The hierarchy holds ~2N sequence bits plus one timestamp per level
    (``ceil(log2 N) + 1`` levels, counting the dummy ``B0``), plus the
    report timestamp and tag.
    """
    levels = id_bits(n_items) + 1
    return (
        2 * n_items
        + levels * timestamp_bits
        + timestamp_bits
        + REPORT_TAG_BITS
    )


def amnesic_report_bits(
    n_reported: int, n_items: int, timestamp_bits: int = DEFAULT_TIMESTAMP_BITS
) -> float:
    """Size of an AT report: ids only (no per-item timestamps)."""
    return n_reported * id_bits(n_items) + timestamp_bits + REPORT_TAG_BITS


def signature_report_bits(
    n_signatures: int, signature_bits: int, timestamp_bits: int = DEFAULT_TIMESTAMP_BITS
) -> float:
    """Size of a SIG report of *n_signatures* combined signatures."""
    return n_signatures * signature_bits + timestamp_bits + REPORT_TAG_BITS


def tlb_upload_bits(timestamp_bits: int = DEFAULT_TIMESTAMP_BITS) -> float:
    """Payload of an adaptive-scheme ``Tlb`` upload: one timestamp."""
    return float(timestamp_bits)


def nack_upload_bits(timestamp_bits: int = DEFAULT_TIMESTAMP_BITS) -> float:
    """Payload of a loss-adaptive IR-gap NACK hint.

    Priced like a ``Tlb`` upload: the missed-report count fits in one
    timestamp-width field (it is bounded by the elapsed intervals).
    """
    return float(timestamp_bits)


def checking_upload_bits(
    n_cached: int, n_items: int, timestamp_bits: int = DEFAULT_TIMESTAMP_BITS
) -> float:
    """Payload of a simple-checking upload: every cached (id, ts) pair."""
    return n_cached * (id_bits(n_items) + timestamp_bits)


def validity_report_bits(n_checked: int) -> float:
    """Payload of the server's validity answer: one bit per checked item."""
    return float(n_checked)
