"""TS-style window reports: ``IR(w)`` and AAW's enlarged ``IR(w')``.

A window report broadcast at time ``T`` lists every item updated within
the last ``w`` broadcast intervals — all ``(o_i, t_i)`` with
``t_i in (T - wL, T]`` — so a client whose last-heard time ``Tlb`` falls
inside that window can invalidate exactly the items updated after ``Tlb``.

AAW's enlarged report stretches the window back to a requesting client's
``Tlb`` and marks the stretch with a ``(dummy_id, Tlb)`` record so clients
can recognise that the report covers them (Section 3.2).

Loss-adaptive broadcasting (:mod:`repro.schemes.loss_adaptive`) reuses
these structures unchanged with a widened span ``w_eff * L``: ``covers``
is monotone in the window span — moving ``window_start`` earlier only
adds covered clients, never removes one — so widening is always safe,
and the size formulas in :mod:`repro.reports.sizes` automatically price
the extra ``(id, ts)`` records the wider window drags in.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from .base import Invalidation, Report, ReportKind
from .sizes import (
    DEFAULT_TIMESTAMP_BITS,
    enlarged_window_report_bits,
    window_report_bits,
)


class WindowReport(Report):
    """The classic broadcasting-timestamps report ``IR(w)``.

    Parameters
    ----------
    timestamp:
        Broadcast time ``T``.
    window_start:
        ``T - wL``; the report lists items updated strictly after this.
    items:
        ``{item: latest update time}`` with every time in
        ``(window_start, timestamp]``.
    n_items:
        Database size (prices the id field).
    """

    kind = ReportKind.WINDOW

    def __init__(
        self,
        timestamp: float,
        window_start: float,
        items: Dict[int, float],
        n_items: int,
        timestamp_bits: int = DEFAULT_TIMESTAMP_BITS,
    ):
        if window_start > timestamp:
            raise ValueError("window_start lies after the report timestamp")
        for item, ts in items.items():
            if not (window_start < ts <= timestamp):
                raise ValueError(
                    f"item {item} timestamp {ts} outside window "
                    f"({window_start}, {timestamp}]"
                )
        self.timestamp = float(timestamp)
        self.window_start = float(window_start)
        self.items = dict(items)
        self.n_items = n_items
        self.size_bits = window_report_bits(len(items), n_items, timestamp_bits)

    def __repr__(self):
        return (
            f"<WindowReport T={self.timestamp} window=({self.window_start}, "
            f"{self.timestamp}] n={len(self.items)}>"
        )

    def covers(self, tlb: float) -> bool:
        """True when the client's gap lies inside the window."""
        return tlb >= self.window_start

    def stale_items_after(self, tlb: float) -> FrozenSet[int]:
        """Items whose latest update is after *tlb* (requires coverage)."""
        return frozenset(item for item, ts in self.items.items() if ts > tlb)

    def invalidation_for(self, tlb: float) -> Invalidation:
        if not self.covers(tlb):
            return Invalidation.drop_all()
        return Invalidation.drop(self.stale_items_after(tlb))


class EnlargedWindowReport(WindowReport):
    """AAW's ``IR(w')``: a window stretched back to ``dummy_tlb``.

    Contains every item updated after ``dummy_tlb`` plus the dummy record
    ``(dummy_id, dummy_tlb)``.  A client whose ``Tlb >= dummy_tlb`` is
    covered even though its gap exceeds the default window.
    """

    kind = ReportKind.ENLARGED_WINDOW

    def __init__(
        self,
        timestamp: float,
        dummy_tlb: float,
        items: Dict[int, float],
        n_items: int,
        timestamp_bits: int = DEFAULT_TIMESTAMP_BITS,
    ):
        super().__init__(
            timestamp=timestamp,
            window_start=dummy_tlb,
            items=items,
            n_items=n_items,
            timestamp_bits=timestamp_bits,
        )
        self.dummy_tlb = float(dummy_tlb)
        # One extra (dummy_id, Tlb) record relative to the plain report.
        self.size_bits = enlarged_window_report_bits(
            len(items), n_items, timestamp_bits
        )

    def __repr__(self):
        return (
            f"<EnlargedWindowReport T={self.timestamp} back_to={self.dummy_tlb} "
            f"n={len(self.items)}>"
        )


def build_window_report(
    db,
    timestamp: float,
    window_seconds: float,
    timestamp_bits: int = DEFAULT_TIMESTAMP_BITS,
) -> WindowReport:
    """Construct ``IR(w)`` from the database recency index.

    *window_seconds* is ``w * L``.
    """
    window_start = timestamp - window_seconds
    items = {item: ts for item, ts in db.updated_since(window_start)}
    return WindowReport(
        timestamp=timestamp,
        window_start=window_start,
        items=items,
        n_items=db.n_items,
        timestamp_bits=timestamp_bits,
    )


def build_enlarged_window_report(
    db,
    timestamp: float,
    back_to: float,
    timestamp_bits: int = DEFAULT_TIMESTAMP_BITS,
) -> EnlargedWindowReport:
    """Construct ``IR(w')`` reaching back to *back_to* (a client's Tlb)."""
    items = {item: ts for item, ts in db.updated_since(back_to)}
    return EnlargedWindowReport(
        timestamp=timestamp,
        dummy_tlb=back_to,
        items=items,
        n_items=db.n_items,
        timestamp_bits=timestamp_bits,
    )


def enlarged_report_size(
    db, back_to: float, timestamp_bits: int = DEFAULT_TIMESTAMP_BITS
) -> Tuple[int, float]:
    """Cheaply price an ``IR(w')`` without materializing it.

    Returns ``(n_items_in_report, size_bits)``; used by the AAW server to
    compare against ``IR(BS)`` before deciding what to broadcast.
    """
    count = len(db.updated_since(back_to))
    return count, enlarged_window_report_bits(count, db.n_items, timestamp_bits)
