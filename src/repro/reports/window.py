"""TS-style window reports: ``IR(w)`` and AAW's enlarged ``IR(w')``.

A window report broadcast at time ``T`` lists every item updated within
the last ``w`` broadcast intervals — all ``(o_i, t_i)`` with
``t_i in (T - wL, T]`` — so a client whose last-heard time ``Tlb`` falls
inside that window can invalidate exactly the items updated after ``Tlb``.

AAW's enlarged report stretches the window back to a requesting client's
``Tlb`` and marks the stretch with a ``(dummy_id, Tlb)`` record so clients
can recognise that the report covers them (Section 3.2).

Loss-adaptive broadcasting (:mod:`repro.schemes.loss_adaptive`) reuses
these structures unchanged with a widened span ``w_eff * L``: ``covers``
is monotone in the window span — moving ``window_start`` earlier only
adds covered clients, never removes one — so widening is always safe,
and the size formulas in :mod:`repro.reports.sizes` automatically price
the extra ``(id, ts)`` records the wider window drags in.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from .base import Invalidation, Report, ReportKind, UpdateLog
from .sizes import (
    DEFAULT_TIMESTAMP_BITS,
    enlarged_window_report_bits,
    window_report_bits,
)


class WindowReport(Report):
    """The classic broadcasting-timestamps report ``IR(w)``.

    Parameters
    ----------
    timestamp:
        Broadcast time ``T``.
    window_start:
        ``T - wL``; the report lists items updated strictly after this.
    items:
        ``{item: latest update time}`` with every time in
        ``(window_start, timestamp]``.
    n_items:
        Database size (prices the id field).
    """

    kind = ReportKind.WINDOW

    def __init__(
        self,
        timestamp: float,
        window_start: float,
        items: Dict[int, float],
        n_items: int,
        timestamp_bits: int = DEFAULT_TIMESTAMP_BITS,
    ) -> None:
        if window_start > timestamp:
            raise ValueError("window_start lies after the report timestamp")
        for item, ts in items.items():
            if not (window_start < ts <= timestamp):
                raise ValueError(
                    f"item {item} timestamp {ts} outside window "
                    f"({window_start}, {timestamp}]"
                )
        self.timestamp = float(timestamp)
        self.window_start = float(window_start)
        self.items = dict(items)
        self.n_items = n_items
        #: Latest update time the report mentions (window_start when it
        #: is empty): a client certified past this can certify again in
        #: O(1) — see ``schemes.base.apply_window_report``.
        self.newest_ts = max(self.items.values(), default=self.window_start)
        # Single-slot memo for fresh_since(): listeners in one broadcast
        # tick overwhelmingly share a certification floor.
        self._fresh_memo: Optional[Tuple[float, List[Tuple[int, float]]]] = None
        self.size_bits = window_report_bits(len(items), n_items, timestamp_bits)

    def __repr__(self) -> str:
        return (
            f"<WindowReport T={self.timestamp} window=({self.window_start}, "
            f"{self.timestamp}] n={len(self.items)}>"
        )

    def covers(self, tlb: float) -> bool:
        """True when the client's gap lies inside the window."""
        return tlb >= self.window_start

    def fresh_since(self, floor: float) -> List[Tuple[int, float]]:
        """The report's ``(item, ts)`` pairs with ``ts > floor``, memoized.

        A client whose cache holds no suspect entries only needs these
        against its certification floor (every entry's effective
        timestamp is at least the floor); one tick's listeners share a
        floor, so the filter runs once per broadcast, not per client.
        """
        memo = self._fresh_memo
        if memo is not None and memo[0] == floor:
            return memo[1]
        fresh = [(item, ts) for item, ts in self.items.items() if ts > floor]
        self._fresh_memo = (floor, fresh)
        return fresh

    def stale_items_after(self, tlb: float) -> FrozenSet[int]:
        """Items whose latest update is after *tlb* (requires coverage)."""
        return frozenset(item for item, ts in self.items.items() if ts > tlb)

    def invalidation_for(self, tlb: float) -> Invalidation:
        if not self.covers(tlb):
            return Invalidation.drop_all()
        return Invalidation.drop(self.stale_items_after(tlb))


class EnlargedWindowReport(WindowReport):
    """AAW's ``IR(w')``: a window stretched back to ``dummy_tlb``.

    Contains every item updated after ``dummy_tlb`` plus the dummy record
    ``(dummy_id, dummy_tlb)``.  A client whose ``Tlb >= dummy_tlb`` is
    covered even though its gap exceeds the default window.
    """

    kind = ReportKind.ENLARGED_WINDOW

    def __init__(
        self,
        timestamp: float,
        dummy_tlb: float,
        items: Dict[int, float],
        n_items: int,
        timestamp_bits: int = DEFAULT_TIMESTAMP_BITS,
    ) -> None:
        super().__init__(
            timestamp=timestamp,
            window_start=dummy_tlb,
            items=items,
            n_items=n_items,
            timestamp_bits=timestamp_bits,
        )
        self.dummy_tlb = float(dummy_tlb)
        # One extra (dummy_id, Tlb) record relative to the plain report.
        self.size_bits = enlarged_window_report_bits(
            len(items), n_items, timestamp_bits
        )

    def __repr__(self) -> str:
        return (
            f"<EnlargedWindowReport T={self.timestamp} back_to={self.dummy_tlb} "
            f"n={len(self.items)}>"
        )


class WindowReportCache:
    """Memoizes the ``{item: ts}`` scan behind consecutive ``IR(w)``.

    At the paper's update rates most broadcast ticks see no new update:
    the item dict behind the report is then the previous tick's, minus
    any items that slid out of the back of the window.  The cached dict
    is reused when, against ``db.total_updates``:

    * no update has been committed since the cached scan, and
    * the window only slid forward (``new start >= cached start``), and
    * no cached item has expired (oldest cached ts > new start).

    A widened window (loss-adaptive) or an expiring item rebuilds.  The
    dict is shared, never handed out: :class:`WindowReport` copies it.
    """

    def __init__(self, db: UpdateLog) -> None:
        self.db = db
        self._total_updates = -1
        self._window_start = 0.0
        self._oldest_ts = 0.0
        self._items: Optional[Dict[int, float]] = None
        self.hits = 0
        self.misses = 0

    def items_since(self, window_start: float) -> Dict[int, float]:
        """The ``{item: latest ts}`` map for ``(window_start, now]``."""
        cached = self._items
        if (
            cached is not None
            and self.db.total_updates == self._total_updates
            and window_start >= self._window_start
            and (not cached or self._oldest_ts > window_start)
        ):
            self.hits += 1
            return cached
        items = dict(self.db.updated_since(window_start))
        self._items = items
        self._total_updates = self.db.total_updates
        self._window_start = window_start
        self._oldest_ts = min(items.values()) if items else 0.0
        self.misses += 1
        return items


def build_window_report(
    db: UpdateLog,
    timestamp: float,
    window_seconds: float,
    timestamp_bits: int = DEFAULT_TIMESTAMP_BITS,
    cache: Optional[WindowReportCache] = None,
) -> WindowReport:
    """Construct ``IR(w)`` from the database recency index.

    *window_seconds* is ``w * L``.  Passing a per-server
    :class:`WindowReportCache` lets consecutive ticks share the scan.

    The window never reaches behind ``db.origin_time``: after a
    crash–recovery the server only witnessed updates since the restart,
    so claiming coverage further back would silently certify clients
    whose gap spans the truncated history.  (In a never-crashed cell the
    clamp is inert — every client ``Tlb`` is at least the origin.)
    """
    window_start = max(timestamp - window_seconds, db.origin_time)
    if cache is not None:
        items = cache.items_since(window_start)
    else:
        items = dict(db.updated_since(window_start))
    return WindowReport(
        timestamp=timestamp,
        window_start=window_start,
        items=items,
        n_items=db.n_items,
        timestamp_bits=timestamp_bits,
    )


def build_enlarged_window_report(
    db: UpdateLog,
    timestamp: float,
    back_to: float,
    timestamp_bits: int = DEFAULT_TIMESTAMP_BITS,
) -> EnlargedWindowReport:
    """Construct ``IR(w')`` reaching back to *back_to* (a client's Tlb).

    Like :func:`build_window_report`, the claimed reach is clamped at
    ``db.origin_time`` — a post-crash server cannot vouch for history it
    never witnessed, so a pre-crash ``Tlb`` stays uncovered.
    """
    back_to = max(back_to, db.origin_time)
    items = {item: ts for item, ts in db.updated_since(back_to)}
    return EnlargedWindowReport(
        timestamp=timestamp,
        dummy_tlb=back_to,
        items=items,
        n_items=db.n_items,
        timestamp_bits=timestamp_bits,
    )


def enlarged_report_size(
    db: UpdateLog, back_to: float, timestamp_bits: int = DEFAULT_TIMESTAMP_BITS
) -> Tuple[int, float]:
    """Cheaply price an ``IR(w')`` without materializing it.

    Returns ``(n_items_in_report, size_bits)``; used by the AAW server to
    compare against ``IR(BS)`` before deciding what to broadcast.
    """
    count = len(db.updated_since(back_to))
    return count, enlarged_window_report_bits(count, db.n_items, timestamp_bits)
