"""Amnesic Terminals (AT) report: only the latest interval's updates.

Barbara & Imielinski's AT scheme broadcasts just the ids of items updated
during the last broadcast interval ``(T - L, T]`` with no per-item
timestamps.  A client must have heard *every* report: any gap larger than
one interval forces a full cache drop.  Implemented as a library citizen
and ablation baseline (the paper's own evaluation excludes it because it
cannot survive long disconnections).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable

from .base import Invalidation, Report, ReportKind, UpdateLog
from .sizes import DEFAULT_TIMESTAMP_BITS, amnesic_report_bits


class AmnesicReport(Report):
    """Ids updated in the last interval; usable only by gap-free clients."""

    kind = ReportKind.AMNESIC

    def __init__(
        self,
        timestamp: float,
        interval: float,
        items: Iterable[int],
        n_items: int,
        timestamp_bits: int = DEFAULT_TIMESTAMP_BITS,
    ) -> None:
        if interval <= 0:
            raise ValueError("broadcast interval must be positive")
        self.timestamp = float(timestamp)
        self.interval = float(interval)
        self.items: FrozenSet[int] = frozenset(items)
        self.n_items = n_items
        self.size_bits = amnesic_report_bits(len(self.items), n_items, timestamp_bits)

    def __repr__(self) -> str:
        return f"<AmnesicReport T={self.timestamp} n={len(self.items)}>"

    def covers(self, tlb: float) -> bool:
        """The client must have heard the previous report."""
        return tlb >= self.timestamp - self.interval

    def invalidation_for(self, tlb: float) -> Invalidation:
        if not self.covers(tlb):
            return Invalidation.drop_all()
        return Invalidation.drop(self.items)


def build_amnesic_report(
    db: UpdateLog,
    timestamp: float,
    interval: float,
    timestamp_bits: int = DEFAULT_TIMESTAMP_BITS,
) -> AmnesicReport:
    """Construct an AT report from the database recency index."""
    items = [item for item, _ts in db.updated_since(timestamp - interval)]
    return AmnesicReport(
        timestamp=timestamp,
        interval=interval,
        items=items,
        n_items=db.n_items,
        timestamp_bits=timestamp_bits,
    )
