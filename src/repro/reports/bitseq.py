"""The hierarchical Bit-Sequences invalidation report (Jing et al.).

Structure (paper Section 2.3): ``IR(BS)`` is a set of bit sequences
``Bn .. B1`` plus a dummy ``B0``.  ``Bn`` has one bit per database item
with up to ``N/2`` bits set — the items updated after ``TS(Bn)``.  Each
next sequence ``B(k-1)`` has one bit per **set** bit of ``Bk``, with half
of those set — the items updated after the (newer) ``TS(B(k-1))``.
``TS(B0)`` is the time after which nothing has been updated.

Key structural fact exploited here: because each level's 1-bits are "the
items updated after TS(level)", the 1-bit sets are exactly *nested
prefixes of the update-recency order*.  The report therefore stores one
recency prefix plus per-level counts/timestamps; the literal bit arrays
are available via :meth:`BitSequenceReport.materialize` (and
:func:`decode_levels`), and property tests assert the two views agree.

Client algorithm (paper Figure 2), implemented by
:meth:`BitSequenceReport.invalidation_for`:

* ``Tlb >= TS(B0)``  — nothing to invalidate;
* ``Tlb <  TS(Bn)``  — the whole cache is dropped;
* otherwise          — locate ``Bj`` with ``TS(Bj) <= Tlb < TS(B(j-1))``
  and invalidate the items represented by the 1-bits of ``Bj``.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Sequence, Tuple

import numpy as np

from .base import Invalidation, Report, ReportKind, UpdateLog
from .sizes import DEFAULT_TIMESTAMP_BITS, bitseq_report_bits


def level_counts_for(n_items: int) -> List[int]:
    """1-bit capacities of levels ``B1 .. Bn``, smallest level first.

    ``Bn`` can mark ``N // 2`` items; each shallower level halves that.
    For ``N < 2`` there are no levels (only the dummy ``B0``).
    """
    counts: List[int] = []
    m = n_items // 2
    while m >= 1:
        counts.append(m)
        m //= 2
    counts.reverse()
    return counts


class BitSequenceReport(Report):
    """An ``IR(BS)`` built from the database's update-recency order.

    Parameters
    ----------
    timestamp:
        Broadcast time ``Ti``.
    n_items:
        Database size ``N``.
    recent_items / recent_times:
        The most-recently-updated distinct items (ids and their update
        times), most recent first, at least ``min(d, N//2) + 1`` entries
        where available (``d`` = distinct updated items) so every level
        timestamp is computable.
    origin:
        Time meaning "before the database existed"; used as the timestamp
        of levels whose capacity exceeds the number of updated items.
    """

    kind = ReportKind.BIT_SEQUENCES

    # Created lazily by ones_set(); annotation only, so the AttributeError
    # fast path in ones_set keeps working.
    _ones_sets: Dict[int, FrozenSet[int]]

    def __init__(
        self,
        timestamp: float,
        n_items: int,
        recent_items: Sequence[int],
        recent_times: Sequence[float],
        origin: float = float("-inf"),
        timestamp_bits: int = DEFAULT_TIMESTAMP_BITS,
    ) -> None:
        if len(recent_items) != len(recent_times):
            raise ValueError("recent_items and recent_times lengths differ")
        for earlier, later in zip(recent_times[1:], recent_times[:-1]):
            if later < earlier:
                raise ValueError("recent_times must be non-increasing")
        self.timestamp = float(timestamp)
        self.n_items = int(n_items)
        self.origin = float(origin)
        self.level_counts = level_counts_for(n_items)  # ascending capacity
        max_needed = self.level_counts[-1] if self.level_counts else 0
        self._items: Tuple[int, ...] = tuple(recent_items[: max_needed + 1])
        self._times: Tuple[float, ...] = tuple(recent_times[: max_needed + 1])
        d = len(self._items)
        # TS(Bk): the time after which exactly the level's 1-bit items have
        # been updated = update time of the (m_k + 1)-th most recent item,
        # or the origin when fewer than m_k items were ever updated.
        self.level_times = [
            self._times[m] if d > m else self.origin for m in self.level_counts
        ]
        # TS(B0): the time after which nothing has been updated.
        self.ts_b0 = self._times[0] if d > 0 else self.origin
        self.size_bits = bitseq_report_bits(n_items, timestamp_bits)

    def __repr__(self) -> str:
        return (
            f"<BitSequenceReport T={self.timestamp} N={self.n_items} "
            f"levels={len(self.level_counts)}>"
        )

    # -- client-side queries --------------------------------------------------

    @property
    def ts_bn(self) -> float:
        """Timestamp of the deepest sequence; older ``Tlb`` cannot be saved."""
        return self.level_times[-1] if self.level_times else self.ts_b0

    def salvageable(self, tlb: float) -> bool:
        """Whether a client with last-heard time *tlb* avoids a full drop."""
        return tlb >= self.ts_bn

    def covers(self, tlb: float) -> bool:
        return self.salvageable(tlb)

    def level_for(self, tlb: float) -> int:
        """Index (into ``level_counts``) of the sequence a client uses.

        The smallest level whose timestamp is <= *tlb*; requires
        ``salvageable(tlb)``.
        """
        for idx, ts in enumerate(self.level_times):
            if ts <= tlb:
                return idx
        raise ValueError(f"tlb {tlb} is older than TS(Bn)={self.ts_bn}")

    def ones_of_level(self, idx: int) -> Tuple[int, ...]:
        """Item ids represented by the 1-bits of level *idx*."""
        m = self.level_counts[idx]
        return self._items[: min(m, len(self._items))]

    def ones_set(self, idx: int) -> FrozenSet[int]:
        """Frozenset view of a level's 1-bits, memoized.

        One report is applied by every connected client, so sharing the
        set across them matters when deep levels (up to N/2 items) are in
        play.
        """
        try:
            cache = self._ones_sets
        except AttributeError:
            cache = self._ones_sets = {}
        try:
            return cache[idx]
        except KeyError:
            s = frozenset(self.ones_of_level(idx))
            cache[idx] = s
            return s

    def invalidation_for(self, tlb: float) -> Invalidation:
        if tlb >= self.ts_b0:
            return Invalidation.nothing()
        if not self.salvageable(tlb):
            return Invalidation.drop_all()
        return Invalidation(covered=True, items=self.ones_set(self.level_for(tlb)))

    # -- literal bit-level view ------------------------------------------------

    def materialize(self) -> List["np.ndarray[Any, Any]"]:
        """Build the actual bit arrays ``[Bn, B(n-1), .., B1]``.

        ``Bn`` (first element) has one bool per database item; each later
        array has one bool per set bit of its predecessor.  Used by tests,
        the wire-format example and size verification — the simulator
        itself only needs the prefix view.
        """
        if not self.level_counts:
            return []
        arrays: List["np.ndarray[Any, Any]"] = []
        counts_desc = list(reversed(self.level_counts))  # Bn first
        d = len(self._items)
        # Bn over the full item space.
        top_members = np.zeros(self.n_items, dtype=bool)
        top_items = np.fromiter(
            self._items[: min(counts_desc[0], d)], dtype=np.int64, count=-1
        )
        if top_items.size:
            top_members[top_items] = True
        arrays.append(top_members)
        prev_ones = np.flatnonzero(top_members)  # item ids, ascending
        for m in counts_desc[1:]:
            member_items = set(self._items[: min(m, d)])
            level = np.fromiter(
                (int(item) in member_items for item in prev_ones),
                dtype=bool,
                count=prev_ones.size,
            )
            arrays.append(level)
            prev_ones = prev_ones[level]
        return arrays


def decode_levels(
    arrays: List["np.ndarray[Any, Any]"], n_items: int
) -> List[Tuple[int, ...]]:
    """Recover each level's 1-bit item ids from literal bit arrays.

    Input is ``materialize()`` output (``Bn`` first).  Returns, per level,
    the item ids in ascending id order.  This is the decode a real client
    would run; tests assert it matches :meth:`ones_of_level`.
    """
    if not arrays:
        return []
    out: List[Tuple[int, ...]] = []
    if arrays[0].size != n_items:
        raise ValueError("top level must span the whole database")
    prev_ones = np.flatnonzero(arrays[0])
    out.append(tuple(int(i) for i in prev_ones))
    for level in arrays[1:]:
        if level.size != prev_ones.size:
            raise ValueError("level width must equal predecessor's 1-bit count")
        prev_ones = prev_ones[level]
        out.append(tuple(int(i) for i in prev_ones))
    return out


def bs_salvage_threshold(db: UpdateLog, origin: float = float("-inf")) -> float:
    """``TS(Bn)`` of the report the database would produce right now.

    The oldest client last-heard time a Bit-Sequences report can still
    salvage; the adaptive servers compare uploaded ``Tlb`` values against
    this without building a report.
    """
    counts = level_counts_for(db.n_items)
    if not counts:
        return origin
    m_n = counts[-1]
    recent = db.recency_order(limit=m_n + 1)
    if len(recent) > m_n:
        return recent[m_n][1]
    return origin


def build_bitseq_report(
    db: UpdateLog,
    timestamp: float,
    origin: float = float("-inf"),
    timestamp_bits: int = DEFAULT_TIMESTAMP_BITS,
) -> BitSequenceReport:
    """Construct ``IR(BS)`` from a :class:`~repro.db.Database`."""
    counts = level_counts_for(db.n_items)
    limit = (counts[-1] + 1) if counts else 1
    recent = db.recency_order(limit=limit)
    return BitSequenceReport(
        timestamp=timestamp,
        n_items=db.n_items,
        recent_items=[item for item, _ts in recent],
        recent_times=[ts for _item, ts in recent],
        origin=origin,
        timestamp_bits=timestamp_bits,
    )
