"""Invalidation-report data structures and bit-size accounting."""

from .amnesic import AmnesicReport, build_amnesic_report
from .base import Invalidation, Report, ReportKind, UpdateLog
from .bitseq import (
    BitSequenceReport,
    build_bitseq_report,
    decode_levels,
    level_counts_for,
)
from .signatures import (
    IncrementalCombiner,
    SignatureReport,
    SignatureScheme,
    build_signature_report,
    item_signature,
    subsets_of_item,
)
from .sizes import (
    DEFAULT_TIMESTAMP_BITS,
    REPORT_TAG_BITS,
    amnesic_report_bits,
    bitseq_report_bits,
    checking_upload_bits,
    enlarged_window_report_bits,
    id_bits,
    signature_report_bits,
    tlb_upload_bits,
    validity_report_bits,
    window_report_bits,
)
from .window import (
    EnlargedWindowReport,
    WindowReport,
    WindowReportCache,
    build_enlarged_window_report,
    build_window_report,
    enlarged_report_size,
)

__all__ = [
    "AmnesicReport",
    "BitSequenceReport",
    "DEFAULT_TIMESTAMP_BITS",
    "EnlargedWindowReport",
    "IncrementalCombiner",
    "Invalidation",
    "REPORT_TAG_BITS",
    "Report",
    "ReportKind",
    "SignatureReport",
    "SignatureScheme",
    "UpdateLog",
    "WindowReport",
    "WindowReportCache",
    "amnesic_report_bits",
    "bitseq_report_bits",
    "build_amnesic_report",
    "build_bitseq_report",
    "build_enlarged_window_report",
    "build_signature_report",
    "build_window_report",
    "checking_upload_bits",
    "decode_levels",
    "enlarged_report_size",
    "enlarged_window_report_bits",
    "id_bits",
    "item_signature",
    "level_counts_for",
    "signature_report_bits",
    "subsets_of_item",
    "tlb_upload_bits",
    "validity_report_bits",
    "window_report_bits",
]
