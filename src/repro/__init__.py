"""repro — reproduction of *Adaptive Cache Invalidation Methods in Mobile
Environments* (Qinglong Hu and Dik Lun Lee, HPDC 1997).

A single wireless cell is simulated: a stateless server periodically
broadcasts invalidation reports; mobile clients cache data items, doze
through long disconnections, and salvage their caches on reconnection.
The package implements the paper's adaptive schemes (**AFW**, **AAW**),
every baseline (TS, AT, SIG, BS, TS-with-checking, a GCORE-inspired
grouped checking), and the full simulation substrate (discrete-event
kernel, bit-accurate wireless channels, server database, LRU client
caches).

Quickstart::

    from repro import SystemParams, run_simulation

    params = SystemParams(simulation_time=20_000, n_clients=50)
    result = run_simulation(params, "uniform", "aaw")
    print(result.summary())
"""

import os as _os

if _os.environ.get("REPRO_PURE_PYTHON", "") not in ("", "0"):
    # Must run before any strict-tier import: reroute compiled extension
    # modules back to their .py sources (see repro/_purity.py).
    from . import _purity as _purity_hook

    _purity_hook.install()

from .net import FaultConfig
from .sim import (
    HOTCOLD,
    UNIFORM,
    SimulationModel,
    SimulationResult,
    SystemParams,
    Workload,
    run_replications,
    run_schemes,
    run_simulation,
    workload_by_name,
)
from .schemes import (
    EVALUATED_SCHEMES,
    Scheme,
    available_schemes,
    get_scheme,
    register_scheme,
)
from .service import (
    Answer,
    CacheNode,
    NodeConfig,
    ServiceParams,
    SWRConfig,
    VirtualClock,
)

__version__ = "1.0.0"

__all__ = [
    "Answer",
    "CacheNode",
    "EVALUATED_SCHEMES",
    "FaultConfig",
    "HOTCOLD",
    "NodeConfig",
    "SWRConfig",
    "Scheme",
    "ServiceParams",
    "VirtualClock",
    "SimulationModel",
    "SimulationResult",
    "SystemParams",
    "UNIFORM",
    "Workload",
    "available_schemes",
    "get_scheme",
    "register_scheme",
    "run_replications",
    "run_schemes",
    "run_simulation",
    "workload_by_name",
    "__version__",
]
