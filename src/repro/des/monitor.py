"""Statistics collectors for simulation outputs.

Three collector styles cover the metrics the paper reports:

* :class:`Counter` — monotone totals (queries answered, bits sent).
* :class:`Tally` — moments of a sample sequence (query latency) via
  Welford's online algorithm.
* :class:`TimeWeighted` — time-integral of a piecewise-constant level
  (queue length, channel busy fraction).
"""

from __future__ import annotations

import math
from typing import Dict, Optional


class Counter:
    """A named monotone counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = "counter") -> None:
        self.name = name
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        """Increase the counter; negative increments are rejected."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Tally:
    """Online mean/variance/min/max of observed samples."""

    __slots__ = ("name", "count", "_mean", "_m2", "min", "max")

    def __init__(self, name: str = "tally") -> None:
        self.name = name
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 with fewer than two samples)."""
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stdev(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    def __repr__(self) -> str:
        return f"<Tally {self.name} n={self.count} mean={self.mean:.4g}>"


class TimeWeighted:
    """Time-weighted average of a piecewise-constant level."""

    __slots__ = ("name", "_level", "_last_time", "_area", "_start")

    def __init__(
        self, env_now: float = 0.0, level: float = 0.0, name: str = "level"
    ) -> None:
        self.name = name
        self._level = level
        self._last_time = env_now
        self._area = 0.0
        self._start = env_now

    @property
    def level(self) -> float:
        """Current level."""
        return self._level

    def set(self, level: float, now: float) -> None:
        """Change the level at time *now* (accumulates the closed interval)."""
        if now < self._last_time:
            raise ValueError("time went backwards")
        self._area += self._level * (now - self._last_time)
        self._last_time = now
        self._level = level

    def adjust(self, delta: float, now: float) -> None:
        """Shift the level by *delta* at time *now*."""
        self.set(self._level + delta, now)

    def average(self, now: float) -> float:
        """Time average over ``[start, now]`` (0.0 for an empty interval)."""
        span = now - self._start
        if span <= 0:
            return 0.0
        return (self._area + self._level * (now - self._last_time)) / span

    def __repr__(self) -> str:
        return f"<TimeWeighted {self.name} level={self._level}>"


class Histogram:
    """Log-scale histogram for long-tailed samples (e.g. query latency).

    Buckets are powers of two times *base*: bucket k counts samples in
    ``[base * 2^k, base * 2^(k+1))``; an underflow bucket catches smaller
    values.  Gives percentile estimates without storing samples.
    """

    __slots__ = ("name", "base", "_counts", "_underflow", "count", "_tally")

    def __init__(self, base: float = 0.001, name: str = "histogram") -> None:
        if base <= 0:
            raise ValueError("base must be positive")
        self.name = name
        self.base = base
        self._counts: Dict[int, int] = {}
        self._underflow = 0
        self.count = 0
        self._tally = Tally(name)

    def observe(self, value: float) -> None:
        """Record one sample (negative values are rejected)."""
        if value < 0:
            raise ValueError("histogram samples must be non-negative")
        self.count += 1
        self._tally.observe(value)
        if value < self.base:
            self._underflow += 1
            return
        bucket = int(math.floor(math.log2(value / self.base)))
        self._counts[bucket] = self._counts.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        """Exact sample mean."""
        return self._tally.mean

    @property
    def max(self) -> Optional[float]:
        """Exact sample maximum."""
        return self._tally.max

    def percentile(self, q: float) -> float:
        """Approximate q-quantile (upper edge of the covering bucket)."""
        if not 0 <= q <= 1:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = self._underflow
        if seen >= target:
            return self.base
        for bucket in sorted(self._counts):
            seen += self._counts[bucket]
            if seen >= target:
                return self.base * 2.0 ** (bucket + 1)
        return self._tally.max if self._tally.max is not None else 0.0

    def buckets(self) -> Dict[float, int]:
        """``{bucket lower edge: count}`` including the underflow bucket."""
        out: Dict[float, int] = {0.0: self._underflow} if self._underflow else {}
        for bucket in sorted(self._counts):
            out[self.base * 2.0**bucket] = self._counts[bucket]
        return out

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count}>"


class MetricSet:
    """A named bag of collectors with lazy creation.

    Lets model components record into ``metrics.counter("x").add(...)``
    without pre-registration; the runner snapshots everything at the end.
    """

    __slots__ = ("counters", "tallies", "levels", "histograms")

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.tallies: Dict[str, Tally] = {}
        self.levels: Dict[str, TimeWeighted] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """Fetch-or-create the counter *name*."""
        try:
            return self.counters[name]
        except KeyError:
            c = Counter(name)
            self.counters[name] = c
            return c

    def tally(self, name: str) -> Tally:
        """Fetch-or-create the tally *name*."""
        try:
            return self.tallies[name]
        except KeyError:
            t = Tally(name)
            self.tallies[name] = t
            return t

    def histogram(self, name: str, base: float = 0.001) -> Histogram:
        """Fetch-or-create the histogram *name*."""
        try:
            return self.histograms[name]
        except KeyError:
            h = Histogram(base=base, name=name)
            self.histograms[name] = h
            return h

    def level(self, name: str, now: float = 0.0) -> TimeWeighted:
        """Fetch-or-create the time-weighted level *name*."""
        try:
            return self.levels[name]
        except KeyError:
            lv = TimeWeighted(now, name=name)
            self.levels[name] = lv
            return lv

    # -- bound handles -------------------------------------------------------
    #
    # ``metrics.counter("x").add()`` costs a method call plus a dict
    # lookup on every event; actors on the hot path resolve their names
    # once at construction and keep the returned handle.  The bind_*
    # spellings are aliases of the fetch-or-create accessors — they exist
    # so call sites document that the lookup is deliberately hoisted.

    def bind_counter(self, name: str) -> Counter:
        """Resolve *name* once; call ``.add()`` on the returned handle."""
        return self.counter(name)

    def bind_tally(self, name: str) -> Tally:
        """Resolve *name* once; call ``.observe()`` on the handle."""
        return self.tally(name)

    def bind_histogram(self, name: str, base: float = 0.001) -> Histogram:
        """Resolve *name* once; call ``.observe()`` on the handle."""
        return self.histogram(name, base=base)

    def snapshot(self, now: float) -> Dict[str, float]:
        """Flatten every collector into a ``{name: value}`` dict."""
        out: Dict[str, float] = {}
        for name, c in self.counters.items():
            out[name] = c.value
        for name, t in self.tallies.items():
            out[f"{name}.count"] = t.count
            out[f"{name}.mean"] = t.mean
            out[f"{name}.max"] = t.max if t.max is not None else 0.0
        for name, lv in self.levels.items():
            out[f"{name}.avg"] = lv.average(now)
        for name, h in self.histograms.items():
            out[f"{name}.p50"] = h.percentile(0.50)
            out[f"{name}.p95"] = h.percentile(0.95)
            out[f"{name}.p99"] = h.percentile(0.99)
        return out
