"""The simulation environment: clock, event heap, and run loop."""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple, Union

from ._backend import heap_kind
from .errors import EmptySchedule, StopSimulation
from .event import AllOf, AnyOf, Event, NORMAL, Timeout, _Wakeup
from .process import Process
from .soa_heap import EventHeap

Infinity = float("inf")


class Environment:
    """A discrete-event simulation environment.

    Events are processed in ``(time, priority, insertion order)`` order,
    which makes runs fully deterministic for a fixed seed.

    Two interchangeable heap backends hold the schedule (selected once at
    construction by :func:`repro.des._backend.heap_kind`): a list of
    ``(when, priority, eid, payload)`` tuples sifted by the C ``heapq``
    — the winner under the interpreter — and the struct-of-arrays
    :class:`~repro.des.soa_heap.EventHeap` — the winner once the kernel
    tier is compiled with mypyc.  Both produce the identical pop
    sequence (``(when, priority, eid)`` is a strict total order), so a
    run is bit-identical whichever is active.

    Parameters
    ----------
    initial_time:
        Simulation clock value at construction (default 0.0).
    """

    __slots__ = ("_now", "_heap", "_soa", "_eid", "_active_process", "_tracer")

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        # Tuple-backend entries are (time, priority, eid, Event-or-_Wakeup);
        # the payload stays Any because the wakeup fast lane only
        # duck-types Event.  Unused (empty) when the SoA backend is active.
        self._heap: List[Tuple[float, int, int, Any]] = []
        self._soa: Optional[EventHeap] = (
            EventHeap() if heap_kind() == "soa" else None
        )
        self._eid = 0
        self._active_process: Optional[Process] = None
        self._tracer: Optional[Callable[[float, Any], None]] = None

    def __repr__(self) -> str:
        pending = len(self._soa) if self._soa is not None else len(self._heap)
        return f"<Environment now={self._now} pending={pending}>"

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def scheduled_events(self) -> int:
        """Total events ever scheduled (the kernel's throughput unit)."""
        return self._eid

    @property
    def heap_kind(self) -> str:
        """Active heap backend: ``"soa"`` or ``"tuple"`` (telemetry)."""
        return "soa" if self._soa is not None else "tuple"

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    def set_tracer(self, tracer: Optional[Callable[[float, Any], None]]) -> None:
        """Install (or remove, with None) an event tracer.

        The tracer is called as ``tracer(time, event)`` for every
        processed event — see :class:`repro.des.trace.TraceRecorder`.
        The run loop samples the tracer once per :meth:`run` call, so
        install it before running (changing it from inside a callback
        takes effect at the next run).
        """
        self._tracer = tracer

    # -- event factories ----------------------------------------------------

    def event(self) -> Event:
        """Create a new, untriggered :class:`Event`."""
        return Event(self)

    def timeout(
        self, delay: float, value: Any = None, priority: int = NORMAL
    ) -> Timeout:
        """Create an event that fires after *delay* simulated seconds."""
        return Timeout(self, delay, value, priority)

    def sleep(self, delay: float) -> float:
        """Fast-lane sleep token: ``yield env.sleep(d)``.

        Equivalent to ``yield env.timeout(d)`` at NORMAL priority —
        identical ``(time, priority, insertion-order)`` scheduling — but
        avoids allocating an Event and its callback list: the kernel
        re-arms the process's reusable wakeup token, which the run loop
        resumes directly (see :meth:`Process._resume`).  Yielding the
        bare number works too; this spelling exists for readability.
        Use :meth:`timeout` when a value, a non-default priority, or a
        joinable event is needed.
        """
        return float(delay)

    def process(self, generator: Generator[Any, Any, Any], name: str = "") -> Process:
        """Start a new :class:`Process` from *generator*."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that succeeds once all of *events* have succeeded."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that succeeds once any of *events* has succeeded."""
        return AnyOf(self, events)

    # -- scheduling & run loop ----------------------------------------------

    def schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Put a triggered *event* onto the heap *delay* seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._eid = eid = self._eid + 1
        if self._soa is None:
            heapq.heappush(self._heap, (self._now + delay, priority, eid, event))
        else:
            self._soa.push(self._now + delay, priority, eid, event)

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        if self._soa is not None:
            return self._soa.peek_when() if self._soa else Infinity
        return self._heap[0][0] if self._heap else Infinity

    def step(self) -> None:
        """Process the single next event.

        Raises
        ------
        EmptySchedule
            If no events remain.
        """
        if self._soa is not None:
            if not self._soa:
                raise EmptySchedule("no scheduled events remain")
            when, eid, event = self._soa.pop()
        else:
            try:
                when, _prio, eid, event = heapq.heappop(self._heap)
            except IndexError:
                raise EmptySchedule("no scheduled events remain") from None
        self._now = when
        self._dispatch(when, eid, event)

    def _dispatch(self, when: float, eid: int, event: Any) -> None:
        """Process one popped entry — the single-event twin of the run
        loops' inlined dispatch (keep the three in lockstep)."""
        if type(event) is _Wakeup:
            if event.eid == eid:  # stale (interrupted) wakes are skipped
                if self._tracer is not None:
                    self._tracer(when, event)
                event.proc._resume(event)
            return
        if self._tracer is not None:
            self._tracer(when, event)
        callbacks = event.callbacks
        event._processed = True
        event.callbacks = None
        proc = event._proc
        if proc is not None:
            event._proc = None
            proc._resume(event)
            for callback in callbacks:
                callback(event)
            return
        for callback in callbacks:
            callback(event)
        if event._ok is False and not event._defused and not callbacks:
            # A failed event nobody waited on: surface the error instead of
            # silently dropping it.
            raise event.value

    def run(self, until: Union[None, float, Event] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            * ``None`` — run until the schedule drains.
            * a number — run until the clock reaches that time.
            * an :class:`Event` — run until that event is processed and
              return its value.
        """
        until_event: Optional[Event] = None
        if until is None:
            stop_at = Infinity
        elif isinstance(until, Event):
            until_event = until
            stop_at = Infinity
            if until_event.processed:
                return until_event.value
            # Unprocessed events always carry a callback list.
            until_event.callbacks.append(_StopCallback())  # type: ignore[union-attr]
        else:
            stop_at = float(until)
            if stop_at < self._now:
                raise ValueError(
                    f"until={stop_at} lies in the past (now={self._now})"
                )

        # Inlined dispatch loops: heap access, the wakeup fast lane, the
        # single-waiter resume and the processed-marking are hot enough at
        # full scale that method and property indirections measurably cost
        # (see docs/PERFORMANCE.md); step() stays as the single-event API.
        # One loop per heap backend — keep their dispatch bodies (and
        # _dispatch above) textually in lockstep; the kernel goldens and
        # tests/des/test_heap_equivalence.py pin them bit-identical.
        try:
            if self._soa is not None:
                return self._run_soa(stop_at, until_event)
            heap = self._heap
            pop = heapq.heappop
            wakeup_cls = _Wakeup
            timeout_cls = Timeout
            bounded = stop_at != Infinity
            tracer = self._tracer  # set_tracer applies from the next run
            while heap:
                if bounded and heap[0][0] > stop_at:
                    self._now = stop_at
                    return None
                when, _prio, eid, event = pop(heap)
                self._now = when
                cls: Any = event.__class__
                if cls is timeout_cls:
                    proc = event._proc
                    if proc is not None:
                        # Private timeout: exactly one waiter, no callback
                        # list walk, value known good.
                        if tracer is not None:
                            tracer(when, event)
                        event._processed = True
                        event.callbacks = None
                        event._proc = None
                        proc._resume(event)
                        continue
                elif cls is wakeup_cls:
                    if event.eid == eid:  # stale (interrupted) wakes skip
                        if tracer is not None:
                            tracer(when, event)
                        event.proc._resume(event)
                    continue
                if tracer is not None:
                    tracer(when, event)
                callbacks = event.callbacks
                event._processed = True
                event.callbacks = None
                proc = event._proc
                if proc is not None:
                    event._proc = None
                    proc._resume(event)
                    for callback in callbacks:
                        callback(event)
                    continue
                for callback in callbacks:
                    callback(event)
                if event._ok is False and not event._defused and not callbacks:
                    # A failed event nobody waited on: surface the error
                    # instead of silently dropping it.
                    raise event.value
        except StopSimulation as stop:
            return stop.value
        if until_event is not None:
            raise RuntimeError(
                "run(until=event) exhausted the schedule before the event fired"
            )
        if stop_at is not Infinity:
            self._now = stop_at
        return None

    def _run_soa(self, stop_at: float, until_event: Optional[Event]) -> Any:
        """The run loop over the struct-of-arrays heap backend.

        Same dispatch as the tuple loop in :meth:`run` (kept in lockstep);
        StopSimulation unwinding stays in the caller's ``try``.
        """
        soa = self._soa
        assert soa is not None
        whens = soa._when
        wakeup_cls = _Wakeup
        timeout_cls = Timeout
        bounded = stop_at != Infinity
        tracer = self._tracer  # set_tracer applies from the next run
        while whens:
            if bounded and whens[0] > stop_at:
                self._now = stop_at
                return None
            when, eid, event = soa.pop()
            self._now = when
            cls: Any = event.__class__
            if cls is timeout_cls:
                proc = event._proc
                if proc is not None:
                    if tracer is not None:
                        tracer(when, event)
                    event._processed = True
                    event.callbacks = None
                    event._proc = None
                    proc._resume(event)
                    continue
            elif cls is wakeup_cls:
                if event.eid == eid:  # stale (interrupted) wakes skip
                    if tracer is not None:
                        tracer(when, event)
                    event.proc._resume(event)
                continue
            if tracer is not None:
                tracer(when, event)
            callbacks = event.callbacks
            event._processed = True
            event.callbacks = None
            proc = event._proc
            if proc is not None:
                event._proc = None
                proc._resume(event)
                for callback in callbacks:
                    callback(event)
                continue
            for callback in callbacks:
                callback(event)
            if event._ok is False and not event._defused and not callbacks:
                raise event.value
        if until_event is not None:
            raise RuntimeError(
                "run(until=event) exhausted the schedule before the event fired"
            )
        if stop_at is not Infinity:
            self._now = stop_at
        return None


class _StopCallback:
    """Callback object that unwinds :meth:`Environment.run`."""

    __slots__ = ()

    def __call__(self, event: Event) -> None:
        if event.ok:
            raise StopSimulation(event.value)
        raise event.value
