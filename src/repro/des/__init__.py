"""Process-oriented discrete-event simulation kernel.

A from-scratch replacement for the CSIM package the paper used: coroutine
processes, an event heap with deterministic (time, priority, FIFO)
ordering, waitable stores and resources, named random streams, and
statistics monitors.

Quick example::

    from repro.des import Environment

    def clock(env, name, tick):
        while True:
            yield env.timeout(tick)
            print(name, env.now)

    env = Environment()
    env.process(clock(env, "fast", 1))
    env.run(until=3)
"""

from .environment import Environment, Infinity
from .errors import EmptySchedule, Interrupt, SimulationError, StopSimulation
from .event import (
    AllOf,
    AnyOf,
    Condition,
    ConditionValue,
    Event,
    HIGH,
    LOW,
    NORMAL,
    Timeout,
    URGENT,
)
from .monitor import Counter, Histogram, MetricSet, Tally, TimeWeighted
from .process import Process
from .queues import FilterStore, PriorityItem, PriorityStore, Store
from .resource import Container, Preempted, PreemptiveResource, Request, Resource
from .rng import RandomStream, RandomStreams
from .trace import TraceRecord, TraceRecorder

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "ConditionValue",
    "Container",
    "Counter",
    "EmptySchedule",
    "Environment",
    "Event",
    "FilterStore",
    "Histogram",
    "HIGH",
    "Infinity",
    "Interrupt",
    "LOW",
    "MetricSet",
    "NORMAL",
    "PriorityItem",
    "Preempted",
    "PreemptiveResource",
    "PriorityStore",
    "Process",
    "RandomStream",
    "RandomStreams",
    "Request",
    "Resource",
    "SimulationError",
    "StopSimulation",
    "Store",
    "Tally",
    "TraceRecord",
    "TraceRecorder",
    "TimeWeighted",
    "Timeout",
    "URGENT",
]
