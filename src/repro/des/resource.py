"""Shared resources with bounded capacity (CSIM ``facility`` analogues)."""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from .event import Event

if TYPE_CHECKING:
    from types import TracebackType

    from .environment import Environment
    from .process import Process


class Request(Event):
    """Event returned by :meth:`Resource.request`; fires when granted.

    Usable as a context manager so the slot is always released::

        with resource.request() as req:
            yield req
            ...
    """

    __slots__ = ("resource", "priority", "seq", "owner")

    def __init__(self, resource: "Resource", priority: float = 0.0) -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        #: Requesting process (set by PreemptiveResource for evictions).
        self.owner: Optional[Process] = None
        resource._seq += 1
        self.seq = resource._seq
        resource._queue.append(self)
        resource._queue.sort(key=lambda r: (r.priority, r.seq))
        resource._grant()

    def __enter__(self) -> "Request":
        return self

    def __exit__(
        self,
        exc_type: Optional[type[BaseException]],
        exc_val: Optional[BaseException],
        exc_tb: Optional["TracebackType"],
    ) -> bool:
        self.resource.release(self)
        return False


class Resource:
    """A resource with *capacity* slots; requests queue by (priority, FIFO).

    Lower priority values are served first.
    """

    __slots__ = ("env", "capacity", "users", "_queue", "_seq")

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.users: List[Request] = []
        self._queue: List[Request] = []
        self._seq = 0

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    @property
    def queue(self) -> List[Request]:
        """Pending (ungranted) requests, in service order."""
        return list(self._queue)

    def request(self, priority: float = 0.0) -> Request:
        """Ask for a slot; the returned event fires when granted."""
        return Request(self, priority)

    def release(self, request: Request) -> None:
        """Return a slot.  Releasing an ungranted request cancels it."""
        if request in self.users:
            self.users.remove(request)
        elif request in self._queue:
            self._queue.remove(request)
        self._grant()

    def _grant(self) -> None:
        while self._queue and len(self.users) < self.capacity:
            nxt = self._queue.pop(0)
            self.users.append(nxt)
            nxt.succeed()


class PreemptiveResource(Resource):
    """A resource whose higher-priority requests evict current holders.

    When every slot is taken and a new request outranks (strictly lower
    priority value than) the worst current holder, that holder's process
    is interrupted with a :class:`Preempted` cause and its slot handed
    over.  Mirrors the wireless channel's report-preemption discipline
    as a general kernel primitive.

    Requests must be made by processes (the holder to interrupt is the
    process that made the request).
    """

    __slots__ = ()

    def request(self, priority: float = 0.0) -> Request:
        req = Request(self, priority)
        # The process to interrupt if this holder gets preempted.
        req.owner = self.env.active_process
        if not req.triggered:
            self._try_preempt(req)
        return req

    def _try_preempt(self, req: Request) -> None:
        holders = [u for u in self.users if getattr(u, "owner", None) is not None]
        if not holders:
            return
        victim = max(holders, key=lambda u: (u.priority, u.seq))
        if (victim.priority, victim.seq) <= (req.priority, req.seq):
            return
        self.users.remove(victim)
        # The holders filter above guarantees victim.owner is a process.
        assert victim.owner is not None
        if victim.owner.is_alive and victim.owner.target is not None:
            victim.owner.interrupt(Preempted(by=req, resource=self))
        self._grant()


class Preempted:
    """Interrupt cause handed to a process evicted from a
    :class:`PreemptiveResource`."""

    __slots__ = ("by", "resource")

    def __init__(self, by: Request, resource: "PreemptiveResource") -> None:
        self.by = by
        self.resource = resource

    def __repr__(self) -> str:
        return f"<Preempted by priority {self.by.priority}>"


class ContainerPut(Event):
    """Event for :meth:`Container.put`; fires once the amount fits."""

    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise ValueError("amount must be positive")
        super().__init__(container.env)
        self.amount = amount
        container._put_queue.append(self)
        container._trigger()


class ContainerGet(Event):
    """Event for :meth:`Container.get`; fires once the amount is available."""

    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise ValueError("amount must be positive")
        super().__init__(container.env)
        self.amount = amount
        container._get_queue.append(self)
        container._trigger()


class Container:
    """A continuous-quantity reservoir (e.g. battery energy, buffer bytes)."""

    __slots__ = ("env", "capacity", "_level", "_put_queue", "_get_queue")

    def __init__(
        self, env: Environment, capacity: float = float("inf"), init: float = 0.0
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not (0 <= init <= capacity):
            raise ValueError("init must lie in [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._put_queue: List[ContainerPut] = []
        self._get_queue: List[ContainerGet] = []

    @property
    def level(self) -> float:
        """Current stored amount."""
        return self._level

    def put(self, amount: float) -> ContainerPut:
        """Add *amount*; blocks while it would overflow capacity."""
        return ContainerPut(self, amount)

    def get(self, amount: float) -> ContainerGet:
        """Remove *amount*; blocks while the level is insufficient."""
        return ContainerGet(self, amount)

    def _trigger(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._put_queue:
                event = self._put_queue[0]
                if self._level + event.amount <= self.capacity:
                    self._level += event.amount
                    self._put_queue.pop(0)
                    event.succeed()
                    progress = True
            if self._get_queue:
                event = self._get_queue[0]
                if self._level >= event.amount:
                    self._level -= event.amount
                    self._get_queue.pop(0)
                    event.succeed()
                    progress = True
