"""Event tracing for simulation debugging.

A :class:`TraceRecorder` attached to an environment records every
processed event as a :class:`TraceRecord` (time, event class, repr of
the value, process name when the event belongs to one).  Bounded by
``limit`` so a runaway simulation cannot exhaust memory, filterable by
a predicate, and renderable as text.

Example::

    env = Environment()
    trace = TraceRecorder(limit=1000)
    env.set_tracer(trace)
    ...
    print(trace.format())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from .event import PENDING, Event
from .process import Process


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One processed event."""

    time: float
    kind: str
    name: str
    ok: Optional[bool]
    value: Any

    def __str__(self) -> str:
        status = "ok" if self.ok else ("FAILED" if self.ok is False else "?")
        return f"[{self.time:12.4f}] {self.kind:<12s} {self.name:<24s} {status}"


class TraceRecorder:
    """Records processed events from an :class:`Environment`.

    Parameters
    ----------
    limit:
        Maximum records retained (oldest dropped beyond it).
    predicate:
        Optional filter ``predicate(event) -> bool``; only matching
        events are recorded.
    """

    __slots__ = ("limit", "predicate", "records", "dropped", "seen")

    def __init__(
        self,
        limit: int = 10_000,
        predicate: Optional[Callable[[Event], bool]] = None,
    ) -> None:
        if limit < 1:
            raise ValueError("limit must be positive")
        self.limit = limit
        self.predicate = predicate
        self.records: List[TraceRecord] = []
        self.dropped = 0
        self.seen = 0

    def __call__(self, time: float, event: Event) -> None:
        """Environment hook: record one processed event."""
        self.seen += 1
        if self.predicate is not None and not self.predicate(event):
            return
        name = event.name if isinstance(event, Process) else ""
        value = event._value if event._value is not PENDING else None
        self.records.append(
            TraceRecord(
                time=time,
                kind=type(event).__name__,
                name=name,
                ok=event.ok,
                value=value,
            )
        )
        if len(self.records) > self.limit:
            self.records.pop(0)
            self.dropped += 1

    def clear(self) -> None:
        """Forget everything recorded so far."""
        self.records.clear()
        self.dropped = 0
        self.seen = 0

    def of_kind(self, kind: str) -> List[TraceRecord]:
        """Records whose event class name equals *kind*."""
        return [r for r in self.records if r.kind == kind]

    def between(self, start: float, end: float) -> List[TraceRecord]:
        """Records with ``start <= time <= end``."""
        return [r for r in self.records if start <= r.time <= end]

    def format(self, last: Optional[int] = None) -> str:
        """Render the (last *last*) records as text."""
        records = self.records if last is None else self.records[-last:]
        return "\n".join(str(r) for r in records)
