"""Exception types used by the discrete-event simulation kernel."""

from __future__ import annotations

from typing import Any


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel itself."""


class EmptySchedule(SimulationError):
    """Raised by :meth:`Environment.step` when no future events remain."""


class StopSimulation(Exception):
    """Internal control-flow exception used by ``Environment.run(until=...)``.

    Raised when the *until* event is processed so the run loop can unwind.
    Carries the value of the event that terminated the run.
    """

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The interrupted process receives this exception at its current ``yield``
    statement.  ``cause`` carries the (arbitrary) object passed to
    :meth:`Process.interrupt`.
    """

    @property
    def cause(self) -> Any:
        """The cause passed to :meth:`Process.interrupt`."""
        return self.args[0]
