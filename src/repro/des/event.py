"""Core event types for the discrete-event simulation kernel.

An :class:`Event` is the unit of coordination: processes yield events to
suspend until the event is *processed* (its callbacks run).  The lifecycle
is ``pending -> triggered (scheduled on the heap) -> processed``.

The kernel is deliberately close in spirit to process-oriented simulation
packages such as CSIM (used by the paper) and simpy: the rest of the
library only relies on the small surface defined here.

Hot-path notes (see docs/PERFORMANCE.md): the single-waiter case — one
process yielding one event — is by far the dominant wait pattern, so it
bypasses the callback list entirely through the ``_proc`` slot, and
:class:`Timeout` construction inlines both the base initialiser and the
heap push.  Every specialization preserves the exact ``(time, priority,
eid)`` schedule sequence and is pinned by the kernel golden tests.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, List, Optional

if TYPE_CHECKING:
    from .environment import Environment
    from .process import Process

# Scheduling priorities.  Lower values are popped first among events that
# share a timestamp.  URGENT is used for interrupts and kernel-internal
# wake-ups, HIGH for model events that must precede normal activity in the
# same instant (e.g. database updates commit before a report is built).
URGENT = 0
HIGH = 1
NORMAL = 5
LOW = 9

PENDING = object()


class Event:
    """An event that may succeed with a value or fail with an exception.

    Parameters
    ----------
    env:
        The :class:`~repro.des.environment.Environment` the event lives in.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_processed", "_defused", "_proc")

    def __init__(self, env: Environment) -> None:
        self.env = env
        #: Callables invoked with this event when it is processed.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        self._processed = False
        #: Set True to suppress the unhandled-failure check for this event.
        self._defused = False
        #: Single-waiter fast path: the process suspended on this event,
        #: when it is the *first* waiter.  Resumed before ``callbacks``
        #: (i.e. in exactly the order the old append-only list produced).
        self._proc: Optional[Process] = None

    def __repr__(self) -> str:
        state = (
            "processed"
            if self._processed
            else ("triggered" if self.triggered else "pending")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is scheduled for processing."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed."""
        return self._processed

    @property
    def ok(self) -> Optional[bool]:
        """True if the event succeeded, False if it failed, None if pending."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or failure exception).

        Raises
        ------
        AttributeError
            If the event has not been triggered yet.
        """
        if self._value is PENDING:
            raise AttributeError(f"value of {self!r} is not yet available")
        return self._value

    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with *value*.

        The event is scheduled for processing at the current simulation time.
        Returns the event for chaining.
        """
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        env = self.env
        env._eid = eid = env._eid + 1
        if env._soa is None:
            heappush(env._heap, (env._now, priority, eid, self))
        else:
            env._soa.push(env._now, priority, eid, self)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event as failed with *exception*.

        Processes waiting on the event will have the exception thrown at
        their ``yield`` statement.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        env = self.env
        env._eid = eid = env._eid + 1
        if env._soa is None:
            heappush(env._heap, (env._now, priority, eid, self))
        else:
            env._soa.push(env._now, priority, eid, self)
        return self

    def _mark_processed(self) -> None:
        self._processed = True
        self.callbacks = None


class Timeout(Event):
    """An event that fires after a fixed simulated delay.

    Created via :meth:`Environment.timeout`; triggers itself immediately on
    construction.  The constructor is fully inlined — base initialiser and
    heap push included — because one of these is allocated per classic
    ``yield env.timeout(d)``, the second-hottest yield in the simulator.
    """

    __slots__ = ("delay",)

    def __init__(
        self,
        env: Environment,
        delay: float,
        value: Any = None,
        priority: int = NORMAL,
    ) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._processed = False
        self._defused = False
        self._proc = None
        self.delay = delay
        env._eid = eid = env._eid + 1
        if env._soa is None:
            heappush(env._heap, (env._now + delay, priority, eid, self))
        else:
            env._soa.push(env._now + delay, priority, eid, self)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay} at {id(self):#x}>"


class _Wakeup:
    """Reusable heap token for the kernel's timeout fast lane.

    The dominant event pattern by far is a process sleeping for a fixed
    delay.  ``yield <seconds>`` (or ``yield env.sleep(seconds)``)
    schedules one of these instead of a full :class:`Timeout`: no
    callback list, no pending/triggered lifecycle — just the owning
    process, which the run loop resumes directly.

    Each process owns exactly *one* token, allocated with the process
    and re-armed per sleep by stamping ``eid`` with the sleep's heap
    insertion id: a process sleeps at most once at a time, and eids are
    never reused, so a popped heap entry resumes the process iff its eid
    still matches the token's.  An interrupt cancels the pending sleep
    by resetting ``eid`` to 0 (no entry ever carries eid 0), which
    leaves the stale heap entry to be skipped on pop.  The class-level
    attributes let the token duck-type as a processed, successful event
    for tracers and for :meth:`Process._resume`.
    """

    __slots__ = ("proc", "eid")

    ok = True
    processed = True
    callbacks = None
    _ok = True
    _value = None
    value = None
    _defused = True

    def __init__(self, proc: Process) -> None:
        self.proc = proc
        self.eid = 0

    def __repr__(self) -> str:
        return f"<_Wakeup for {self.proc!r}>"


class ConditionValue:
    """Read-only mapping of the events that had fired when a condition met.

    Supports ``cv[event]``, ``event in cv``, ``len(cv)`` and iteration in
    the order the condition observed the events.
    """

    __slots__ = ("_events",)

    def __init__(self, events: Iterable[Event]) -> None:
        self._events: List[Event] = list(events)

    def __getitem__(self, event: Event) -> Any:
        if event not in self._events:
            raise KeyError(event)
        return event.value

    def __contains__(self, event: object) -> bool:
        return event in self._events

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def values(self) -> List[Any]:
        """Values of the fired events, in observation order."""
        return [e.value for e in self._events]

    def __repr__(self) -> str:
        return f"<ConditionValue {self.values()!r}>"


class Condition(Event):
    """Composite event over a set of child events.

    Succeeds with a :class:`ConditionValue` of the fired children once
    *evaluate* (a predicate over ``(events, fired_count)``) returns True.
    Fails as soon as any child fails.
    """

    __slots__ = ("_events", "_evaluate", "_fired")

    def __init__(
        self,
        env: Environment,
        evaluate: Callable[[List[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._events: List[Event] = list(events)
        self._evaluate = evaluate
        self._fired: List[Event] = []
        for event in self._events:
            if event.env is not env:
                raise ValueError("events of a condition must share one environment")
        if not self._events and self._evaluate(self._events, 0):
            self.succeed(ConditionValue([]))
            return
        for event in self._events:
            if event.processed:
                self._check(event)
            else:
                # Unprocessed events always carry a callback list.
                event.callbacks.append(self._check)  # type: ignore[union-attr]

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._fired.append(event)
        if self._evaluate(self._events, len(self._fired)):
            self.succeed(ConditionValue(self._fired))

    @staticmethod
    def all_events(events: List[Event], count: int) -> bool:
        """Evaluator: every child fired."""
        return len(events) == count

    @staticmethod
    def any_events(events: List[Event], count: int) -> bool:
        """Evaluator: at least one child fired (vacuously true if empty)."""
        return count > 0 or len(events) == 0


class AllOf(Condition):
    """Condition that succeeds when *all* child events have succeeded."""

    __slots__ = ()

    def __init__(self, env: Environment, events: Iterable[Event]) -> None:
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Condition that succeeds when *any* child event has succeeded."""

    __slots__ = ()

    def __init__(self, env: Environment, events: Iterable[Event]) -> None:
        super().__init__(env, Condition.any_events, events)
