"""Kernel backend selection: compiled (mypyc) vs pure python.

The strict-mypy tier (``repro.des``, ``repro.reports``, ``repro.cache``)
doubles as a compilation boundary: ``REPRO_COMPILE=1 pip install .``
builds it with mypyc (see ``setup.py``), producing extension modules
that shadow the ``.py`` sources.  At runtime nothing changes for
callers — the import system prefers the extensions when present and
falls back to source otherwise — but two knobs steer the choice:

``REPRO_PURE_PYTHON=1``
    Force the interpreted sources even when compiled extensions are
    installed (``repro._purity`` rewires the import machinery before
    any tier module loads).  The two builds are bit-identical on every
    golden; this switch exists for debugging, for perf A/B runs and for
    the CI equivalence matrix.

``REPRO_KERNEL=soa|tuple|auto``
    Select the event-heap implementation inside ``Environment``:
    the struct-of-arrays heap (:mod:`repro.des.soa_heap`) or the
    tuple + C-``heapq`` heap.  ``auto`` (default) picks SoA when the
    kernel tier is compiled — where unboxed index arithmetic wins —
    and tuples under the interpreter, where C ``heapq`` wins.  Forcing
    ``soa`` interpreted is supported so the equivalence suites can pin
    both heaps bit-identical without a compiler in the loop.

This module must stay interpreted (it is excluded from the mypyc build)
so the selection logic runs before — and independently of — whatever it
selects.  Backend identity is surfaced as ``kernel.backend`` in run
telemetry and in every ``BENCH_*.json`` host block, so perf baselines
are never cross-compared between backends.
"""

from __future__ import annotations

import importlib.machinery
import os
import sys
from typing import Optional

__all__ = ["compiled_active", "heap_kind", "kernel_backend", "pure_python_forced"]

_compiled_active: Optional[bool] = None


def pure_python_forced() -> bool:
    """True when ``REPRO_PURE_PYTHON`` demands the interpreted tier."""
    return os.environ.get("REPRO_PURE_PYTHON", "") not in ("", "0")


def compiled_active() -> bool:
    """True when the kernel tier is running as compiled extensions."""
    global _compiled_active
    if _compiled_active is None:
        module = sys.modules.get("repro.des.environment")
        if module is None:  # pragma: no cover - import-order corner
            return False  # undecided: don't cache before the module loads
        origin = getattr(getattr(module, "__spec__", None), "origin", "") or ""
        _compiled_active = origin.endswith(
            tuple(importlib.machinery.EXTENSION_SUFFIXES)
        ) and not pure_python_forced()
    return _compiled_active


def kernel_backend() -> str:
    """``"compiled"`` or ``"pure"`` — for telemetry and baselines."""
    return "compiled" if compiled_active() else "pure"


def heap_kind() -> str:
    """``"soa"`` or ``"tuple"`` — the event heap Environment should use."""
    forced = os.environ.get("REPRO_KERNEL", "auto").strip().lower()
    if forced in ("soa", "tuple"):
        return forced
    if forced not in ("", "auto"):
        raise ValueError(
            f"REPRO_KERNEL={forced!r}: expected 'soa', 'tuple' or 'auto'"
        )
    return "soa" if compiled_active() else "tuple"
