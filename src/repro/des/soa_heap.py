"""Array-backed struct-of-arrays event heap (the compiled kernel tier).

The tuple heap in :mod:`repro.des.environment` allocates one
``(when, priority, eid, payload)`` tuple per scheduled event and leans
on the C ``heapq`` to sift them.  That is the right trade under the
interpreter — tuple compares and sifts run in C — but it is the wrong
one once the kernel tier is compiled with mypyc: every entry is still a
boxed tuple of boxed numbers, and every comparison goes through the
generic rich-comparison machinery.

:class:`EventHeap` stores the schedule as parallel flat arrays of
primitives instead::

    _when[i]   float   fire time of heap entry i
    _prio[i]   int     priority (URGENT < HIGH < NORMAL < LOW)
    _eid[i]    int     insertion order — the FIFO tie-break
    _slot[i]   int     index into the payload slot list

plus a payload slot list (``_payload``) holding the only object
reference per event.  Sift-up/sift-down are written as index arithmetic
over those primitives, so the compiled build unboxes the floats/ints and
never allocates per-event wrapper objects.  Freed payload slots are
recycled through a free list, which bounds the slot list by the peak
number of concurrently scheduled events.

Ordering invariants (must match the tuple heap bit-for-bit):

* entries pop in ``(when, priority, eid)`` lexicographic order;
* ``eid`` values are unique, so the order is a *strict* total order —
  any correct binary heap yields the identical pop sequence, which is
  what keeps the two backends interchangeable under the golden tests;
* the sift algorithm mirrors CPython's ``heapq`` (bubble the hole to a
  leaf, then sift the displaced entry back up) so even the internal
  array arrangement matches what ``heapq`` would produce.

Cancellation stays a *dispatch-level* concern: the run loop skips stale
wakeup tokens by eid generation (see ``Environment.run``), so the heap
itself needs no tombstone support.  ``tests/des/test_heap_equivalence``
replays random schedule/cancel/tie sequences against a reference
``heapq`` model to pin all of the above.
"""

from __future__ import annotations

from typing import Any, List, Tuple

__all__ = ["EventHeap"]


class EventHeap:
    """Min-heap over ``(when, priority, eid)`` with slotted payloads."""

    __slots__ = ("_when", "_prio", "_eid", "_slot", "_payload", "_free")

    def __init__(self) -> None:
        self._when: List[float] = []
        self._prio: List[int] = []
        self._eid: List[int] = []
        self._slot: List[int] = []
        self._payload: List[Any] = []
        self._free: List[int] = []

    def __len__(self) -> int:
        return len(self._when)

    def __bool__(self) -> bool:
        return bool(self._when)

    @property
    def slots_allocated(self) -> int:
        """Size of the payload slot list (peak concurrent events)."""
        return len(self._payload)

    def peek_when(self) -> float:
        """Fire time of the root entry (caller guarantees non-empty)."""
        return self._when[0]

    def push(self, when: float, prio: int, eid: int, payload: Any) -> None:
        """Schedule *payload* at ``(when, prio, eid)``."""
        free = self._free
        if free:
            slot = free.pop()
            self._payload[slot] = payload
        else:
            slot = len(self._payload)
            self._payload.append(payload)
        whens = self._when
        pos = len(whens)
        whens.append(when)
        self._prio.append(prio)
        self._eid.append(eid)
        self._slot.append(slot)
        if pos:
            self._sift_to_root(pos, when, prio, eid, slot)

    def pop(self) -> Tuple[float, int, Any]:
        """Remove and return the minimum entry as ``(when, eid, payload)``.

        Raises ``IndexError`` when empty (mirrors ``heapq.heappop``).
        """
        whens = self._when
        prios = self._prio
        eids = self._eid
        slots = self._slot
        last_when = whens.pop()
        last_prio = prios.pop()
        last_eid = eids.pop()
        last_slot = slots.pop()
        if whens:
            when = whens[0]
            eid = eids[0]
            slot = slots[0]
            # Hole-to-leaf sift (heapq._siftup) with the displaced last
            # entry, then bubble it back toward the root.
            self._sift_to_leaf(last_when, last_prio, last_eid, last_slot)
        else:
            when = last_when
            eid = last_eid
            slot = last_slot
        payload = self._payload[slot]
        self._payload[slot] = None
        self._free.append(slot)
        # The one sanctioned allocation: the result triple carrying the
        # freed payload slot's object out to the run loop.
        return (when, eid, payload)  # checks: ignore[PERF001]

    # -- sifts (index arithmetic over the parallel primitive arrays) -------

    def _sift_to_root(
        self, pos: int, when: float, prio: int, eid: int, slot: int
    ) -> None:
        """Move the entry held in the arguments from *pos* toward the root."""
        whens = self._when
        prios = self._prio
        eids = self._eid
        slots = self._slot
        while pos > 0:
            parent = (pos - 1) >> 1
            pwhen = whens[parent]
            if when > pwhen:
                break
            if when == pwhen:
                pprio = prios[parent]
                if prio > pprio or (prio == pprio and eid > eids[parent]):
                    break
            whens[pos] = pwhen
            prios[pos] = prios[parent]
            eids[pos] = eids[parent]
            slots[pos] = slots[parent]
            pos = parent
        whens[pos] = when
        prios[pos] = prio
        eids[pos] = eid
        slots[pos] = slot

    def _sift_to_leaf(self, when: float, prio: int, eid: int, slot: int) -> None:
        """Fill the root hole: walk the smaller child down to a leaf, then
        place the displaced entry and sift it back up (heapq's strategy —
        fewer comparisons than the textbook two-way sift-down)."""
        whens = self._when
        prios = self._prio
        eids = self._eid
        slots = self._slot
        end = len(whens)
        pos = 0
        child = 1
        while child < end:
            right = child + 1
            if right < end:
                cw = whens[child]
                rw = whens[right]
                if rw < cw or (
                    rw == cw
                    and (
                        prios[right] < prios[child]
                        or (
                            prios[right] == prios[child]
                            and eids[right] < eids[child]
                        )
                    )
                ):
                    child = right
            whens[pos] = whens[child]
            prios[pos] = prios[child]
            eids[pos] = eids[child]
            slots[pos] = slots[child]
            pos = child
            child = 2 * pos + 1
        self._sift_to_root(pos, when, prio, eid, slot)
