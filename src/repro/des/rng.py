"""Deterministic, named random-number streams.

Every stochastic component of the simulation (update generator, each
client's query pattern, think times, disconnections, ...) draws from its
own named stream so that

* runs are reproducible given a master seed, and
* changing how often one component draws does not perturb the others
  (common random numbers across scheme comparisons).

Stream seeds are derived from ``sha256(master_seed || name)`` so they do
not depend on creation order.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Optional, Sequence, Tuple, Union

import numpy as np


def _derive_entropy(seed: int, name: str) -> int:
    digest = hashlib.sha256(f"{seed}/{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:16], "little")


# Initial PCG64 states memoized per (seed, name): deriving a state via
# SeedSequence costs ~60us, restoring a cached one ~25us, and sweeps
# re-create the same few hundred streams for every scheme/cell run.
# Capped so an unbounded seed sweep cannot balloon memory.
_STATE_CACHE: Dict[Tuple[int, str], Dict[str, Any]] = {}
_STATE_CACHE_MAX = 4096
_pcg_template: Optional[np.random.PCG64] = None


def _make_bitgen(seed: int, name: str) -> np.random.PCG64:
    global _pcg_template
    key = (seed, name)
    state = _STATE_CACHE.get(key)
    if state is not None:
        # A cached state implies the template was set on first creation.
        assert _pcg_template is not None
        bitgen = _pcg_template.jumped(0)  # cheap copy; state overwritten
        bitgen.state = state
        return bitgen
    bitgen = np.random.PCG64(np.random.SeedSequence(_derive_entropy(seed, name)))
    if _pcg_template is None:
        _pcg_template = bitgen.jumped(0)
    if len(_STATE_CACHE) < _STATE_CACHE_MAX:
        _STATE_CACHE[key] = bitgen.state
    return bitgen


class RandomStream:
    """A single named stream with the distributions the model needs."""

    __slots__ = ("name", "_gen")

    def __init__(self, seed: int, name: str) -> None:
        self.name = name
        self._gen = np.random.Generator(_make_bitgen(seed, name))

    def exponential(self, mean: float) -> float:
        """Exponential variate with the given *mean* (not rate)."""
        if mean < 0:
            raise ValueError("mean must be non-negative")
        if mean == 0:
            return 0.0
        return float(self._gen.exponential(mean))

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """Uniform float in ``[low, high)``."""
        return float(self._gen.uniform(low, high))

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        if high < low:
            raise ValueError(f"empty range [{low}, {high}]")
        return int(self._gen.integers(low, high + 1))

    def bernoulli(self, p: float) -> bool:
        """True with probability *p*."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability {p} outside [0, 1]")
        return bool(self._gen.random() < p)

    def poisson_at_least_one(self, mean: float) -> int:
        """A positive integer with the given mean, via 1 + Poisson(mean-1).

        Used for "mean k items per transaction" style parameters where at
        least one item must be drawn.
        """
        if mean < 1:
            raise ValueError("mean must be >= 1")
        return 1 + int(self._gen.poisson(mean - 1.0))

    def choice_without_replacement(
        self, low: int, high: int, k: int
    ) -> "np.ndarray[Any, Any]":
        """*k* distinct integers from ``[low, high]`` inclusive."""
        span = high - low + 1
        if k > span:
            raise ValueError(f"cannot draw {k} distinct values from {span}")
        result: "np.ndarray[Any, Any]" = low + self._gen.choice(
            span, size=k, replace=False
        )
        return result

    def shuffled(
        self, values: Union[Sequence[Any], "np.ndarray[Any, Any]"]
    ) -> "np.ndarray[Any, Any]":
        """A shuffled copy of *values*."""
        arr = np.array(values)
        self._gen.shuffle(arr)
        return arr


class RandomStreams:
    """Factory and cache of named :class:`RandomStream` objects."""

    __slots__ = ("seed", "_streams")

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, RandomStream] = {}

    def stream(self, name: str) -> RandomStream:
        """Return the stream for *name*, creating it on first use."""
        try:
            return self._streams[name]
        except KeyError:
            stream = RandomStream(self.seed, name)
            self._streams[name] = stream
            return stream

    def __repr__(self) -> str:
        return f"<RandomStreams seed={self.seed} open={len(self._streams)}>"
