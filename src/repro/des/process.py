"""Coroutine processes driven by the simulation environment.

A process wraps a Python generator.  Each ``yield`` hands the kernel an
:class:`~repro.des.event.Event`; the process is resumed with the event's
value once it is processed (or has the failure exception thrown in).
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, Generator, Optional

from .errors import Interrupt
from .event import Event, NORMAL, PENDING, URGENT, _Wakeup

if TYPE_CHECKING:
    from .environment import Environment


class _Failure:
    """Minimal failed-event stand-in for throwing into the generator."""

    __slots__ = ("value",)

    ok = False

    def __init__(self, exc: BaseException) -> None:
        self.value = exc


class Process(Event):
    """An executing process; also an event that fires when the process ends.

    The process-as-event succeeds with the generator's return value, or
    fails with the exception that escaped the generator.  Other processes
    may therefore ``yield proc`` to join on it.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self,
        env: Environment,
        generator: Generator[Any, Any, Any],
        name: str = "",
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        #: The event this process is currently waiting on (None when running
        #: or finished).
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        # Kick the process off at the current time.
        init = Event(env)
        init._ok = True
        init._value = None
        init.callbacks.append(self._resume)  # type: ignore[union-attr]
        env.schedule(init, priority=URGENT)

    def __repr__(self) -> str:
        return f"<Process {self.name!r} at {id(self):#x}>"

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event the process is currently suspended on, if any."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield.

        The process stops waiting for its current target (the target event
        itself is unaffected and may fire later, unobserved).  Interrupting
        a dead process raises ``RuntimeError``.
        """
        if not self.is_alive:
            raise RuntimeError(f"{self!r} has terminated and cannot be interrupted")
        if self._target is None:
            raise RuntimeError(f"{self!r} is not suspended; cannot interrupt")
        # Detach from the current target so its eventual processing does not
        # resume us a second time.
        # _target may hold a fast-lane _Wakeup token standing in for an
        # Event; treat it opaquely here so the narrow checks stay honest.
        target: Any = self._target
        if type(target) is _Wakeup:
            # Fast-lane sleep: tombstone the heap token.
            target.proc = None
        elif target.callbacks is not None and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
        self._target = None
        wakeup = Event(self.env)
        wakeup._ok = False
        wakeup._value = Interrupt(cause)
        wakeup.callbacks.append(self._resume)  # type: ignore[union-attr]
        self.env.schedule(wakeup, priority=URGENT)

    # -- kernel plumbing ---------------------------------------------------

    def _resume(self, event: Any) -> None:
        """Advance the generator with *event*'s outcome.

        *event* is an :class:`Event`, a :class:`_Wakeup` token, or a
        :class:`_Failure` stand-in — only the ``ok``/``value`` duck
        surface is touched, hence the ``Any``.
        """
        self.env._active_process = self
        self._target = None
        while True:
            try:
                if event is None or event.ok:
                    value = None if event is None else event.value
                    next_target = self._generator.send(value)
                else:
                    next_target = self._generator.throw(event.value)
            except StopIteration as stop:
                self.env._active_process = None
                self.succeed(stop.value, priority=URGENT)
                return
            except BaseException as exc:
                self.env._active_process = None
                if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                    raise
                self.fail(exc, priority=URGENT)
                return

            cls = type(next_target)
            if cls is not float and cls is not int:
                if isinstance(next_target, Event):
                    if next_target.env is not self.env:
                        self.env._active_process = None
                        self._generator.throw(
                            ValueError(
                                "yielded event belongs to a different environment"
                            )
                        )
                        return
                    if next_target.processed:
                        # Already processed: resume synchronously.
                        event = next_target
                        continue
                    next_target.callbacks.append(self._resume)  # type: ignore[union-attr]
                    self._target = next_target
                    self.env._active_process = None
                    return
                if isinstance(next_target, (float, int)):
                    # numpy floating scalars subclass float; normalise.
                    next_target = float(next_target)
                else:
                    self.env._active_process = None
                    self._generator.throw(
                        TypeError(f"process yielded a non-event: {next_target!r}")
                    )
                    return
            # Timeout fast lane: a bare number of seconds sleeps without
            # allocating a Timeout/callback list — one heap push, and the
            # run loop resumes this process directly (same (time,
            # priority, eid) ordering as env.timeout at NORMAL priority).
            if next_target < 0:
                event = _Failure(ValueError(f"negative delay {next_target}"))
                continue
            env = self.env
            env._eid += 1
            # The wakeup token ducks as the target event (see _Wakeup).
            self._target = wakeup = _Wakeup(self)  # type: ignore[assignment]
            heappush(env._heap, (env._now + next_target, NORMAL, env._eid, wakeup))
            env._active_process = None
            return
