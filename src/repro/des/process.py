"""Coroutine processes driven by the simulation environment.

A process wraps a Python generator.  Each ``yield`` hands the kernel an
:class:`~repro.des.event.Event`; the process is resumed with the event's
value once it is processed (or has the failure exception thrown in).

``_resume`` is the hottest function in the kernel — it runs once per
processed event — so it reads event state through slots (``_ok``,
``_value``) rather than properties, caches the generator's bound
``send``, and registers as an event's first waiter through the
``Event._proc`` slot instead of appending to the callback list.  All of
it preserves the exact ``(time, priority, eid)`` schedule sequence of
the straightforward implementation (kernel golden tests).
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from .errors import Interrupt
from .event import Event, NORMAL, PENDING, Timeout, URGENT, _Wakeup

if TYPE_CHECKING:
    from .environment import Environment


class _Failure:
    """Minimal failed-event stand-in for throwing into the generator."""

    __slots__ = ("_value",)

    ok = False
    _ok = False

    def __init__(self, exc: BaseException) -> None:
        self._value = exc

    @property
    def value(self) -> BaseException:
        return self._value


class Process(Event):
    """An executing process; also an event that fires when the process ends.

    The process-as-event succeeds with the generator's return value, or
    fails with the exception that escaped the generator.  Other processes
    may therefore ``yield proc`` to join on it.
    """

    __slots__ = ("_generator", "_send", "_target", "_wake", "_cb", "name")

    def __init__(
        self,
        env: Environment,
        generator: Generator[Any, Any, Any],
        name: str = "",
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        # Inlined Event.__init__ (a megacell promotes ~10^6 processes).
        self.env = env
        self.callbacks = []
        self._value = PENDING
        self._ok = None
        self._processed = False
        self._defused = False
        self._proc = None
        self._generator = generator
        self._send: Callable[[Any], Any] = generator.send
        #: The event this process is currently waiting on (None when running
        #: or finished).
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        self._cb: Callable[[Any], None] = self._resume
        #: The process's reusable sleep token (also used for kick-off).
        self._wake = wake = _Wakeup(self)
        # Kick the process off at the current time: the first resume sends
        # None into the generator, which is exactly what the wake token
        # delivers — no throwaway init Event needed.  ``_target`` stays
        # None until the first yield, so interrupting an unstarted process
        # still reports "not suspended".
        env._eid = eid = env._eid + 1
        wake.eid = eid
        if env._soa is None:
            heappush(env._heap, (env._now, URGENT, eid, wake))
        else:
            env._soa.push(env._now, URGENT, eid, wake)

    def __repr__(self) -> str:
        return f"<Process {self.name!r} at {id(self):#x}>"

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event the process is currently suspended on, if any."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield.

        The process stops waiting for its current target (the target event
        itself is unaffected and may fire later, unobserved).  Interrupting
        a dead process raises ``RuntimeError``.
        """
        if not self.is_alive:
            raise RuntimeError(f"{self!r} has terminated and cannot be interrupted")
        if self._target is None:
            raise RuntimeError(f"{self!r} is not suspended; cannot interrupt")
        # Detach from the current target so its eventual processing does not
        # resume us a second time.
        # _target may hold the fast-lane _Wakeup token standing in for an
        # Event; treat it opaquely here so the narrow checks stay honest.
        target: Any = self._target
        if type(target) is _Wakeup:
            # Fast-lane sleep: disarm the token; the stale heap entry is
            # skipped on pop (its eid no longer matches).
            target.eid = 0
        elif target._proc is self:
            target._proc = None
        elif target.callbacks is not None and self._cb in target.callbacks:
            target.callbacks.remove(self._cb)
        self._target = None
        wakeup = Event(self.env)
        wakeup._ok = False
        wakeup._value = Interrupt(cause)
        wakeup._proc = self
        self.env.schedule(wakeup, priority=URGENT)

    # -- kernel plumbing ---------------------------------------------------

    def _resume(self, event: Any) -> None:
        """Advance the generator with *event*'s outcome.

        *event* is an :class:`Event`, a :class:`_Wakeup` token, or a
        :class:`_Failure` stand-in — only the ``_ok``/``_value`` duck
        surface is touched, hence the ``Any``.
        """
        env = self.env
        env._active_process = self
        self._target = None
        send = self._send
        while True:
            try:
                if event._ok:
                    next_target = send(event._value)
                else:
                    next_target = self._generator.throw(event._value)
            except StopIteration as stop:
                env._active_process = None
                self.succeed(stop.value, priority=URGENT)
                return
            except BaseException as exc:
                env._active_process = None
                if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                    raise
                self.fail(exc, priority=URGENT)
                return

            cls: Any = next_target.__class__
            if cls is Timeout and next_target.env is env:
                # Dominant event yield: a fresh private timeout — first
                # (sole) waiter, nothing processed, no callbacks yet.
                # Anything unusual (shared, already processed, foreign)
                # falls through to the generic path below.
                if (
                    next_target._proc is None
                    and not next_target._processed
                    and not next_target.callbacks
                ):
                    next_target._proc = self
                    self._target = next_target
                    env._active_process = None
                    return
            if cls is not float and cls is not int:
                if isinstance(next_target, Event):
                    if next_target.env is not env:
                        env._active_process = None
                        self._generator.throw(
                            ValueError(
                                "yielded event belongs to a different environment"
                            )
                        )
                        return
                    if next_target._processed:
                        # Already processed: resume synchronously.
                        event = next_target
                        continue
                    if next_target._proc is None and not next_target.callbacks:
                        # First waiter: take the single-waiter fast slot.
                        next_target._proc = self
                    else:
                        next_target.callbacks.append(self._cb)  # type: ignore[union-attr]
                    self._target = next_target
                    env._active_process = None
                    return
                if isinstance(next_target, (float, int)):
                    # numpy floating scalars subclass float; normalise.
                    next_target = float(next_target)
                else:
                    env._active_process = None
                    self._generator.throw(
                        TypeError(f"process yielded a non-event: {next_target!r}")
                    )
                    return
            # Timeout fast lane: a bare number of seconds sleeps without
            # allocating anything but the heap entry — the process's own
            # wake token is re-armed with this sleep's eid, and the run
            # loop resumes the process directly (same (time, priority,
            # eid) ordering as env.timeout at NORMAL priority).
            if next_target < 0:
                event = _Failure(ValueError(f"negative delay {next_target}"))
                continue
            env._eid = eid = env._eid + 1
            wake = self._wake
            wake.eid = eid
            # The wake token ducks as the target event (see _Wakeup).
            self._target = wake  # type: ignore[assignment]
            if env._soa is None:
                heappush(env._heap, (env._now + next_target, NORMAL, eid, wake))
            else:
                env._soa.push(env._now + next_target, NORMAL, eid, wake)
            env._active_process = None
            return
