"""Waitable queues for producer/consumer coordination between processes.

:class:`Store` is an (optionally bounded) FIFO queue; :class:`PriorityStore`
pops the smallest item first (items must be orderable — see
:class:`PriorityItem` for attaching arbitrary payloads); :class:`FilterStore`
lets consumers wait for items matching a predicate.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, List

from .event import Event

if TYPE_CHECKING:
    from .environment import Environment

Infinity = float("inf")


class StorePut(Event):
    """Event returned by :meth:`Store.put`; fires once the item is stored."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.item = item
        store._put_queue.append(self)
        store._trigger()


class StoreGet(Event):
    """Event returned by :meth:`Store.get`; fires with the retrieved item."""

    __slots__ = ()

    def __init__(self, store: "Store") -> None:
        super().__init__(store.env)
        store._get_queue.append(self)
        store._trigger()


class FilterStoreGet(StoreGet):
    """Get-event carrying the predicate it is waiting to satisfy."""

    __slots__ = ("filter",)

    def __init__(self, store: "FilterStore", filter: Callable[[Any], bool]) -> None:
        self.filter = filter
        super().__init__(store)


class Store:
    """FIFO queue with blocking put/get semantics.

    Parameters
    ----------
    env:
        Owning environment.
    capacity:
        Maximum number of stored items; ``put`` blocks when full
        (default: unbounded).
    """

    __slots__ = ("env", "capacity", "items", "_put_queue", "_get_queue")

    def __init__(self, env: Environment, capacity: float = Infinity) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: List[Any] = []
        self._put_queue: List[StorePut] = []
        self._get_queue: List[StoreGet] = []

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        """Queue *item*; the returned event fires once it is accepted."""
        return StorePut(self, item)

    def put_nowait(self, item: Any) -> None:
        """Store *item* immediately, without allocating a put event.

        For fire-and-forget producers on effectively unbounded stores
        (the wireless channels): skips the StorePut event, its heap
        round-trip and its callbacks.  Raises when the store is full
        instead of blocking.
        """
        if len(self.items) >= self.capacity:
            raise RuntimeError(f"{type(self).__name__} is full")
        self._store_item(item)
        self._trigger()

    def get(self) -> StoreGet:
        """Request an item; the returned event fires with the item."""
        return StoreGet(self)

    # -- internals -----------------------------------------------------------

    def _do_put(self, event: StorePut) -> bool:
        if len(self.items) < self.capacity:
            self._store_item(event.item)
            event.succeed()
            return True
        return False

    def _do_get(self, event: StoreGet) -> bool:
        if self.items:
            event.succeed(self._take_item(event))
            return True
        return False

    def _store_item(self, item: Any) -> None:
        self.items.append(item)

    def _take_item(self, event: StoreGet) -> Any:
        return self.items.pop(0)

    def _trigger(self) -> None:
        """Match as many pending puts/gets as possible."""
        progress = True
        while progress:
            progress = False
            idx = 0
            while idx < len(self._put_queue):
                event = self._put_queue[idx]
                if event.triggered:  # cancelled externally
                    self._put_queue.pop(idx)
                    continue
                if self._do_put(event):
                    self._put_queue.pop(idx)
                    progress = True
                else:
                    idx += 1
            idx = 0
            while idx < len(self._get_queue):
                event = self._get_queue[idx]
                if event.triggered:
                    self._get_queue.pop(idx)
                    continue
                if self._do_get(event):
                    self._get_queue.pop(idx)
                    progress = True
                else:
                    idx += 1


@dataclass(slots=True)
class PriorityItem:
    """Wrapper giving an arbitrary payload a sort key for a PriorityStore.

    Items with equal priority dequeue FIFO thanks to the sequence counter.
    """

    priority: float
    seq: int = field(compare=True, default=0)
    item: Any = field(compare=False, default=None)

    def __lt__(self, other: "PriorityItem") -> bool:
        # Hand-written heap comparison: the dataclass-generated one
        # builds a tuple per operand on every heap sift.
        sp, op = self.priority, other.priority
        if sp != op:
            return sp < op
        return self.seq < other.seq


class PriorityStore(Store):
    """Store that always yields the smallest item first.

    Items must be mutually orderable; use :class:`PriorityItem` to attach
    non-orderable payloads.  FIFO order among equal keys is the caller's
    responsibility (``PriorityItem.seq`` provides it).
    """

    __slots__ = ()

    def _store_item(self, item: Any) -> None:
        heapq.heappush(self.items, item)

    def _take_item(self, event: StoreGet) -> Any:
        return heapq.heappop(self.items)

    def peek(self) -> Any:
        """Smallest stored item without removing it (IndexError if empty)."""
        return self.items[0]


class FilterStore(Store):
    """Store whose consumers may wait for items matching a predicate."""

    __slots__ = ()

    def get(self, filter: Callable[[Any], bool] = lambda item: True) -> FilterStoreGet:
        """Request the first stored item for which *filter* returns True."""
        return FilterStoreGet(self, filter)

    def _do_get(self, event: StoreGet) -> bool:
        for i, item in enumerate(self.items):
            if event.filter(item):  # type: ignore[attr-defined]
                self.items.pop(i)
                event.succeed(item)
                return True
        return False

    def _trigger(self) -> None:
        # Unlike the FIFO store, a non-matching head must not block later
        # getters, so every pending getter is offered every item.
        idx = 0
        while idx < len(self._put_queue):
            event = self._put_queue[idx]
            if event.triggered or self._do_put(event):
                self._put_queue.pop(idx)
            else:
                idx += 1
        idx = 0
        while idx < len(self._get_queue):
            event = self._get_queue[idx]
            if event.triggered or self._do_get(event):
                self._get_queue.pop(idx)
            else:
                idx += 1
