"""Waitable queues for producer/consumer coordination between processes.

:class:`Store` is an (optionally bounded) FIFO queue; :class:`PriorityStore`
pops the smallest item first (items must be orderable — see
:class:`PriorityItem` for attaching arbitrary payloads); :class:`FilterStore`
lets consumers wait for items matching a predicate.

Hot-path notes: ``Store._trigger`` runs once per put/get and inlines the
event-succeed heap push (property-free slot access), and
:class:`PriorityStore` keeps its heap as parallel primitive key arrays —
``(priority, seq)`` floats/ints sifted with index arithmetic — instead of
heap-sorting rich objects.  Both preserve the exact event order of the
straightforward implementations (kernel golden tests).
"""

from __future__ import annotations

import heapq
from heapq import heappush
from typing import TYPE_CHECKING, Any, Callable, List

from .event import Event, NORMAL, PENDING

if TYPE_CHECKING:
    from .environment import Environment

Infinity = float("inf")


class StorePut(Event):
    """Event returned by :meth:`Store.put`; fires once the item is stored."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any) -> None:
        # Inlined Event.__init__ (one StorePut per channel message).
        self.env = env = store.env
        self.callbacks = []
        self._value = PENDING
        self._ok = None
        self._processed = False
        self._defused = False
        self._proc = None
        self.item = item
        # Uncontended fast path: no pending puts ahead of us and room in
        # the store — store + succeed immediately, skipping the trigger
        # fixpoint scan.  (Pending puts imply the store is full, so the
        # queue check alone cannot starve an earlier put.)  Waiting
        # getters are then served exactly as the trigger scan would.
        if not store._put_queue and len(store.items) < store.capacity:
            store._store_item(item)
            # Inlined self.succeed()
            self._ok = True
            self._value = None
            env._eid = eid = env._eid + 1
            if env._soa is None:
                heappush(env._heap, (env._now, NORMAL, eid, self))
            else:
                env._soa.push(env._now, NORMAL, eid, self)
            if store._get_queue:
                store._serve_gets()
        else:
            store._put_queue.append(self)
            store._trigger()


class StoreGet(Event):
    """Event returned by :meth:`Store.get`; fires with the retrieved item."""

    __slots__ = ()

    def __init__(self, store: "Store") -> None:
        # Inlined Event.__init__ (one StoreGet per channel receive).
        self.env = env = store.env
        self.callbacks = []
        self._value = PENDING
        self._ok = None
        self._processed = False
        self._defused = False
        self._proc = None
        # Uncontended fast path (plain FIFO/priority gets only — filtered
        # gets go through FilterStore._trigger): an item is available and
        # no getter queued ahead of us.  Taking the item may free
        # capacity, so pending puts are then served exactly as the
        # trigger scan would (puts make no progress before our take —
        # they are pending because the store is full).
        if type(self) is StoreGet and store.items and not store._get_queue:
            item = store._take_item(self)
            # Inlined self.succeed(item)
            self._ok = True
            self._value = item
            env._eid = eid = env._eid + 1
            if env._soa is None:
                heappush(env._heap, (env._now, NORMAL, eid, self))
            else:
                env._soa.push(env._now, NORMAL, eid, self)
            if store._put_queue:
                store._serve_puts()
        else:
            store._get_queue.append(self)
            store._trigger()


class FilterStoreGet(StoreGet):
    """Get-event carrying the predicate it is waiting to satisfy."""

    __slots__ = ("filter",)

    def __init__(self, store: "FilterStore", filter: Callable[[Any], bool]) -> None:
        self.filter = filter
        super().__init__(store)


class Store:
    """FIFO queue with blocking put/get semantics.

    Parameters
    ----------
    env:
        Owning environment.
    capacity:
        Maximum number of stored items; ``put`` blocks when full
        (default: unbounded).
    """

    __slots__ = ("env", "capacity", "items", "_put_queue", "_get_queue")

    def __init__(self, env: Environment, capacity: float = Infinity) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: List[Any] = []
        self._put_queue: List[StorePut] = []
        self._get_queue: List[StoreGet] = []

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        """Queue *item*; the returned event fires once it is accepted."""
        return StorePut(self, item)

    def put_nowait(self, item: Any) -> None:
        """Store *item* immediately, without allocating a put event.

        For fire-and-forget producers on effectively unbounded stores
        (the wireless channels): skips the StorePut event, its heap
        round-trip and its callbacks.  Raises when the store is full
        instead of blocking.
        """
        if len(self.items) >= self.capacity:
            raise RuntimeError(f"{type(self).__name__} is full")
        self._store_item(item)
        if self._get_queue:
            self._serve_gets()

    def get(self) -> StoreGet:
        """Request an item; the returned event fires with the item."""
        return StoreGet(self)

    # -- internals -----------------------------------------------------------

    def _do_put(self, event: StorePut) -> bool:
        if len(self.items) < self.capacity:
            self._store_item(event.item)
            event.succeed()
            return True
        return False

    def _do_get(self, event: StoreGet) -> bool:
        if self.items:
            event.succeed(self._take_item(event))
            return True
        return False

    def _store_item(self, item: Any) -> None:
        self.items.append(item)

    def _take_item(self, event: StoreGet) -> Any:
        return self.items.pop(0)

    def _serve_gets(self) -> None:
        """Hand stored items to queued getters, oldest first.

        One pass suffices after a put/put_nowait fast path: gets free
        capacity but the put queue was empty (else the slow path ran),
        so no put can unblock mid-scan.  FilterStore overrides this with
        its predicate-aware scan.
        """
        env = self.env
        items = self.items
        get_queue = self._get_queue
        idx = 0
        while idx < len(get_queue):
            get_event = get_queue[idx]
            if get_event._value is not PENDING:  # cancelled externally
                get_queue.pop(idx)
                continue
            if not items:
                return
            item = self._take_item(get_event)
            # Inlined get_event.succeed(item)
            get_event._ok = True
            get_event._value = item
            env._eid = eid = env._eid + 1
            if env._soa is None:
                heappush(env._heap, (env._now, NORMAL, eid, get_event))
            else:
                env._soa.push(env._now, NORMAL, eid, get_event)
            get_queue.pop(idx)

    def _serve_puts(self) -> None:
        """Accept queued puts while capacity lasts, oldest first.

        One pass suffices after a get fast path: accepted puts add
        items, but the get queue was empty (else the slow path ran), so
        no getter can unblock mid-scan.
        """
        env = self.env
        capacity = self.capacity
        items = self.items
        put_queue = self._put_queue
        idx = 0
        while idx < len(put_queue):
            put_event = put_queue[idx]
            if put_event._value is not PENDING:  # cancelled externally
                put_queue.pop(idx)
                continue
            if len(items) >= capacity:
                return
            self._store_item(put_event.item)
            # Inlined put_event.succeed()
            put_event._ok = True
            put_event._value = None
            env._eid = eid = env._eid + 1
            if env._soa is None:
                heappush(env._heap, (env._now, NORMAL, eid, put_event))
            else:
                env._soa.push(env._now, NORMAL, eid, put_event)
            put_queue.pop(idx)

    def _trigger(self) -> None:
        """Match as many pending puts/gets as possible.

        Semantically identical to looping ``_do_put``/``_do_get`` to a
        fixpoint, with the event-succeed heap push inlined: this runs
        once per put/get — the busiest store path after the run loop —
        and the succeed() property checks are pure overhead for events
        we just verified to be pending.
        """
        env = self.env
        capacity = self.capacity
        items = self.items
        put_queue = self._put_queue
        get_queue = self._get_queue
        progress = True
        while progress:
            progress = False
            idx = 0
            while idx < len(put_queue):
                put_event = put_queue[idx]
                if put_event._value is not PENDING:  # cancelled externally
                    put_queue.pop(idx)
                    continue
                if len(items) < capacity:
                    self._store_item(put_event.item)
                    # Inlined put_event.succeed()
                    put_event._ok = True
                    put_event._value = None
                    env._eid = eid = env._eid + 1
                    if env._soa is None:
                        heappush(env._heap, (env._now, NORMAL, eid, put_event))
                    else:
                        env._soa.push(env._now, NORMAL, eid, put_event)
                    put_queue.pop(idx)
                    progress = True
                else:
                    idx += 1
            idx = 0
            while idx < len(get_queue):
                get_event = get_queue[idx]
                if get_event._value is not PENDING:
                    get_queue.pop(idx)
                    continue
                if items:
                    item = self._take_item(get_event)
                    # Inlined get_event.succeed(item)
                    get_event._ok = True
                    get_event._value = item
                    env._eid = eid = env._eid + 1
                    if env._soa is None:
                        heappush(env._heap, (env._now, NORMAL, eid, get_event))
                    else:
                        env._soa.push(env._now, NORMAL, eid, get_event)
                    get_queue.pop(idx)
                    progress = True
                else:
                    idx += 1


class PriorityItem:
    """Wrapper giving an arbitrary payload a sort key for a PriorityStore.

    Items with equal priority dequeue FIFO thanks to the sequence counter.
    Ordering (and equality) consider only ``(priority, seq)`` — never the
    payload.
    """

    __slots__ = ("priority", "seq", "item")

    def __init__(self, priority: float, seq: int = 0, item: Any = None) -> None:
        self.priority = priority
        self.seq = seq
        self.item = item

    def __repr__(self) -> str:
        return (
            f"PriorityItem(priority={self.priority!r}, seq={self.seq!r}, "
            f"item={self.item!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PriorityItem):
            return NotImplemented
        return self.priority == other.priority and self.seq == other.seq

    def __lt__(self, other: "PriorityItem") -> bool:
        sp, op = self.priority, other.priority
        if sp != op:
            return sp < op
        return self.seq < other.seq


class PriorityStore(Store):
    """Store that always yields the smallest item first.

    Items must be mutually orderable; use :class:`PriorityItem` to attach
    non-orderable payloads.  FIFO order among equal keys is the caller's
    responsibility (``PriorityItem.seq`` provides it).

    Internally items sort by a primitive ``(priority, seq)`` key —
    PriorityItems key as ``(priority, seq)``, bare numbers as
    ``(value, 0)`` — never by rich item comparisons.  The key heap's
    representation follows the environment's heap backend: under the
    struct-of-arrays backend, ``_kprio``/``_kseq`` hold the keys in
    parallel with the payloads in ``items`` and the sifts replicate
    CPython's ``heapq`` decisions over those primitives (index
    arithmetic, unboxed once compiled); under the tuple backend the C
    ``heapq`` sifts ``(priority, seq, payload)`` tuples — the faster
    trade interpreted.  Both make the same comparison decisions (a key
    tie compares payloads, which PriorityItem equates by the same key),
    so the heap arrangement and pop order — ties included — are
    bit-identical to each other and to heap-sorting the items
    themselves.  Other orderables drop to a C-``heapq`` fallback over
    ``items`` directly (they have no primitive key), chosen per store
    by its first item — the representations never mix, just as items
    of unrelated types were never mutually orderable before.
    """

    __slots__ = ("_kprio", "_kseq", "_generic", "_tuples")

    def __init__(self, env: Environment, capacity: float = Infinity) -> None:
        super().__init__(env, capacity)
        self._kprio: List[float] = []
        self._kseq: List[int] = []
        self._generic = False
        self._tuples = env._soa is None

    def _store_item(self, item: Any) -> None:
        cls = type(item)
        if not self._generic:
            if cls is PriorityItem:
                if self._tuples:
                    heapq.heappush(self.items, (item.priority, item.seq, item))
                else:
                    self._push_key(item.priority, item.seq, item)
                return
            if cls is int or cls is float or isinstance(item, (int, float)):
                if self._tuples:
                    heapq.heappush(self.items, (item, 0, item))
                else:
                    self._push_key(item, 0, item)
                return
            if self.items:
                raise TypeError(
                    f"cannot mix {item!r} with the store's keyed items"
                )
            self._generic = True
        heapq.heappush(self.items, item)

    def _take_item(self, event: StoreGet) -> Any:
        if self._generic:
            return heapq.heappop(self.items)
        if self._tuples:
            return heapq.heappop(self.items)[2]
        return self._pop_key()

    def peek(self) -> Any:
        """Smallest stored item without removing it (IndexError if empty)."""
        if self._tuples and not self._generic:
            return self.items[0][2]
        return self.items[0]

    # -- struct-of-arrays key heap -------------------------------------------

    def _push_key(self, kprio: float, kseq: int, item: Any) -> None:
        """Append ``(kprio, kseq)``/*item* and sift it toward the root.

        Mirrors ``heapq.heappush`` + ``_siftdown``: move the new entry up
        while *strictly* smaller than its parent (equal keys stay put, so
        ties arrange exactly as heapq arranges equal items).
        """
        kprios = self._kprio
        kseqs = self._kseq
        items = self.items
        pos = len(kprios)
        kprios.append(kprio)
        kseqs.append(kseq)
        items.append(item)
        while pos > 0:
            parent = (pos - 1) >> 1
            pprio = kprios[parent]
            if kprio > pprio or (kprio == pprio and kseq >= kseqs[parent]):
                break
            kprios[pos] = pprio
            kseqs[pos] = kseqs[parent]
            items[pos] = items[parent]
            pos = parent
        kprios[pos] = kprio
        kseqs[pos] = kseq
        items[pos] = item

    def _pop_key(self) -> Any:
        """Remove and return the payload of the minimum key.

        Mirrors ``heapq.heappop`` + ``_siftup``: walk the root hole down
        along the smaller child to a leaf (on full key ties heapq takes
        the *right* child — its test is ``not left < right``), place the
        displaced last entry there, then sift it back up.
        """
        kprios = self._kprio
        kseqs = self._kseq
        items = self.items
        last_prio = kprios.pop()
        last_seq = kseqs.pop()
        last_item = items.pop()
        if not kprios:
            return last_item
        result = items[0]
        end = len(kprios)
        pos = 0
        child = 1
        while child < end:
            right = child + 1
            if right < end:
                cprio = kprios[child]
                rprio = kprios[right]
                if cprio > rprio or (
                    cprio == rprio and kseqs[child] >= kseqs[right]
                ):
                    child = right
            kprios[pos] = kprios[child]
            kseqs[pos] = kseqs[child]
            items[pos] = items[child]
            pos = child
            child = 2 * pos + 1
        while pos > 0:
            parent = (pos - 1) >> 1
            pprio = kprios[parent]
            if last_prio > pprio or (
                last_prio == pprio and last_seq >= kseqs[parent]
            ):
                break
            kprios[pos] = pprio
            kseqs[pos] = kseqs[parent]
            items[pos] = items[parent]
            pos = parent
        kprios[pos] = last_prio
        kseqs[pos] = last_seq
        items[pos] = last_item
        return result


class FilterStore(Store):
    """Store whose consumers may wait for items matching a predicate."""

    __slots__ = ()

    def get(self, filter: Callable[[Any], bool] = lambda item: True) -> FilterStoreGet:
        """Request the first stored item for which *filter* returns True."""
        return FilterStoreGet(self, filter)

    def _do_get(self, event: StoreGet) -> bool:
        for i, item in enumerate(self.items):
            if event.filter(item):  # type: ignore[attr-defined]
                self.items.pop(i)
                event.succeed(item)
                return True
        return False

    def _serve_gets(self) -> None:
        # Filtered getters must each be offered every item; the FIFO
        # single-pass serve would hand them the head only.
        self._trigger()

    def _trigger(self) -> None:
        # Unlike the FIFO store, a non-matching head must not block later
        # getters, so every pending getter is offered every item.  Not a
        # hot path — the readable _do_put/_do_get form stays.
        idx = 0
        while idx < len(self._put_queue):
            event = self._put_queue[idx]
            if event.triggered or self._do_put(event):
                self._put_queue.pop(idx)
            else:
                idx += 1
        idx = 0
        while idx < len(self._get_queue):
            get_event = self._get_queue[idx]
            if get_event.triggered or self._do_get(get_event):
                self._get_queue.pop(idx)
            else:
                idx += 1
