"""The cell origin: database + scheme server policy + IR publisher.

:class:`Origin` is the service-tier stand-in for the simulated cell
server — the same :class:`repro.db.Database`, the same
:class:`~repro.schemes.base.ServerPolicy` (built by the same
:class:`~repro.schemes.base.Scheme` factories), publishing each interval's
report through the injected :class:`~repro.service.interfaces.IRBroker`.
It also keeps the append-only :class:`repro.db.UpdateLog`, which the
integration campaign uses as the strict-staleness oracle's ground truth.

:class:`InMemoryBackend` adapts an origin into an
:class:`~repro.service.interfaces.L2Backend`: fetches answer with the
current version stamped at the origin's knowledge horizon (= now, single
cell), and the optional hooks route ``Tlb`` uploads and checking
requests into the server policy exactly as the simulator's uplink does.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from ..db import Database, UpdateLog
from ..reports.base import Report
from ..schemes.base import Scheme, ServerPolicy
from ..schemes.registry import get_scheme
from .clock import Clock
from .errors import BackendUnavailable
from .interfaces import CheckReply, FetchResult, IRBroker, L2Backend
from .params import ServiceParams

__all__ = ["InMemoryBackend", "Origin"]


class Origin:
    """One cell's authoritative server, driving the IR broadcast loop."""

    def __init__(
        self,
        scheme: Union[str, Scheme],
        params: ServiceParams,
        *,
        clock: Clock,
        broker: IRBroker,
        cell: int = 0,
    ) -> None:
        self.scheme: Scheme = get_scheme(scheme) if isinstance(scheme, str) else scheme
        self.params = params
        self.clock = clock
        self.broker = broker
        self.cell = cell
        self.db = Database(params.db_size)
        #: Ground truth for the staleness oracle (append-only).
        self.update_log = UpdateLog()
        self.policy: ServerPolicy = self.scheme.make_server_policy(params, self.db)
        #: Incarnation epoch, stamped into every report (a restart bumps it).
        self.epoch = 0
        self.reports_published = 0
        self.updates_applied = 0
        self._stopped = False

    # ``self`` doubles as the ServerPolicy context: the policies read
    # ``ctx.db`` and probe ``ctx.effective_window_seconds`` via getattr.

    def apply_update(self, item: int) -> None:
        """Commit one update at the current instant."""
        now = self.clock.now()
        old = int(self.db.version[item])
        self.db.apply_update(item, now)
        self.update_log.record(item, now)
        self.policy.on_item_update(item, old, int(self.db.version[item]))
        self.updates_applied += 1

    def restart(self) -> None:
        """Crash-restart: update-time knowledge is lost, epoch bumps."""
        now = self.clock.now()
        self.db.forget_history(now)
        self.policy = self.scheme.make_server_policy(self.params, self.db)
        self.epoch += 1

    def build_report(self) -> Report:
        now = self.clock.now()
        report = self.policy.build_report(self, now)
        report.epoch = self.epoch
        report.cell = self.cell
        return report

    async def publish_once(self) -> Report:
        """Build and publish this instant's report."""
        report = self.build_report()
        await self.broker.broker_publish(report)
        self.reports_published += 1
        return report

    async def run(self, n_intervals: Optional[int] = None) -> None:
        """Broadcast every ``broadcast_interval`` until stopped.

        The driver usually runs this as a task and advances the virtual
        clock; ``n_intervals`` bounds scripted runs.
        """
        published = 0
        while not self._stopped:
            if n_intervals is not None and published >= n_intervals:
                return
            await self.clock.sleep(self.params.broadcast_interval)
            if self._stopped:
                return
            await self.publish_once()
            published += 1

    def stop(self) -> None:
        self._stopped = True


class InMemoryBackend(L2Backend):
    """L2 backend answering straight from an :class:`Origin`.

    ``latency`` adds a fixed (deterministic) service delay per call via
    the shared clock — enough to exercise deadlines without randomness.
    """

    def __init__(self, origin: Origin, latency: float = 0.0) -> None:
        self.origin = origin
        self.latency = latency
        self.fetches = 0
        self.tlb_pushes = 0
        self.checks = 0

    async def _delay(self) -> None:
        if self.latency > 0:
            await self.origin.clock.sleep(self.latency)

    async def backend_fetch(self, item: int) -> FetchResult:
        await self._delay()
        db = self.origin.db
        if not 0 <= item < db.n_items:
            raise BackendUnavailable(f"item {item} outside the database")
        self.fetches += 1
        now = self.origin.clock.now()
        version = int(db.version[item])
        # The value reflects all updates up to the origin's knowledge
        # horizon — the simulator's ``coherent_ts`` contract.
        return FetchResult(item=item, version=version, ts=now, value=(item, version))

    async def backend_push_tlb(self, client_id: int, tlb: float) -> None:
        await self._delay()
        self.tlb_pushes += 1
        self.origin.policy.on_tlb(
            self.origin, client_id, tlb, self.origin.clock.now()
        )

    async def backend_check(
        self, client_id: int, entries: Sequence[Tuple[int, float]]
    ) -> CheckReply:
        await self._delay()
        self.checks += 1
        invalid: List[int]
        invalid, certified_at, _reply_bits = self.origin.policy.on_check_request(
            self.origin, client_id, list(entries), self.origin.clock.now()
        )
        return CheckReply(invalid_items=tuple(invalid), certified_at=certified_at)
