"""In-process IR pub/sub with bounded, loss-counting subscriptions.

The broadcast medium in the paper is lossy and unacknowledged — clients
discover gaps from report timestamps, not from the transport.  The
in-memory broker mirrors that honestly: each subscription is a bounded
deque, and when a slow consumer overflows it the *oldest* report is shed
and counted (``Subscription.dropped``).  The node treats drops exactly
like wireless IR loss: the gap machinery (missed-report counting, Tlb
salvage) recovers, and the watchdog uses the drop counter as a lag
signal.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Deque, List, Optional

from ..reports.base import Report
from .interfaces import IRBroker

__all__ = ["InMemoryBroker", "Subscription"]

#: Default bound on one subscription's backlog (reports, not bytes).
DEFAULT_SUBSCRIPTION_DEPTH = 8


class Subscription:
    """One consumer's bounded report queue."""

    __slots__ = ("_queue", "_maxlen", "_waiter", "_closed", "dropped", "delivered")

    def __init__(self, maxlen: int = DEFAULT_SUBSCRIPTION_DEPTH) -> None:
        if maxlen < 1:
            raise ValueError("subscription depth must be >= 1")
        self._queue: Deque[Report] = deque()
        self._maxlen = maxlen
        self._waiter: Optional["asyncio.Future[None]"] = None
        self._closed = False
        #: Reports shed to the bound (consumer lag == wireless loss).
        self.dropped = 0
        #: Reports handed to the consumer.
        self.delivered = 0

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def backlog(self) -> int:
        return len(self._queue)

    def _push(self, report: Report) -> None:
        if self._closed:
            return
        if len(self._queue) >= self._maxlen:
            self._queue.popleft()
            self.dropped += 1
        self._queue.append(report)
        self._wake()

    def _wake(self) -> None:
        waiter = self._waiter
        if waiter is not None and not waiter.done():
            waiter.set_result(None)

    async def next_report(self) -> Optional[Report]:
        """Wait for the next report; ``None`` once closed and drained."""
        while True:
            if self._queue:
                self.delivered += 1
                return self._queue.popleft()
            if self._closed:
                return None
            loop = asyncio.get_running_loop()
            self._waiter = loop.create_future()
            try:
                await self._waiter
            finally:
                self._waiter = None

    def close(self) -> None:
        """Stop delivery; a blocked :meth:`next_report` returns ``None``."""
        self._closed = True
        self._wake()


class InMemoryBroker(IRBroker):
    """Single-process broker: publish fans out to every subscription."""

    __slots__ = ("_subs", "published")

    def __init__(self) -> None:
        self._subs: List[Subscription] = []
        #: Reports ever published (delivered or shed downstream).
        self.published = 0

    async def broker_publish(self, report: Report) -> None:
        self.published += 1
        for sub in self._subs:
            sub._push(report)

    def broker_subscribe(self, maxlen: Optional[int] = None) -> Subscription:
        sub = Subscription(maxlen if maxlen is not None else DEFAULT_SUBSCRIPTION_DEPTH)
        self._subs.append(sub)
        return sub

    def broker_subscriber_count(self) -> int:
        return sum(1 for sub in self._subs if not sub.closed)
