"""The asyncio cache node: L1 over L2, IR-certified, failure-honest.

One :class:`CacheNode` is one process's cache client.  Its L1 is the
*same* :class:`repro.cache.ClientCache` (holding
:class:`~repro.service.swr.ServiceEntry` rows) and its certification
brain is the *same* scheme policy the simulator validated, driven
through :class:`repro.schemes.session.ClientSession`.  Answers come from
three rungs, best first:

1. **certified L1 hit** — the entry survived every report the scheme
   processed; served unflagged (the strict-staleness oracle analog holds
   by construction: conviction needs an update in ``(ts, Tlb]``).
2. **L2 fetch** — on a miss, or whenever L1 cannot be certified right
   now (salvage pending, suspect entry).  Runs under the full robustness
   sandwich: per-attempt deadline, retry/backoff+jitter, circuit
   breaker.
3. **flagged stale serve** — L2 down *and* an entry exists: serve it
   marked ``stale=True`` (SWR-style) when the config allows, else raise
   :class:`~repro.service.errors.NodeDegraded`.

IR loss maps onto the paper's ladder (see :mod:`repro.service.degrade`):
the watchdog freezes ``Tlb`` and flips the node to ``DISCONNECTED``; the
next report runs the scheme's salvage (window coverage, ``TS(Bn) <=
Tlb``, Tlb upload, checking) instead of a blind purge.
"""

from __future__ import annotations

import asyncio
import functools
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Coroutine, Dict, List, Optional, Union

from ..cache import ClientCache
from ..des.rng import RandomStream
from ..schemes.base import Scheme
from ..schemes.registry import get_scheme
from ..schemes.session import ClientSession, SessionOutcome
from .breaker import BreakerConfig, BreakerState, CircuitBreaker
from .broker import Subscription
from .clock import Clock, with_deadline
from .degrade import DegradationTracker, NodeState
from .errors import (
    BackendUnavailable,
    CircuitOpenError,
    DeadlineExceeded,
    NodeDegraded,
)
from .interfaces import FetchResult, IRBroker, L2Backend
from .metrics import HealthReport, NodeMetrics
from .params import ServiceParams
from .retry import RetryConfig, call_with_retry
from .swr import ServiceEntry, SWRConfig

__all__ = ["Answer", "CacheNode", "NodeConfig"]

#: Turns a raw :class:`FetchResult` into the value the caller wants
#: (the ``@node.cached`` decorator's function, partially applied).
Materializer = Callable[[FetchResult], Awaitable[object]]

#: L2 failures the degradation ladder absorbs.
_L2_FAILURES = (DeadlineExceeded, BackendUnavailable, CircuitOpenError)


@dataclass(frozen=True)
class NodeConfig:
    """One node's robustness budget."""

    #: Overall per-query budget for waiting on certification.
    deadline: float = 1.0
    retry: RetryConfig = field(default_factory=RetryConfig)
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    #: Stale-while-revalidate timers; ``None`` disables SWR (entries
    #: then live until IR invalidation or LRU eviction, as in the paper).
    swr: Optional[SWRConfig] = None
    #: Reports silent for more than this many broadcast intervals flip
    #: the node to ``DISCONNECTED``.
    lag_intervals: float = 2.5
    #: Serve flagged stale answers when degraded (False = strict mode:
    #: raise :class:`NodeDegraded` instead).
    serve_stale_when_degraded: bool = True
    #: Bound on the IR subscription backlog.
    subscription_depth: int = 8
    #: How long a scheme salvage may stay pending before the session's
    #: validation-timeout path runs (seconds; default 2 intervals is the
    #: simulator's watchdog budget).
    validation_timeout: Optional[float] = None


@dataclass(frozen=True)
class Answer:
    """One served query."""

    item: int
    value: object
    version: int
    #: Coherence bound: the answer reflects all updates up to this time.
    ts: float
    #: The node's ``Tlb`` at serve time (the certification horizon).
    tlb: float
    #: True only for SWR-stale or degraded serves — never silently.
    stale: bool
    #: Age of information: ``now - ts`` at serve time.
    age: float
    #: Which rung served it: l1 / l1-swr / l2 / l1-degraded.
    source: str


class CacheNode:
    """See the module docstring; construct, ``await start()``, ``get()``."""

    def __init__(
        self,
        scheme: Union[str, Scheme],
        params: ServiceParams,
        *,
        backend: L2Backend,
        broker: IRBroker,
        clock: Clock,
        config: Optional[NodeConfig] = None,
        client_id: int = 0,
    ) -> None:
        self.scheme: Scheme = get_scheme(scheme) if isinstance(scheme, str) else scheme
        self.params = params
        self.backend = backend
        self.broker = broker
        self.clock = clock
        self.config = config or NodeConfig()
        self.client_id = client_id
        self.cache = ClientCache(params.cache_capacity)
        self.metrics = NodeMetrics()
        self.state = DegradationTracker(self.metrics)
        self.session = ClientSession(
            self.scheme.make_client_policy(params, client_id),
            self.cache,
            params,
            send_tlb=self._on_policy_send_tlb,
            send_check_request=self._on_policy_send_check,
            note_cache_drop=lambda: self.metrics.incr("cache.full_drops"),
        )
        self.breaker = CircuitBreaker(
            self.config.breaker, name="l2", on_transition=self._on_breaker_transition
        )
        self._jitter = RandomStream(params.seed, f"service/jitter/{client_id}")
        self._ready = asyncio.Event()
        self._ready.set()
        self._sub: Optional[Subscription] = None
        self._tasks: List["asyncio.Task[None]"] = []
        self._materializers: Dict[int, Materializer] = {}
        self._last_report_at: Optional[float] = None
        self._started = False
        self.served_stale = 0

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        if self._started:
            return
        self._started = True
        self._last_report_at = self.clock.now()
        self._sub = self.broker.broker_subscribe(self.config.subscription_depth)
        self._spawn(self._ir_loop(), name="ir-loop")
        self._spawn(self._watchdog(), name="watchdog")

    async def stop(self) -> None:
        if self._sub is not None:
            self._sub.close()
        for task in list(self._tasks):
            task.cancel()
        for task in list(self._tasks):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks.clear()
        self._started = False

    async def __aenter__(self) -> "CacheNode":
        await self.start()
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.stop()

    def _spawn(self, coro: Coroutine[object, object, None], name: str) -> None:
        task = asyncio.get_running_loop().create_task(
            coro, name=f"node-{self.client_id}-{name}"
        )
        self._tasks.append(task)
        task.add_done_callback(self._reap)

    def _reap(self, task: "asyncio.Task[None]") -> None:
        if task in self._tasks:
            self._tasks.remove(task)
        if task.cancelled():
            return
        exc = task.exception()
        if exc is not None:
            # Background failures surface in metrics, never as unheard
            # "exception was never retrieved" warnings.
            self.metrics.incr("tasks.failed")
            self.metrics.record_transition(
                self.clock.now(), "task", task.get_name(), "failed", repr(exc)
            )

    # -- IR intake ---------------------------------------------------------

    async def _ir_loop(self) -> None:
        sub = self._sub
        assert sub is not None
        while True:
            report = await sub.next_report()
            if report is None:
                return
            now = self.clock.now()
            self._last_report_at = now
            if sub.dropped > self.metrics.get("ir.shed"):
                self.metrics.incr("ir.shed", sub.dropped - self.metrics.get("ir.shed"))
            if not self.state.is_live:
                # The feed is back: reports missed while down are
                # expected — run the scheme's reconnect path, then let
                # this very report salvage (or honestly purge) the cache.
                self.session.reconnect(now)
                self.metrics.incr("ir.reconnects")
            outcome = self.session.offer_report(report, now)
            self.metrics.incr(f"ir.{outcome.value}")
            if outcome is SessionOutcome.READY:
                self.state.to(NodeState.LIVE, now, reason="report certified")
                self._ready.set()
            elif outcome is SessionOutcome.PENDING:
                self.state.to(NodeState.SALVAGING, now, reason="salvage in flight")
                self._ready.clear()
                self._spawn(self._validation_watchdog(), name="validation-watchdog")

    async def _watchdog(self) -> None:
        interval = self.params.broadcast_interval
        budget = self.config.lag_intervals * interval
        while True:
            await self.clock.sleep(interval / 2)
            last = self._last_report_at
            now = self.clock.now()
            if last is None or self.state.state is NodeState.DISCONNECTED:
                continue
            if now - last > budget:
                # Record Tlb and degrade: the paper's disconnection path.
                self.metrics.incr("ir.feed_losses")
                self.state.to(
                    NodeState.DISCONNECTED,
                    now,
                    reason=f"no report for {now - last:g}s",
                    tlb=self.session.tlb,
                )
                self.session.disconnect(now)
                # The cache stays servable: everything in it is certified
                # as of the frozen Tlb, which is exactly what the oracle
                # judges against.

    async def _validation_watchdog(self) -> None:
        timeout = self.config.validation_timeout
        if timeout is None:
            timeout = 2.0 * self.params.broadcast_interval
        while self.session.pending:
            await self.clock.sleep(timeout)
            if not self.session.pending:
                return
            now = self.clock.now()
            self.metrics.incr("validation.timeouts")
            if not self.session.validation_timeout(now):
                # The scheme gave up: cache dropped, resync at next report.
                self.state.to(NodeState.LIVE, now, reason="salvage abandoned")
                self._ready.set()
                return

    # -- uplink callbacks (invoked synchronously by the scheme policy) -----

    def _on_policy_send_tlb(self, tlb: float) -> None:
        self.metrics.incr("uplink.tlb")
        self._spawn(self._push_tlb(tlb), name="tlb-upload")

    def _on_policy_send_check(self, entries: object) -> None:
        self.metrics.incr("uplink.check")
        pairs = [
            (int(item), float(ts))
            for item, ts in entries  # type: ignore[union-attr]
        ]
        self._spawn(self._push_check(pairs), name="check-upload")

    async def _push_tlb(self, tlb: float) -> None:
        try:
            await call_with_retry(
                self.clock,
                lambda: self.backend.backend_push_tlb(self.client_id, tlb),
                retry=self.config.retry,
                breaker=self.breaker,
                stream=self._jitter,
            )
        except _L2_FAILURES:
            # Lost upload: the validation watchdog re-sends, exactly as
            # the simulator's retry layer would.
            self.metrics.incr("uplink.tlb_failures")

    async def _push_check(self, entries: List[tuple[int, float]]) -> None:
        try:
            reply = await call_with_retry(
                self.clock,
                lambda: self.backend.backend_check(self.client_id, entries),
                retry=self.config.retry,
                breaker=self.breaker,
                stream=self._jitter,
            )
        except _L2_FAILURES:
            self.metrics.incr("uplink.check_failures")
            return
        now = self.clock.now()
        if self.session.pending:
            self.session.validity_reply(list(reply.invalid_items), reply.certified_at)
            self.metrics.incr("uplink.check_replies")
            self.state.to(NodeState.LIVE, now, reason="validity reply applied")
            self._ready.set()

    def _on_breaker_transition(
        self, now: float, old: BreakerState, new: BreakerState
    ) -> None:
        self.metrics.record_transition(now, "breaker.l2", old.value, new.value)
        self.metrics.incr(f"breaker.{new.value}")

    # -- queries -----------------------------------------------------------

    async def get(
        self, item: int, materializer: Optional[Materializer] = None
    ) -> Answer:
        """Serve one item along the degradation ladder (see module doc)."""
        if self.session.pending:
            # L1 is momentarily uncertified (salvage in flight): give
            # certification a bounded chance before going to L2.
            try:
                await with_deadline(
                    self.clock, self._ready.wait(), self.config.deadline
                )
            except DeadlineExceeded:
                self.metrics.incr("get.certify_timeouts")
        now = self.clock.now()
        entry = self._lookup_live(item, now)
        if (
            entry is not None
            and not self.session.pending
            and item not in self.cache.unreconciled
        ):
            return self._serve_l1(entry, now)
        # Miss, suspect entry, or certification still pending: the L2
        # fetch is authoritative regardless of IR state.
        try:
            fetched = await call_with_retry(
                self.clock,
                lambda: self.backend.backend_fetch(item),
                retry=self.config.retry,
                breaker=self.breaker,
                stream=self._jitter,
            )
        except _L2_FAILURES as exc:
            self.metrics.incr("get.l2_failures")
            if entry is not None:
                if self.config.serve_stale_when_degraded:
                    return self._serve_degraded(entry)
                raise NodeDegraded(
                    f"item {item}: cannot certify L1 and L2 is unavailable"
                ) from exc
            raise
        return await self._install(item, fetched, materializer)

    def cached(
        self, item: Union[int, Callable[..., int]]
    ) -> Callable[[Callable[..., Awaitable[object]]], Callable[..., Awaitable[object]]]:
        """Decorator façade: the function *materializes* a fetched item.

        ``item`` is the item id (or a function of the call arguments
        that yields it); the decorated coroutine receives the
        authoritative :class:`FetchResult` first, then the original
        arguments, and returns the value to cache and serve::

            @node.cached(item=lambda user_id: user_id % 1000)
            async def profile(fetched: FetchResult, user_id: int) -> dict:
                return {"user": user_id, "rev": fetched.version}

        Cache hits skip the function entirely; background SWR refreshes
        re-run it with the fresh fetch.
        """

        def decorate(
            fn: Callable[..., Awaitable[object]]
        ) -> Callable[..., Awaitable[object]]:
            @functools.wraps(fn)
            async def wrapper(*args: object, **kwargs: object) -> object:
                key = item(*args, **kwargs) if callable(item) else item

                async def materialize(fetched: FetchResult) -> object:
                    return await fn(fetched, *args, **kwargs)

                self._materializers[key] = materialize
                answer = await self.get(key, materializer=materialize)
                return answer.value

            return wrapper

        return decorate

    # -- serving rungs -----------------------------------------------------

    def _lookup_live(self, item: int, now: float) -> Optional[ServiceEntry]:
        entry = self.cache.lookup(item)
        if entry is None:
            return None
        assert isinstance(entry, ServiceEntry)
        if entry.is_expired(now):
            # SWR hard deadline: delete on sight, count as a miss.
            self.cache.invalidate(item)
            self.metrics.incr("swr.expired")
            return None
        return entry

    def _answer(
        self, entry: ServiceEntry, now: float, stale: bool, source: str
    ) -> Answer:
        ts = self.cache.effective_ts(entry)
        age = max(0.0, now - ts)
        self.metrics.observe_age(age)
        return Answer(
            item=entry.item,
            value=entry.value,
            version=entry.version,
            ts=ts,
            tlb=self.session.tlb,
            stale=stale,
            age=age,
            source=source,
        )

    def _serve_l1(self, entry: ServiceEntry, now: float) -> Answer:
        self.metrics.incr("get.hits")
        swr = self.config.swr
        if swr is not None and not entry.is_fresh(now):
            # SWR-stale: serve flagged, refresh in the background.
            self.metrics.incr("swr.stale_serves")
            self.served_stale += 1
            self._schedule_refresh(entry)
            return self._answer(entry, now, stale=True, source="l1-swr")
        return self._answer(entry, now, stale=False, source="l1")

    def _serve_degraded(self, entry: ServiceEntry) -> Answer:
        now = self.clock.now()
        self.metrics.incr("get.degraded_serves")
        self.served_stale += 1
        return self._answer(entry, now, stale=True, source="l1-degraded")

    async def _install(
        self, item: int, fetched: FetchResult, materializer: Optional[Materializer]
    ) -> Answer:
        self.metrics.incr("get.l2_fetches")
        value: object = fetched.value
        if materializer is not None:
            value = await materializer(fetched)
        now = self.clock.now()
        entry = ServiceEntry(
            item=item,
            version=fetched.version,
            ts=fetched.ts,
            value=value,
            fetched_at=now,
            swr=self.config.swr,
        )
        suspect = self.session.insert_fetched(entry)
        if suspect:
            self.metrics.incr("cache.suspect_inserts")
        return self._answer(entry, now, stale=False, source="l2")

    # -- SWR background refresh -------------------------------------------

    def _schedule_refresh(self, entry: ServiceEntry) -> None:
        if entry.refreshing:
            return
        entry.refreshing = True
        self._spawn(self._refresh(entry), name=f"swr-refresh-{entry.item}")

    async def _refresh(self, entry: ServiceEntry) -> None:
        item = entry.item
        try:
            fetched = await call_with_retry(
                self.clock,
                lambda: self.backend.backend_fetch(item),
                retry=self.config.retry,
                breaker=self.breaker,
                stream=self._jitter,
            )
        except _L2_FAILURES:
            # The entry keeps serving flagged-stale until hard expiry.
            self.metrics.incr("swr.refresh_failures")
            entry.refreshing = False
            return
        now = self.clock.now()
        if self.cache.peek(item) is not entry:
            # Invalidated or replaced while we fetched: discard.
            self.metrics.incr("swr.refresh_discarded")
            entry.refreshing = False
            return
        swr = self.config.swr
        assert swr is not None
        value: object = fetched.value
        materializer = self._materializers.get(item)
        if materializer is not None:
            value = await materializer(fetched)
        entry.refreshed(fetched.version, fetched.ts, value, now, swr)
        # Re-judge suspicion against the *new* coherence time: refresh
        # restores freshness but must not silently certify.
        if fetched.ts < self.session.tlb:
            self.cache.unreconciled.add(item)
        else:
            self.cache.unreconciled.discard(item)
        self.metrics.incr("swr.refreshes")

    # -- observability -----------------------------------------------------

    def health(self) -> HealthReport:
        """Snapshot of the degradation rung, breaker, and counters."""
        return HealthReport(
            state=self.state.state.value,
            tlb=self.session.tlb,
            last_report_at=self._last_report_at,
            pending_validation=self.session.pending,
            breakers={self.breaker.name: self.breaker.state.value},
            breaker_trips=self.breaker.trips,
            served_stale=self.served_stale,
            counters=self.metrics.snapshot(),
            transitions=len(self.metrics.transitions),
        )
