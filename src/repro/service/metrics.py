"""Node observability: counters, state-transition log, health report.

Everything the acceptance tests assert about node behaviour — breaker
trips, served-stale counts, answer ages, degradation transitions — is
recorded here, deterministically (plain dict counters, timestamps from
the injected clock).  :meth:`NodeMetrics.snapshot` returns a sorted
plain-python mapping so campaign results serialise byte-identically
across repeat runs of the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["HealthReport", "NodeMetrics", "Transition"]


@dataclass(frozen=True)
class Transition:
    """One recorded state change (node state or breaker state)."""

    at: float
    subject: str
    old: str
    new: str
    reason: str = ""

    def as_tuple(self) -> Tuple[float, str, str, str, str]:
        return (self.at, self.subject, self.old, self.new, self.reason)


class NodeMetrics:
    """Deterministic counters plus the transition journal."""

    __slots__ = ("_counters", "transitions", "_age_sum", "_age_count", "_age_max")

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self.transitions: List[Transition] = []
        self._age_sum = 0.0
        self._age_count = 0
        self._age_max = 0.0

    def incr(self, name: str, n: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + n

    def get(self, name: str) -> int:
        return self._counters.get(name, 0)

    def record_transition(
        self, at: float, subject: str, old: str, new: str, reason: str = ""
    ) -> None:
        self.transitions.append(Transition(at, subject, old, new, reason))

    def observe_age(self, age: float) -> None:
        """Record one served answer's age (now − coherence time)."""
        self._age_sum += age
        self._age_count += 1
        if age > self._age_max:
            self._age_max = age

    @property
    def mean_age(self) -> float:
        return self._age_sum / self._age_count if self._age_count else 0.0

    @property
    def max_age(self) -> float:
        return self._age_max

    def snapshot(self) -> Dict[str, float]:
        """Sorted counters + age stats, ready for JSON."""
        out: Dict[str, float] = {
            name: float(value) for name, value in sorted(self._counters.items())
        }
        out["answer_age_mean"] = round(self.mean_age, 9)
        out["answer_age_max"] = round(self._age_max, 9)
        out["answers_aged"] = float(self._age_count)
        return out


@dataclass(frozen=True)
class HealthReport:
    """One ``CacheNode.health()`` snapshot (all fields JSON-friendly)."""

    state: str
    tlb: float
    last_report_at: float | None
    pending_validation: bool
    breakers: Dict[str, str] = field(default_factory=dict)
    breaker_trips: int = 0
    served_stale: int = 0
    counters: Dict[str, float] = field(default_factory=dict)
    transitions: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "state": self.state,
            "tlb": self.tlb,
            "last_report_at": self.last_report_at,
            "pending_validation": self.pending_validation,
            "breakers": dict(sorted(self.breakers.items())),
            "breaker_trips": self.breaker_trips,
            "served_stale": self.served_stale,
            "counters": self.counters,
            "transitions": self.transitions,
        }
