"""Protocol parameters the service shares with the scheme policies.

The scheme policies (:mod:`repro.schemes`) read a duck-typed ``params``
object; inside the simulator that is ``repro.sim.SystemParams``.  The
service must not import :mod:`repro.sim` (ARCH001 keeps the façade free
of the simulation harness), so this dataclass carries exactly the
fields the policies consume: ``broadcast_interval``, ``window_seconds``
(derived, ``window_intervals × broadcast_interval`` like the paper's
``w·L``), ``timestamp_bits``, ``db_size``, ``seed``, and the bounded
Tlb-salvage buffer size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["ServiceParams"]


@dataclass(frozen=True)
class ServiceParams:
    """Scheme-facing knobs for one cell's service deployment."""

    #: IR broadcast period ``L`` (seconds).
    broadcast_interval: float = 20.0
    #: Window size ``w`` in broadcast intervals.
    window_intervals: int = 10
    #: Bits per timestamp on the wire (report sizing).
    timestamp_bits: int = 64
    #: Number of items in the origin database.
    db_size: int = 1000
    #: L1 capacity (items) of one node's client cache.
    cache_capacity: int = 100
    #: Master seed for every named random stream (jitter, faults, ...).
    seed: int = 0
    #: Bound on the server's per-interval Tlb salvage buffer.
    max_pending_tlbs: Optional[int] = None

    def __post_init__(self) -> None:
        if self.broadcast_interval <= 0:
            raise ValueError("broadcast_interval must be > 0")
        if self.window_intervals < 1:
            raise ValueError("window_intervals must be >= 1")
        if self.db_size < 1 or self.cache_capacity < 1:
            raise ValueError("db_size and cache_capacity must be >= 1")

    @property
    def window_seconds(self) -> float:
        """The paper's ``w·L``: how far back a regular report reaches."""
        return self.window_intervals * self.broadcast_interval
