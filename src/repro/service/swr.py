"""Stale-while-revalidate entries: freshness and expiry as two timers.

Each L1 entry carries two independent deadlines (the cachekit model the
ROADMAP points at):

* ``fresh_until`` — soft.  Past it the entry is *SWR-stale*: it is still
  served (flagged), and a background refresh re-fetches from L2.  A
  successful refresh restores freshness and re-stamps coherence.
* ``expires_at`` — hard.  Past it the entry is deleted on sight and the
  access is a miss.  **A refresh never moves ``expires_at``** — the
  original insert fixes the outer bound for the value's whole residency,
  so a value cannot live in L1 forever on background refreshes alone.
  (The invariant pinned by the Hypothesis property in
  ``tests/service/test_swr.py``.)

SWR composes with IR invalidation, it does not replace it: a report that
invalidates the item removes the entry outright (scheme semantics win),
and certification floors apply to :class:`ServiceEntry` exactly as to
any :class:`repro.cache.CacheEntry` — the service entry *is* one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cache.entry import CacheEntry

__all__ = ["SWRConfig", "ServiceEntry"]


@dataclass(frozen=True)
class SWRConfig:
    """Two-timer policy for one node's L1 entries."""

    #: Seconds an entry stays fresh after (re)fetch.
    freshness_seconds: float = 60.0
    #: Hard lifetime from the *original* insert; never extended.
    expiry_seconds: float = 600.0

    def __post_init__(self) -> None:
        if self.freshness_seconds <= 0 or self.expiry_seconds <= 0:
            raise ValueError("SWR timers must be > 0")
        if self.expiry_seconds < self.freshness_seconds:
            raise ValueError("expiry must be >= freshness")


class ServiceEntry(CacheEntry):
    """A cache entry plus the served value and the two SWR deadlines.

    ``CacheEntry`` is deliberately left uncompiled by the mypyc build
    (see setup.py) precisely so service-tier subclasses like this one
    can extend it.
    """

    __slots__ = ("value", "fetched_at", "fresh_until", "expires_at", "refreshing")

    def __init__(
        self,
        item: int,
        version: int,
        ts: float,
        value: object = None,
        fetched_at: float = 0.0,
        swr: Optional[SWRConfig] = None,
    ) -> None:
        super().__init__(item=item, version=version, ts=ts)
        self.value = value
        self.fetched_at = fetched_at
        if swr is None:
            self.fresh_until = float("inf")
            self.expires_at = float("inf")
        else:
            self.fresh_until = fetched_at + swr.freshness_seconds
            self.expires_at = fetched_at + swr.expiry_seconds
        #: A background refresh is already in flight (dedup latch).
        self.refreshing = False

    def is_fresh(self, now: float) -> bool:
        return now < self.fresh_until

    def is_expired(self, now: float) -> bool:
        return now >= self.expires_at

    def refreshed(
        self,
        version: int,
        ts: float,
        value: object,
        now: float,
        swr: SWRConfig,
    ) -> None:
        """Apply a successful background refresh **in place**.

        Restores freshness from *now* (clamped to the hard deadline) and
        re-stamps value/version/coherence; ``expires_at`` is untouched —
        the invariant this module exists to enforce.
        """
        self.version = version
        self.ts = ts
        self.value = value
        self.fetched_at = now
        self.fresh_until = min(now + swr.freshness_seconds, self.expires_at)
        self.refreshing = False
