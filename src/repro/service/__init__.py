"""repro.service — the asyncio cache-service façade over the scheme core.

The simulator proves the paper's invalidation schemes safe; this package
serves them.  A :class:`CacheNode` is one process's cache client: an L1
in-process store (the same :class:`repro.cache.ClientCache` the simulated
clients use) over a pluggable L2 backend, fed by invalidation reports
from a pluggable pub/sub broker, with the scheme logic supplied by the
very same :mod:`repro.schemes` policies the simulator runs.

Robustness is the point: every L2 call runs under a deadline with
retry/backoff+jitter behind a per-backend circuit breaker, and IR-feed
loss degrades the node along the paper's own ladder — record ``Tlb``,
keep serving what the scheme certified, salvage (never blindly purge) on
reconnect.  ``health()`` exposes the state machine.

Time is injected: :class:`VirtualClock` drives the whole service
deterministically at simulation speed for tests and benchmarks, while
:class:`WallClock` runs it against the real event loop.  See
``docs/SERVICE.md``.
"""

from .breaker import BreakerConfig, BreakerState, CircuitBreaker
from .broker import InMemoryBroker, Subscription
from .clock import Clock, VirtualClock, WallClock, with_deadline
from .degrade import DegradationTracker, NodeState
from .errors import (
    BackendUnavailable,
    CircuitOpenError,
    DeadlineExceeded,
    NodeDegraded,
    ServiceError,
)
from .faults import FlakyBackend, FlakyBroker
from .interfaces import CheckReply, FetchResult, IRBroker, L2Backend
from .metrics import HealthReport, NodeMetrics, Transition
from .node import Answer, CacheNode, NodeConfig
from .origin import InMemoryBackend, Origin
from .params import ServiceParams
from .retry import RetryConfig, backoff_delay, call_with_retry
from .swr import ServiceEntry, SWRConfig

__all__ = [
    "Answer",
    "BackendUnavailable",
    "BreakerConfig",
    "BreakerState",
    "CacheNode",
    "CheckReply",
    "CircuitBreaker",
    "CircuitOpenError",
    "Clock",
    "DeadlineExceeded",
    "DegradationTracker",
    "FetchResult",
    "FlakyBackend",
    "FlakyBroker",
    "HealthReport",
    "IRBroker",
    "InMemoryBackend",
    "InMemoryBroker",
    "L2Backend",
    "NodeConfig",
    "NodeDegraded",
    "NodeMetrics",
    "NodeState",
    "Origin",
    "RetryConfig",
    "SWRConfig",
    "ServiceEntry",
    "ServiceError",
    "ServiceParams",
    "Subscription",
    "Transition",
    "VirtualClock",
    "WallClock",
    "backoff_delay",
    "call_with_retry",
    "with_deadline",
]
