"""Bounded retry with exponential backoff, jitter, and breaker wiring.

The delay law is a pure function (:func:`backoff_delay`) so property
tests can pin its bounds without an event loop: attempt ``k`` nominally
waits ``base_delay * backoff_base**k`` capped at ``max_delay``, then
jitter scales that by a factor drawn uniformly from
``[1 - jitter, 1 + jitter]`` via a named :class:`repro.des.rng.RandomStream`
— seeded, so a retry storm replays identically under the same seed.

:func:`call_with_retry` composes the whole robustness sandwich for one
dependency call: breaker admission → per-attempt deadline → failure
classification → backoff sleep → give up with the last error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Awaitable, Callable, Optional, Tuple, Type, TypeVar

from ..des.rng import RandomStream
from .breaker import CircuitBreaker
from .clock import Clock, with_deadline
from .errors import BackendUnavailable, CircuitOpenError, DeadlineExceeded

__all__ = ["RetryConfig", "backoff_delay", "call_with_retry"]

T = TypeVar("T")

#: Failure types a retry attempt absorbs; anything else propagates.
_RETRYABLE: Tuple[Type[BaseException], ...] = (DeadlineExceeded, BackendUnavailable)


@dataclass(frozen=True)
class RetryConfig:
    """Retry budget for one dependency call."""

    #: Total attempts (first call included); 1 disables retrying.
    attempts: int = 3
    #: Nominal delay before the second attempt.
    base_delay: float = 0.05
    #: Exponential growth factor per attempt.
    backoff_base: float = 2.0
    #: Ceiling on the nominal delay.
    max_delay: float = 2.0
    #: Jitter amplitude: the delay is scaled by U[1-jitter, 1+jitter].
    jitter: float = 0.25
    #: Per-attempt deadline (seconds); None = no per-attempt bound.
    attempt_timeout: Optional[float] = 1.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.backoff_base < 1.0:
            raise ValueError("backoff_base must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")


def backoff_delay(
    config: RetryConfig, attempt: int, stream: Optional[RandomStream] = None
) -> float:
    """Delay before retry number *attempt* (0-based: the wait after the
    first failure is ``backoff_delay(cfg, 0)``).

    Always within ``[nominal*(1-jitter), nominal*(1+jitter)]`` where
    ``nominal = min(base_delay * backoff_base**attempt, max_delay)`` —
    the bound the Hypothesis property pins.
    """
    if attempt < 0:
        raise ValueError("attempt must be >= 0")
    nominal = min(config.base_delay * config.backoff_base**attempt, config.max_delay)
    if stream is None or config.jitter == 0.0 or nominal == 0.0:
        return nominal
    return nominal * stream.uniform(1.0 - config.jitter, 1.0 + config.jitter)


async def call_with_retry(
    clock: Clock,
    call: Callable[[], Awaitable[T]],
    *,
    retry: Optional[RetryConfig] = None,
    breaker: Optional[CircuitBreaker] = None,
    stream: Optional[RandomStream] = None,
    on_attempt_failure: Optional[Callable[[int, BaseException], None]] = None,
) -> T:
    """Run ``await call()`` under the full robustness sandwich.

    Per attempt: ask the breaker for admission (open → immediate
    :class:`CircuitOpenError`, no backend traffic), bound the attempt
    with ``retry.attempt_timeout``, classify
    :class:`DeadlineExceeded`/:class:`BackendUnavailable` as retryable,
    sleep the jittered backoff, and try again.  The last attempt's error
    propagates.  The breaker hears exactly one verdict per admitted
    attempt, even when the attempt is cancelled from outside
    (``release_probe`` in the ``finally``).
    """
    cfg = retry or RetryConfig()
    last_error: BaseException | None = None
    for attempt in range(cfg.attempts):
        now = clock.now()
        if breaker is not None and not breaker.allow(now):
            raise CircuitOpenError(
                f"{breaker.name}: circuit open, call refused"
            ) from last_error
        try:
            value = await with_deadline(clock, call(), cfg.attempt_timeout)
        except _RETRYABLE as exc:
            if breaker is not None:
                breaker.on_failure(clock.now())
            if on_attempt_failure is not None:
                on_attempt_failure(attempt, exc)
            last_error = exc
        except BaseException:
            # Non-retryable (including cancellation): not the backend's
            # fault — release the probe slot without a verdict.
            if breaker is not None:
                breaker.release_probe()
            raise
        else:
            if breaker is not None:
                breaker.on_success(clock.now())
            return value
        if attempt + 1 < cfg.attempts:
            await clock.sleep(backoff_delay(cfg, attempt, stream))
    assert last_error is not None
    raise last_error
