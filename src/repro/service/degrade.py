"""The degradation ladder: backend failure mapped to paper semantics.

The paper's client survives missing reports because its safety never
depended on hearing all of them: knowledge is certified up to ``Tlb``,
and a later report either *covers* that timestamp (window reaches back,
BS salvages: invalidate precisely) or does not (drop what cannot be
certified).  The node reuses that contract as its degradation state
machine:

* ``LIVE`` — reports arriving on schedule; L1 answers are certified.
* ``SALVAGING`` — a scheme salvage is in flight (Tlb uploaded / checking
  reply pending): L1 is momentarily uncertified, queries prefer L2.
* ``DISCONNECTED`` — the IR feed is down or lagging beyond the watchdog
  budget.  The node freezes ``Tlb`` (nothing certifies past it), keeps
  serving entries certified as of ``Tlb`` (safe: staleness conviction
  requires an update *before* ``Tlb`` — see the oracle), and on the next
  report runs the scheme's reconnect path: salvage if covered/``TS(Bn)
  <= Tlb``, purge only when the scheme itself says so.

Transitions are recorded (timestamped, with reasons) in the node's
metrics journal; ``health()`` surfaces the current rung.
"""

from __future__ import annotations

import enum

from .metrics import NodeMetrics

__all__ = ["DegradationTracker", "NodeState"]


class NodeState(enum.Enum):
    LIVE = "live"
    SALVAGING = "salvaging"
    DISCONNECTED = "disconnected"


class DegradationTracker:
    """Current rung of the ladder plus the journal of every move."""

    __slots__ = ("_state", "_metrics", "disconnected_at", "tlb_at_disconnect")

    def __init__(self, metrics: NodeMetrics) -> None:
        self._state = NodeState.LIVE
        self._metrics = metrics
        #: When the feed was last declared down (None while up).
        self.disconnected_at: float | None = None
        #: The frozen ``Tlb`` recorded at that instant.
        self.tlb_at_disconnect: float | None = None

    @property
    def state(self) -> NodeState:
        return self._state

    @property
    def is_live(self) -> bool:
        return self._state is NodeState.LIVE

    def to(
        self, new: NodeState, now: float, reason: str = "", tlb: float = 0.0
    ) -> None:
        old = self._state
        if old is new:
            return
        self._state = new
        self._metrics.record_transition(now, "node", old.value, new.value, reason)
        self._metrics.incr(f"state.{new.value}")
        if new is NodeState.DISCONNECTED:
            self.disconnected_at = now
            self.tlb_at_disconnect = tlb
        elif old is NodeState.DISCONNECTED:
            self.disconnected_at = None
