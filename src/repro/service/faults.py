"""Fault-injecting wrappers for the service's dependencies.

Failure realism comes from two composable sources, both deterministic:

* a **fate model** — the same :class:`repro.net.FaultModel` distributions
  the simulator's wireless channels use (per-kind drop probabilities,
  size-scaled corruption, Gilbert–Elliott bursts), driven by a named
  seeded stream;
* an **outage schedule** — scripted down-time windows (duck-typed
  ``down_at(now)``; :class:`repro.chaos.outages.OutageSchedule` is the
  shipped implementation — the service stays below :mod:`repro.chaos`
  in the layering DAG, so the dependency is structural, not imported).

Semantics: a *dropped* backend call is **silence**, not an error — the
wrapper sleeps until the caller's deadline cancels it (bounded by
``hang_seconds`` so an undeadlined call still terminates).  That is what
makes the per-call deadline budget load-bearing: without it the node
would hang exactly as a real node would on a black-holed TCP connection.
A *corrupted* call fails loudly.  A dropped/corrupted **report** simply
never reaches the subscribers — indistinguishable from wireless IR loss,
which is precisely the degradation path the schemes already handle.
"""

from __future__ import annotations

from typing import Optional, Protocol, Sequence, Tuple

from ..des.rng import RandomStream
from ..net import Fate, FaultConfig, FaultModel, Message, MessageKind, SERVER_ID
from ..reports.base import Report
from .broker import Subscription
from .clock import Clock
from .errors import BackendUnavailable
from .interfaces import CheckReply, FetchResult, IRBroker, L2Backend

__all__ = ["FlakyBackend", "FlakyBroker", "OutageLike"]

#: Ceiling on how long a black-holed call stays silent before erroring
#: (a caller with a deadline cancels far earlier).
DEFAULT_HANG_SECONDS = 3600.0


class OutageLike(Protocol):
    """Anything that can say whether a dependency is down right now."""

    def down_at(self, now: float) -> bool: ...


class FlakyBackend(L2Backend):
    """Wrap an :class:`L2Backend` with outage windows + fate judgement."""

    def __init__(
        self,
        inner: L2Backend,
        clock: Clock,
        *,
        outage: Optional[OutageLike] = None,
        faults: Optional[FaultConfig] = None,
        stream: Optional[RandomStream] = None,
        client_key: int = 0,
        hang_seconds: float = DEFAULT_HANG_SECONDS,
    ) -> None:
        self.inner = inner
        self.clock = clock
        self.outage = outage
        self.model: Optional[FaultModel] = None
        if faults is not None and not faults.is_null:
            if stream is None:
                raise ValueError("a fate model needs a seeded stream")
            self.model = FaultModel(faults, stream)
        self.client_key = client_key
        self.hang_seconds = hang_seconds
        self.calls_blackholed = 0
        self.calls_corrupted = 0
        self.calls_refused = 0

    async def _blackhole(self, why: str) -> None:
        """Model silence: sleep out the hang budget, then error."""
        self.calls_blackholed += 1
        await self.clock.sleep(self.hang_seconds)
        raise BackendUnavailable(f"backend silent ({why})")

    async def _gate(self, kind: MessageKind, size_bits: float) -> None:
        if self.outage is not None and self.outage.down_at(self.clock.now()):
            await self._blackhole("outage window")
        if self.model is not None:
            probe = Message(
                kind=kind,
                size_bits=size_bits,
                src=self.client_key,
                dest=SERVER_ID,
                payload=None,
            )
            fate = self.model.fate(probe, self.client_key)
            if fate is Fate.DROP:
                await self._blackhole("request dropped")
            if fate is Fate.CORRUPT:
                self.calls_corrupted += 1
                raise BackendUnavailable("response corrupted")

    async def backend_fetch(self, item: int) -> FetchResult:
        await self._gate(MessageKind.DATA_REQUEST, 64.0)
        return await self.inner.backend_fetch(item)

    async def backend_push_tlb(self, client_id: int, tlb: float) -> None:
        await self._gate(MessageKind.TLB_UPLOAD, 64.0)
        await self.inner.backend_push_tlb(client_id, tlb)

    async def backend_check(
        self, client_id: int, entries: Sequence[Tuple[int, float]]
    ) -> CheckReply:
        await self._gate(MessageKind.CHECK_REQUEST, 64.0 * max(1, len(entries)))
        return await self.inner.backend_check(client_id, entries)

    async def backend_ping(self) -> bool:
        if self.outage is not None and self.outage.down_at(self.clock.now()):
            return False
        return await self.inner.backend_ping()


class FlakyBroker(IRBroker):
    """Wrap an :class:`IRBroker`: lost reports silently never fan out."""

    def __init__(
        self,
        inner: IRBroker,
        clock: Clock,
        *,
        outage: Optional[OutageLike] = None,
        faults: Optional[FaultConfig] = None,
        stream: Optional[RandomStream] = None,
    ) -> None:
        self.inner = inner
        self.clock = clock
        self.outage = outage
        self.model: Optional[FaultModel] = None
        if faults is not None and not faults.is_null:
            if stream is None:
                raise ValueError("a fate model needs a seeded stream")
            self.model = FaultModel(faults, stream)
        self.reports_lost = 0

    async def broker_publish(self, report: Report) -> None:
        if self.outage is not None and self.outage.down_at(self.clock.now()):
            self.reports_lost += 1
            return
        if self.model is not None:
            probe = Message(
                kind=MessageKind.INVALIDATION_REPORT,
                size_bits=report.size_bits,
                src=SERVER_ID,
                dest=SERVER_ID,
                payload=None,
            )
            # A corrupted report is indistinguishable from a missed one
            # (the simulator treats it the same way): both are loss.
            if self.model.fate(probe, 0) is not Fate.DELIVER:
                self.reports_lost += 1
                return
        await self.inner.broker_publish(report)

    def broker_subscribe(self, maxlen: Optional[int] = None) -> Subscription:
        return self.inner.broker_subscribe(maxlen)

    def broker_subscriber_count(self) -> int:
        return self.inner.broker_subscriber_count()
