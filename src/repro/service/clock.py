"""Injected time: wall clock vs. the DES-backed virtual clock.

Everything in :mod:`repro.service` that waits — SWR timers, retry
backoff, breaker reset windows, the IR watchdog — sleeps through a
:class:`Clock`, never through ``asyncio.sleep`` directly.  Production
uses :class:`WallClock` (the running loop's monotonic time);
tests and benchmarks use :class:`VirtualClock`, which stores pending
sleeps in the same ``(when, priority, eid)``-ordered event heap the DES
kernel uses (tuple ``heapq`` or the struct-of-arrays
:class:`repro.des.soa_heap.EventHeap`, chosen by ``REPRO_KERNEL`` — see
:func:`repro.des._backend.heap_kind`) and fires them when the driver
calls :meth:`VirtualClock.advance`.  The heap's strict total order makes
every virtual-time campaign byte-reproducible under both kernels.

:func:`with_deadline` is the service's single timeout primitive: it
races an awaitable against ``clock.sleep(timeout)`` and converts a loss
into :class:`~repro.service.errors.DeadlineExceeded`.  When both finish
inside the same scheduling quantum the awaitable wins — a deterministic
tie-break the virtual-time tests rely on.
"""

from __future__ import annotations

import asyncio
import heapq
from typing import Any, Awaitable, List, Protocol, Tuple, TypeVar

from ..des._backend import heap_kind
from ..des.soa_heap import EventHeap
from .errors import DeadlineExceeded

__all__ = ["Clock", "VirtualClock", "WallClock", "with_deadline"]

T = TypeVar("T")

#: One virtual-clock timer: ``(when, eid, wakeup future)``.
_TimerEntry = Tuple[float, int, "asyncio.Future[None]"]


class Clock(Protocol):
    """The injected time source every service component waits through."""

    def now(self) -> float:
        """Current time in seconds (monotonic within one clock)."""
        ...

    async def sleep(self, delay: float) -> None:
        """Suspend the calling task for *delay* seconds of this clock."""
        ...


class WallClock:
    """Real time: the running event loop's monotonic clock."""

    __slots__ = ()

    def now(self) -> float:
        return asyncio.get_running_loop().time()

    async def sleep(self, delay: float) -> None:
        await asyncio.sleep(delay)


class VirtualClock:
    """Deterministic manual time for asyncio, backed by the DES heap.

    Tasks call :meth:`sleep`; the driving test calls :meth:`advance` (or
    :meth:`run_until`) to fire due timers in strict ``(when, eid)``
    order, letting all woken tasks run to their next suspension point
    between consecutive fires.  Only :meth:`sleep` waits on this clock —
    a task blocked on real ``asyncio.sleep(dt > 0)`` would stall the
    virtual timeline, so virtual-time code must route every wait through
    the clock (``asyncio.sleep(0)`` yields are fine).
    """

    __slots__ = ("_now", "_eid", "_soa", "_heap")

    def __init__(self, start: float = 0.0) -> None:
        self._now = start
        self._eid = 0
        # Same backend split as repro.des.Environment: the SoA heap when
        # the compiled tier is active, the C-accelerated tuple heap
        # otherwise.  Both pop in identical (when, eid) order.
        self._soa: EventHeap | None = EventHeap() if heap_kind() == "soa" else None
        self._heap: List[_TimerEntry] = []

    def now(self) -> float:
        return self._now

    @property
    def pending_timers(self) -> int:
        """Number of scheduled (possibly cancelled) sleeps."""
        return len(self._soa) if self._soa is not None else len(self._heap)

    async def sleep(self, delay: float) -> None:
        if delay < 0:
            raise ValueError("cannot sleep a negative delay")
        loop = asyncio.get_running_loop()
        if delay == 0:
            # A pure yield: let every other runnable task have a turn.
            await asyncio.sleep(0)
            return
        fut: asyncio.Future[None] = loop.create_future()
        self._eid += 1
        when = self._now + delay
        if self._soa is not None:
            self._soa.push(when, 0, self._eid, fut)
        else:
            heapq.heappush(self._heap, (when, self._eid, fut))
        await fut

    def _peek_when(self) -> float | None:
        if self._soa is not None:
            return self._soa.peek_when() if len(self._soa) else None
        return self._heap[0][0] if self._heap else None

    def _pop(self) -> Tuple[float, "asyncio.Future[None]"]:
        if self._soa is not None:
            when, _eid, payload = self._soa.pop()
            fut: asyncio.Future[None] = payload
            return when, fut
        when, _eid, fut = heapq.heappop(self._heap)
        return when, fut

    async def advance(self, dt: float) -> None:
        """Move time forward by *dt*, firing due timers in heap order.

        Between consecutive fires (and once more at the end) the loop is
        drained: every task made runnable gets to run until it suspends
        again, so causal chains (timer → refresh task → backend call →
        next sleep) complete within one ``advance`` call.
        """
        if dt < 0:
            raise ValueError("cannot advance time backwards")
        target = self._now + dt
        await _drain_loop()
        while True:
            when = self._peek_when()
            if when is None or when > target:
                break
            fired_when, fut = self._pop()
            # A cancelled sleep (its waiter lost a with_deadline race or
            # its task was torn down) is a tombstone: drop it unfired.
            if fut.cancelled():
                continue
            self._now = fired_when
            fut.set_result(None)
            await _drain_loop()
        self._now = target
        await _drain_loop()

    async def run_until(self, when: float) -> None:
        """Advance to absolute time *when* (no-op if already past it)."""
        if when > self._now:
            await self.advance(when - self._now)
        else:
            await _drain_loop()

    async def drive(self, awaitable: Awaitable[T]) -> T:
        """Run *awaitable* to completion, advancing time as needed.

        The driver's way to await work that itself sleeps on this clock
        (retry backoff, deadline timers): between drains, time jumps to
        the next pending timer.  Raises if the awaitable deadlocks — is
        still pending with no timer left to fire.
        """
        task = asyncio.ensure_future(awaitable)
        await _drain_loop()
        while not task.done():
            when = self._peek_when()
            if when is None:
                task.cancel()
                raise RuntimeError(
                    "virtual deadlock: awaitable pending with no timers scheduled"
                )
            await self.advance(max(0.0, when - self._now))
        return task.result()


async def _drain_loop() -> None:
    """Yield until every currently-runnable task has suspended.

    Uses the loop's ready queue when available (CPython exposes it as
    ``_ready``): after our own yield resumes, an empty queue means no
    other callback is runnable.  Falls back to a fixed burst of yields
    on loops that hide their queue.
    """
    loop = asyncio.get_running_loop()
    ready: Any = getattr(loop, "_ready", None)
    if ready is None:
        for _ in range(32):
            await asyncio.sleep(0)
        return
    while True:
        await asyncio.sleep(0)
        if not len(ready):
            return


async def with_deadline(
    clock: Clock, awaitable: Awaitable[T], timeout: float | None
) -> T:
    """Await *awaitable*, but give up after *timeout* clock seconds.

    On timeout the inner task is cancelled (and awaited, so its cleanup
    runs) and :class:`DeadlineExceeded` raises.  When both the awaitable
    and the timer complete in the same scheduling quantum the awaitable's
    result wins — a deterministic preference, not a race.
    """
    if timeout is None:
        return await awaitable
    loop = asyncio.get_running_loop()
    task = asyncio.ensure_future(awaitable)
    timer = asyncio.ensure_future(clock.sleep(timeout))
    gate: asyncio.Future[None] = loop.create_future()

    def _wake(_done: "asyncio.Future[Any]") -> None:
        if not gate.done():
            gate.set_result(None)

    task.add_done_callback(_wake)
    timer.add_done_callback(_wake)
    try:
        await gate
    except asyncio.CancelledError:
        # The caller itself was cancelled: tear both racers down.
        task.cancel()
        timer.cancel()
        raise
    if task.done():
        timer.cancel()
        return task.result()
    task.cancel()
    try:
        await task
    except asyncio.CancelledError:
        pass
    raise DeadlineExceeded(f"dependency call exceeded {timeout}s budget")
