"""Service-level exception taxonomy.

Every failure a :class:`repro.service.CacheNode` can surface is one of
these, so callers can route on type: deadline and transport failures are
retryable, an open breaker is a fast-fail, and :class:`NodeDegraded` is
the strict-mode refusal to serve an answer the active scheme cannot
certify.
"""

from __future__ import annotations

__all__ = [
    "BackendUnavailable",
    "CircuitOpenError",
    "DeadlineExceeded",
    "NodeDegraded",
    "ServiceError",
]


class ServiceError(Exception):
    """Base class for every repro.service failure."""


class DeadlineExceeded(ServiceError):
    """A dependency call overran its per-call deadline budget."""


class BackendUnavailable(ServiceError):
    """The backend failed outright (transport error, corruption, outage)."""


class CircuitOpenError(ServiceError):
    """The dependency's circuit breaker is open: fail fast, no call made."""


class NodeDegraded(ServiceError):
    """Strict serve policy: the node cannot certify an answer right now.

    Raised instead of serving a potentially-stale value when the node is
    degraded (IR feed down / validation pending) and the caller asked for
    certified answers only (``NodeConfig.serve_stale_when_degraded`` off).
    """
