"""Per-backend circuit breaker: closed → open → half-open → closed.

Pure and time-injected (every method takes ``now``), so the state
machine is directly checkable by Hypothesis without an event loop:

* **closed** — calls flow; failures inside a sliding ``window_seconds``
  accumulate, and the ``failure_threshold``-th trips the breaker open;
* **open** — calls fail fast (no dependency traffic) until
  ``reset_timeout`` has elapsed since the trip;
* **half-open** — at most ``probe_budget`` concurrent probe calls are
  admitted (the budget is what prevents a thundering herd from slamming
  a barely-recovered backend); ``probe_successes`` consecutive probe
  successes reclose, any probe failure re-opens and restarts the
  reset timer.

The caller contract is ``allow(now)`` → make the call → exactly one of
``on_success(now)`` / ``on_failure(now)``.  In the half-open state the
success/failure call also releases the probe slot, so callers must
report even on cancellation (the retry helper does this in a
``finally``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Deque, Optional
from collections import deque

__all__ = ["BreakerConfig", "BreakerState", "CircuitBreaker"]


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerConfig:
    """Tuning knobs; defaults sized for per-call deadlines ≈ 1 s."""

    #: Failures within ``window_seconds`` that trip the breaker open.
    failure_threshold: int = 5
    #: Sliding window over which failures count toward the threshold.
    window_seconds: float = 30.0
    #: How long the breaker stays open before admitting probes.
    reset_timeout: float = 60.0
    #: Max concurrent probe calls while half-open.
    probe_budget: int = 2
    #: Consecutive probe successes required to reclose.
    probe_successes: int = 2

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.window_seconds <= 0 or self.reset_timeout <= 0:
            raise ValueError("window_seconds and reset_timeout must be > 0")
        if self.probe_budget < 1 or self.probe_successes < 1:
            raise ValueError("probe budget/successes must be >= 1")


#: Observer invoked on every state change: ``(now, old, new)``.
TransitionHook = Callable[[float, BreakerState, BreakerState], None]


class CircuitBreaker:
    """One dependency's breaker; see the module docstring for the law."""

    __slots__ = (
        "config",
        "name",
        "_state",
        "_failures",
        "_opened_at",
        "_probes_inflight",
        "_probe_successes",
        "trips",
        "fast_fails",
        "_on_transition",
    )

    def __init__(
        self,
        config: BreakerConfig | None = None,
        name: str = "backend",
        on_transition: Optional[TransitionHook] = None,
    ) -> None:
        self.config = config or BreakerConfig()
        self.name = name
        self._state = BreakerState.CLOSED
        self._failures: Deque[float] = deque()
        self._opened_at = float("-inf")
        self._probes_inflight = 0
        self._probe_successes = 0
        #: Times the breaker transitioned to OPEN.
        self.trips = 0
        #: Calls refused without touching the dependency.
        self.fast_fails = 0
        self._on_transition = on_transition

    @property
    def state(self) -> BreakerState:
        return self._state

    def __repr__(self) -> str:
        return f"<CircuitBreaker {self.name} {self._state.value}>"

    def _transition(self, now: float, new: BreakerState) -> None:
        old = self._state
        if old is new:
            return
        self._state = new
        if new is BreakerState.OPEN:
            self.trips += 1
            self._opened_at = now
        elif new is BreakerState.HALF_OPEN:
            self._probes_inflight = 0
            self._probe_successes = 0
        else:  # CLOSED
            self._failures.clear()
            self._probes_inflight = 0
            self._probe_successes = 0
        if self._on_transition is not None:
            self._on_transition(now, old, new)

    def allow(self, now: float) -> bool:
        """Whether a call may proceed; claims a probe slot if half-open."""
        if self._state is BreakerState.OPEN:
            if now - self._opened_at >= self.config.reset_timeout:
                self._transition(now, BreakerState.HALF_OPEN)
            else:
                self.fast_fails += 1
                return False
        if self._state is BreakerState.HALF_OPEN:
            if self._probes_inflight >= self.config.probe_budget:
                self.fast_fails += 1
                return False
            self._probes_inflight += 1
            return True
        return True

    def on_success(self, now: float) -> None:
        if self._state is BreakerState.HALF_OPEN:
            self._probes_inflight = max(0, self._probes_inflight - 1)
            self._probe_successes += 1
            if self._probe_successes >= self.config.probe_successes:
                self._transition(now, BreakerState.CLOSED)
        elif self._state is BreakerState.CLOSED and self._failures:
            self._failures.clear()

    def on_failure(self, now: float) -> None:
        if self._state is BreakerState.HALF_OPEN:
            # One failed probe is proof the backend is still down.
            self._transition(now, BreakerState.OPEN)
            return
        if self._state is BreakerState.OPEN:
            # A straggler call admitted before the trip: already open.
            return
        failures = self._failures
        failures.append(now)
        horizon = now - self.config.window_seconds
        while failures and failures[0] < horizon:
            failures.popleft()
        if len(failures) >= self.config.failure_threshold:
            self._transition(now, BreakerState.OPEN)

    def release_probe(self) -> None:
        """Return an unreported probe slot (call cancelled mid-flight)."""
        if self._state is BreakerState.HALF_OPEN and self._probes_inflight > 0:
            self._probes_inflight -= 1
