"""Pluggable dependency interfaces: the L2 backend and the IR broker.

Hook naming is a checked contract (API002 in :mod:`repro.checks`):
every :class:`L2Backend` capability is a ``backend_*`` method and every
:class:`IRBroker` capability is a ``broker_*`` method.  As in the scheme
policies, a *bare* ``raise NotImplementedError`` marks a required hook,
a messaged raise marks an optional capability (e.g. ``backend_check`` —
only checking-style deployments answer it), and any other body is a
default.  Wrappers and fakes subclass these bases, so a misspelled hook
is caught statically instead of silently never firing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence, Tuple

from ..reports.base import Report

if TYPE_CHECKING:
    from .broker import Subscription

__all__ = ["CheckReply", "FetchResult", "IRBroker", "L2Backend"]


@dataclass(frozen=True)
class FetchResult:
    """One item read served by the L2 backend.

    ``ts`` is the value's *coherence time* — the origin vouches the value
    reflects every update up to that instant (the simulator's
    ``coherent_ts``).  The node certifies L1 entries against it.
    """

    item: int
    version: int
    ts: float
    value: object = None


@dataclass(frozen=True)
class CheckReply:
    """The origin's answer to a checking upload."""

    invalid_items: Tuple[int, ...]
    certified_at: float


class L2Backend:
    """The node's authoritative store (origin gateway, shared cache...).

    Required: :meth:`backend_fetch`.  Optional (messaged raise):
    :meth:`backend_push_tlb`, :meth:`backend_check` — the adaptive and
    checking schemes need them; pure-window deployments do not.
    """

    async def backend_fetch(self, item: int) -> FetchResult:
        """Read *item*'s current value with its coherence stamp."""
        raise NotImplementedError

    async def backend_push_tlb(self, client_id: int, tlb: float) -> None:
        """Upload a last-heard timestamp for window/BS salvage."""
        raise NotImplementedError(f"{type(self).__name__} does not accept Tlb uploads")

    async def backend_check(
        self, client_id: int, entries: Sequence[Tuple[int, float]]
    ) -> CheckReply:
        """Validate ``(item, effective_ts)`` pairs (checking schemes)."""
        raise NotImplementedError(f"{type(self).__name__} does not answer checks")

    async def backend_ping(self) -> bool:
        """Cheap liveness probe; default assumes reachable."""
        return True


class IRBroker:
    """Pub/sub fabric carrying the origin's invalidation reports.

    Required: :meth:`broker_publish`, :meth:`broker_subscribe`.
    """

    async def broker_publish(self, report: Report) -> None:
        """Broadcast one report to every live subscription."""
        raise NotImplementedError

    def broker_subscribe(self, maxlen: Optional[int] = None) -> "Subscription":
        """Open a bounded subscription (old reports shed when full)."""
        raise NotImplementedError

    def broker_subscriber_count(self) -> int:
        """Live subscriptions; default for brokers that cannot tell."""
        return 0
