"""Scheme interfaces: the pluggable server/client invalidation policies.

A *scheme* (TS, AT, SIG, BS, TS-with-checking, AFW, AAW, ...) is a pair of
policies:

* the :class:`ServerPolicy` decides what report to broadcast each period
  and answers scheme-specific uplink traffic;
* the :class:`ClientPolicy` decides, on each received report, what the
  client invalidates and whether it must ask the server for help first.

Policies talk to the simulation through small duck-typed context objects
(the server and client actors in :mod:`repro.sim`), keeping the scheme
logic free of event-loop plumbing and directly unit-testable.

Client contexts expose::

    cache            -> repro.cache.ClientCache
    tlb              -> float   (last-heard report time; settable)
    send_tlb(tlb)                        # adaptive uplink, payload = b_T bits
    send_check_request(entries)          # checking upload
    note_cache_drop()                    # metrics hook

Server contexts expose::

    db               -> repro.db.Database
    params           -> repro.sim.SystemParams
    now              -> float
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..cache import ClientCache
from ..reports.base import Invalidation, Report


class ClientOutcome(enum.Enum):
    """State of the client's cache after handling one report."""

    READY = "ready"       # invalidation applied; cache usable
    PENDING = "pending"   # waiting on the server (Tlb sent / check sent)


def effective_window_seconds(ctx, params) -> float:
    """The window span a server policy should cover right now.

    The loss-adaptive control loop (:mod:`repro.schemes.loss_adaptive`)
    advertises a widened ``effective_window_seconds`` on the server
    context each broadcast tick; without it — loss adaptation off, or a
    duck-typed test context — this is exactly ``params.window_seconds``.
    Widening is monotone-safe: ``WindowReport.covers`` only gains clients
    as the span grows, so a wider window never un-salvages anyone.
    """
    span = getattr(ctx, "effective_window_seconds", None)
    return params.window_seconds if span is None else span


def apply_window_report(cache: ClientCache, report) -> int:
    """Apply a covered TS/enlarged window report to *cache*.

    First reconciles *suspect* entries (fetched across a report boundary,
    so their coherence predates the client's last report): the window
    validates them precisely when it reaches back past their coherence
    time, and drops them otherwise.  Then invalidates each cached item
    the report lists with an update time newer than the entry's effective
    timestamp (Figure 1's ``t_c < t_j`` test) and certifies survivors as
    of the report time.  Returns the number of invalidated entries.
    """
    # Fast paths for a cache with no suspect entries: every entry's
    # effective timestamp is then at least the certified floor (certify
    # and Tlb advance in lockstep in the window-scheme clients; any entry
    # that could violate the invariant is flagged unreconciled), so only
    # report items with ``ts > floor`` can invalidate anything.  At the
    # paper's update rates most reports carry no such item at all, and
    # one tick's listeners share a floor, so the filter below is computed
    # once per broadcast — see docs/PERFORMANCE.md.
    if not cache.unreconciled:
        floor = cache.certified_floor
        if report.newest_ts <= floor:
            cache.certify(report.timestamp)
            return 0
        dropped = 0
        for item, ts in report.fresh_since(floor):
            entry = cache.peek(item)
            if entry is not None and ts > cache.effective_ts(entry):
                cache.invalidate(item)
                dropped += 1
        cache.certify(report.timestamp)
        return dropped
    dropped = 0
    for entry in cache.unreconciled_entries():
        if entry.ts < report.window_start:
            # The report cannot bound updates in (entry.ts, T]: a fetch
            # slower than the whole window.  Conservatively drop.
            cache.invalidate(entry.item)
            dropped += 1
    items = report.items
    if len(items) <= len(cache):
        for item, ts in items.items():
            entry = cache.peek(item)
            if entry is not None and ts > cache.effective_ts(entry):
                cache.invalidate(item)
                dropped += 1
    else:
        for entry in cache.entries():
            ts = items.get(entry.item)
            if ts is not None and ts > cache.effective_ts(entry):
                cache.invalidate(entry.item)
                dropped += 1
    cache.certify(report.timestamp)
    return dropped


def reconcile_with_bitseq(cache: ClientCache, report) -> int:
    """Reconcile suspect entries against a Bit-Sequences report.

    A suspect entry's own coherence time selects the level that bounds
    updates since then; membership in that level's 1-bits (or an
    unsalvageable coherence time) drops the entry.  Must run before the
    main BS invalidation + certify.
    """
    dropped = 0
    for entry in cache.unreconciled_entries():
        if not report.salvageable(entry.ts):
            cache.invalidate(entry.item)
            dropped += 1
        elif entry.ts < report.ts_b0 and entry.item in report.ones_set(
            report.level_for(entry.ts)
        ):
            cache.invalidate(entry.item)
            dropped += 1
    return dropped


def reconcile_with_amnesic(cache: ClientCache, report) -> int:
    """Reconcile suspect entries against an AT report.

    The report only knows the last interval: suspects coherent since the
    previous report are covered by the report's id set; older ones drop.
    """
    dropped = 0
    for entry in cache.unreconciled_entries():
        if entry.ts < report.timestamp - report.interval:
            cache.invalidate(entry.item)
            dropped += 1
    return dropped


def drop_unreconciled(cache: ClientCache) -> int:
    """Conservatively drop every suspect entry (schemes with no way to
    re-validate them, e.g. signatures)."""
    dropped = 0
    for entry in cache.unreconciled_entries():
        cache.invalidate(entry.item)
        dropped += 1
    return dropped


def apply_invalidation(
    cache: ClientCache, inv: Invalidation, report_time: float
) -> int:
    """Apply a covered :class:`Invalidation` set (BS/AT style: no per-item
    timestamps, drop every listed cached item), then certify survivors."""
    if not inv.covered:
        raise ValueError("cannot apply an uncovered invalidation")
    if not inv.items:
        cache.certify(report_time)
        return 0
    dropped = 0
    if len(inv.items) <= len(cache):
        for item in inv.items:
            if cache.invalidate(item):
                dropped += 1
    else:
        for item in cache.item_ids():
            if item in inv.items and cache.invalidate(item):
                dropped += 1
    cache.certify(report_time)
    return dropped


class ClientPolicy:
    """Per-client scheme behaviour.  Subclasses hold per-client state."""

    def on_report(self, ctx, report: Report) -> ClientOutcome:
        """Handle one broadcast report; must update ``ctx.tlb`` when the
        cache ends up certified as of the report."""
        raise NotImplementedError

    def on_validity_reply(self, ctx, invalid_items: Iterable[int], certified_at: float):
        """Handle the server's answer to a checking upload (checking-style
        schemes only)."""
        raise NotImplementedError(f"{type(self).__name__} does not use checking")

    def on_reconnect(self, ctx, now: float):
        """Reset per-disconnection-episode latches (e.g. the sent-Tlb flag)."""

    def on_disconnect(self, ctx, now: float):
        """Hook at disconnection time (rarely needed)."""

    def on_promote(self, ctx, now: float):
        """A pooled client woke back to full fidelity (population
        aggregation; see :mod:`repro.sim.population`).

        A promotion is a reconnection whose doze was spent as a pool
        stratum count: the salvage path that follows (``send_tlb`` /
        ``send_check_request`` at the next report) must behave exactly
        as after an ordinary wake, so the default delegates to
        :meth:`on_reconnect`.  Schemes with state the stratum cannot
        carry may override.
        """
        self.on_reconnect(ctx, now)

    def on_missed_reports(self, ctx, n_missed: int, now: float):
        """A connected client detected *n_missed* lost/corrupted reports.

        Called when a received report's timestamp is more than one
        broadcast interval past the last report this client decoded
        while it was listening the whole time — i.e. the wireless hop
        ate reports.  The window/covers machinery in :meth:`on_report`
        already recovers (a gap within the window is invisible; beyond
        it, the ordinary salvage path runs), so the default is telemetry
        only; schemes may override to react proactively.
        """

    def on_epoch_change(self, ctx, old_epoch: int, new_epoch: int, now: float):
        """The server restarted under this client (or the IR timeline ran
        backwards — equally a sign the certified history is gone).

        The new incarnation's reports describe only post-restart history,
        so nothing the client certified under the old epoch can be
        trusted: the safe default drops the whole cache, resets the
        per-episode uplink latches via :meth:`on_reconnect` (any rescue
        the client was waiting on died with the old server), and lets the
        caller resynchronise ``Tlb`` to the new timeline.  Schemes with a
        cheaper recovery (e.g. checking-style revalidation) may override.
        """
        ctx.cache.drop_all()
        ctx.note_cache_drop()
        self.on_reconnect(ctx, now)

    def on_validation_timeout(self, ctx, now: float) -> bool:
        """An expected validity/rescue reply never arrived (lost uplink
        request or lost reply).

        Return True after re-issuing the upload (the client keeps
        waiting), or False to give up — the client then degrades to a
        full cache drop and resynchronises at the next report.  Schemes
        without an uplink lifecycle keep the default give-up.
        """
        return False


class PendingTlbBuffer:
    """Bounded per-interval buffer of the adaptive schemes' salvage state.

    Keyed by client so a retransmitted ``Tlb`` (the retry layer re-sends
    lost uploads) refreshes its slot instead of growing the buffer, and
    capped so a reconnection storm cannot balloon the server's memory:
    uploads beyond ``capacity`` distinct clients are counted and shed
    (those clients fall back to the ordinary drop-all path — graceful
    degradation, not a crash).
    """

    def __init__(self, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._by_client: Dict[int, float] = {}
        #: Retransmissions observed (same client, same interval).
        self.duplicates = 0
        #: Uploads shed because the buffer was full.
        self.overflows = 0

    def __len__(self):
        return len(self._by_client)

    def add(self, client_id: int, tlb: float) -> bool:
        """Record one upload; returns False when shed (buffer full)."""
        if client_id in self._by_client:
            self.duplicates += 1
            self._by_client[client_id] = tlb
            return True
        if self.capacity is not None and len(self._by_client) >= self.capacity:
            self.overflows += 1
            return False
        self._by_client[client_id] = tlb
        return True

    def drain(self) -> List[float]:
        """Pop and return every buffered ``Tlb`` (arrival order)."""
        tlbs = list(self._by_client.values())
        self._by_client.clear()
        return tlbs


class ServerPolicy:
    """Per-cell scheme behaviour on the server."""

    def build_report(self, ctx, now: float) -> Report:
        """Construct the invalidation report to broadcast at *now*."""
        raise NotImplementedError

    def on_tlb(self, ctx, client_id: int, tlb: float, now: float):
        """Receive a client's last-heard timestamp (adaptive schemes)."""
        raise NotImplementedError(f"{type(self).__name__} does not use Tlb uploads")

    def on_check_request(
        self, ctx, client_id: int, entries: List[Tuple[int, float]], now: float
    ) -> Tuple[List[int], float, float]:
        """Answer a checking upload.

        Returns ``(invalid_items, certified_at, reply_size_bits)``.
        """
        raise NotImplementedError(f"{type(self).__name__} does not use checking")

    def on_item_update(self, item: int, old_version: int, new_version: int):
        """Observe a database update (used by signature schemes)."""

    def salvage_floor(self, ctx) -> float:
        """Oldest ``Tlb``/check timestamp this cell can answer honestly.

        A ``Tlb`` upload or checking request reaching below this floor
        refers to history the cell's database no longer holds; with
        cooperative salvage on, the server backfills that history from a
        neighbor cell before dispatching to the policy (see
        docs/PROTOCOLS.md).  The default — the database's own history
        floor — is right for every shipped scheme; schemes with extra
        salvage state may override.
        """
        return ctx.db.origin_time


class Scheme:
    """A named scheme: factories for its two policies."""

    def __init__(
        self,
        name: str,
        server_factory: Callable[..., ServerPolicy],
        client_factory: Callable[..., ClientPolicy],
        description: str = "",
    ):
        self.name = name
        self.description = description
        self._server_factory = server_factory
        self._client_factory = client_factory

    def __repr__(self):
        return f"<Scheme {self.name}>"

    def make_server_policy(self, params, db) -> ServerPolicy:
        """Instantiate the server-side policy for one simulation."""
        return self._server_factory(params=params, db=db)

    def make_client_policy(self, params, client_id: int) -> ClientPolicy:
        """Instantiate one client's policy."""
        return self._client_factory(params=params, client_id=client_id)
