"""AAW — Adaptive Invalidation Report with Adjusting Window (paper §3.2).

Like AFW, but when salvageable ``Tlb`` uploads arrive the server *prices*
an enlarged window report ``IR(w')`` (all updates since the oldest
salvageable ``Tlb``, plus a dummy ``(dummy_id, Tlb)`` marker) against the
Bit-Sequences report and broadcasts the smaller.  For gaps barely beyond
the window the enlarged report is tiny — this is why AAW beats AFW on
both throughput and downlink in Figures 5-14.
"""

from __future__ import annotations

from ..reports.bitseq import (
    bs_salvage_threshold,
    build_bitseq_report,
)
from ..reports.sizes import bitseq_report_bits
from ..reports.window import (
    WindowReportCache,
    build_enlarged_window_report,
    build_window_report,
    enlarged_report_size,
)
from .base import PendingTlbBuffer, Scheme, ServerPolicy, effective_window_seconds
from .afw import AdaptiveClientPolicy


class AAWServerPolicy(ServerPolicy):
    """Figure 4's server: window / enlarged window / BS, whichever is
    smallest while still covering every salvageable requester."""

    def __init__(self, params, db):
        self.params = params
        self.db = db
        self.tlb_buffer = PendingTlbBuffer(
            getattr(params, "max_pending_tlbs", None)
        )
        self.bs_broadcasts = 0
        self.enlarged_broadcasts = 0
        self._report_cache = WindowReportCache(db)

    def on_tlb(self, ctx, client_id: int, tlb: float, now: float):
        self.tlb_buffer.add(client_id, tlb)

    def build_report(self, ctx, now: float):
        params = self.params
        window_seconds = effective_window_seconds(ctx, params)
        salvageable = []
        pending = self.tlb_buffer.drain()
        if pending:
            # Tlbs inside the (possibly loss-widened) window ride the
            # regular report; only older ones need stretching/BS.
            window_start = now - window_seconds
            # db.origin_time is the history floor (restart instant after
            # a crash): pre-crash Tlbs are unsalvageable by construction.
            threshold = bs_salvage_threshold(self.db, origin=self.db.origin_time)
            salvageable = [t for t in pending if threshold <= t <= window_start]
        if salvageable:
            back_to = min(salvageable)
            _count, enlarged_bits = enlarged_report_size(
                self.db, back_to, params.timestamp_bits
            )
            bs_bits = bitseq_report_bits(self.db.n_items, params.timestamp_bits)
            if enlarged_bits <= bs_bits:
                self.enlarged_broadcasts += 1
                return build_enlarged_window_report(
                    self.db, now, back_to, params.timestamp_bits
                )
            self.bs_broadcasts += 1
            return build_bitseq_report(
                self.db,
                now,
                origin=self.db.origin_time,
                timestamp_bits=params.timestamp_bits,
            )
        return build_window_report(
            self.db,
            now,
            window_seconds,
            params.timestamp_bits,
            cache=self._report_cache,
        )


AAW_SCHEME = Scheme(
    name="aaw",
    server_factory=AAWServerPolicy,
    client_factory=AdaptiveClientPolicy,
    description="Adaptive invalidation report with adjusting window",
)
