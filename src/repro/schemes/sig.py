"""SIG: periodic combined-signature broadcasts (Barbara & Imielinski).

Clients save the last combined signatures they heard and diagnose their
cache by differencing — no uplink at all, any disconnection length, but
with probabilistic false positives (collateral drops).  An ablation
baseline; the defaults give each item ~6 of 128 subsets, which keeps
the per-update collateral damage modest.
"""

from __future__ import annotations

from ..reports.signatures import (
    IncrementalCombiner,
    SignatureReport,
    SignatureScheme,
)
from .base import (
    ClientOutcome,
    ClientPolicy,
    Scheme,
    ServerPolicy,
    apply_invalidation,
    drop_unreconciled,
)

#: Default signature deployment parameters for simulations.
DEFAULT_N_SUBSETS = 128
DEFAULT_SIGNATURE_BITS = 32
DEFAULT_MEMBERSHIP = 0.05
DEFAULT_THRESHOLD = 0.5


class SIGServerPolicy(ServerPolicy):
    """Maintains combined signatures incrementally; broadcasts them."""

    def __init__(
        self,
        params,
        db,
        n_subsets: int = DEFAULT_N_SUBSETS,
        signature_bits: int = DEFAULT_SIGNATURE_BITS,
        membership: float = DEFAULT_MEMBERSHIP,
        threshold: float = DEFAULT_THRESHOLD,
    ):
        self.params = params
        self.db = db
        self.scheme = SignatureScheme(
            db.n_items,
            n_subsets=n_subsets,
            signature_bits=signature_bits,
            membership=membership,
            diagnose_threshold=threshold,
            seed=params.seed,
        )
        # Seed the combiner from the durable version counters: identical
        # to the all-zero default at t=0, and the only correct baseline
        # when a post-crash restart builds a fresh policy mid-run (the
        # combined signatures are a pure function of current versions).
        self.combiner = IncrementalCombiner(self.scheme, versions=db.version)

    def on_item_update(self, item: int, old_version: int, new_version: int):
        self.combiner.on_update(item, old_version, new_version)

    def build_report(self, ctx, now: float):
        return SignatureReport(
            now, self.scheme, self.combiner.snapshot(), self.params.timestamp_bits
        )


class SIGClientPolicy(ClientPolicy):
    """Differences fresh combined signatures against the saved ones."""

    def __init__(self, params, client_id: int):
        self.params = params
        self.client_id = client_id
        self._saved = None

    def on_report(self, ctx, report) -> ClientOutcome:
        if self._saved is None:
            # First report ever: no baseline to difference against.  The
            # cache is empty at simulation start, so nothing is at risk.
            ctx.cache.drop_all()
            ctx.cache.certify(report.timestamp)
        else:
            # Suspect entries predate the saved signatures' baseline and
            # cannot be diagnosed by differencing: drop them.
            drop_unreconciled(ctx.cache)
            inv = report.diagnose(ctx.cache.item_ids(), self._saved)
            apply_invalidation(ctx.cache, inv, report.timestamp)
        self._saved = report.combined
        ctx.tlb = report.timestamp
        return ClientOutcome.READY


SIG_SCHEME = Scheme(
    name="sig",
    server_factory=SIGServerPolicy,
    client_factory=SIGClientPolicy,
    description="Combined-signature differencing (probabilistic)",
)
