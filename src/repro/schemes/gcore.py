"""GCORE-inspired grouped checking (simplified; extension ablation).

Wu, Yu & Chen's GCORE reduces the uplink cost of validity checking by
organizing cache contents into groups.  We implement the spirit of that
trade-off in a simplified form (documented in DESIGN.md): the
reconnecting client uploads every cached item id but only **one
timestamp per group** (the group minimum) instead of one per item:

    upload bits = n_cached * ceil(log2 N)  +  G * b_T

versus simple checking's ``n_cached * (ceil(log2 N) + b_T)``.  The server
answers exactly as in simple checking but tests each item against its
group's (older) timestamp, so items updated between the group minimum and
their own fetch time are dropped unnecessarily — uplink savings bought
with over-invalidation.
"""

from __future__ import annotations

from typing import List, Tuple

from ..reports.sizes import id_bits, validity_report_bits
from ..reports.window import WindowReportCache, build_window_report
from .base import (
    ClientOutcome,
    ClientPolicy,
    Scheme,
    ServerPolicy,
    apply_window_report,
    effective_window_seconds,
)

#: Number of timestamp groups the cache is hashed into.
DEFAULT_GROUPS = 8


def group_of(item: int, n_groups: int) -> int:
    """Deterministic group assignment shared by client and server."""
    return item % n_groups


def grouped_upload_bits(
    n_cached: int, n_items: int, n_groups: int, timestamp_bits: int
) -> float:
    """Wire size of the grouped checking upload."""
    return n_cached * id_bits(n_items) + n_groups * timestamp_bits


class GCOREServerPolicy(ServerPolicy):
    """Window broadcasts plus grouped validity answers."""

    def __init__(self, params, db, n_groups: int = DEFAULT_GROUPS):
        self.params = params
        self.db = db
        self.n_groups = n_groups
        self.checks_served = 0
        self._report_cache = WindowReportCache(db)

    def build_report(self, ctx, now: float):
        return build_window_report(
            self.db,
            now,
            effective_window_seconds(ctx, self.params),
            self.params.timestamp_bits,
            cache=self._report_cache,
        )

    def on_check_request(
        self, ctx, client_id: int, entries: List[Tuple[int, float]], now: float
    ) -> Tuple[List[int], float, float]:
        """*entries* carry ``(item, group_min_ts)`` — the client already
        collapsed timestamps to its per-group minima."""
        # As in simple checking: group timestamps older than the server's
        # history floor (post-crash origin_time) cannot be vouched for —
        # last_update was wiped — so those items drop conservatively.
        floor = self.db.origin_time
        invalid = [
            item
            for item, ts in entries
            if ts < floor or self.db.last_update[item] > ts
        ]
        self.checks_served += 1
        return invalid, now, validity_report_bits(len(entries))


class GCOREClientPolicy(ClientPolicy):
    """Checking client that collapses timestamps into per-group minima."""

    def __init__(self, params, client_id: int, n_groups: int = DEFAULT_GROUPS):
        self.params = params
        self.client_id = client_id
        self.n_groups = n_groups
        self._check_pending = False

    def upload_size_bits(self, n_cached: int) -> float:
        """Size of this client's grouped upload for *n_cached* entries."""
        return grouped_upload_bits(
            n_cached, self.params.db_size, self.n_groups, self.params.timestamp_bits
        )

    def on_report(self, ctx, report) -> ClientOutcome:
        if self._check_pending:
            return ClientOutcome.PENDING
        if report.window_start <= ctx.tlb:  # covers(), inlined
            cache = ctx.cache
            # No-news certify (apply_window_report's fast path, inlined).
            if not cache.unreconciled and report.newest_ts <= cache.certified_floor:
                cache.certify(report.timestamp)
            else:
                apply_window_report(cache, report)
            ctx.tlb = report.timestamp
            return ClientOutcome.READY
        entries = ctx.cache.entries()
        if not entries:
            ctx.cache.certify(report.timestamp)
            ctx.tlb = report.timestamp
            return ClientOutcome.READY
        group_min = {}
        for entry in entries:
            g = group_of(entry.item, self.n_groups)
            ts = ctx.cache.effective_ts(entry)
            if g not in group_min or ts < group_min[g]:
                group_min[g] = ts
        payload = [
            (entry.item, group_min[group_of(entry.item, self.n_groups)])
            for entry in entries
        ]
        self._check_pending = True
        ctx.send_check_request(payload, size_bits=self.upload_size_bits(len(entries)))
        return ClientOutcome.PENDING

    def on_validity_reply(self, ctx, invalid_items, certified_at: float):
        self._check_pending = False
        for item in invalid_items:
            ctx.cache.invalidate(item)
        ctx.cache.certify(certified_at)
        ctx.tlb = certified_at

    def on_reconnect(self, ctx, now: float):
        # A reply lost during the doze must not wedge the client.
        self._check_pending = False


GCORE_SCHEME = Scheme(
    name="gcore",
    server_factory=GCOREServerPolicy,
    client_factory=GCOREClientPolicy,
    description="Grouped checking (GCORE-inspired, simplified)",
)
