"""BS: pure Bit-Sequences broadcasting (Jing et al.), paper Section 2.3.

Every report carries the full hierarchy, so any client — however long
disconnected — salvages its cache without uplink traffic, at the price
of a ~2N-bit report each period (the downlink cost Figure 5 punishes).
"""

from __future__ import annotations

from ..reports.bitseq import build_bitseq_report
from .base import (
    ClientOutcome,
    ClientPolicy,
    Scheme,
    ServerPolicy,
    apply_invalidation,
    reconcile_with_bitseq,
)


class BSServerPolicy(ServerPolicy):
    """Broadcasts the bit-sequences hierarchy every period."""

    def __init__(self, params, db):
        self.params = params
        self.db = db

    def build_report(self, ctx, now: float):
        # origin is the server's history floor: 0.0 in a never-crashed
        # cell, the restart instant after a crash–recovery — clients with
        # an older Tlb must not be salvaged from truncated history.
        return build_bitseq_report(
            self.db,
            now,
            origin=self.db.origin_time,
            timestamp_bits=self.params.timestamp_bits,
        )


class BSClientPolicy(ClientPolicy):
    """Figure 2's client algorithm."""

    def __init__(self, params, client_id: int):
        self.params = params
        self.client_id = client_id

    def on_report(self, ctx, report) -> ClientOutcome:
        t = report.timestamp
        cache = ctx.cache
        # Fast path: no update since the client's last-heard time
        # (``tlb >= TS(B0)``) and no suspects to reconcile — the general
        # path below would compute an empty invalidation and certify.
        if ctx.tlb >= report.ts_b0 and not cache.unreconciled:
            cache.certify(t)
            ctx.tlb = t
            return ClientOutcome.READY
        inv = report.invalidation_for(ctx.tlb)
        if inv.covered:
            reconcile_with_bitseq(ctx.cache, report)
            apply_invalidation(ctx.cache, inv, report.timestamp)
        else:
            ctx.cache.drop_all()
            ctx.note_cache_drop()
            ctx.cache.certify(report.timestamp)
        ctx.tlb = report.timestamp
        return ClientOutcome.READY


BS_SCHEME = Scheme(
    name="bs",
    server_factory=BSServerPolicy,
    client_factory=BSClientPolicy,
    description="Bit-sequences hierarchy every period (no uplink)",
)
