"""AT (Amnesic Terminals): ids of the last interval's updates only.

A gap of even one missed report forces a full drop, which is why the
paper's evaluation excludes AT for long-disconnection regimes; kept here
as an ablation baseline.
"""

from __future__ import annotations

from ..reports.amnesic import build_amnesic_report
from .base import (
    ClientOutcome,
    ClientPolicy,
    Scheme,
    ServerPolicy,
    apply_invalidation,
    reconcile_with_amnesic,
)


class ATServerPolicy(ServerPolicy):
    """Broadcasts the latest interval's updated ids every period."""

    def __init__(self, params, db):
        self.params = params
        self.db = db

    def build_report(self, ctx, now: float):
        return build_amnesic_report(
            self.db, now, self.params.broadcast_interval, self.params.timestamp_bits
        )


class ATClientPolicy(ClientPolicy):
    """Applies the interval's drops; any gap discards the cache."""

    def __init__(self, params, client_id: int):
        self.params = params
        self.client_id = client_id

    def on_report(self, ctx, report) -> ClientOutcome:
        inv = report.invalidation_for(ctx.tlb)
        if inv.covered:
            reconcile_with_amnesic(ctx.cache, report)
            apply_invalidation(ctx.cache, inv, report.timestamp)
        else:
            ctx.cache.drop_all()
            ctx.note_cache_drop()
            ctx.cache.certify(report.timestamp)
        ctx.tlb = report.timestamp
        return ClientOutcome.READY


AT_SCHEME = Scheme(
    name="at",
    server_factory=ATServerPolicy,
    client_factory=ATClientPolicy,
    description="Amnesic terminals: one-interval update ids",
)
