"""Name-based lookup of the available invalidation schemes."""

from __future__ import annotations

from typing import Dict, List

from .aaw import AAW_SCHEME
from .afw import AFW_SCHEME
from .at import AT_SCHEME
from .base import Scheme
from .bs import BS_SCHEME
from .checking import CHECKING_SCHEME
from .gcore import GCORE_SCHEME
from .sig import SIG_SCHEME
from .ts_nocheck import TS_SCHEME

_REGISTRY: Dict[str, Scheme] = {
    scheme.name: scheme
    for scheme in (
        TS_SCHEME,
        AT_SCHEME,
        SIG_SCHEME,
        BS_SCHEME,
        CHECKING_SCHEME,
        AFW_SCHEME,
        AAW_SCHEME,
        GCORE_SCHEME,
    )
}

#: The four schemes the paper's evaluation compares (Figures 5-16).
EVALUATED_SCHEMES = ("aaw", "afw", "checking", "bs")


def get_scheme(name: str) -> Scheme:
    """Look up a scheme by name (case-insensitive)."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown scheme {name!r}; available: {sorted(_REGISTRY)}"
        )


def available_schemes() -> List[str]:
    """Names of every registered scheme."""
    return sorted(_REGISTRY)


def register_scheme(scheme: Scheme, overwrite: bool = False):
    """Add a user-defined scheme (see ``examples/custom_scheme.py``)."""
    if scheme.name in _REGISTRY and not overwrite:
        raise ValueError(f"scheme {scheme.name!r} already registered")
    _REGISTRY[scheme.name] = scheme
