"""Loss-adaptive broadcasting: estimate IR loss, widen the window.

The paper's window schemes assume the broadcast channel delivers every
invalidation report; the fault layer (:mod:`repro.net.faults`) shows what
happens when it does not.  This module closes the loop on the server
side:

* a :class:`LossEstimator` aggregates the cell's loss evidence — explicit
  IR-gap NACK hints from listening clients (``client.ir_gaps`` made
  visible to the server) plus salvage ``Tlb`` traffic (clients that fell
  out of the window, a weaker signal since disconnection also causes it)
  — into an EWMA-smoothed estimated IR-loss rate in ``[0, 1]``;
* :func:`effective_window_intervals` turns that estimate into a widened
  window ``w_eff in [w, w_max]``: a client that misses up to ``k``
  consecutive reports (the tolerance :func:`consecutive_loss_tolerance`
  derives from the estimate) can still validate precisely from a later
  report instead of paying the fragile two-round salvage handshake — or
  a full cache drop — that a lost rescue report would force;
* the per-cell :class:`LossAdaptiveController` packages both for the
  server actor, which advertises ``effective_window_seconds`` to the
  window-based scheme policies each broadcast tick.

Everything here is pure bookkeeping — no event-loop coupling — so the
control law is directly unit- and property-testable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class LossAdaptationConfig:
    """Knob group for loss-adaptive broadcasting (default: off entirely —
    ``SystemParams.loss_adaptation`` is ``None`` unless set).

    Attributes
    ----------
    w_max:
        Upper bound on the effective window, in broadcast intervals.
        Must be >= the scheme's base ``window_intervals`` (validated by
        :class:`repro.sim.SystemParams`).
    alpha:
        EWMA smoothing factor for the loss estimate, in ``(0, 1]``.
    salvage_weight:
        Weight of one salvage ``Tlb`` upload relative to one NACKed
        missed report.  Salvage traffic is ambiguous (long disconnection
        also causes it), so it counts for less than an explicit gap.
    target_residual:
        Acceptable probability that a client's loss streak outruns even
        the widened window (drives the consecutive-loss tolerance).
    repeat:
        Report repetition factor ``r``: each IR is broadcast ``r`` times
        back-to-back, every copy priced at full size on the downlink.
        ``r = 1`` is bit-identical to no repetition.
    nack:
        Whether clients upload an IR-gap NACK hint when they detect
        missed reports (the estimator's primary signal).
    """

    w_max: int = 40
    alpha: float = 0.3
    salvage_weight: float = 0.5
    target_residual: float = 0.01
    repeat: int = 1
    nack: bool = True

    def __post_init__(self):
        if self.w_max < 1:
            raise ValueError("w_max must be >= 1")
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if self.salvage_weight < 0.0:
            raise ValueError("salvage_weight must be >= 0")
        if not 0.0 < self.target_residual < 1.0:
            raise ValueError("target_residual must be in (0, 1)")
        if self.repeat < 1:
            raise ValueError("repeat must be >= 1")


class LossEstimator:
    """EWMA estimate of the IR-loss rate from per-interval loss evidence.

    Per broadcast interval the server accumulates gap NACKs (each worth
    the number of reports the client provably missed) and salvage
    uploads (down-weighted by ``salvage_weight``), normalises by the
    expected listener count, clips to ``[0, 1]``, and folds the result
    into an exponentially weighted moving average.

    Invariants (property-tested): the estimate always lies in ``[0, 1]``
    and is monotone non-decreasing in the observed gap count of any
    single interval, all else equal.
    """

    def __init__(self, alpha: float = 0.3, salvage_weight: float = 0.5):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if salvage_weight < 0.0:
            raise ValueError("salvage_weight must be >= 0")
        self.alpha = alpha
        self.salvage_weight = salvage_weight
        self.estimate = 0.0
        self._gaps = 0
        self._salvage = 0

    def observe_gaps(self, n_missed: int):
        """A client NACKed *n_missed* provably lost reports."""
        if n_missed < 0:
            raise ValueError("n_missed must be >= 0")
        self._gaps += n_missed

    def observe_salvage(self):
        """A ``Tlb`` salvage upload arrived (weak loss evidence)."""
        self._salvage += 1

    def interval_raw(self, expected_listeners: int) -> float:
        """The current interval's raw (unsmoothed) loss sample."""
        signal = self._gaps + self.salvage_weight * self._salvage
        return min(1.0, signal / max(1, expected_listeners))

    def end_interval(self, expected_listeners: int) -> float:
        """Fold the interval's evidence into the EWMA and reset it."""
        raw = self.interval_raw(expected_listeners)
        self.estimate += self.alpha * (raw - self.estimate)
        self._gaps = 0
        self._salvage = 0
        return self.estimate


def consecutive_loss_tolerance(loss_rate: float, target_residual: float) -> int:
    """Smallest ``k`` with ``loss_rate ** (k + 1) <= target_residual``.

    A client survives ``k`` consecutive lost reports and still validates
    from the ``k+1``-th; independent losses at *loss_rate* outrun that
    tolerance with probability ``loss_rate ** (k+1)``, which this bounds
    by *target_residual*.  Monotone non-decreasing in *loss_rate*.
    """
    if not 0.0 < target_residual < 1.0:
        raise ValueError("target_residual must be in (0, 1)")
    if loss_rate <= 0.0:
        return 0
    if loss_rate >= 1.0:
        raise ValueError("loss_rate must be < 1 (use the w_max cap)")
    return max(0, math.ceil(math.log(target_residual) / math.log(loss_rate)) - 1)


def effective_window_intervals(
    w: int, w_max: int, est_loss: float, target_residual: float = 0.01
) -> int:
    """The widened window ``w_eff in [w, w_max]`` for an estimated loss.

    Zero estimated loss keeps the paper-exact ``w_eff == w``.  Otherwise
    each unit of consecutive-loss tolerance ``k`` buys one extra base
    window of direct coverage — a client whose salvage handshake would
    have to survive ``k`` lossy rounds instead validates straight from
    the widened report — capped at ``w_max``.  Monotone non-decreasing
    in *est_loss*.
    """
    if w < 1:
        raise ValueError("w must be >= 1")
    if w_max < w:
        raise ValueError("w_max must be >= w")
    if est_loss <= 0.0:
        return w
    if est_loss >= 1.0:
        return w_max
    k = consecutive_loss_tolerance(est_loss, target_residual)
    return min(w_max, w + k * w)


class LossAdaptiveController:
    """Per-cell control loop the server actor drives once per interval.

    Wires a :class:`LossEstimator` to the window law and exposes the
    current ``w_eff`` (and its wall-clock span) for the scheme policies.
    """

    def __init__(
        self,
        config: LossAdaptationConfig,
        window_intervals: int,
        broadcast_interval: float,
        expected_listeners: int,
    ):
        if config.w_max < window_intervals:
            raise ValueError("w_max must be >= window_intervals")
        self.config = config
        self.window_intervals = window_intervals
        self.broadcast_interval = broadcast_interval
        self.expected_listeners = expected_listeners
        self.estimator = LossEstimator(config.alpha, config.salvage_weight)
        self.w_eff = window_intervals

    def observe_nack(self, n_missed: int):
        self.estimator.observe_gaps(n_missed)

    def observe_salvage(self):
        self.estimator.observe_salvage()

    @property
    def estimate(self) -> float:
        """The smoothed IR-loss estimate in ``[0, 1]``."""
        return self.estimator.estimate

    @property
    def effective_window_seconds(self) -> float:
        """``w_eff * L``: the span the widened reports cover."""
        return self.w_eff * self.broadcast_interval

    def tick(self) -> int:
        """Advance one broadcast interval; returns the new ``w_eff``."""
        est = self.estimator.end_interval(self.expected_listeners)
        self.w_eff = effective_window_intervals(
            self.window_intervals,
            self.config.w_max,
            est,
            self.config.target_residual,
        )
        return self.w_eff
