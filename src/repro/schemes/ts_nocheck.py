"""TS (Broadcasting Timestamps) without checking — paper Figure 1.

The server broadcasts ``IR(w)`` every period.  A client disconnected
longer than the window drops its whole cache; otherwise it invalidates
the listed items newer than its entries and certifies the rest.
"""

from __future__ import annotations

from ..reports.window import WindowReportCache, build_window_report
from .base import (
    ClientOutcome,
    ClientPolicy,
    Scheme,
    ServerPolicy,
    apply_window_report,
    effective_window_seconds,
)


class TSServerPolicy(ServerPolicy):
    """Broadcasts the fixed-window report every period (widened under
    loss adaptation)."""

    def __init__(self, params, db):
        self.params = params
        self.db = db
        self._report_cache = WindowReportCache(db)

    def build_report(self, ctx, now: float):
        return build_window_report(
            self.db,
            now,
            effective_window_seconds(ctx, self.params),
            self.params.timestamp_bits,
            cache=self._report_cache,
        )


class TSClientPolicy(ClientPolicy):
    """Figure 1's client algorithm: covered -> precise drop; else drop all."""

    def __init__(self, params, client_id: int):
        self.params = params
        self.client_id = client_id

    def on_report(self, ctx, report) -> ClientOutcome:
        t = report.timestamp
        cache = ctx.cache
        if report.window_start <= ctx.tlb:  # covers(), inlined
            # No-news certify, inlined from apply_window_report's fast
            # path: this runs once per listener per tick.
            if not cache.unreconciled and report.newest_ts <= cache.certified_floor:
                cache.certify(t)
            else:
                apply_window_report(cache, report)
        else:
            cache.drop_all()
            ctx.note_cache_drop()
            cache.certify(t)
        ctx.tlb = t
        return ClientOutcome.READY


TS_SCHEME = Scheme(
    name="ts",
    server_factory=TSServerPolicy,
    client_factory=TSClientPolicy,
    description="Broadcasting timestamps, fixed window, no checking",
)
