"""AFW — Adaptive Invalidation Report with Fixed Window (paper §3.1).

Default broadcast is ``IR(w)``.  A client whose gap exceeds the window
uploads its ``Tlb`` (one timestamp — the scheme's whole uplink budget);
if any uploaded ``Tlb`` is salvageable (``TS(Bn) <= Tlb <= T - wL``) the
server broadcasts the full Bit-Sequences report next period, exactly once
per request batch.
"""

from __future__ import annotations

from ..reports.bitseq import bs_salvage_threshold, build_bitseq_report
from ..reports.window import WindowReportCache, build_window_report
from .base import (
    ClientOutcome,
    ClientPolicy,
    PendingTlbBuffer,
    Scheme,
    ServerPolicy,
    apply_invalidation,
    apply_window_report,
    effective_window_seconds,
    reconcile_with_bitseq,
)
from ..reports.base import ReportKind


class AFWServerPolicy(ServerPolicy):
    """Figure 3's server: window by default, BS on salvageable demand."""

    def __init__(self, params, db):
        self.params = params
        self.db = db
        self.tlb_buffer = PendingTlbBuffer(
            getattr(params, "max_pending_tlbs", None)
        )
        self.bs_broadcasts = 0
        self._report_cache = WindowReportCache(db)

    def on_tlb(self, ctx, client_id: int, tlb: float, now: float):
        self.tlb_buffer.add(client_id, tlb)

    def _take_salvageable(self, now: float, window_seconds: float) -> list:
        """Pop all pending Tlbs, returning the salvageable ones.

        *window_seconds* is the span the regular report will cover this
        period (the loss-adaptive widened window, when active): any
        pending ``Tlb`` inside it is covered by the ordinary report for
        free, so only clients beyond it still need the BS rescue.
        """
        pending = self.tlb_buffer.drain()
        if not pending:
            return []
        window_start = now - window_seconds
        # The history floor (db.origin_time; the restart instant after a
        # crash) bounds what BS can salvage: pre-crash Tlbs fall below
        # the threshold and correctly take the drop-all path.
        threshold = bs_salvage_threshold(self.db, origin=self.db.origin_time)
        return [t for t in pending if threshold <= t <= window_start]

    def build_report(self, ctx, now: float):
        window_seconds = effective_window_seconds(ctx, self.params)
        if self._take_salvageable(now, window_seconds):
            self.bs_broadcasts += 1
            return build_bitseq_report(
                self.db,
                now,
                origin=self.db.origin_time,
                timestamp_bits=self.params.timestamp_bits,
            )
        return build_window_report(
            self.db,
            now,
            window_seconds,
            self.params.timestamp_bits,
            cache=self._report_cache,
        )


class AdaptiveClientPolicy(ClientPolicy):
    """Figures 3/4's client: shared by AFW and AAW.

    * BS report          -> run the BS algorithm.
    * covering window    -> run the TS algorithm (enlarged windows cover
      any client whose ``Tlb`` reaches the dummy record).
    * uncovered, not yet asked -> upload ``Tlb`` and wait.
    * uncovered, already asked -> the server could not help: drop all.
    """

    def __init__(self, params, client_id: int):
        self.params = params
        self.client_id = client_id
        self._sent_tlb = False
        self.tlb_uploads = 0

    def on_report(self, ctx, report) -> ClientOutcome:
        t = report.timestamp
        if report.kind is ReportKind.BIT_SEQUENCES:
            # Same O(1) no-news fast path as the plain BS client.
            if ctx.tlb >= report.ts_b0 and not ctx.cache.unreconciled:
                ctx.cache.certify(t)
                ctx.tlb = t
                self._sent_tlb = False
                return ClientOutcome.READY
            inv = report.invalidation_for(ctx.tlb)
            if inv.covered:
                reconcile_with_bitseq(ctx.cache, report)
                apply_invalidation(ctx.cache, inv, t)
            else:
                ctx.cache.drop_all()
                ctx.note_cache_drop()
                ctx.cache.certify(t)
            ctx.tlb = t
            self._sent_tlb = False
            return ClientOutcome.READY
        if report.window_start <= ctx.tlb:  # covers(), inlined
            cache = ctx.cache
            # No-news certify (apply_window_report's fast path, inlined).
            if not cache.unreconciled and report.newest_ts <= cache.certified_floor:
                cache.certify(t)
            else:
                apply_window_report(cache, report)
            ctx.tlb = t
            self._sent_tlb = False
            return ClientOutcome.READY
        if not self._sent_tlb:
            self._sent_tlb = True
            self.tlb_uploads += 1
            ctx.send_tlb(ctx.tlb)
            return ClientOutcome.PENDING
        # Second uncovered report after asking: unsalvageable.
        ctx.cache.drop_all()
        ctx.note_cache_drop()
        ctx.cache.certify(t)
        ctx.tlb = t
        self._sent_tlb = False
        return ClientOutcome.READY

    def on_reconnect(self, ctx, now: float):
        self._sent_tlb = False

    def on_validation_timeout(self, ctx, now: float) -> bool:
        """The rescue upload (or the rescue report) was lost on the air:
        re-send ``Tlb`` so the server schedules another rescue."""
        self.tlb_uploads += 1
        ctx.send_tlb(ctx.tlb)
        return True


AFW_SCHEME = Scheme(
    name="afw",
    server_factory=AFWServerPolicy,
    client_factory=AdaptiveClientPolicy,
    description="Adaptive invalidation report with fixed window",
)
