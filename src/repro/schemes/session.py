"""Transport-free client certification core.

:class:`ClientSession` is the piece of the simulated client
(:mod:`repro.sim.client`) that is pure protocol: report dedup, the
``(cell, epoch)`` incarnation state machine, missed-report detection,
``Tlb`` bookkeeping, and dispatch into the scheme's
:class:`~repro.schemes.base.ClientPolicy`.  No event loop, no channels,
no energy model — callers feed it reports and replies and observe the
outcome.  Both the simulator-independent service façade
(:mod:`repro.service`) and unit tests drive schemes through it, so the
certification semantics exercised in production are *the same object
code* the simulation campaigns validated.

The session is its own policy context: it exposes ``cache``, ``tlb``,
``send_tlb``, ``send_check_request`` and ``note_cache_drop`` exactly as
the scheme contract in :mod:`repro.schemes.base` requires, forwarding
the uplink calls to injected callbacks (the service wires them to its
L2 backend; tests wire them to lists).
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Iterable, Optional, Sequence, Tuple

from ..cache import CacheEntry, ClientCache
from ..reports.base import Report
from .base import ClientOutcome, ClientPolicy

__all__ = ["ClientSession", "SessionOutcome"]

#: ``send_check_request`` receives ``(item, effective_ts)`` pairs (the
#: checking/gcore upload wire format; gcore pre-collapses group minima).
CheckSender = Callable[[Sequence[Tuple[int, float]]], None]
TlbSender = Callable[[float], None]


class SessionOutcome(enum.Enum):
    """What one offered report did to the session."""

    READY = "ready"          # applied; cache certified as of the report
    PENDING = "pending"      # salvage in flight (Tlb/check uploaded)
    DUPLICATE = "duplicate"  # repetition-coded copy already applied
    LAGGED = "lagged"        # report older than Tlb (stale publisher)


def _noop() -> None:
    return None


class ClientSession:
    """One client's protocol state, decoupled from any transport."""

    __slots__ = (
        "policy",
        "cache",
        "params",
        "tlb",
        "_send_tlb",
        "_send_check",
        "_note_drop",
        "_last_applied",
        "_last_heard",
        "_cell",
        "_epoch",
        "pending",
        "epoch_purges",
        "lagged_reports",
        "missed_reports",
        "duplicate_reports",
        "tlb_uploads",
        "check_uploads",
    )

    def __init__(
        self,
        policy: ClientPolicy,
        cache: ClientCache,
        params: Any,
        *,
        send_tlb: Optional[TlbSender] = None,
        send_check_request: Optional[CheckSender] = None,
        note_cache_drop: Optional[Callable[[], None]] = None,
        start_tlb: float = 0.0,
    ) -> None:
        self.policy = policy
        self.cache = cache
        #: Duck-typed protocol parameters (``broadcast_interval`` is the
        #: only field the session itself reads; the policy reads more).
        self.params = params
        #: Last-heard report timestamp — the paper's ``Tlb``.  Settable
        #: by the policy (the context contract).
        self.tlb = start_tlb
        self._send_tlb: TlbSender = send_tlb or (lambda _tlb: None)
        self._send_check: CheckSender = send_check_request or (lambda _entries: None)
        self._note_drop: Callable[[], None] = note_cache_drop or _noop
        self._last_applied: Optional[float] = None
        self._last_heard: Optional[float] = 0.0
        self._cell: Optional[int] = None
        self._epoch = 0
        #: A scheme salvage (Tlb upload / checking reply) is outstanding.
        self.pending = False
        self.epoch_purges = 0
        self.lagged_reports = 0
        self.missed_reports = 0
        self.duplicate_reports = 0
        self.tlb_uploads = 0
        self.check_uploads = 0

    # -- the ClientPolicy context surface ---------------------------------

    def send_tlb(self, tlb: float) -> None:
        self.tlb_uploads += 1
        self._send_tlb(tlb)

    def send_check_request(
        self,
        entries: Sequence[Tuple[int, float]],
        size_bits: Optional[float] = None,
    ) -> None:
        self.check_uploads += 1
        self._send_check(entries)

    def note_cache_drop(self) -> None:
        self._note_drop()

    # -- report intake (mirrors repro.sim.client._on_downlink, IR arm) ----

    def offer_report(self, report: Report, now: float) -> SessionOutcome:
        """Feed one received report through dedup/epoch/gap/policy.

        The exact state machine the simulated client runs: duplicate
        copies are discarded; a new ``(cell, epoch)`` pair after handoff
        is adopted without purging; an epoch bump or timeline regression
        voids certified knowledge via the scheme's ``on_epoch_change``
        (default: full drop) and resynchronises ``Tlb``; a lagging
        report (older than ``Tlb``) is skipped; a gap of more than one
        broadcast interval is reported to the policy before dispatch.
        """
        report_ts = report.timestamp
        if report_ts == self._last_applied:
            self.duplicate_reports += 1
            return SessionOutcome.DUPLICATE
        epoch = report.epoch
        if self._cell is None:
            # First report ever (or after a handoff): adopt the cell's
            # (cell, epoch) identity without purging — timestamps are
            # global, so prior certification stays honest.
            self._cell = report.cell
            self._epoch = epoch
        elif (
            epoch != self._epoch
            or report.cell != self._cell
            or (self._last_applied is not None and report_ts < self._last_applied)
        ):
            # Server restart (or timeline regression — same symptom):
            # certified history is void.  Scheme purges, Tlb resyncs.
            self.epoch_purges += 1
            self.policy.on_epoch_change(self, self._epoch, epoch, now)
            self._cell = report.cell
            self._epoch = epoch
            self.pending = False
            self._last_heard = None
            self.tlb = report_ts
        if report_ts < self.tlb:
            self.lagged_reports += 1
            return SessionOutcome.LAGGED
        self._last_applied = report_ts
        last = self._last_heard
        self._last_heard = report_ts
        interval = float(self.params.broadcast_interval)
        if last is not None and round((report_ts - last) / interval) > 1:
            n_missed = int(round((report_ts - last) / interval)) - 1
            self.missed_reports += n_missed
            self.policy.on_missed_reports(self, n_missed, now)
        outcome = self.policy.on_report(self, report)
        if outcome is ClientOutcome.READY:
            self.pending = False
            return SessionOutcome.READY
        self.pending = True
        return SessionOutcome.PENDING

    # -- salvage replies ---------------------------------------------------

    def validity_reply(
        self, invalid_items: Iterable[int], certified_at: float
    ) -> None:
        """Apply the server's answer to a checking upload."""
        if not self.pending:
            # A reply from a previous episode: applying it would certify
            # state it never validated.  Drop (sim client does the same).
            return
        self.policy.on_validity_reply(self, invalid_items, certified_at)
        self.pending = False

    def validation_timeout(self, now: float) -> bool:
        """The expected reply never came.  Returns True when the policy
        re-issued the upload (stay pending); False degrades to a full
        drop + resync, exactly like the simulated watchdog."""
        if not self.pending:
            return True
        if self.policy.on_validation_timeout(self, now):
            return True
        self.cache.drop_all()
        self.note_cache_drop()
        self.pending = False
        self.policy.on_reconnect(self, now)
        return False

    # -- connectivity episodes --------------------------------------------

    def disconnect(self, now: float) -> None:
        """The report feed stopped (doze / outage): freeze ``Tlb``."""
        self.policy.on_disconnect(self, now)

    def reconnect(self, now: float) -> None:
        """The feed is back.  Reports missed while away are *expected*,
        not wireless loss — suppress gap accounting for the first report
        and reset the policy's per-episode latches."""
        self._last_heard = None
        self.policy.on_reconnect(self, now)

    # -- introspection -----------------------------------------------------

    @property
    def report_identity(self) -> Tuple[Optional[int], int]:
        """The ``(cell, epoch)`` pair the session is certified against."""
        return (self._cell, self._epoch)

    @property
    def last_report_applied(self) -> Optional[float]:
        return self._last_applied

    def insert_fetched(
        self, entry: CacheEntry, coherent_ts: Optional[float] = None
    ) -> bool:
        """Insert a fetched entry, marking it suspect when its coherence
        predates ``Tlb`` (fetch crossed a report boundary — the scheme
        must reconcile it at the next report).  Returns the suspect flag.
        """
        ts = entry.ts if coherent_ts is None else coherent_ts
        suspect = ts < self.tlb
        self.cache.insert(entry, suspect=suspect)
        return suspect

    def snapshot(self) -> dict[str, float]:
        """Deterministic counters for campaign serialisation."""
        return {
            "tlb": self.tlb,
            "epoch_purges": float(self.epoch_purges),
            "lagged_reports": float(self.lagged_reports),
            "missed_reports": float(self.missed_reports),
            "duplicate_reports": float(self.duplicate_reports),
            "tlb_uploads": float(self.tlb_uploads),
            "check_uploads": float(self.check_uploads),
            "cache_len": float(len(self.cache)),
            "full_drops": float(self.cache.full_drops),
            "invalidations": float(self.cache.invalidations),
        }
